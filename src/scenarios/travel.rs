//! A travel-booking composition exercising nested queues: a portal fans a
//! trip request out to an airline, which replies with the (set-valued) list
//! of matching flights — the paper's canonical use of nested messages
//! ("the set of books written by an author").

use ddws_model::{Composition, CompositionBuilder, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple};

/// Builds the portal ⇄ airline composition.
pub fn composition(lossy: bool, semantics: Semantics) -> Composition {
    let mut b = CompositionBuilder::new();
    b.semantics(semantics);
    b.default_lossy(lossy);

    b.channel("search", 1, QueueKind::Flat, "Portal", "Airline"); // (dest)
    b.channel("offers", 2, QueueKind::Nested, "Airline", "Portal"); // (dest, flight)

    b.peer("Portal")
        .database("destination", 1)
        .state("results", 2)
        .input("trip", 1)
        .input_rule("trip", &["dest"], "destination(dest)")
        .send_rule("search", &["dest"], "trip(dest)")
        .state_insert_rule("results", &["dest", "flight"], "?offers(dest, flight)");

    b.peer("Airline")
        .database("flight", 2) // (dest, flight)
        .send_rule(
            "offers",
            &["dest", "f"],
            "?search(dest) and flight(dest, f)",
        );

    b.build().expect("travel composition is well-formed")
}

/// Demonstration database: two destinations, one with two flights.
pub fn demo_database(comp: &mut Composition) -> Instance {
    let mut db = Instance::empty(&comp.voc);
    let lis = comp.symbols.intern("LIS");
    let sfo = comp.symbols.intern("SFO");
    let f1 = comp.symbols.intern("f1");
    let f2 = comp.symbols.intern("f2");
    let ins = |db: &mut Instance, rel: &str, t: &[ddws_relational::Value]| {
        let id = comp.voc.lookup(rel).unwrap();
        db.relation_mut(id).insert(Tuple::from(t));
    };
    ins(&mut db, "Portal.destination", &[lis]);
    ins(&mut db, "Portal.destination", &[sfo]);
    ins(&mut db, "Airline.flight", &[lis, f1]);
    ins(&mut db, "Airline.flight", &[lis, f2]);
    db
}

/// Results reflect the airline's schedule (closure variables over the
/// nested payload — nested atoms may not bind quantified variables, §3.1).
pub const PROP_RESULTS_ARE_REAL: &str =
    "forall dest, f: G (Portal.results(dest, f) -> Airline.flight(dest, f))";
