//! The bank-loan composition — the paper's running example.
//!
//! Figure 1 of the paper: an applicant (`A`), the loan officer (`O`), the
//! officer's manager (`M`) and a credit-reporting agency (`CR`), connected
//! by seven channels:
//!
//! ```text
//!   A --apply--> O --getRating--> CR
//!                O <--rating----- CR
//!                O --getHistory-> CR
//!                O <==history==== CR        (nested)
//!                O ==recommend==> M         (nested)
//!                O <--decision--- M
//! ```
//!
//! Peer `O` is transcribed rule-for-rule from Example 2.2 (rules (1)–(10));
//! the paper leaves `A`, `M` and `CR` unspecified, so they are completed
//! here in the same input-bounded style. Rules (4)–(6) are reassociated so
//! each `∃ssn` block carries its guard (`customer` database lookups;
//! see `IbOptions::allow_database_guards`).

use ddws_model::{Composition, CompositionBuilder, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple};

/// Builds the bank-loan composition.
///
/// `lossy` selects the channel regime: `true` is the decidable regime of
/// Theorem 3.4; `false` demonstrates the perfect-channel boundary
/// (Theorem 3.7). `semantics` tunes queue bounds and lookback.
pub fn composition(lossy: bool, semantics: Semantics) -> Composition {
    let mut b = CompositionBuilder::new();
    b.semantics(semantics);
    b.default_lossy(lossy);

    b.channel("apply", 2, QueueKind::Flat, "A", "O");
    b.channel("getRating", 1, QueueKind::Flat, "O", "CR");
    b.channel("rating", 2, QueueKind::Flat, "CR", "O");
    b.channel("getHistory", 1, QueueKind::Flat, "O", "CR");
    b.channel("history", 3, QueueKind::Nested, "CR", "O");
    b.channel("recommend", 8, QueueKind::Nested, "O", "M");
    b.channel("decision", 2, QueueKind::Flat, "M", "O");

    // --- Applicant -------------------------------------------------------
    // The customer browses loan products (database `wants`) and submits an
    // application through the Web interface.
    b.peer("A")
        .database("wants", 2)
        .input("submit", 2)
        .input_rule("submit", &["id", "loan"], "wants(id, loan)")
        .send_rule("apply", &["id", "loan"], "submit(id, loan)");

    // --- Loan officer (Example 2.2) --------------------------------------
    b.peer("O")
        .database("customer", 3)
        .input("reccom", 2)
        .state("application", 2)
        .state("awaitsHist", 5)
        .state("awaitsMgr", 7)
        .action("letter", 4)
        // (1) recommendation menu
        .input_rule(
            "reccom",
            &["id", "rec"],
            "exists ssn, name: customer(id, ssn, name) and \
             (rec = \"approve\" or rec = \"deny\")",
        )
        // (2) save incoming applications
        .state_insert_rule("application", &["id", "loan"], "?apply(id, loan)")
        // (3) ask the credit agency for the rating
        .send_rule(
            "getRating",
            &["ssn"],
            "exists id, loan, name: ?apply(id, loan) and customer(id, ssn, name)",
        )
        // (4)–(6) letters: automatic approval/denial on extreme ratings,
        // otherwise whatever the manager decided
        .action_rule(
            "letter",
            &["id", "name", "loan", "dec"],
            "(exists ssn: customer(id, ssn, name) and application(id, loan) and \
               (?rating(ssn, \"excellent\") and dec = \"approved\" \
                or ?rating(ssn, \"poor\") and dec = \"denied\")) \
             or (?decision(id, dec) and application(id, loan) and \
                 (exists ssn: customer(id, ssn, name)))",
        )
        // (7) middle ratings: fetch the full history
        .send_rule(
            "getHistory",
            &["ssn"],
            "exists r: ?rating(ssn, r) and not (r = \"excellent\" or r = \"poor\")",
        )
        // (8) remember who awaits the history
        .state_insert_rule(
            "awaitsHist",
            &["id", "ssn", "name", "loan", "r"],
            "?rating(ssn, r) and not (r = \"excellent\" or r = \"poor\") and \
             application(id, loan) and customer(id, ssn, name)",
        )
        // (9) join the history with the pending application
        .state_insert_rule(
            "awaitsMgr",
            &["id", "ssn", "name", "loan", "r", "acc", "bal"],
            "?history(ssn, acc, bal) and awaitsHist(id, ssn, name, loan, r)",
        )
        // (10) forward everything to the manager with the recommendation
        .send_rule(
            "recommend",
            &["id", "ssn", "name", "loan", "rec", "r", "acc", "bal"],
            "reccom(id, rec) and awaitsMgr(id, ssn, name, loan, r, acc, bal)",
        );

    // --- Manager ----------------------------------------------------------
    b.peer("M")
        .database("customer", 3)
        .state("recommended", 8)
        .input("decide", 2)
        .state_insert_rule(
            "recommended",
            &["id", "ssn", "name", "loan", "rec", "r", "acc", "bal"],
            "?recommend(id, ssn, name, loan, rec, r, acc, bal)",
        )
        .input_rule(
            "decide",
            &["id", "dec"],
            "exists ssn, name: customer(id, ssn, name) and \
             (dec = \"approved\" or dec = \"denied\")",
        )
        .send_rule("decision", &["id", "dec"], "decide(id, dec)");

    // --- Credit reporting agency ------------------------------------------
    b.peer("CR")
        .database("creditRating", 2)
        .database("creditHistory", 3)
        .send_rule(
            "rating",
            &["ssn", "cat"],
            "?getRating(ssn) and creditRating(ssn, cat)",
        )
        .send_rule(
            "history",
            &["ssn", "acc", "bal"],
            "?getHistory(ssn) and creditHistory(ssn, acc, bal)",
        );

    b.build().expect("bank-loan composition is well-formed")
}

/// Property (11) of Example 3.2: every application from a known customer
/// eventually results in an approval or denial letter.
pub const PROP_EVERY_APPLICATION_ANSWERED: &str = "forall id, l, name, ssn: \
     G ((O.?apply(id, l) and O.customer(id, ssn, name)) -> \
        F (O.letter(id, name, l, \"denied\") or O.letter(id, name, l, \"approved\")))";

/// The second property of Example 3.2 (bank policy): approval letters only
/// after an excellent rating or a manager approval.
pub const PROP_APPROVALS_JUSTIFIED: &str = "forall id, name, loan: \
     ((exists ssn: CR.!rating(ssn, \"excellent\") and O.customer(id, ssn, name)) \
      or M.!decision(id, \"approved\")) \
     B (not O.letter(id, name, loan, \"approved\"))";

/// A *strict* (closure-free) invariant: rating replies always reflect the
/// credit agency's database. Every quantifier is guarded by the flat
/// in-queue atom, so this is one valuation — the cheapest kind of check.
pub const PROP_RATINGS_REFLECT_DB: &str =
    "G (forall ssn, cat: O.?rating(ssn, cat) -> CR.creditRating(ssn, cat))";

/// A strict invariant that is *violated*: "no rating reply is ever
/// received". Its counterexample walks the whole pipeline
/// A → O → CR → O.
pub const PROP_NO_RATING_EVER: &str = "G (forall ssn, cat: O.?rating(ssn, cat) -> false)";

/// Letters are only produced for recorded applications (two closure
/// variables).
pub const PROP_LETTER_IMPLIES_APPLICATION: &str = "forall id, name, loan, dec: \
     G (O.letter(id, name, loan, dec) -> O.application(id, loan))";

/// A demonstration database: one customer with a "fair" rating and an open
/// account, so the full pipeline — application, rating, history, manager
/// recommendation, decision — is live. (Exhaustive "holds" checks explore
/// the complete run space; one customer keeps that in the tens of
/// thousands of states.)
pub fn demo_database(comp: &mut Composition) -> Instance {
    let mut db = Instance::empty(&comp.voc);
    let mut val = |n: &str| comp.symbols.intern(n);
    let c1 = val("c1");
    let s1 = val("s1");
    let alice = val("alice");
    let small = val("small");
    let fair = val("fair");
    let (acct, bal) = (val("acct7"), val("bal9"));

    let ins = |db: &mut Instance, comp: &Composition, rel: &str, t: &[ddws_relational::Value]| {
        let id = comp.voc.lookup(rel).unwrap_or_else(|| panic!("{rel}"));
        db.relation_mut(id).insert(Tuple::from(t));
    };
    ins(&mut db, comp, "A.wants", &[c1, small]);
    ins(&mut db, comp, "O.customer", &[c1, s1, alice]);
    ins(&mut db, comp, "M.customer", &[c1, s1, alice]);
    ins(&mut db, comp, "CR.creditRating", &[s1, fair]);
    ins(&mut db, comp, "CR.creditHistory", &[s1, acct, bal]);
    db
}
