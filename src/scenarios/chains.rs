//! Synthetic relay chains for scaling experiments (EXPERIMENTS.md, E7):
//! `n` peers `P0 → P1 → … → P{n-1}` forward a token; the state-space size
//! grows with the chain length, the queue bound and the domain size.

use ddws_model::{Composition, CompositionBuilder, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple};

/// Builds a relay chain of `n ≥ 2` peers. `P0` picks a token from its
/// database and sends it down the chain; every peer records what it saw.
pub fn composition(n: usize, lossy: bool, semantics: Semantics) -> Composition {
    assert!(n >= 2, "a chain needs at least two peers");
    let mut b = CompositionBuilder::new();
    b.semantics(semantics);
    b.default_lossy(lossy);

    for i in 0..n - 1 {
        b.channel(
            &format!("hop{i}"),
            1,
            QueueKind::Flat,
            &format!("P{i}"),
            &format!("P{}", i + 1),
        );
    }

    b.peer("P0")
        .database("token", 1)
        .input("emit", 1)
        .input_rule("emit", &["x"], "token(x)")
        .send_rule("hop0", &["x"], "emit(x)");

    for i in 1..n {
        let mut p = b.peer(&format!("P{i}"));
        p.state("seen", 1).state_insert_rule(
            "seen",
            &["x"],
            &format!("?hop{}(x)", i - 1),
        );
        if i < n - 1 {
            p.send_rule(&format!("hop{i}"), &["x"], &format!("?hop{}(x)", i - 1));
        }
    }

    b.build().expect("chain composition is well-formed")
}

/// A database with `m` candidate tokens.
pub fn database(comp: &mut Composition, m: usize) -> Instance {
    let mut db = Instance::empty(&comp.voc);
    let rel = comp.voc.lookup("P0.token").unwrap();
    for i in 0..m {
        let v = comp.symbols.intern(&format!("t{i}"));
        db.relation_mut(rel).insert(Tuple::new(vec![v]));
    }
    db
}

/// End-to-end integrity: the last peer only sees database tokens (strict).
pub fn prop_integrity(n: usize) -> String {
    format!(
        "G (forall x: P{}.?hop{}(x) -> P0.token(x))",
        n - 1,
        n - 2
    )
}
