//! Synthetic relay chains for scaling experiments (EXPERIMENTS.md, E7):
//! `n` peers `P0 → P1 → … → P{n-1}` forward a token; the state-space size
//! grows with the chain length, the queue bound and the domain size.

use ddws_model::{Composition, CompositionBuilder, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple};

/// Builds a relay chain of `n ≥ 2` peers. `P0` picks a token from its
/// database and sends it down the chain; every peer records what it saw.
pub fn composition(n: usize, lossy: bool, semantics: Semantics) -> Composition {
    chain_builder(n, lossy, semantics)
        .build()
        .expect("chain composition is well-formed")
}

fn chain_builder(n: usize, lossy: bool, semantics: Semantics) -> CompositionBuilder {
    assert!(n >= 2, "a chain needs at least two peers");
    let mut b = CompositionBuilder::new();
    b.semantics(semantics);
    b.default_lossy(lossy);

    for i in 0..n - 1 {
        b.channel(
            &format!("hop{i}"),
            1,
            QueueKind::Flat,
            &format!("P{i}"),
            &format!("P{}", i + 1),
        );
    }

    b.peer("P0")
        .database("token", 1)
        .input("emit", 1)
        .input_rule("emit", &["x"], "token(x)")
        .send_rule("hop0", &["x"], "emit(x)");

    for i in 1..n {
        let mut p = b.peer(&format!("P{i}"));
        p.state("seen", 1)
            .state_insert_rule("seen", &["x"], &format!("?hop{}(x)", i - 1));
        if i < n - 1 {
            p.send_rule(&format!("hop{i}"), &["x"], &format!("?hop{}(x)", i - 1));
        }
    }

    b
}

/// A relay chain plus a channel-free *auditor* peer `Aud` whose single
/// state relation `phase` rotates deterministically through the `ring ≥ 2`
/// phase constants `"r0" … "r{ring-1}"` (entered at `"r0"` from the empty
/// initial state, quantifier-free so the peer stays input-bounded).
///
/// The auditor shares no channel, queue or relation with the chain, so it
/// is statically independent of every chain mover and invisible to any
/// chain-only property: under `Reduction::Ample` the search schedules it
/// alone until its orbit closes (where the C3 cycle proviso restores the
/// full expansion), collapsing the `chain × auditor` interleavings. This
/// is the partial-order-reduction showcase of experiment E9.
pub fn composition_with_auditor(
    n: usize,
    ring: usize,
    lossy: bool,
    semantics: Semantics,
) -> Composition {
    assert!(ring >= 2, "the auditor ring needs at least two phases");
    let mut b = chain_builder(n, lossy, semantics);
    let occupied = (0..ring)
        .map(|i| format!("phase(\"r{i}\")"))
        .collect::<Vec<_>>()
        .join(" or ");
    let mut arms = vec![format!("(x = \"r0\" and not ({occupied}))")];
    for i in 0..ring {
        arms.push(format!("(x = \"r{}\" and phase(\"r{i}\"))", (i + 1) % ring));
    }
    b.peer("Aud")
        .state("phase", 1)
        .state_insert_rule("phase", &["x"], &arms.join(" or "))
        .state_delete_rule("phase", &["x"], "phase(x)");
    b.build().expect("auditor chain composition is well-formed")
}

/// A rule-dense relay chain for the compiled-kernel experiment (E10):
/// every peer carries, besides its relay rules, a `ring`-phase rotor and
/// an audit pair over private state relations, so each of the `n ≥ 3`
/// peers ends up with at least four (the endpoints: five or six) reaction
/// rules whose bodies are large disjunctions over the phase constants.
/// The rotor's occupancy guard keeps it to at most two adjacent phases,
/// so its reachable state count is *linear* in `ring` even as the bodies
/// grow polynomially — evaluation cost scales without a state-space
/// explosion. This is exactly the shape where per-step FO
/// re-interpretation hurts: the interpreter re-verifies the full
/// disjunction per candidate tuple at every step, while the compiled plan
/// ground-checks each guarded branch once and the footprint cache
/// memoizes every rotor rule on the rotor's own (tiny, endlessly
/// repeating) extension.
pub fn rule_dense_composition(
    n: usize,
    ring: usize,
    lossy: bool,
    semantics: Semantics,
) -> Composition {
    assert!(n >= 3, "the rule-dense chain wants at least three peers");
    let mut b = chain_builder(n, lossy, semantics);
    for i in 0..n {
        add_phase_ring(&mut b, &format!("P{i}"), "phase", ring);
    }
    b.build()
        .expect("rule-dense chain composition is well-formed")
}

/// Adds a `ring`-phase rotor over a fresh state relation `rel` to `peer` —
/// a stepping insert rule (enter at `"r0"` from empty, advance from a lone
/// `"r{i}"` to `"r{i+1}"`) plus a plain delete rule — and a companion
/// `{rel}_audit` relation with two rules whose bodies conjoin a large
/// *ground* guard with a per-tuple contradiction, so they are evaluated
/// at every step but never fire: the audit relation stays empty forever
/// and the pair adds rule-evaluation work without a single reachable
/// state. The ground guard is an `O(ring³)`-literal disjunction over
/// phase triples — mostly-false under the two-phase occupancy cap, so
/// its scan rarely short-circuits. The interpreter re-checks it for
/// every candidate head tuple at every step; the compiled plan hoists it
/// as a ground guard checked once per evaluation, and the footprint
/// cache then memoizes the whole rule on the rotor's (tiny, endlessly
/// repeating) extension.
fn add_phase_ring(b: &mut CompositionBuilder, peer: &str, rel: &str, ring: usize) {
    assert!(ring >= 2, "a phase ring needs at least two phases");
    let step_body = |var: &str| {
        let all = (0..ring)
            .map(|i| format!("{rel}(\"r{i}\")"))
            .collect::<Vec<_>>()
            .join(" or ");
        let mut arms = vec![format!("({var} = \"r0\" and not ({all}))")];
        for i in 0..ring {
            let others = (0..ring)
                .filter(|&j| j != i)
                .map(|j| format!("{rel}(\"r{j}\")"))
                .collect::<Vec<_>>()
                .join(" or ");
            arms.push(format!(
                "({var} = \"r{}\" and {rel}(\"r{i}\") and not ({others}))",
                (i + 1) % ring
            ));
        }
        arms.join(" or ")
    };
    let mut triples = Vec::with_capacity(ring * ring * ring);
    for i in 0..ring {
        for j in 0..ring {
            for k in 0..ring {
                triples.push(format!(
                    "({rel}(\"r{i}\") and {rel}(\"r{j}\") and {rel}(\"r{k}\"))"
                ));
            }
        }
    }
    // Four rotated copies conjoined: rotation relocates whichever triple
    // happens to be true, so disjunction short-circuiting cannot collapse
    // the scan of every copy at once.
    let ground = (0..4)
        .map(|s| {
            let mut copy = triples.clone();
            copy.rotate_left(s * triples.len() / 4);
            format!("({})", copy.join(" or "))
        })
        .collect::<Vec<_>>()
        .join(" and ");
    let audit = format!("{rel}_audit");
    b.peer(peer)
        .state(rel, 1)
        .state_insert_rule(rel, &["x"], &step_body("x"))
        .state_delete_rule(rel, &["x"], &format!("{rel}(x)"))
        .state(&audit, 1)
        .state_insert_rule(
            &audit,
            &["x"],
            &format!("{ground} and {rel}(x) and ({})", step_body("x")),
        )
        .state_delete_rule(
            &audit,
            &["x"],
            &format!("{ground} and {audit}(x) and ({})", step_body("x")),
        );
}

/// A database with `m` candidate tokens.
pub fn database(comp: &mut Composition, m: usize) -> Instance {
    let mut db = Instance::empty(&comp.voc);
    let rel = comp.voc.lookup("P0.token").unwrap();
    for i in 0..m {
        let v = comp.symbols.intern(&format!("t{i}"));
        db.relation_mut(rel).insert(Tuple::new(vec![v]));
    }
    db
}

/// End-to-end integrity: the last peer only sees database tokens (strict).
pub fn prop_integrity(n: usize) -> String {
    format!("G (forall x: P{}.?hop{}(x) -> P0.token(x))", n - 1, n - 2)
}
