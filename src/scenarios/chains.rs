//! Synthetic relay chains for scaling experiments (EXPERIMENTS.md, E7):
//! `n` peers `P0 → P1 → … → P{n-1}` forward a token; the state-space size
//! grows with the chain length, the queue bound and the domain size.

use ddws_model::{Composition, CompositionBuilder, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple};

/// Builds a relay chain of `n ≥ 2` peers. `P0` picks a token from its
/// database and sends it down the chain; every peer records what it saw.
pub fn composition(n: usize, lossy: bool, semantics: Semantics) -> Composition {
    chain_builder(n, lossy, semantics)
        .build()
        .expect("chain composition is well-formed")
}

fn chain_builder(n: usize, lossy: bool, semantics: Semantics) -> CompositionBuilder {
    assert!(n >= 2, "a chain needs at least two peers");
    let mut b = CompositionBuilder::new();
    b.semantics(semantics);
    b.default_lossy(lossy);

    for i in 0..n - 1 {
        b.channel(
            &format!("hop{i}"),
            1,
            QueueKind::Flat,
            &format!("P{i}"),
            &format!("P{}", i + 1),
        );
    }

    b.peer("P0")
        .database("token", 1)
        .input("emit", 1)
        .input_rule("emit", &["x"], "token(x)")
        .send_rule("hop0", &["x"], "emit(x)");

    for i in 1..n {
        let mut p = b.peer(&format!("P{i}"));
        p.state("seen", 1)
            .state_insert_rule("seen", &["x"], &format!("?hop{}(x)", i - 1));
        if i < n - 1 {
            p.send_rule(&format!("hop{i}"), &["x"], &format!("?hop{}(x)", i - 1));
        }
    }

    b
}

/// A relay chain plus a channel-free *auditor* peer `Aud` whose single
/// state relation `phase` rotates deterministically through the `ring ≥ 2`
/// phase constants `"r0" … "r{ring-1}"` (entered at `"r0"` from the empty
/// initial state, quantifier-free so the peer stays input-bounded).
///
/// The auditor shares no channel, queue or relation with the chain, so it
/// is statically independent of every chain mover and invisible to any
/// chain-only property: under `Reduction::Ample` the search schedules it
/// alone until its orbit closes (where the C3 cycle proviso restores the
/// full expansion), collapsing the `chain × auditor` interleavings. This
/// is the partial-order-reduction showcase of experiment E9.
pub fn composition_with_auditor(
    n: usize,
    ring: usize,
    lossy: bool,
    semantics: Semantics,
) -> Composition {
    assert!(ring >= 2, "the auditor ring needs at least two phases");
    let mut b = chain_builder(n, lossy, semantics);
    let occupied = (0..ring)
        .map(|i| format!("phase(\"r{i}\")"))
        .collect::<Vec<_>>()
        .join(" or ");
    let mut arms = vec![format!("(x = \"r0\" and not ({occupied}))")];
    for i in 0..ring {
        arms.push(format!("(x = \"r{}\" and phase(\"r{i}\"))", (i + 1) % ring));
    }
    b.peer("Aud")
        .state("phase", 1)
        .state_insert_rule("phase", &["x"], &arms.join(" or "))
        .state_delete_rule("phase", &["x"], "phase(x)");
    b.build().expect("auditor chain composition is well-formed")
}

/// A database with `m` candidate tokens.
pub fn database(comp: &mut Composition, m: usize) -> Instance {
    let mut db = Instance::empty(&comp.voc);
    let rel = comp.voc.lookup("P0.token").unwrap();
    for i in 0..m {
        let v = comp.symbols.intern(&format!("t{i}"));
        db.relation_mut(rel).insert(Tuple::new(vec![v]));
    }
    db
}

/// End-to-end integrity: the last peer only sees database tokens (strict).
pub fn prop_integrity(n: usize) -> String {
    format!("G (forall x: P{}.?hop{}(x) -> P0.token(x))", n - 1, n - 2)
}
