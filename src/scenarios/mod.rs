//! Ready-made compositions used by the examples, integration tests and
//! benchmark harness.
//!
//! * [`bank_loan`] — the paper's running example (Figure 1, Example 2.2):
//!   applicant, loan officer, manager and credit-reporting agency;
//! * [`ecommerce`] — a storefront charging cards through an external
//!   payment-gateway service (the motivating scenario of the paper's
//!   introduction);
//! * [`travel`] — a travel-booking composition exercising nested queues and
//!   multi-peer fan-out;
//! * [`chains`] — synthetic peer chains parameterized by length, used for
//!   scaling experiments (E7).

pub mod bank_loan;
pub mod chains;
pub mod ecommerce;
pub mod travel;
