//! An e-commerce storefront charging cards through an external payment
//! gateway — the motivating scenario of the paper's introduction ("even
//! seemingly self-contained e-commerce Web sites place calls to an external
//! Web service to charge a credit card").
//!
//! Two peers: the **Store** (catalog database, shopper input, order state,
//! shipping action) and the **Gateway** (card database, charge decisions).

use ddws_model::{Composition, CompositionBuilder, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple};

/// Builds the storefront ⇄ gateway composition.
pub fn composition(lossy: bool, semantics: Semantics) -> Composition {
    let mut b = CompositionBuilder::new();
    b.semantics(semantics);
    b.default_lossy(lossy);

    b.channel("charge", 2, QueueKind::Flat, "Store", "Gateway"); // (card, item)
    b.channel("charged", 2, QueueKind::Flat, "Gateway", "Store"); // (card, status)

    b.peer("Store")
        .database("catalog", 1)
        .database("cardOnFile", 1)
        .state("pending", 2)
        .state("paid", 1)
        .action("ship", 2)
        .input("buy", 2) // (card, item)
        .input_rule(
            "buy",
            &["card", "item"],
            "cardOnFile(card) and catalog(item)",
        )
        .send_rule("charge", &["card", "item"], "buy(card, item)")
        .state_insert_rule("pending", &["card", "item"], "buy(card, item)")
        .state_insert_rule("paid", &["card"], "?charged(card, \"ok\")")
        .action_rule(
            "ship",
            &["card", "item"],
            "?charged(card, \"ok\") and pending(card, item)",
        );

    b.peer("Gateway").database("validCard", 1).send_rule(
        "charged",
        &["card", "status"],
        "exists item: (?charge(card, item) and validCard(card) and status = \"ok\") \
             or (?charge(card, item) and not validCard(card) and status = \"declined\")",
    );

    b.build().expect("e-commerce composition is well-formed")
}

/// A demonstration database: one item, one good card, one bad card on file.
pub fn demo_database(comp: &mut Composition) -> Instance {
    let mut db = Instance::empty(&comp.voc);
    let book = comp.symbols.intern("book");
    let visa = comp.symbols.intern("visa");
    let stolen = comp.symbols.intern("stolen");
    let ins = |db: &mut Instance, rel: &str, t: &[ddws_relational::Value]| {
        let id = comp.voc.lookup(rel).unwrap();
        db.relation_mut(id).insert(Tuple::from(t));
    };
    ins(&mut db, "Store.catalog", &[book]);
    ins(&mut db, "Store.cardOnFile", &[visa]);
    ins(&mut db, "Store.cardOnFile", &[stolen]);
    ins(&mut db, "Gateway.validCard", &[visa]);
    db
}

/// Safety: the gateway only confirms valid cards (strict sentence — cheap).
pub const PROP_CHARGES_ARE_VALID: &str = "G (forall card, status: Store.?charged(card, status) -> \
        (not status = \"ok\" or Gateway.validCard(card)))";

/// Safety with closure variables: only catalog items ever ship (shipping
/// requires a pending order, which requires a `buy` drawn from the
/// catalog).
pub const PROP_SHIP_FROM_CATALOG: &str =
    "forall card, item: G (Store.ship(card, item) -> Store.catalog(item))";
