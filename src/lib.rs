//! # `ddws` — verification of communicating data-driven web services
//!
//! Facade crate re-exporting the full public API of the `ddws` workspace, a
//! Rust implementation of the framework of Deutsch, Sui, Vianu and Zhou,
//! *"Verification of Communicating Data-Driven Web Services"* (PODS 2006).
//!
//! The workspace provides:
//!
//! * [`relational`] — values, tuples, relations, instances (the substrate);
//! * [`logic`] — FO and LTL-FO formulas, parsing, evaluation, and the
//!   input-boundedness checker of §3.1;
//! * [`automata`] — Büchi automata, LTL→Büchi translation, complementation,
//!   emptiness;
//! * [`model`] — peers, compositions, queue semantics and runs (§2);
//! * [`protocol`] — data-agnostic and data-aware conversation protocols (§4);
//! * [`verifier`] — the sound-and-complete model checker for input-bounded
//!   compositions with bounded lossy queues (§3), the composition→single-peer
//!   reduction, and modular verification (§5);
//! * [`boundaries`] — executable witnesses of the undecidability results
//!   (§3.2, §4, §5).
//!
//! See `examples/quickstart.rs` for a five-minute tour, and DESIGN.md /
//! EXPERIMENTS.md for the reproduction map.
//!
//! ```
//! use ddws::model::{CompositionBuilder, QueueKind};
//! use ddws::verifier::{Verifier, VerifyOptions};
//!
//! let mut b = CompositionBuilder::new();
//! b.channel("ping", 1, QueueKind::Flat, "Alice", "Bob");
//! b.peer("Alice")
//!     .database("friend", 1)
//!     .input("greet", 1)
//!     .input_rule("greet", &["x"], "friend(x)")
//!     .send_rule("ping", &["x"], "greet(x)");
//! b.peer("Bob")
//!     .state("seen", 1)
//!     .state_insert_rule("seen", &["x"], "?ping(x)");
//!
//! let mut verifier = Verifier::new(b.build().unwrap());
//! let opts = VerifyOptions { fresh_values: Some(2), ..VerifyOptions::default() };
//! let report = verifier
//!     .check_str("G (forall x: Bob.?ping(x) -> Alice.friend(x))", &opts)
//!     .unwrap();
//! assert!(report.outcome.holds());
//! ```

#![warn(missing_docs)]
pub mod scenarios;

pub use ddws_automata as automata;
pub use ddws_boundaries as boundaries;
pub use ddws_logic as logic;
pub use ddws_model as model;
pub use ddws_protocol as protocol;
pub use ddws_relational as relational;
pub use ddws_verifier as verifier;
