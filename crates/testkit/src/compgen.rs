//! Random small compositions and input-bounded properties for swarm
//! testing (feature `compgen`).
//!
//! Every generated case is **valid by construction**: the composition
//! builds (all channels lossy and flat, every sender has a send rule),
//! passes the §3.1 input-boundedness check, and the property parses and is
//! input-bounded. The point is differential testing — e.g. asserting that
//! `Reduction::Ample` and `Reduction::Full` agree on the verdict — so the
//! generator aims for *coverage of reduction-relevant shapes*, not for
//! arbitrary compositions:
//!
//! * 2–3 relay peers connected by 1–2 flat lossy channels of arity ≤ 2,
//!   with queue bound `k ≤ 2`;
//! * half the cases add a channel-free *auditor* peer whose state rotates
//!   deterministically through 2–3 phase constants — the statically
//!   independent mover the ample reduction can actually schedule alone
//!   (without it, channel-coupled peers all conflict and the reduction
//!   degrades to full expansion, which is also worth testing but not
//!   *only* that);
//! * properties are drawn from input-bounded templates over the first
//!   channel and its endpoints, including one `X`-shaped template that
//!   must switch the reduction off.

use crate::rng::XorShift;
use ddws_model::{Composition, CompositionBuilder, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple};

/// One generated verification case.
pub struct Case {
    /// The composition (closed, lossy-flat, input-bounded).
    pub composition: Composition,
    /// A fixed database for [`DatabaseMode::Fixed`]-style verification.
    pub database: Instance,
    /// An input-bounded LTL-FO property over the composition.
    pub property: String,
}

/// Draws one random case.
pub fn case(rng: &mut XorShift) -> Case {
    let with_auditor = rng.bool();
    let relays = if with_auditor { 2 } else { 2 + rng.range(0, 2) };
    let queue_bound = 1 + rng.range(0, 2);

    let mut b = CompositionBuilder::new();
    b.semantics(Semantics {
        queue_bound,
        ..Semantics::default()
    });
    b.default_lossy(true);

    // Channels among the relay peers; the first is always arity 1 so the
    // property templates below can target it.
    let nchan = 1 + rng.range(0, 2);
    let mut chans: Vec<(String, usize, usize, usize)> = Vec::new();
    for j in 0..nchan {
        let s = rng.range(0, relays);
        let mut r = rng.range(0, relays);
        if r == s {
            r = (s + 1) % relays;
        }
        let arity = if j == 0 { 1 } else { 1 + rng.range(0, 2) };
        let name = format!("c{j}");
        b.channel(
            &name,
            arity,
            QueueKind::Flat,
            &format!("W{s}"),
            &format!("W{r}"),
        );
        chans.push((name, arity, s, r));
    }

    for i in 0..relays {
        let mut p = b.peer(&format!("W{i}"));
        p.database("d", 1)
            .input("pick", 1)
            .input_rule("pick", &["x"], "d(x)");
        for (name, arity, s, _) in &chans {
            if *s != i {
                continue;
            }
            if *arity == 1 {
                p.send_rule(name, &["x"], "pick(x)");
            } else {
                p.send_rule(name, &["x", "y"], "pick(x) and pick(y)");
            }
        }
        for (j, (name, arity, _, r)) in chans.iter().enumerate() {
            if *r != i {
                continue;
            }
            let st = format!("seen{j}");
            if *arity == 1 {
                p.state(&st, 1)
                    .state_insert_rule(&st, &["x"], &format!("?{name}(x)"));
            } else {
                p.state(&st, 2)
                    .state_insert_rule(&st, &["x", "y"], &format!("?{name}(x, y)"));
            }
        }
    }

    if with_auditor {
        // Deterministic ring rotation over `ring` phase constants —
        // quantifier-free, so input-bounded; channel-free, so statically
        // independent of every relay peer.
        let ring = 2 + rng.range(0, 2);
        let occupied = (0..ring)
            .map(|i| format!("phase(\"r{i}\")"))
            .collect::<Vec<_>>()
            .join(" or ");
        let mut arms = vec![format!("(x = \"r0\" and not ({occupied}))")];
        for i in 0..ring {
            arms.push(format!("(x = \"r{}\" and phase(\"r{i}\"))", (i + 1) % ring));
        }
        b.peer("Aud")
            .state("phase", 1)
            .state_insert_rule("phase", &["x"], &arms.join(" or "))
            .state_delete_rule("phase", &["x"], "phase(x)");
    }

    let mut composition = b.build().expect("generated composition is well-formed");

    // A small fixed database: each relay peer's `d` holds a (possibly
    // empty) subset of two constants.
    let mut database = Instance::empty(&composition.voc);
    for i in 0..relays {
        let rel = composition.voc.lookup(&format!("W{i}.d")).unwrap();
        for name in ["a", "b"] {
            if rng.bool() {
                let v = composition.symbols.intern(name);
                database.relation_mut(rel).insert(Tuple::new(vec![v]));
            }
        }
    }

    // Property templates over the first (arity-1) channel.
    let (c, _, s, r) = &chans[0];
    let s = format!("W{s}");
    let r = format!("W{r}");
    let property = match rng.range(0, 6) {
        0 => format!("G (forall x: {r}.?{c}(x) -> {s}.d(x))"),
        1 => format!("G (forall x: {r}.?{c}(x) -> false)"),
        2 => format!("F (exists x: {s}.pick(x))"),
        3 => format!("G (forall x: {s}.pick(x) -> {s}.d(x))"),
        // `X` breaks stutter-invariance: the reduction must gate itself off
        // and still agree.
        4 => format!("forall x: G ({r}.seen0(x) -> X {r}.seen0(x))"),
        _ => format!("(forall x: {r}.?{c}(x) -> false) U (exists x: {s}.pick(x))"),
    };

    Case {
        composition,
        database,
        property,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddws_logic::input_bounded::IbOptions;

    #[test]
    fn generated_cases_build_and_are_input_bounded() {
        crate::gen::cases(64, crate::seed_from("compgen_validity"), |rng| {
            let case = case(rng);
            case.composition
                .check_input_bounded(IbOptions::default())
                .expect("generated composition is input-bounded");
            assert!(!case.property.is_empty());
        });
    }
}
