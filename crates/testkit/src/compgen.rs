//! Random small compositions and input-bounded properties for swarm
//! testing (feature `compgen`).
//!
//! Every generated case is **valid by construction**: the composition
//! builds (all channels lossy and flat, every sender has a send rule),
//! passes the §3.1 input-boundedness check, and the property parses and is
//! input-bounded. The point is differential testing — e.g. asserting that
//! `Reduction::Ample` and `Reduction::Full` agree on the verdict — so the
//! generator aims for *coverage of reduction-relevant shapes*, not for
//! arbitrary compositions:
//!
//! * 2–3 relay peers connected by 1–2 flat lossy channels of arity ≤ 2,
//!   with queue bound `k ≤ 2`;
//! * half the cases add a channel-free *auditor* peer whose state rotates
//!   deterministically through 2–3 phase constants — the statically
//!   independent mover the ample reduction can actually schedule alone
//!   (without it, channel-coupled peers all conflict and the reduction
//!   degrades to full expansion, which is also worth testing but not
//!   *only* that);
//! * properties are drawn from input-bounded templates over the first
//!   channel and its endpoints, including one `X`-shaped template that
//!   must switch the reduction off.
//!
//! ## Shrinking
//!
//! Generation is split into a structured intermediate form, [`CaseSpec`]
//! ([`spec`] draws one with **exactly** the same RNG stream as [`case`],
//! so pinned sub-seeds replay identically), and [`CaseSpec::build`], which
//! materializes it. The spec is what the delta-debugging minimizer
//! ([`minimize`]) cuts: drop the auditor or a relay peer (cascading its
//! channels and database rows), drop a channel, drop individual send /
//! receive / delete rules, drop auditor rule disjuncts, drop database
//! rows, and reset the queue bound — re-running the failing predicate
//! after each cut and keeping only cuts that preserve the failure. A cut
//! that makes the spec unbuildable or the failure vanish is rejected, so
//! the minimizer needs no structural invariants beyond "at least one
//! relay".

use crate::rng::XorShift;
use ddws_model::{Composition, CompositionBuilder, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple};
use std::fmt;

/// One generated verification case.
#[derive(Clone)]
pub struct Case {
    /// The composition (closed, lossy-flat, input-bounded).
    pub composition: Composition,
    /// A fixed database for [`DatabaseMode::Fixed`]-style verification.
    pub database: Instance,
    /// An input-bounded LTL-FO property over the composition.
    pub property: String,
}

/// One channel of a [`CaseSpec`], with per-rule retention flags the
/// shrinker can clear individually.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChanSpec {
    /// The original generation index: names the channel `c{index}` and the
    /// receiver's `seen{index}` state, which stay stable across shrinking
    /// so the (fixed) property string keeps referring to the same symbols.
    pub index: usize,
    /// Message arity (1 or 2).
    pub arity: usize,
    /// Sending relay id (peer `W{sender}`).
    pub sender: usize,
    /// Receiving relay id (peer `W{receiver}`).
    pub receiver: usize,
    /// Whether the sender keeps its send rule.
    pub send_rule: bool,
    /// Whether the receiver keeps its `seen{index}` tracking rule.
    pub receive_rule: bool,
}

/// The auditor peer of a [`CaseSpec`]: a deterministic phase ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditorSpec {
    /// Number of phase constants `r0..r{ring-1}`.
    pub ring: usize,
    /// Retained disjuncts of the insert rule: `0` is the boot arm, `i + 1`
    /// the rotation arm out of phase `r{i}`.
    pub arms: Vec<usize>,
    /// Whether the phase-delete rule is retained.
    pub delete_rule: bool,
}

impl AuditorSpec {
    /// The canonical text of one insert-rule disjunct.
    fn arm_text(&self, arm: usize) -> String {
        if arm == 0 {
            let occupied = (0..self.ring)
                .map(|i| format!("phase(\"r{i}\")"))
                .collect::<Vec<_>>()
                .join(" or ");
            format!("(x = \"r0\" and not ({occupied}))")
        } else {
            let i = arm - 1;
            format!("(x = \"r{}\" and phase(\"r{i}\"))", (i + 1) % self.ring)
        }
    }
}

/// The structured form of one generated case — everything [`case`] decides
/// randomly, reified so the shrinker can cut pieces and rebuild.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseSpec {
    /// Queue bound `k` of the semantics.
    pub queue_bound: usize,
    /// Retained relay ids (peer `W{id}`); generation starts with `0..n`.
    pub relays: Vec<usize>,
    /// Channels among the relays. A channel whose sender or receiver has
    /// been dropped is silently omitted by [`CaseSpec::build`].
    pub chans: Vec<ChanSpec>,
    /// The auditor peer, if any.
    pub auditor: Option<AuditorSpec>,
    /// Fixed-database rows: `(relay id, constant)` for `W{id}.d`.
    pub db_rows: Vec<(usize, &'static str)>,
    /// The property source text (fixed at generation time; shrinking never
    /// rewrites it, cuts that break it are rejected by the predicate).
    pub property: String,
}

impl CaseSpec {
    /// Whether a channel survives the current relay set.
    fn chan_live(&self, c: &ChanSpec) -> bool {
        self.relays.contains(&c.sender) && self.relays.contains(&c.receiver)
    }

    /// A size measure for shrinking and for regression assertions: the
    /// number of retained structural elements (peers, live channels,
    /// rules, auditor arms, database rows, extra queue capacity). Strictly
    /// decreases under every accepted cut.
    pub fn size(&self) -> usize {
        let chan_elems: usize = self
            .chans
            .iter()
            .filter(|c| self.chan_live(c))
            .map(|c| 1 + c.send_rule as usize + c.receive_rule as usize)
            .sum();
        let aud = self
            .auditor
            .as_ref()
            .map_or(0, |a| 1 + a.arms.len() + a.delete_rule as usize);
        let rows = self
            .db_rows
            .iter()
            .filter(|(r, _)| self.relays.contains(r))
            .count();
        self.relays.len() + chan_elems + aud + rows + (self.queue_bound - 1)
    }

    /// Materializes the spec. Fails (rather than panicking) when a shrink
    /// cut produced an ill-formed composition, so the minimizer can simply
    /// reject the cut.
    pub fn build(&self) -> Result<Case, String> {
        self.build_with_channels(true)
    }

    /// Materializes the spec with every channel *perfect* (no message
    /// loss). Everything else — structure, rules, database, property —
    /// is identical to [`CaseSpec::build`], and the choice is a plain
    /// argument rather than an RNG draw, so both variants of one spec
    /// come from the same random stream. The lossy-vs-perfect
    /// differential swarm compares the two verdicts.
    pub fn build_lossless(&self) -> Result<Case, String> {
        self.build_with_channels(false)
    }

    fn build_with_channels(&self, lossy: bool) -> Result<Case, String> {
        let mut b = CompositionBuilder::new();
        b.semantics(Semantics {
            queue_bound: self.queue_bound,
            ..Semantics::default()
        });
        b.default_lossy(lossy);

        let live: Vec<ChanSpec> = self
            .chans
            .iter()
            .filter(|c| self.chan_live(c))
            .cloned()
            .collect();
        for c in &live {
            b.channel(
                &format!("c{}", c.index),
                c.arity,
                QueueKind::Flat,
                &format!("W{}", c.sender),
                &format!("W{}", c.receiver),
            );
        }

        for &i in &self.relays {
            let mut p = b.peer(&format!("W{i}"));
            p.database("d", 1)
                .input("pick", 1)
                .input_rule("pick", &["x"], "d(x)");
            for c in &live {
                if c.sender != i || !c.send_rule {
                    continue;
                }
                let name = format!("c{}", c.index);
                if c.arity == 1 {
                    p.send_rule(&name, &["x"], "pick(x)");
                } else {
                    p.send_rule(&name, &["x", "y"], "pick(x) and pick(y)");
                }
            }
            for c in &live {
                if c.receiver != i || !c.receive_rule {
                    continue;
                }
                let name = format!("c{}", c.index);
                let st = format!("seen{}", c.index);
                if c.arity == 1 {
                    p.state(&st, 1)
                        .state_insert_rule(&st, &["x"], &format!("?{name}(x)"));
                } else {
                    p.state(&st, 2)
                        .state_insert_rule(&st, &["x", "y"], &format!("?{name}(x, y)"));
                }
            }
        }

        if let Some(aud) = &self.auditor {
            let mut p = b.peer("Aud");
            p.state("phase", 1);
            if !aud.arms.is_empty() {
                let arms: Vec<String> = aud.arms.iter().map(|&a| aud.arm_text(a)).collect();
                p.state_insert_rule("phase", &["x"], &arms.join(" or "));
            }
            if aud.delete_rule {
                p.state_delete_rule("phase", &["x"], "phase(x)");
            }
        }

        let mut composition = b.build().map_err(|e| format!("{e:?}"))?;

        let mut database = Instance::empty(&composition.voc);
        for &(relay, name) in &self.db_rows {
            if !self.relays.contains(&relay) {
                continue;
            }
            let rel = composition
                .voc
                .lookup(&format!("W{relay}.d"))
                .ok_or_else(|| format!("missing relation W{relay}.d"))?;
            let v = composition.symbols.intern(name);
            database.relation_mut(rel).insert(Tuple::new(vec![v]));
        }

        Ok(Case {
            composition,
            database,
            property: self.property.clone(),
        })
    }

    /// Candidate one-step cuts, largest first: peers (auditor, relays with
    /// cascade), channels, individual rules, auditor arms, database rows,
    /// queue bound.
    fn candidates(&self) -> Vec<CaseSpec> {
        let mut out = Vec::new();
        if self.auditor.is_some() {
            let mut s = self.clone();
            s.auditor = None;
            out.push(s);
        }
        if self.relays.len() > 1 {
            for &i in &self.relays {
                let mut s = self.clone();
                s.relays.retain(|&r| r != i);
                s.chans.retain(|c| c.sender != i && c.receiver != i);
                s.db_rows.retain(|&(r, _)| r != i);
                out.push(s);
            }
        }
        for idx in 0..self.chans.len() {
            let mut s = self.clone();
            s.chans.remove(idx);
            out.push(s);
        }
        for idx in 0..self.chans.len() {
            if self.chans[idx].send_rule {
                let mut s = self.clone();
                s.chans[idx].send_rule = false;
                out.push(s);
            }
            if self.chans[idx].receive_rule {
                let mut s = self.clone();
                s.chans[idx].receive_rule = false;
                out.push(s);
            }
        }
        if let Some(aud) = &self.auditor {
            if aud.arms.len() > 1 {
                for k in 0..aud.arms.len() {
                    let mut s = self.clone();
                    s.auditor.as_mut().expect("cloned auditor").arms.remove(k);
                    out.push(s);
                }
            }
            if aud.delete_rule {
                let mut s = self.clone();
                s.auditor.as_mut().expect("cloned auditor").delete_rule = false;
                out.push(s);
            }
        }
        for k in 0..self.db_rows.len() {
            let mut s = self.clone();
            s.db_rows.remove(k);
            out.push(s);
        }
        if self.queue_bound > 1 {
            let mut s = self.clone();
            s.queue_bound = 1;
            out.push(s);
        }
        out
    }
}

impl fmt::Display for CaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "queue_bound: {}", self.queue_bound)?;
        writeln!(
            f,
            "relays: [{}]",
            self.relays
                .iter()
                .map(|i| format!("W{i}"))
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        for c in &self.chans {
            if !self.chan_live(c) {
                continue;
            }
            writeln!(
                f,
                "channel c{}: W{} -> W{} (arity {}, send_rule: {}, receive_rule: {})",
                c.index, c.sender, c.receiver, c.arity, c.send_rule, c.receive_rule
            )?;
        }
        match &self.auditor {
            None => writeln!(f, "auditor: none")?,
            Some(a) => writeln!(
                f,
                "auditor: ring {} (arms {:?}, delete_rule: {})",
                a.ring, a.arms, a.delete_rule
            )?,
        }
        let rows: Vec<String> = self
            .db_rows
            .iter()
            .filter(|(r, _)| self.relays.contains(r))
            .map(|(r, v)| format!("W{r}.d(\"{v}\")"))
            .collect();
        writeln!(f, "database: [{}]", rows.join(", "))?;
        write!(f, "property: {}", self.property)
    }
}

/// Draws the structured form of one random case. Consumes **exactly** the
/// RNG draws [`case`] consumes, in the same order — pinned sub-seeds from
/// swarm failures replay the identical case through either entry point.
pub fn spec(rng: &mut XorShift) -> CaseSpec {
    let with_auditor = rng.bool();
    let relays = if with_auditor { 2 } else { 2 + rng.range(0, 2) };
    let queue_bound = 1 + rng.range(0, 2);

    // Channels among the relay peers; the first is always arity 1 so the
    // property templates below can target it.
    let nchan = 1 + rng.range(0, 2);
    let mut chans: Vec<ChanSpec> = Vec::new();
    for j in 0..nchan {
        let s = rng.range(0, relays);
        let mut r = rng.range(0, relays);
        if r == s {
            r = (s + 1) % relays;
        }
        let arity = if j == 0 { 1 } else { 1 + rng.range(0, 2) };
        chans.push(ChanSpec {
            index: j,
            arity,
            sender: s,
            receiver: r,
            send_rule: true,
            receive_rule: true,
        });
    }

    let auditor = if with_auditor {
        // Deterministic ring rotation over `ring` phase constants —
        // quantifier-free, so input-bounded; channel-free, so statically
        // independent of every relay peer.
        let ring = 2 + rng.range(0, 2);
        Some(AuditorSpec {
            ring,
            arms: (0..=ring).collect(),
            delete_rule: true,
        })
    } else {
        None
    };

    // A small fixed database: each relay peer's `d` holds a (possibly
    // empty) subset of two constants.
    let mut db_rows: Vec<(usize, &'static str)> = Vec::new();
    for i in 0..relays {
        for name in ["a", "b"] {
            if rng.bool() {
                db_rows.push((i, name));
            }
        }
    }

    // Property templates over the first (arity-1) channel.
    let c = format!("c{}", chans[0].index);
    let s = format!("W{}", chans[0].sender);
    let r = format!("W{}", chans[0].receiver);
    let property = match rng.range(0, 6) {
        0 => format!("G (forall x: {r}.?{c}(x) -> {s}.d(x))"),
        1 => format!("G (forall x: {r}.?{c}(x) -> false)"),
        2 => format!("F (exists x: {s}.pick(x))"),
        3 => format!("G (forall x: {s}.pick(x) -> {s}.d(x))"),
        // `X` breaks stutter-invariance: the reduction must gate itself off
        // and still agree.
        4 => format!("forall x: G ({r}.seen0(x) -> X {r}.seen0(x))"),
        _ => format!("(forall x: {r}.?{c}(x) -> false) U (exists x: {s}.pick(x))"),
    };

    CaseSpec {
        queue_bound,
        relays: (0..relays).collect(),
        chans,
        auditor,
        db_rows,
        property,
    }
}

/// Draws one random case.
pub fn case(rng: &mut XorShift) -> Case {
    spec(rng)
        .build()
        .expect("generated composition is well-formed")
}

/// Greedy delta-debugging: repeatedly tries the one-step cuts of
/// [`CaseSpec::candidates`] and keeps a cut iff the spec still builds and
/// `failing` still holds on the rebuilt case, restarting from the smaller
/// spec until no cut survives. The result is 1-minimal with respect to the
/// cut set.
///
/// `failing` is typically `|case| catch_unwind(|| check(case)).is_err()` —
/// install a quiet panic hook around the call to keep the shrink loop's
/// expected panics out of the test output.
pub fn minimize(spec: &CaseSpec, mut failing: impl FnMut(&Case) -> bool) -> CaseSpec {
    minimize_spec(spec, |cand| {
        failing(
            &cand
                .build()
                .expect("minimize_spec offers only buildable candidates"),
        )
    })
}

/// Spec-level [`minimize`]: the predicate sees the shrunk [`CaseSpec`]
/// itself instead of the built case — for harnesses that must ship the
/// spec somewhere (e.g. resubmit it over the service wire) rather than
/// check a case in-process. Only candidates that build are offered.
pub fn minimize_spec(spec: &CaseSpec, mut failing: impl FnMut(&CaseSpec) -> bool) -> CaseSpec {
    let mut current = spec.clone();
    'outer: loop {
        for cand in current.candidates() {
            debug_assert!(cand.size() < current.size(), "cuts must shrink the spec");
            if cand.build().is_ok() && failing(&cand) {
                current = cand;
                continue 'outer;
            }
        }
        return current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddws_logic::input_bounded::IbOptions;

    #[test]
    fn generated_cases_build_and_are_input_bounded() {
        crate::gen::cases(64, crate::seed_from("compgen_validity"), |rng| {
            let case = case(rng);
            case.composition
                .check_input_bounded(IbOptions::default())
                .expect("generated composition is input-bounded");
            assert!(!case.property.is_empty());
        });
    }

    #[test]
    fn spec_consumes_the_same_rng_stream_as_case() {
        crate::gen::cases(64, crate::seed_from("compgen_spec_alignment"), |rng| {
            let seed = rng.next_u64() | 1;
            let mut a = XorShift::new(seed);
            let mut b = XorShift::new(seed);
            let sp = spec(&mut a);
            let built = sp.build().expect("spec builds");
            let drawn = case(&mut b);
            assert_eq!(built.property, drawn.property);
            // Same number of draws consumed → the streams stay aligned.
            assert_eq!(a.next_u64(), b.next_u64());
        });
    }

    #[test]
    fn minimize_reaches_a_small_fixpoint() {
        // A seed whose spec carries an auditor; the predicate only needs
        // the auditor's phase state, so everything else must be cut.
        let mut seed = 1u64;
        let sp = loop {
            let mut rng = XorShift::new(seed);
            let sp = spec(&mut rng);
            if sp.auditor.is_some() && sp.size() > 6 {
                break sp;
            }
            seed += 1;
        };
        let min = minimize(&sp, |case| {
            case.composition.voc.lookup("Aud.phase").is_some()
        });
        assert!(min.size() < sp.size(), "minimizer made no progress");
        let aud = min.auditor.as_ref().expect("predicate pins the auditor");
        assert_eq!(aud.arms.len(), 1, "arms shrink to the floor");
        assert!(!aud.delete_rule);
        assert!(min.build().is_ok(), "the minimized spec still materializes");
        // Re-minimizing is a no-op: the result is a fixpoint.
        let again = minimize(&min, |case| {
            case.composition.voc.lookup("Aud.phase").is_some()
        });
        assert_eq!(again.size(), min.size());
    }
}
