//! The native case-generator API: seeded, shrink-free, loop-shaped.
//!
//! ```
//! use ddws_testkit::{gen, rng::XorShift, seed_from};
//!
//! gen::cases(32, seed_from("doubling_is_even"), |rng| {
//!     let n = rng.range(0, 1000) as u64;
//!     assert_eq!((n * 2) % 2, 0);
//! });
//! ```
//!
//! On a panic the harness reports the case index and the exact sub-seed of
//! the failing case before propagating; feed that value to
//! [`XorShift::new`] directly to replay it (wrapping it in `cases(1, …)`
//! would derive a *different* sub-seed). There is no shrinking: keep
//! generators small enough that a raw failing case is readable.

use crate::rng::XorShift;

/// Runs `n` generated cases of `body`, each with its own deterministic
/// sub-seed derived from `seed`.
pub fn cases<F: FnMut(&mut XorShift)>(n: usize, seed: u64, mut body: F) {
    for case in 0..n {
        // SplitMix-style stream split: decorrelates consecutive cases.
        let sub = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1)) | 1;
        let mut rng = XorShift::new(sub);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("testkit: case {case}/{n} failed; replay with XorShift::new({sub:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// A random vector of `len ∈ [min_len, max_len]` elements drawn by `item`.
pub fn vec_of<T>(
    rng: &mut XorShift,
    min_len: usize,
    max_len: usize,
    mut item: impl FnMut(&mut XorShift) -> T,
) -> Vec<T> {
    let len = rng.range(min_len, max_len + 1);
    (0..len).map(|_| item(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_run_the_requested_count() {
        let mut count = 0;
        cases(17, 1, |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut a = Vec::new();
        cases(5, 99, |rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        cases(5, 99, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
    }

    #[test]
    fn vec_of_respects_bounds() {
        cases(50, 3, |rng| {
            let v = vec_of(rng, 2, 5, |r| r.bool());
            assert!((2..=5).contains(&v.len()));
        });
    }
}
