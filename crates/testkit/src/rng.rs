//! The xorshift64\* PRNG: 8 bytes of state, full 2^64−1 period, and good
//! enough equidistribution for test-case generation (Vigna 2016). Not a
//! cryptographic generator.

/// A seeded xorshift64\* generator.
#[derive(Clone, Debug)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator; a zero seed (the xorshift fixed point) is
    /// remapped to a fixed non-zero constant.
    pub fn new(seed: u64) -> Self {
        XorShift {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform value in `[0, n)`; `n` must be non-zero.
    ///
    /// Uses the high bits via 128-bit multiply (Lemire), which avoids the
    /// modulo bias that matters when `n` is large.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform `usize` in `[lo, hi)`; the range must be non-empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = XorShift::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn range_is_inclusive_exclusive() {
        let mut r = XorShift::new(9);
        for _ in 0..100 {
            let v = r.range(3, 6);
            assert!((3..6).contains(&v));
        }
    }
}
