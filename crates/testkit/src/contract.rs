//! The reusable robustness/report contract (feature `contract`).
//!
//! One home for the assertions that were previously copy-pasted between
//! `tests/faults.rs`, `tests/telemetry_invariants.rs`, and the root
//! test harness — and that the deterministic simulator re-checks on
//! every time slice:
//!
//! * [`report_contract`] — exactly one schema-valid, round-trippable
//!   [`RunReport`] per entry-point call, with coherent merged counters
//!   (`Result`-returning, so the simulator can *collect* violations
//!   instead of panicking mid-run);
//! * [`assert_labelled`] — the panicking wrapper the invariant suites
//!   use, additionally pinning the entry point and outcome label;
//! * [`assert_fault_contract`] — the full fault-injection contract of
//!   DESIGN.md §3.10 (termination, typed panics, abort labelling,
//!   checkpoint resumability, resume-to-baseline agreement);
//! * [`silence_injected_panics`] — the process-wide hook that keeps
//!   injected-fault noise out of test output.
//!
//! This module lives in the testkit rather than `tests/common` so every
//! test binary *and* the `ddws-sim` crate share one definition. The
//! dependency on `ddws-verifier` is feature-gated and cycle-safe: the
//! verifier only ever depends on the testkit through dev-dependencies.

use crate::rng::XorShift;
use crate::{compgen, faults};
use ddws_telemetry::{validate_run_report, Json, RunReport, SCHEMA_NAME, SCHEMA_VERSION};
use ddws_verifier::{
    DatabaseMode, Outcome, Reduction, ReporterHandle, Verifier, VerifyError, VerifyOptions,
};
use std::sync::Arc;
use std::time::Duration;

/// State budget for swarm cases: generous for the tiny generated
/// compositions, so budget exhaustion stays the exception.
pub const SWARM_BUDGET: u64 = 30_000;

/// Installs a process-wide panic hook that swallows the testkit's
/// *injected* panics (fault-swarm noise) and delegates every other panic
/// to the previously installed hook. Installed once per process.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains(faults::INJECTED_PANIC) {
                prev(info);
            }
        }));
    });
}

/// The report-emission contract every entry-point call must satisfy,
/// whatever happened inside: **exactly one** final [`RunReport`], valid
/// against the published schema, surviving a canonical-JSON round trip,
/// with coherent merged rule counters. Returns the report on success so
/// callers can pile on run-specific assertions; returns a description of
/// the first violation otherwise (the simulator records these instead of
/// panicking).
pub fn report_contract<'a>(reports: &'a [RunReport], label: &str) -> Result<&'a RunReport, String> {
    if reports.len() != 1 {
        return Err(format!(
            "{label}: expected exactly one final report, got {}",
            reports.len()
        ));
    }
    let r = &reports[0];
    let json = Json::parse(&r.to_json()).map_err(|e| format!("{label}: canonical JSON: {e}"))?;
    validate_run_report(&json).map_err(|e| format!("{label}: schema violation: {e}"))?;
    if json.get("schema").and_then(Json::as_str) != Some(SCHEMA_NAME) {
        return Err(format!("{label}: wrong schema name"));
    }
    if json.get("version").and_then(Json::as_u64) != Some(SCHEMA_VERSION) {
        return Err(format!("{label}: wrong schema version"));
    }
    match RunReport::from_json(&r.to_json()) {
        Ok(rt) if rt == *r => {}
        Ok(_) => return Err(format!("{label}: JSON round-trip lost information")),
        Err(e) => return Err(format!("{label}: round-trip parse failed: {e}")),
    }
    if r.counters.rule_cache_hits + r.counters.rule_cache_misses != r.counters.rule_evals {
        return Err(format!("{label}: merged rule counters are incoherent"));
    }
    Ok(r)
}

/// [`report_contract`] plus entry-point and outcome-label pinning, as a
/// panicking assertion (the form the invariant suites use).
pub fn assert_labelled(reports: Vec<RunReport>, entry: &str, outcome: &str) -> RunReport {
    let r = report_contract(&reports, entry).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(r.entry_point, entry, "{entry}: entry point mislabelled");
    assert_eq!(r.outcome, outcome, "{entry}: unexpected outcome label");
    reports.into_iter().next().unwrap()
}

/// The swarm options every fault-contract run starts from.
pub fn fault_opts(
    case: &compgen::Case,
    threads: Option<usize>,
    reduction: Reduction,
) -> VerifyOptions {
    VerifyOptions {
        database: DatabaseMode::Fixed(case.database.clone()),
        fresh_values: Some(1),
        max_states: SWARM_BUDGET,
        threads,
        reduction,
        ..VerifyOptions::default()
    }
}

/// Draws one case, one fault plan, and one engine/reduction point, then
/// asserts the robustness contract ([`assert_fault_contract`]). Everything
/// is derived from `rng`, so a printed sub-seed replays the full triple.
pub fn assert_fault_case(rng: &mut XorShift) {
    let case = compgen::case(rng);
    let plan = faults::FaultPlan::draw(rng, 48);
    let threads = [None, Some(1), Some(2), Some(4)][rng.below(4) as usize];
    let reduction = if rng.bool() {
        Reduction::Ample
    } else {
        Reduction::Full
    };
    assert_fault_contract(&case, &plan, threads, reduction);
}

/// The robustness contract for one armed fault (DESIGN.md §3.10):
///
/// * the run terminates (no deadlock) and never kills the process;
/// * the reporter receives **exactly one** schema-valid [`RunReport`]
///   whose merged counters stay coherent;
/// * an injected panic surfaces as `VerifyError::WorkerPanicked` carrying
///   the injected payload and the same report the reporter saw;
/// * a cancellation / deadline / budget stop is an `Ok` report with an
///   `Inconclusive` outcome labelled for its reason — never a fabricated
///   verdict;
/// * resuming a captured checkpoint *without* the fault reaches the same
///   verdict as an unfaulted baseline run (when both are conclusive).
///
/// A fault is a *trigger*, not a guarantee: a search that finishes before
/// the trigger ordinal (or before the next cancellation stride check)
/// legitimately returns its ordinary verdict, which must then agree with
/// the baseline.
pub fn assert_fault_contract(
    case: &compgen::Case,
    plan: &faults::FaultPlan,
    threads: Option<usize>,
    reduction: Reduction,
) {
    let label = format!(
        "threads={threads:?} reduction={reduction:?} plan={plan:?} `{}`",
        case.property
    );

    // Unfaulted baseline verdict (`None` when the state budget trips).
    let baseline = {
        let mut v = Verifier::new(case.composition.clone());
        let report = v
            .check_str(&case.property, &fault_opts(case, threads, reduction))
            .unwrap_or_else(|e| panic!("{label}: baseline run failed: {e}"));
        match report.outcome {
            Outcome::Holds => Some(true),
            Outcome::Violated(_) => Some(false),
            Outcome::Inconclusive(_) => None,
        }
    };

    // The armed run.
    let buf = Arc::new(ddws_verifier::BufferReporter::new());
    let armed = plan.arm();
    let mut v = Verifier::new(case.composition.clone());
    let mut opts = fault_opts(case, threads, reduction);
    opts.reporter = ReporterHandle::new(buf.clone());
    opts.fault_hook = armed.hook;
    opts.cancel_token = armed.token;
    if armed.deadline_now {
        opts.deadline = Some(Duration::ZERO);
    }
    let result = v.check_str(&case.property, &opts);

    // Exactly one schema-valid report, whatever happened.
    let reports = buf.take_reports();
    let r = report_contract(&reports, &label).unwrap_or_else(|e| panic!("{e}"));

    match result {
        Err(VerifyError::WorkerPanicked {
            payload, report, ..
        }) => {
            assert!(
                matches!(plan, faults::FaultPlan::Panic(_)),
                "{label}: unplanned worker panic: {payload}"
            );
            assert!(
                payload.contains(faults::INJECTED_PANIC),
                "{label}: foreign panic payload: {payload}"
            );
            assert_eq!(
                &*report, r,
                "{label}: attached report differs from the emitted one"
            );
            assert_eq!(r.outcome, "worker_panicked", "{label}");
            assert!(r.counters.truncated, "{label}: stats not flagged truncated");
            let abort = r
                .abort
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: abort object missing"));
            assert!(
                !abort.resumable,
                "{label}: panic aborts must not claim resumability"
            );
        }
        Err(e) => panic!("{label}: unexpected error: {e}"),
        Ok(report) => match report.outcome {
            Outcome::Holds => {
                assert!(
                    r.abort.is_none(),
                    "{label}: conclusive run carries an abort object"
                );
                if let Some(b) = baseline {
                    assert!(b, "{label}: faulted run holds, baseline violated");
                }
            }
            Outcome::Violated(_) => {
                assert!(
                    r.abort.is_none(),
                    "{label}: conclusive run carries an abort object"
                );
                if let Some(b) = baseline {
                    assert!(!b, "{label}: faulted run violated, baseline holds");
                }
            }
            Outcome::Inconclusive(inc) => {
                assert_eq!(
                    inc.reason.label(),
                    r.outcome,
                    "{label}: report label diverges from the abort reason"
                );
                assert!(
                    r.outcome == plan.outcome_label() || r.outcome == "budget_exceeded",
                    "{label}: unexpected abort label {}",
                    r.outcome
                );
                assert!(
                    r.counters.truncated,
                    "{label}: abort counters not flagged truncated"
                );
                let abort = r
                    .abort
                    .as_ref()
                    .unwrap_or_else(|| panic!("{label}: abort object missing"));
                assert_eq!(
                    abort.resumable,
                    inc.checkpoint.is_some(),
                    "{label}: resumability flag diverges from the checkpoint"
                );
                // Resume without the fault: must agree with the baseline.
                if let Some(cp) = inc.checkpoint {
                    let resumed = v
                        .resume(cp, &fault_opts(case, threads, reduction))
                        .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
                    match (&resumed.outcome, baseline) {
                        (Outcome::Holds, Some(b)) => {
                            assert!(b, "{label}: resume holds, baseline violated")
                        }
                        (Outcome::Violated(_), Some(b)) => {
                            assert!(!b, "{label}: resume violated, baseline holds")
                        }
                        // The budget tripping (in either leg) leaves no
                        // verdict to compare.
                        _ => {}
                    }
                }
            }
        },
    }
}
