//! A shrink-free, offline shim for the slice of the `proptest` API used by
//! this workspace's `tests/prop.rs` suites.
//!
//! The real `proptest` crate cannot be a dependency here — builds run with
//! no network access — so this module re-implements the surface those
//! suites actually touch: the [`Strategy`] trait with `prop_map`,
//! `prop_recursive` and `boxed`, integer-range / tuple / [`Just`] /
//! [`collection::vec`] strategies, the [`proptest!`](crate::proptest!),
//! [`prop_oneof!`](crate::prop_oneof!), [`prop_assert!`](crate::prop_assert!)
//! and [`prop_assert_eq!`](crate::prop_assert_eq!) macros, and the
//! [`ProptestConfig`] / [`TestCaseError`] types.
//!
//! Semantics differ from the original in two deliberate ways:
//!
//! * **no shrinking** — a failing case is reported whole, with the seed
//!   that replays it;
//! * **deterministic case streams** — each test's cases derive from the
//!   test's `module_path!::name`, not from OS entropy, so CI failures
//!   reproduce locally without a seed file.
//!
//! A suite opts in with one import line:
//!
//! ```ignore
//! use ddws_testkit::proptest::{self, prelude::*};
//! ```
//!
//! which binds both the `proptest` *module* (for `proptest::collection::…`
//! paths) and the `proptest!` *macro* (via the prelude glob).

use crate::rng::XorShift;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Run-loop configuration: how many cases each test executes.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case, carrying its message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }

    /// A rejection; the shim treats rejections as failures (the suites it
    /// serves never reject).
    pub fn reject(msg: impl std::fmt::Display) -> Self {
        TestCaseError(format!("rejected: {msg}"))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator. The shim's strategies *are* their generators: no
/// value tree, no shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut XorShift) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `depth` rounds of `recurse` stacked on
    /// top of `self` as the leaf, mixing in leaves at every level so
    /// expected sizes stay bounded. `_desired_size` and `_expected_branch`
    /// exist for signature compatibility and are ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> BoxedStrategy<T> {
    /// Already boxed: the identity (kept so `.boxed()` chains uniformly).
    pub fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut XorShift) -> T {
        self.0.generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut XorShift) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut XorShift) -> T {
        self.0.clone()
    }
}

/// A uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; `choices` must be non-empty.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut XorShift) -> T {
        let i = rng.range(0, self.choices.len());
        self.choices[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut XorShift) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut XorShift) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                // `span + 1` cannot overflow in practice: test ranges are
                // far from the full u64 line.
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut XorShift) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! { (A, B) (A, B, C) (A, B, C, D) }

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// That canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds it.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy of `T` (only `bool` is needed by the suites).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// [`any::<bool>()`](any)'s strategy.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut XorShift) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// A size specification for [`collection::vec`]: an exact length, `a..b`,
/// or `a..=b`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use crate::rng::XorShift;

    /// A vector of `size`-many draws from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut XorShift) -> Vec<S::Value> {
            let len = rng.range(self.size.min, self.size.max_inclusive + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// The test-harness macro: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
///
/// Bodies may use `?` on `Result<_, TestCaseError>` and `prop_assert!`-style
/// macros, exactly as under the real `proptest`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::proptest::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::proptest::ProptestConfig = $cfg;
                let __seed = $crate::seed_from(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let __sub = __seed
                        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(__case) + 1))
                        | 1;
                    let mut __rng = $crate::rng::XorShift::new(__sub);
                    $(let $pat = $crate::proptest::Strategy::generate(&($strat), &mut __rng);)+
                    let mut __run = || -> ::core::result::Result<(), $crate::proptest::TestCaseError> {
                        let _ = $body;
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(__e) = __run() {
                        ::core::panic!(
                            "{} (case {}/{}, seed {:#x}): {}",
                            stringify!($name), __case, __config.cases, __sub, __e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the *case* (returns `Err(TestCaseError)`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::proptest::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the *case* (returns `Err(TestCaseError)`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::proptest::TestCaseError::fail(
                ::std::format!("assertion failed: `{:?} == {:?}`", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::proptest::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?} == {:?}`: {}",
                    __a, __b, ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::proptest::Union::new(::std::vec![
            $($crate::proptest::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{self as proptest};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Ranges generate in-bounds; vec respects its size range.
        #[test]
        fn range_and_vec_bounds(
            x in 3u32..9,
            v in proptest::collection::vec(0usize..5, 2..6),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..=5).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 5));
            let _ = flag;
        }

        /// prop_oneof + prop_map + Just compose; tuple patterns bind.
        #[test]
        fn combinators_compose(
            (a, b) in (0u32..4, Just(7u32)),
            tagged in prop_oneof![
                (0u32..3).prop_map(|i| ("small", i)),
                Just(("seven", 7u32)),
            ],
        ) {
            prop_assert!(a < 4);
            prop_assert_eq!(b, 7);
            prop_assert!(tagged.0 == "small" || tagged.0 == "seven");
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(ts) => 1 + ts.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(60))]

        /// prop_recursive respects the depth bound.
        #[test]
        fn recursive_depth_is_bounded(
            t in (0u32..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
                proptest::collection::vec(inner, 1..3).prop_map(Tree::Node)
            })
        ) {
            prop_assert!(depth(&t) <= 3, "depth {} of {:?}", depth(&t), t);
        }
    }

    /// The same test name draws the same case stream (determinism), and
    /// `TestCaseError` formatting carries the message.
    #[test]
    fn deterministic_and_error_display() {
        let strat = (0u32..100, 0u32..100);
        let mut r1 = crate::rng::XorShift::new(5);
        let mut r2 = crate::rng::XorShift::new(5);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        let e = TestCaseError::fail("boom");
        assert_eq!(e.to_string(), "boom");
        assert!(TestCaseError::reject("r").to_string().contains("rejected"));
    }
}
