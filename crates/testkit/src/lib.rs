//! # `ddws-testkit` — deterministic, dependency-free test support
//!
//! The workspace builds and tests with **no network access**, so the usual
//! randomized-testing stack (`proptest`, `rand`) is off the table. This
//! crate replaces it with two layers, both std-only:
//!
//! * [`rng`] + [`gen`] — a seeded xorshift64\* PRNG and a tiny, shrink-free
//!   case-generator API ([`gen::cases`]) for writing new randomized tests;
//! * [`proptest`] — a drop-in shim covering the slice of the `proptest` API
//!   the existing `tests/prop.rs` suites use (`proptest!`, strategies with
//!   `prop_map`/`prop_recursive`/`prop_oneof!`, `prop_assert!`…), so those
//!   suites keep running offline, behind each crate's `proptest` feature;
//! * [`compgen`] (feature `compgen`, pulls in `ddws-model`) — random small
//!   compositions and input-bounded properties for differential swarm
//!   tests (e.g. `Reduction::Ample` vs `Reduction::Full`);
//! * [`faults`] — seeded deterministic fault plans (panic-at-Nth-expansion,
//!   cancel-at-Nth, deadline-now) for driving the engines' abort paths;
//! * [`contract`] (feature `contract`, pulls in `ddws-verifier`) — the
//!   shared robustness/report contract assertions used by the fault
//!   swarm, the telemetry invariant suite, and the deterministic
//!   simulator.
//!
//! Everything is deterministic: a test's case stream is derived from the
//! test's name (via [`seed_from`]), so failures reproduce without recording
//! seeds, at the price of shrink-free (the failing case prints whole).

#![warn(missing_docs)]

#[cfg(feature = "compgen")]
pub mod compgen;
#[cfg(feature = "contract")]
pub mod contract;
pub mod faults;
pub mod gen;
pub mod proptest;
pub mod rng;

/// Derives a stable 64-bit seed from a test name (FNV-1a).
///
/// Used by the [`proptest!`] shim and by [`gen::cases`] callers that want a
/// per-test stream without inventing seed constants.
pub fn seed_from(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Avoid the all-zero xorshift fixed point for any input.
    h | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_from("a"), seed_from("a"));
        assert_ne!(seed_from("a"), seed_from("b"));
        assert_ne!(seed_from(""), 0);
    }
}
