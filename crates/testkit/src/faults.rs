//! Deterministic fault injection for the search engines.
//!
//! A [`FaultPlan`] is one seeded, reproducible fault: panic at the Nth
//! state expansion, cancel at the Nth expansion, or start with an
//! already-expired deadline. [`FaultPlan::arm`] turns the plan into the
//! run-control ingredients a verifier options struct accepts — a
//! [`FaultHook`] that fires on the engines' global expansion ordinal
//! and/or a pre-wired [`CancelToken`] — so a swarm test can drive the
//! *production* abort paths (no test-only engine forks) and assert the
//! robustness contract per fault: no deadlock, no process abort, exactly
//! one valid run report, coherent merged statistics, and
//! resume-after-fault agreeing with the unfaulted verdict.
//!
//! Plans are drawn from a seeded [`XorShift`], so a failing fault case is
//! pinned by its seed alone.

use crate::rng::XorShift;
use ddws_telemetry::{CancelToken, FaultHook};
use std::sync::Arc;

/// The panic message every injected panic carries, so harnesses can tell
/// injected faults from genuine engine bugs.
pub const INJECTED_PANIC: &str = "testkit: injected fault";

/// One deterministic fault. Expansion ordinals are 1-based and global
/// across workers (the engines' fault hook contract), so a plan fires at
/// the same logical point for every engine and thread count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Panic inside the transition-system expansion at the given ordinal.
    Panic(u64),
    /// Cancel the run's token at the given expansion ordinal.
    Cancel(u64),
    /// Start the run with an already-expired deadline.
    DeadlineNow,
}

/// A [`FaultPlan`] turned into run-control ingredients. Wire `hook` into
/// the options' fault hook, `token` into its cancel token, and set the
/// deadline to zero when `deadline_now` is set.
pub struct ArmedFault {
    /// The expansion-ordinal hook (`None` for [`FaultPlan::DeadlineNow`]).
    pub hook: Option<FaultHook>,
    /// The token the hook cancels (`Some` only for [`FaultPlan::Cancel`]).
    pub token: Option<CancelToken>,
    /// Whether the run should start with an expired deadline.
    pub deadline_now: bool,
}

impl FaultPlan {
    /// Draws one plan: the fault kind uniformly, the trigger ordinal
    /// uniformly in `[1, max_tick]`.
    pub fn draw(rng: &mut XorShift, max_tick: u64) -> FaultPlan {
        let tick = 1 + rng.below(max_tick.max(1));
        match rng.below(3) {
            0 => FaultPlan::Panic(tick),
            1 => FaultPlan::Cancel(tick),
            _ => FaultPlan::DeadlineNow,
        }
    }

    /// Arms the plan. Each call builds fresh state, so one plan can be
    /// armed once per engine under test.
    pub fn arm(&self) -> ArmedFault {
        match self {
            FaultPlan::Panic(n) => {
                let n = *n;
                ArmedFault {
                    hook: Some(Arc::new(move |tick| {
                        if tick == n {
                            panic!("{INJECTED_PANIC} (panic at expansion {n})");
                        }
                    })),
                    token: None,
                    deadline_now: false,
                }
            }
            FaultPlan::Cancel(n) => {
                let n = *n;
                let token = CancelToken::new();
                let hook_token = token.clone();
                ArmedFault {
                    hook: Some(Arc::new(move |tick| {
                        if tick == n {
                            hook_token.cancel(format!("injected cancel at expansion {n}"));
                        }
                    })),
                    token: Some(token),
                    deadline_now: false,
                }
            }
            FaultPlan::DeadlineNow => ArmedFault {
                hook: None,
                token: None,
                deadline_now: true,
            },
        }
    }

    /// The run-report outcome label this fault produces **if it fires**
    /// (a search that finishes before the trigger ordinal reaches its
    /// ordinary verdict instead).
    pub fn outcome_label(&self) -> &'static str {
        match self {
            FaultPlan::Panic(_) => "worker_panicked",
            FaultPlan::Cancel(_) => "cancelled",
            FaultPlan::DeadlineNow => "deadline_exceeded",
        }
    }
}

/// One wire-level frame perturbation, drawn per request frame. The
/// service chaos harness applies these on the client→server path:
/// requests can vanish, arrive twice, arrive late behind the next frame,
/// or arrive corrupted; acks can vanish after the server already acted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// Deliver the frame untouched.
    Deliver,
    /// Drop the request — the server never sees it.
    DropRequest,
    /// Deliver the request, then drop the response (a lost ack: the
    /// server acted, the client must retry idempotently).
    DropResponse,
    /// Deliver the frame twice back to back.
    Duplicate,
    /// Hold the frame and deliver it after the next frame (reordering;
    /// the displaced delivery's response is discarded).
    Delay,
    /// Flip bit `bit` of byte `offset % len` before delivery; the
    /// receiver must answer with a typed decode error, never panic.
    Corrupt {
        /// Byte position, reduced modulo the frame length.
        offset: u64,
        /// Bit index within the byte, `0..8`.
        bit: u8,
    },
}

/// Per-frame chaos odds, each a 1-in-N draw (0 disables that class).
/// Drawn faults are mutually exclusive per frame, tested in the order
/// corrupt → drop → duplicate → delay, so the profile's classes stay
/// individually tunable without compounding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameChaos {
    /// 1-in-N odds a frame is corrupted.
    pub corrupt_in: u64,
    /// 1-in-N odds a frame (or its response) is dropped.
    pub drop_in: u64,
    /// 1-in-N odds a frame is duplicated.
    pub dup_in: u64,
    /// 1-in-N odds a frame is delayed behind its successor.
    pub reorder_in: u64,
}

impl FrameChaos {
    /// No chaos: every draw answers [`FrameFault::Deliver`].
    pub const OFF: FrameChaos = FrameChaos {
        corrupt_in: 0,
        drop_in: 0,
        dup_in: 0,
        reorder_in: 0,
    };

    /// Draws the fault for one frame.
    pub fn draw(&self, rng: &mut XorShift) -> FrameFault {
        if self.corrupt_in > 0 && rng.chance(1, self.corrupt_in) {
            return FrameFault::Corrupt {
                offset: rng.next_u64(),
                bit: rng.below(8) as u8,
            };
        }
        if self.drop_in > 0 && rng.chance(1, self.drop_in) {
            return if rng.bool() {
                FrameFault::DropRequest
            } else {
                FrameFault::DropResponse
            };
        }
        if self.dup_in > 0 && rng.chance(1, self.dup_in) {
            return FrameFault::Duplicate;
        }
        if self.reorder_in > 0 && rng.chance(1, self.reorder_in) {
            return FrameFault::Delay;
        }
        FrameFault::Deliver
    }
}

/// Applies a [`FrameFault::Corrupt`] to a frame in place: flips bit
/// `bit % 8` of byte `offset % frame.len()`. Corrupting the length
/// header is fair game — the decoder must reject that with a typed
/// error too. No-op on an empty frame.
pub fn corrupt_frame(frame: &mut [u8], offset: u64, bit: u8) {
    if frame.is_empty() {
        return;
    }
    let idx = (offset % frame.len() as u64) as usize;
    frame[idx] ^= 1 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_deterministic_and_covers_all_kinds() {
        let plans: Vec<FaultPlan> = {
            let mut rng = XorShift::new(11);
            (0..60).map(|_| FaultPlan::draw(&mut rng, 20)).collect()
        };
        let replay: Vec<FaultPlan> = {
            let mut rng = XorShift::new(11);
            (0..60).map(|_| FaultPlan::draw(&mut rng, 20)).collect()
        };
        assert_eq!(plans, replay);
        assert!(plans.iter().any(|p| matches!(p, FaultPlan::Panic(_))));
        assert!(plans.iter().any(|p| matches!(p, FaultPlan::Cancel(_))));
        assert!(plans.iter().any(|p| matches!(p, FaultPlan::DeadlineNow)));
        for p in &plans {
            if let FaultPlan::Panic(n) | FaultPlan::Cancel(n) = p {
                assert!((1..=20).contains(n), "{p:?}");
            }
        }
    }

    #[test]
    fn armed_cancel_trips_its_token_at_the_ordinal() {
        let armed = FaultPlan::Cancel(3).arm();
        let hook = armed.hook.unwrap();
        let token = armed.token.unwrap();
        hook(1);
        hook(2);
        assert!(!token.is_cancelled());
        hook(3);
        assert!(token.is_cancelled());
        assert_eq!(token.reason().unwrap(), "injected cancel at expansion 3");
    }

    #[test]
    fn frame_chaos_draws_replay_and_respect_disabled_classes() {
        let profile = FrameChaos {
            corrupt_in: 4,
            drop_in: 4,
            dup_in: 4,
            reorder_in: 4,
        };
        let draws: Vec<FrameFault> = {
            let mut rng = XorShift::new(7);
            (0..200).map(|_| profile.draw(&mut rng)).collect()
        };
        let replay: Vec<FrameFault> = {
            let mut rng = XorShift::new(7);
            (0..200).map(|_| profile.draw(&mut rng)).collect()
        };
        assert_eq!(draws, replay);
        assert!(draws
            .iter()
            .any(|f| matches!(f, FrameFault::Corrupt { .. })));
        assert!(draws.iter().any(|f| matches!(f, FrameFault::DropRequest)));
        assert!(draws.iter().any(|f| matches!(f, FrameFault::DropResponse)));
        assert!(draws.iter().any(|f| matches!(f, FrameFault::Duplicate)));
        assert!(draws.iter().any(|f| matches!(f, FrameFault::Delay)));
        let mut rng = XorShift::new(9);
        for _ in 0..100 {
            assert_eq!(FrameChaos::OFF.draw(&mut rng), FrameFault::Deliver);
        }
    }

    #[test]
    fn corrupt_frame_flips_exactly_one_bit() {
        let mut frame = vec![0u8; 16];
        corrupt_frame(&mut frame, 21, 3);
        let ones: u32 = frame.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(frame[21 % 16], 1 << 3);
        corrupt_frame(&mut frame, 21, 3);
        assert!(frame.iter().all(|&b| b == 0));
        let mut empty: [u8; 0] = [];
        corrupt_frame(&mut empty, 5, 1);
    }

    #[test]
    fn armed_panic_fires_only_at_the_ordinal() {
        let armed = FaultPlan::Panic(2).arm();
        let hook = armed.hook.unwrap();
        hook(1);
        hook(3);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook(2))).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains(INJECTED_PANIC));
    }
}
