//! Deterministic fault injection for the search engines.
//!
//! A [`FaultPlan`] is one seeded, reproducible fault: panic at the Nth
//! state expansion, cancel at the Nth expansion, or start with an
//! already-expired deadline. [`FaultPlan::arm`] turns the plan into the
//! run-control ingredients a verifier options struct accepts — a
//! [`FaultHook`] that fires on the engines' global expansion ordinal
//! and/or a pre-wired [`CancelToken`] — so a swarm test can drive the
//! *production* abort paths (no test-only engine forks) and assert the
//! robustness contract per fault: no deadlock, no process abort, exactly
//! one valid run report, coherent merged statistics, and
//! resume-after-fault agreeing with the unfaulted verdict.
//!
//! Plans are drawn from a seeded [`XorShift`], so a failing fault case is
//! pinned by its seed alone.

use crate::rng::XorShift;
use ddws_telemetry::{CancelToken, FaultHook};
use std::sync::Arc;

/// The panic message every injected panic carries, so harnesses can tell
/// injected faults from genuine engine bugs.
pub const INJECTED_PANIC: &str = "testkit: injected fault";

/// One deterministic fault. Expansion ordinals are 1-based and global
/// across workers (the engines' fault hook contract), so a plan fires at
/// the same logical point for every engine and thread count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Panic inside the transition-system expansion at the given ordinal.
    Panic(u64),
    /// Cancel the run's token at the given expansion ordinal.
    Cancel(u64),
    /// Start the run with an already-expired deadline.
    DeadlineNow,
}

/// A [`FaultPlan`] turned into run-control ingredients. Wire `hook` into
/// the options' fault hook, `token` into its cancel token, and set the
/// deadline to zero when `deadline_now` is set.
pub struct ArmedFault {
    /// The expansion-ordinal hook (`None` for [`FaultPlan::DeadlineNow`]).
    pub hook: Option<FaultHook>,
    /// The token the hook cancels (`Some` only for [`FaultPlan::Cancel`]).
    pub token: Option<CancelToken>,
    /// Whether the run should start with an expired deadline.
    pub deadline_now: bool,
}

impl FaultPlan {
    /// Draws one plan: the fault kind uniformly, the trigger ordinal
    /// uniformly in `[1, max_tick]`.
    pub fn draw(rng: &mut XorShift, max_tick: u64) -> FaultPlan {
        let tick = 1 + rng.below(max_tick.max(1));
        match rng.below(3) {
            0 => FaultPlan::Panic(tick),
            1 => FaultPlan::Cancel(tick),
            _ => FaultPlan::DeadlineNow,
        }
    }

    /// Arms the plan. Each call builds fresh state, so one plan can be
    /// armed once per engine under test.
    pub fn arm(&self) -> ArmedFault {
        match self {
            FaultPlan::Panic(n) => {
                let n = *n;
                ArmedFault {
                    hook: Some(Arc::new(move |tick| {
                        if tick == n {
                            panic!("{INJECTED_PANIC} (panic at expansion {n})");
                        }
                    })),
                    token: None,
                    deadline_now: false,
                }
            }
            FaultPlan::Cancel(n) => {
                let n = *n;
                let token = CancelToken::new();
                let hook_token = token.clone();
                ArmedFault {
                    hook: Some(Arc::new(move |tick| {
                        if tick == n {
                            hook_token.cancel(format!("injected cancel at expansion {n}"));
                        }
                    })),
                    token: Some(token),
                    deadline_now: false,
                }
            }
            FaultPlan::DeadlineNow => ArmedFault {
                hook: None,
                token: None,
                deadline_now: true,
            },
        }
    }

    /// The run-report outcome label this fault produces **if it fires**
    /// (a search that finishes before the trigger ordinal reaches its
    /// ordinary verdict instead).
    pub fn outcome_label(&self) -> &'static str {
        match self {
            FaultPlan::Panic(_) => "worker_panicked",
            FaultPlan::Cancel(_) => "cancelled",
            FaultPlan::DeadlineNow => "deadline_exceeded",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_deterministic_and_covers_all_kinds() {
        let plans: Vec<FaultPlan> = {
            let mut rng = XorShift::new(11);
            (0..60).map(|_| FaultPlan::draw(&mut rng, 20)).collect()
        };
        let replay: Vec<FaultPlan> = {
            let mut rng = XorShift::new(11);
            (0..60).map(|_| FaultPlan::draw(&mut rng, 20)).collect()
        };
        assert_eq!(plans, replay);
        assert!(plans.iter().any(|p| matches!(p, FaultPlan::Panic(_))));
        assert!(plans.iter().any(|p| matches!(p, FaultPlan::Cancel(_))));
        assert!(plans.iter().any(|p| matches!(p, FaultPlan::DeadlineNow)));
        for p in &plans {
            if let FaultPlan::Panic(n) | FaultPlan::Cancel(n) = p {
                assert!((1..=20).contains(n), "{p:?}");
            }
        }
    }

    #[test]
    fn armed_cancel_trips_its_token_at_the_ordinal() {
        let armed = FaultPlan::Cancel(3).arm();
        let hook = armed.hook.unwrap();
        let token = armed.token.unwrap();
        hook(1);
        hook(2);
        assert!(!token.is_cancelled());
        hook(3);
        assert!(token.is_cancelled());
        assert_eq!(token.reason().unwrap(), "injected cancel at expansion 3");
    }

    #[test]
    fn armed_panic_fires_only_at_the_ordinal() {
        let armed = FaultPlan::Panic(2).arm();
        let hook = armed.hook.unwrap();
        hook(1);
        hook(3);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook(2))).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains(INJECTED_PANIC));
    }
}
