//! Randomized semantic checks on the native `ddws-testkit` generator API —
//! the always-on, shrink-free counterpart of `prop.rs` (which needs
//! `--features proptest`). The formula generator is a direct recursive
//! port of `arb_ltl`; agreement on random ultimately periodic words is a
//! genuine (sampled) ω-language equality check.

use ddws_automata::ltl::eval_on_lasso;
use ddws_automata::product::intersect;
use ddws_automata::{ltl_to_nba, Letter, Ltl};
use ddws_testkit::{gen, rng::XorShift, seed_from};

/// Random LTL formula over `num_aps` propositions, bounded depth.
fn gen_ltl(rng: &mut XorShift, num_aps: u32, depth: u32) -> Ltl {
    if depth == 0 || rng.chance(1, 3) {
        return match rng.below(3) {
            0 => Ltl::ap(rng.below(u64::from(num_aps)) as u32),
            1 => Ltl::True,
            _ => Ltl::False,
        };
    }
    let d = depth - 1;
    match rng.below(6) {
        0 => Ltl::not(gen_ltl(rng, num_aps, d)),
        1 => Ltl::and(gen_ltl(rng, num_aps, d), gen_ltl(rng, num_aps, d)),
        2 => Ltl::or(gen_ltl(rng, num_aps, d), gen_ltl(rng, num_aps, d)),
        3 => Ltl::next(gen_ltl(rng, num_aps, d)),
        4 => Ltl::until(gen_ltl(rng, num_aps, d), gen_ltl(rng, num_aps, d)),
        _ => Ltl::release(gen_ltl(rng, num_aps, d), gen_ltl(rng, num_aps, d)),
    }
}

/// A random ultimately periodic word: prefix (possibly empty) + non-empty cycle.
fn gen_word(rng: &mut XorShift, num_aps: u32) -> (Vec<Letter>, Vec<Letter>) {
    let max = 1u64 << num_aps;
    let prefix = gen::vec_of(rng, 0, 3, |r| r.below(max));
    let cycle = gen::vec_of(rng, 1, 3, |r| r.below(max));
    (prefix, cycle)
}

/// The tableau automaton accepts exactly the words satisfying the formula.
#[test]
fn translation_matches_semantics() {
    gen::cases(128, seed_from("translation_matches_semantics"), |rng| {
        let f = gen_ltl(rng, 2, 3);
        let (prefix, cycle) = gen_word(rng, 2);
        let nba = ltl_to_nba(&f);
        assert_eq!(
            nba.accepts_lasso(&prefix, &cycle),
            eval_on_lasso(&f, &prefix, &cycle),
            "formula {f} on ({prefix:?}, {cycle:?})"
        );
    });
}

/// Intersection of two property automata = automaton of the conjunction.
#[test]
fn product_matches_conjunction() {
    gen::cases(128, seed_from("product_matches_conjunction"), |rng| {
        let f = gen_ltl(rng, 2, 2);
        let g = gen_ltl(rng, 2, 2);
        let (prefix, cycle) = gen_word(rng, 2);
        let mut na = ltl_to_nba(&f);
        let mut nb = ltl_to_nba(&g);
        na.num_aps = 2;
        nb.num_aps = 2;
        let prod = intersect(&na, &nb);
        let both = eval_on_lasso(&f, &prefix, &cycle) && eval_on_lasso(&g, &prefix, &cycle);
        assert_eq!(prod.accepts_lasso(&prefix, &cycle), both);
    });
}
