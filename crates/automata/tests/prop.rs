//! Property-based tests: the GPVW translation, the intersection product and
//! the complementation constructions are checked against the direct LTL
//! semantics on random ultimately periodic words. Agreement on all
//! ultimately periodic words implies ω-language equality, so these tests are
//! a genuine (sampled) semantic check.

use ddws_automata::complement::complement;
use ddws_automata::ltl::eval_on_lasso;
use ddws_automata::product::intersect;
use ddws_automata::{ltl_to_nba, Letter, Ltl};
use ddws_testkit::proptest::{self, prelude::*};

/// Random LTL formula over `num_aps` propositions, bounded depth.
fn arb_ltl(num_aps: u32, depth: u32) -> BoxedStrategy<Ltl> {
    let leaf = prop_oneof![
        (0..num_aps).prop_map(Ltl::ap),
        Just(Ltl::True),
        Just(Ltl::False),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Ltl::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ltl::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ltl::or(a, b)),
            inner.clone().prop_map(Ltl::next),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ltl::until(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Ltl::release(a, b)),
        ]
    })
    .boxed()
}

fn arb_word(num_aps: u32) -> impl Strategy<Value = (Vec<Letter>, Vec<Letter>)> {
    let max = 1u64 << num_aps;
    (
        proptest::collection::vec(0..max, 0..4),
        proptest::collection::vec(0..max, 1..4),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tableau automaton accepts exactly the words satisfying the formula.
    #[test]
    fn translation_matches_semantics(
        f in arb_ltl(2, 3),
        (prefix, cycle) in arb_word(2),
    ) {
        let nba = ltl_to_nba(&f);
        prop_assert_eq!(
            nba.accepts_lasso(&prefix, &cycle),
            eval_on_lasso(&f, &prefix, &cycle),
            "formula {} on ({:?}, {:?})", f, prefix, cycle
        );
    }

    /// Intersection of two property automata = automaton of the conjunction.
    #[test]
    fn product_matches_conjunction(
        f in arb_ltl(2, 2),
        g in arb_ltl(2, 2),
        (prefix, cycle) in arb_word(2),
    ) {
        let mut na = ltl_to_nba(&f);
        let mut nb = ltl_to_nba(&g);
        na.num_aps = 2;
        nb.num_aps = 2;
        let prod = intersect(&na, &nb);
        let both = eval_on_lasso(&f, &prefix, &cycle) && eval_on_lasso(&g, &prefix, &cycle);
        prop_assert_eq!(prod.accepts_lasso(&prefix, &cycle), both);
    }

    /// Rank-based complementation flips membership (small automata only).
    #[test]
    fn complement_flips_membership(
        f in arb_ltl(1, 2),
        (prefix, cycle) in arb_word(1),
    ) {
        let nba = ltl_to_nba(&f);
        if nba.num_states() <= 8 {
            let comp = complement(&nba);
            prop_assert_eq!(
                comp.accepts_lasso(&prefix, &cycle),
                !nba.accepts_lasso(&prefix, &cycle),
                "formula {}", f
            );
        }
    }
}
