//! Intersection of Büchi automata.

use crate::guard::Guard;
use crate::nba::{Nba, StateId};
use std::collections::HashMap;

/// Intersection: accepts `L(a) ∩ L(b)`.
///
/// The classical flag construction: states are `(qa, qb, flag)` with the
/// flag cycling `0 → 1` on an accepting `a`-state, `1 → 2` on an accepting
/// `b`-state, and `2 → 0` immediately; states with flag `2` are accepting,
/// so both automata accept infinitely often on any accepting run.
pub fn intersect(a: &Nba, b: &Nba) -> Nba {
    assert_eq!(
        a.num_aps, b.num_aps,
        "intersection requires a common alphabet"
    );
    let mut out = Nba::new(a.num_aps, 0);
    let mut ids: HashMap<(StateId, StateId, u8), StateId> = HashMap::new();
    let mut worklist: Vec<(StateId, StateId, u8)> = Vec::new();

    fn intern(
        ids: &mut HashMap<(StateId, StateId, u8), StateId>,
        s: (StateId, StateId, u8),
        out: &mut Nba,
        wl: &mut Vec<(StateId, StateId, u8)>,
    ) -> StateId {
        *ids.entry(s).or_insert_with(|| {
            let id = out.add_state(s.2 == 2);
            wl.push(s);
            id
        })
    }

    for &ia in &a.initial {
        for &ib in &b.initial {
            let id = intern(&mut ids, (ia, ib, 0), &mut out, &mut worklist);
            out.add_initial(id);
        }
    }

    while let Some(state) = worklist.pop() {
        let (qa, qb, flag) = state;
        let src = ids[&state];
        for ta in &a.transitions[qa] {
            for tb in &b.transitions[qb] {
                let guard: Guard = ta.guard.and(tb.guard);
                if !guard.is_satisfiable() {
                    continue;
                }
                // Flag update observes the *target* states.
                let mut next_flag = if flag == 2 { 0 } else { flag };
                if next_flag == 0 && a.accepting[ta.target] {
                    next_flag = 1;
                }
                if next_flag == 1 && b.accepting[tb.target] {
                    next_flag = 2;
                }
                let dst = intern(
                    &mut ids,
                    (ta.target, tb.target, next_flag),
                    &mut out,
                    &mut worklist,
                );
                out.add_transition(src, guard, dst);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ltl::Ltl;
    use crate::translate::ltl_to_nba;

    /// Widens an automaton's alphabet (declared APs only; guards unchanged).
    fn pad(nba: &Nba, num_aps: u32) -> Nba {
        let mut out = nba.clone();
        assert!(out.num_aps <= num_aps);
        out.num_aps = num_aps;
        out
    }

    #[test]
    fn intersection_agrees_with_conjunction() {
        let f = Ltl::globally(Ltl::finally(Ltl::ap(0)));
        let g = Ltl::finally(Ltl::globally(Ltl::ap(1)));
        let product = intersect(&pad(&ltl_to_nba(&f), 2), &ltl_to_nba(&g));
        let conjunction = ltl_to_nba(&Ltl::and(f, g));
        let words: [(&[u64], &[u64]); 5] = [
            (&[], &[0b11]),
            (&[], &[0b01]),
            (&[0b10], &[0b11, 0b10]),
            (&[], &[0b10]),
            (&[0b01, 0b01], &[0b11]),
        ];
        for (p, c) in words {
            assert_eq!(
                product.accepts_lasso(p, c),
                conjunction.accepts_lasso(p, c),
                "disagreement on ({p:?}, {c:?})"
            );
        }
    }

    #[test]
    fn intersection_with_empty_is_empty() {
        let f = ltl_to_nba(&Ltl::globally(Ltl::ap(0)));
        let empty = ltl_to_nba(&Ltl::and(Ltl::ap(0), Ltl::not(Ltl::ap(0))));
        let product = intersect(&f, &empty);
        assert!(product.is_empty());
    }
}
