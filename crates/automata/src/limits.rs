//! Run-control for the emptiness engines: limits (state budget, deadline,
//! cancellation, fault hook), the typed [`Interrupted`] stop, and the
//! engine checkpoints a caller can resume from.
//!
//! Both engines share one contract: a search either returns a verdict
//! (`Ok`) or stops *gracefully* with an [`Interrupted`] carrying the
//! [`AbortReason`], the partial [`SearchStats`], and — for every reason
//! except a worker panic — an [`EngineCheckpoint`] from which
//! [`resume_accepting_lasso_with`] continues the search. Resuming a
//! budget- or deadline-truncated run with laxer limits reaches the same
//! verdict a fresh unbounded run would.

use crate::emptiness::{resume_seq, Lasso, SearchStats, SeqCheckpoint, TransitionSystem};
use crate::parallel::{resume_par, ParCheckpoint};
use ddws_telemetry::{AbortReason, CancelToken, EngineTelemetry, FaultHook};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock. The engines only ever *read* time, and
/// only through this trait, so callers can substitute a virtual clock —
/// the deterministic simulator advances one from its fault hook, which
/// makes deadline expiry a pure function of the schedule instead of the
/// machine's load.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed on this clock since its epoch.
    fn now_ns(&self) -> u64;
}

/// A shared, thread-safe clock handle.
pub type ClockHandle = Arc<dyn Clock>;

/// The real wall clock: nanoseconds since the first observation in this
/// process (anchoring to a process epoch keeps the value comfortably
/// inside `u64`).
#[derive(Debug, Default)]
pub struct WallClock;

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// The process-wide [`WallClock`] handle (one shared allocation).
pub fn wall_clock() -> ClockHandle {
    static WALL: OnceLock<ClockHandle> = OnceLock::new();
    WALL.get_or_init(|| Arc::new(WallClock)).clone()
}

/// A manually advanced virtual clock for tests and the deterministic
/// simulator. Time only moves when someone calls [`ManualClock::advance`]
/// (or [`ManualClock::set`]), so deadline expiry under this clock is
/// deterministic and instantaneous — no test ever sleeps real
/// milliseconds to make a deadline pass.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A virtual clock starting at `start_ns`.
    pub fn new(start_ns: u64) -> ManualClock {
        ManualClock {
            ns: AtomicU64::new(start_ns),
        }
    }

    /// Advances the clock by `ns` nanoseconds (saturating).
    pub fn advance(&self, ns: u64) {
        // fetch_update over fetch_add so repeated advances saturate
        // instead of wrapping back before armed deadlines.
        let _ = self
            .ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_add(ns))
            });
    }

    /// Sets the clock to an absolute value.
    pub fn set(&self, ns: u64) {
        self.ns.store(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

/// A deadline on some [`Clock`], remembering the budget it was derived
/// from so abort reports can state the configured limit (an expiry
/// instant alone cannot be turned back into a duration).
#[derive(Clone, Debug)]
pub struct Deadline {
    /// The clock instant (in that clock's nanoseconds) after which the
    /// engines stop.
    pub at_ns: u64,
    /// The originally configured budget, in nanoseconds.
    pub budget_ns: u64,
    /// The clock the deadline is measured on.
    clock: ClockHandle,
}

impl Deadline {
    /// A deadline `d` from now on the process wall clock.
    pub fn after(d: Duration) -> Deadline {
        Deadline::after_on(wall_clock(), d)
    }

    /// A deadline `d` from now on the given clock.
    pub fn after_on(clock: ClockHandle, d: Duration) -> Deadline {
        Deadline {
            at_ns: clock.now_ns().saturating_add(d.as_nanos() as u64),
            budget_ns: d.as_nanos() as u64,
            clock,
        }
    }

    /// Whether the deadline has passed on its clock.
    pub fn is_expired(&self) -> bool {
        self.clock.now_ns() >= self.at_ns
    }
}

/// Everything that can stop a search before it reaches a verdict.
///
/// The zero-cost default is fully unbounded. The budget is checked per
/// visited state, cancellation per engine loop iteration (one relaxed
/// atomic load), the deadline on the engines' ~1024-iteration progress
/// stride (first checked on the very first iteration, so an
/// already-expired deadline aborts before any expansion), and the fault
/// hook — test-only — fires once per expansion with a global 1-based
/// ordinal.
#[derive(Clone, Default)]
pub struct SearchLimits {
    /// Visited-state cap; `None` means unbounded.
    pub max_states: Option<u64>,
    /// Wall-clock deadline.
    pub deadline: Option<Deadline>,
    /// Cooperative cancellation token.
    pub cancel: Option<CancelToken>,
    /// Deterministic fault-injection hook (see [`FaultHook`]).
    pub fault: Option<FaultHook>,
}

impl SearchLimits {
    /// No limits at all.
    pub fn unbounded() -> SearchLimits {
        SearchLimits::default()
    }

    /// Only a visited-state budget (the pre-existing engine contract).
    pub fn states(max_states: u64) -> SearchLimits {
        SearchLimits {
            max_states: Some(max_states),
            ..SearchLimits::default()
        }
    }

    /// The effective state cap (`u64::MAX` when unbounded).
    pub(crate) fn state_cap(&self) -> u64 {
        self.max_states.unwrap_or(u64::MAX)
    }
}

/// A search that stopped before reaching a verdict — budget, deadline,
/// cancellation, or a worker panic. Never a hang, never a process abort.
#[derive(Clone, Debug)]
pub struct Interrupted<S> {
    /// Why the search stopped.
    pub reason: AbortReason,
    /// The partial statistics at stop time, `truncated` set.
    pub stats: SearchStats,
    /// A checkpoint to continue from; `None` exactly when a worker
    /// panicked (a panicking expansion may have lost arbitrary in-flight
    /// work, so the engines refuse to pretend the frontier is coherent).
    pub checkpoint: Option<EngineCheckpoint<S>>,
}

impl<S> std::fmt::Display for Interrupted<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "search interrupted after {} states: {}",
            self.stats.states_visited, self.reason
        )
    }
}

/// The outcome of a limited lasso search: the witness (if any) plus the
/// exploration statistics, or a graceful interruption. The stop is boxed
/// — it carries partial stats and a checkpoint, far bigger than the happy
/// path, and aborts are rare enough that the extra allocation is free.
pub type LimitedResult<S> = Result<(Option<Lasso<S>>, SearchStats), Box<Interrupted<S>>>;

/// A frozen search frontier, resumable with
/// [`resume_accepting_lasso_with`]. Opaque: the variants mirror the two
/// engines, and a checkpoint resumes on the engine that produced it.
#[derive(Clone, Debug)]
pub enum EngineCheckpoint<S> {
    /// Sequential nested-DFS checkpoint (exact continuation).
    Seq(SeqCheckpoint<S>),
    /// Parallel reachability checkpoint (frontier reconstruction).
    Par(ParCheckpoint<S>),
}

impl<S> EngineCheckpoint<S> {
    /// The worker count the checkpointed search ran with: `None` for the
    /// sequential engine, `Some(workers)` for the parallel one.
    pub fn threads(&self) -> Option<usize> {
        match self {
            EngineCheckpoint::Seq(_) => None,
            EngineCheckpoint::Par(cp) => Some(cp.workers()),
        }
    }

    /// States visited by the checkpointed search so far.
    pub fn states_visited(&self) -> u64 {
        match self {
            EngineCheckpoint::Seq(cp) => cp.stats().states_visited,
            EngineCheckpoint::Par(cp) => cp.stats().states_visited,
        }
    }
}

/// Continues a checkpointed search under `limits`, on the engine the
/// checkpoint came from. The state budget in `limits` counts *total*
/// visited states including the checkpointed ones, so resuming with the
/// budget that tripped immediately trips again; raise or drop it.
pub fn resume_accepting_lasso_with<TS: TransitionSystem>(
    ts: &TS,
    checkpoint: EngineCheckpoint<TS::State>,
    limits: &SearchLimits,
    tel: &EngineTelemetry<'_>,
) -> LimitedResult<TS::State> {
    match checkpoint {
        EngineCheckpoint::Seq(cp) => resume_seq(ts, cp, limits, tel),
        EngineCheckpoint::Par(cp) => resume_par(ts, cp, limits, tel),
    }
}

/// Stringifies a panic payload for [`AbortReason::WorkerPanicked`].
pub(crate) fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emptiness::{
        find_accepting_lasso_limits_with, find_accepting_lasso_stats,
        test_graphs::{c3_trap, ReducedGraph},
    };
    use crate::parallel::find_accepting_lasso_limits_parallel_with;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A chain 0 → 1 → … → n-1 with a tail cycle through an accepting
    /// state when `accepting_tail` is set.
    fn chain(n: usize, accepting_tail: bool) -> ReducedGraph {
        let mut edges: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let mut accepting = vec![false; n];
        if accepting_tail {
            edges[n - 1].push(n - 2);
            edges[n - 2].push(n - 1);
            accepting[n - 1] = true;
        }
        ReducedGraph {
            edges,
            accepting,
            initial: vec![0],
            ample: vec![None; n],
        }
    }

    fn tel() -> EngineTelemetry<'static> {
        EngineTelemetry::silent()
    }

    #[test]
    fn pre_cancelled_token_stops_both_engines_before_work() {
        let g = chain(100, true);
        let token = CancelToken::new();
        token.cancel("caller gave up");
        let limits = SearchLimits {
            cancel: Some(token),
            ..SearchLimits::default()
        };
        for threads in [None, Some(1), Some(2)] {
            let stop = match threads {
                None => find_accepting_lasso_limits_with(&g, &limits, &tel()),
                Some(t) => find_accepting_lasso_limits_parallel_with(&g, &limits, t, &tel()),
            }
            .expect_err("cancelled before the search started");
            assert!(
                matches!(&stop.reason, AbortReason::Cancelled { reason } if reason == "caller gave up"),
                "threads={threads:?}: {:?}",
                stop.reason
            );
            assert!(stop.stats.truncated);
            assert!(stop.checkpoint.is_some(), "cancellation is resumable");
        }
    }

    #[test]
    fn expired_deadline_stops_both_engines_before_any_expansion() {
        // Expire the deadline on a virtual clock: arm a 1 ns budget, tick
        // the clock past it. No real time is involved.
        let g = chain(5000, false);
        let clock = Arc::new(ManualClock::new(0));
        let deadline = Deadline::after_on(clock.clone(), Duration::from_nanos(1));
        clock.advance(2);
        assert!(deadline.is_expired());
        let limits = SearchLimits {
            deadline: Some(deadline),
            ..SearchLimits::default()
        };
        for threads in [None, Some(2)] {
            let stop = match threads {
                None => find_accepting_lasso_limits_with(&g, &limits, &tel()),
                Some(t) => find_accepting_lasso_limits_parallel_with(&g, &limits, t, &tel()),
            }
            .expect_err("deadline already passed");
            assert!(
                matches!(stop.reason, AbortReason::DeadlineExceeded { limit_ns: 1 }),
                "threads={threads:?}: {:?}",
                stop.reason
            );
            assert_eq!(stop.stats.states_expanded, 0, "threads={threads:?}");
        }
    }

    #[test]
    fn budget_checkpoint_resumes_to_the_unbounded_verdict_seq() {
        for &accepting in &[false, true] {
            let g = chain(64, accepting);
            let (expected, full_stats) = find_accepting_lasso_stats(&g);
            let stop = find_accepting_lasso_limits_with(&g, &SearchLimits::states(10), &tel())
                .expect_err("budget must trip");
            assert!(matches!(
                stop.reason,
                AbortReason::StateBudget { max_states: 10 }
            ));
            let cp = stop.checkpoint.expect("budget stop is resumable");
            assert!(cp.threads().is_none(), "sequential checkpoint");
            let (resumed, stats) =
                resume_accepting_lasso_with(&g, cp, &SearchLimits::unbounded(), &tel())
                    .expect("no limits on the resumed leg");
            assert_eq!(
                resumed.is_some(),
                expected.is_some(),
                "accepting={accepting}"
            );
            // The sequential resume is an exact continuation: combined
            // traversal equals the uninterrupted run's.
            assert_eq!(stats.states_visited, full_stats.states_visited);
            assert_eq!(stats.transitions_explored, full_stats.transitions_explored);
            assert!(!stats.truncated);
        }
    }

    #[test]
    fn budget_checkpoint_resumes_to_the_unbounded_verdict_par() {
        for &accepting in &[false, true] {
            let g = chain(64, accepting);
            let (expected, full_stats) = find_accepting_lasso_stats(&g);
            for threads in [1usize, 2, 4] {
                let stop = find_accepting_lasso_limits_parallel_with(
                    &g,
                    &SearchLimits::states(10),
                    threads,
                    &tel(),
                )
                .expect_err("budget must trip");
                let cp = stop.checkpoint.expect("budget stop is resumable");
                assert_eq!(cp.threads(), Some(threads));
                assert!(cp.states_visited() > 0);
                let (resumed, stats) =
                    resume_accepting_lasso_with(&g, cp, &SearchLimits::unbounded(), &tel())
                        .expect("no limits on the resumed leg");
                assert_eq!(
                    resumed.is_some(),
                    expected.is_some(),
                    "threads={threads} accepting={accepting}"
                );
                assert_eq!(
                    stats.states_visited, full_stats.states_visited,
                    "threads={threads}: resumed run covers the same reachable set"
                );
                assert!(!stats.truncated);
            }
        }
    }

    #[test]
    fn repeated_budget_stops_chain_until_the_verdict() {
        // Resume in small budget increments; each leg trips until the
        // budget finally covers the graph.
        let g = chain(50, true);
        let (expected, _) = find_accepting_lasso_stats(&g);
        let mut stop = find_accepting_lasso_limits_with(&g, &SearchLimits::states(8), &tel())
            .expect_err("first leg trips");
        let mut budget = 8u64;
        let verdict = loop {
            budget += 8;
            let cp = stop.checkpoint.take().expect("budgeted stop is resumable");
            match resume_accepting_lasso_with(&g, cp, &SearchLimits::states(budget), &tel()) {
                Ok((lasso, _)) => break lasso,
                Err(next) => {
                    assert!(matches!(next.reason, AbortReason::StateBudget { .. }));
                    stop = next;
                }
            }
        };
        assert_eq!(verdict.is_some(), expected.is_some());
    }

    #[test]
    fn fault_panic_is_isolated_with_partial_stats() {
        let g = chain(200, false);
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = hits.clone();
        let limits = SearchLimits {
            fault: Some(Arc::new(move |tick| {
                hits2.fetch_add(1, Ordering::Relaxed);
                if tick == 20 {
                    panic!("injected fault at expansion 20");
                }
            })),
            ..SearchLimits::default()
        };
        for threads in [None, Some(1), Some(3)] {
            hits.store(0, Ordering::Relaxed);
            let stop = match threads {
                None => find_accepting_lasso_limits_with(&g, &limits, &tel()),
                Some(t) => find_accepting_lasso_limits_parallel_with(&g, &limits, t, &tel()),
            }
            .expect_err("fault must abort the search");
            let AbortReason::WorkerPanicked { payload, .. } = &stop.reason else {
                panic!(
                    "threads={threads:?}: expected a panic, got {:?}",
                    stop.reason
                );
            };
            assert!(payload.contains("injected fault at expansion 20"));
            assert!(stop.checkpoint.is_none(), "panics are not resumable");
            assert!(stop.stats.truncated);
            assert!(
                stop.stats.states_expanded >= 19,
                "threads={threads:?}: partial stats survive the panic"
            );
            assert_eq!(hits.load(Ordering::Relaxed), 20, "threads={threads:?}");
        }
    }

    #[test]
    fn fault_cancel_checkpoint_resumes_on_reduced_graphs() {
        // Cancellation injected mid-search on the C3 trap: the resumed
        // run must still recover the reduction-hidden lasso.
        let g = c3_trap();
        let (expected, _) = find_accepting_lasso_stats(&g);
        assert!(expected.is_some());
        let token = CancelToken::new();
        let hook_token = token.clone();
        let limits = SearchLimits {
            cancel: Some(token),
            fault: Some(Arc::new(move |tick| {
                if tick == 2 {
                    hook_token.cancel("fault: cancel at expansion 2");
                }
            })),
            ..SearchLimits::default()
        };
        let stop = find_accepting_lasso_limits_with(&g, &limits, &tel())
            .expect_err("cancel fault must trip");
        assert!(matches!(stop.reason, AbortReason::Cancelled { .. }));
        let cp = stop.checkpoint.expect("cancellation is resumable");
        let (resumed, _) = resume_accepting_lasso_with(&g, cp, &SearchLimits::unbounded(), &tel())
            .expect("unbounded resume");
        assert!(resumed.is_some(), "resume recovers the C3-hidden lasso");
    }
}
