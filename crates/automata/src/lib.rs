//! # `ddws-automata` — Büchi automata and propositional LTL
//!
//! The automata-theoretic backbone of the verifier. Properties and
//! conversation protocols are ultimately ω-regular conditions over the
//! snapshots of a run; once the verifier grounds all first-order content
//! into a finite set of *atomic propositions*, what remains is classical:
//!
//! * [`ltl`] — propositional LTL over proposition indices, negation normal
//!   form, and direct evaluation on ultimately periodic words (the testing
//!   oracle for the translation),
//! * [`guard`] — letters as bitsets of propositions and conjunctive-literal
//!   guards on transitions,
//! * [`nba`] — nondeterministic Büchi automata,
//! * [`translate`] — the Gerth–Peled–Vardi–Wolper tableau translation
//!   LTL → generalized Büchi → Büchi,
//! * [`emptiness`] — nested depth-first search for accepting lassos over an
//!   abstract transition system (used on-the-fly by the verifier's product
//!   construction),
//! * [`parallel`] — the multi-threaded counterpart: work-stealing
//!   reachability plus SCC-based lasso extraction, verdict-identical to
//!   the sequential search,
//! * [`product`] — intersection of Büchi automata,
//! * [`complement`] — complementation: the two-copy construction for
//!   deterministic automata and the rank-based (Kupferman–Vardi)
//!   construction for small nondeterministic ones (needed to check that
//!   *all* runs of a composition are accepted by a conversation protocol,
//!   Section 4 of the paper).
//!
//! The alphabet is `2^AP` for at most 64 propositions — far beyond anything
//! the verifier grounds in practice.

#![warn(missing_docs)]
pub mod complement;
pub mod emptiness;
pub mod guard;
pub mod limits;
pub mod ltl;
pub mod nba;
pub mod parallel;
pub mod product;
pub mod translate;

pub use emptiness::{
    find_accepting_lasso, find_accepting_lasso_budget, find_accepting_lasso_budget_with,
    find_accepting_lasso_limits_with, BudgetExceeded, Expansion, Lasso, SearchStats, SeqCheckpoint,
    TransitionSystem,
};
pub use guard::{Guard, Letter};
pub use limits::{
    resume_accepting_lasso_with, wall_clock, Clock, ClockHandle, Deadline, EngineCheckpoint,
    Interrupted, LimitedResult, ManualClock, SearchLimits, WallClock,
};
pub use ltl::Ltl;
pub use nba::{Nba, StateId};
pub use parallel::{
    find_accepting_lasso_budget_parallel, find_accepting_lasso_budget_parallel_with,
    find_accepting_lasso_limits_parallel_with, ParCheckpoint,
};
pub use translate::ltl_to_nba;
