//! Propositional linear temporal logic over atomic-proposition indices.
//!
//! This is the target of the verifier's grounding step: every maximal
//! first-order subformula of an LTL-FO property becomes one atomic
//! proposition, and the remaining temporal skeleton is an [`Ltl`] formula.

use crate::guard::{ApId, Letter};
use std::collections::HashMap;
use std::fmt;

/// A propositional LTL formula.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ltl {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// Atomic proposition.
    Ap(ApId),
    /// Negation.
    Not(Box<Ltl>),
    /// Binary conjunction.
    And(Box<Ltl>, Box<Ltl>),
    /// Binary disjunction.
    Or(Box<Ltl>, Box<Ltl>),
    /// Next.
    X(Box<Ltl>),
    /// Until.
    U(Box<Ltl>, Box<Ltl>),
    /// Release (dual of until; needed for negation normal form).
    R(Box<Ltl>, Box<Ltl>),
}

impl Ltl {
    /// Atomic proposition.
    pub fn ap(i: ApId) -> Ltl {
        Ltl::Ap(i)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Ltl) -> Ltl {
        Ltl::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(a: Ltl, b: Ltl) -> Ltl {
        Ltl::And(Box::new(a), Box::new(b))
    }

    /// Disjunction.
    pub fn or(a: Ltl, b: Ltl) -> Ltl {
        Ltl::Or(Box::new(a), Box::new(b))
    }

    /// Next.
    pub fn next(f: Ltl) -> Ltl {
        Ltl::X(Box::new(f))
    }

    /// Until.
    pub fn until(a: Ltl, b: Ltl) -> Ltl {
        Ltl::U(Box::new(a), Box::new(b))
    }

    /// Release.
    pub fn release(a: Ltl, b: Ltl) -> Ltl {
        Ltl::R(Box::new(a), Box::new(b))
    }

    /// Finally: `true U f`.
    pub fn finally(f: Ltl) -> Ltl {
        Ltl::until(Ltl::True, f)
    }

    /// Globally: `false R f`.
    pub fn globally(f: Ltl) -> Ltl {
        Ltl::release(Ltl::False, f)
    }

    /// Implication.
    pub fn implies(a: Ltl, b: Ltl) -> Ltl {
        Ltl::or(Ltl::not(a), b)
    }

    /// Negation normal form: negations pushed to atomic propositions,
    /// using the dualities `¬Xφ ≡ X¬φ`, `¬(φUψ) ≡ ¬φR¬ψ`, `¬(φRψ) ≡ ¬φU¬ψ`.
    pub fn nnf(&self) -> Ltl {
        self.nnf_inner(false)
    }

    fn nnf_inner(&self, negated: bool) -> Ltl {
        match (self, negated) {
            (Ltl::True, false) | (Ltl::False, true) => Ltl::True,
            (Ltl::True, true) | (Ltl::False, false) => Ltl::False,
            (Ltl::Ap(i), false) => Ltl::Ap(*i),
            (Ltl::Ap(i), true) => Ltl::not(Ltl::Ap(*i)),
            (Ltl::Not(f), _) => f.nnf_inner(!negated),
            (Ltl::And(a, b), false) => Ltl::and(a.nnf_inner(false), b.nnf_inner(false)),
            (Ltl::And(a, b), true) => Ltl::or(a.nnf_inner(true), b.nnf_inner(true)),
            (Ltl::Or(a, b), false) => Ltl::or(a.nnf_inner(false), b.nnf_inner(false)),
            (Ltl::Or(a, b), true) => Ltl::and(a.nnf_inner(true), b.nnf_inner(true)),
            (Ltl::X(f), _) => Ltl::next(f.nnf_inner(negated)),
            (Ltl::U(a, b), false) => Ltl::until(a.nnf_inner(false), b.nnf_inner(false)),
            (Ltl::U(a, b), true) => Ltl::release(a.nnf_inner(true), b.nnf_inner(true)),
            (Ltl::R(a, b), false) => Ltl::release(a.nnf_inner(false), b.nnf_inner(false)),
            (Ltl::R(a, b), true) => Ltl::until(a.nnf_inner(true), b.nnf_inner(true)),
        }
    }

    /// Highest proposition index used, if any.
    pub fn max_ap(&self) -> Option<ApId> {
        match self {
            Ltl::True | Ltl::False => None,
            Ltl::Ap(i) => Some(*i),
            Ltl::Not(f) | Ltl::X(f) => f.max_ap(),
            Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::U(a, b) | Ltl::R(a, b) => {
                match (a.max_ap(), b.max_ap()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
        }
    }
}

impl fmt::Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::True => write!(f, "true"),
            Ltl::False => write!(f, "false"),
            Ltl::Ap(i) => write!(f, "p{i}"),
            Ltl::Not(g) => write!(f, "!({g})"),
            Ltl::And(a, b) => write!(f, "({a} & {b})"),
            Ltl::Or(a, b) => write!(f, "({a} | {b})"),
            Ltl::X(g) => write!(f, "X({g})"),
            Ltl::U(a, b) => write!(f, "({a} U {b})"),
            Ltl::R(a, b) => write!(f, "({a} R {b})"),
        }
    }
}

/// Evaluates an LTL formula at position 0 of the ultimately periodic word
/// `prefix · cycle^ω`.
///
/// This is the independent semantic oracle used to test the tableau
/// translation: for random formulas and random lasso words, the translated
/// automaton's verdict must match this function. Complexity is
/// `O(|f| · (n+m)²)` — irrelevant for tests.
///
/// # Panics
/// Panics if `cycle` is empty.
pub fn eval_on_lasso(f: &Ltl, prefix: &[Letter], cycle: &[Letter]) -> bool {
    assert!(!cycle.is_empty(), "lasso cycle must be non-empty");
    let n = prefix.len();
    let m = cycle.len();
    let mut memo: HashMap<(*const Ltl, usize), bool> = HashMap::new();
    eval_at(f, 0, prefix, cycle, n, m, &mut memo)
}

fn letter_at(pos: usize, prefix: &[Letter], cycle: &[Letter], n: usize, m: usize) -> Letter {
    if pos < n {
        prefix[pos]
    } else {
        cycle[(pos - n) % m]
    }
}

/// Canonical position: positions ≥ n+m are folded back into the cycle so the
/// memo table stays finite.
fn canon(pos: usize, n: usize, m: usize) -> usize {
    if pos < n + m {
        pos
    } else {
        n + (pos - n) % m
    }
}

fn eval_at(
    f: &Ltl,
    pos: usize,
    prefix: &[Letter],
    cycle: &[Letter],
    n: usize,
    m: usize,
    memo: &mut HashMap<(*const Ltl, usize), bool>,
) -> bool {
    let pos = canon(pos, n, m);
    let key = (f as *const Ltl, pos);
    if let Some(&v) = memo.get(&key) {
        return v;
    }
    let result = match f {
        Ltl::True => true,
        Ltl::False => false,
        Ltl::Ap(i) => letter_at(pos, prefix, cycle, n, m) >> i & 1 == 1,
        Ltl::Not(g) => !eval_at(g, pos, prefix, cycle, n, m, memo),
        Ltl::And(a, b) => {
            eval_at(a, pos, prefix, cycle, n, m, memo) && eval_at(b, pos, prefix, cycle, n, m, memo)
        }
        Ltl::Or(a, b) => {
            eval_at(a, pos, prefix, cycle, n, m, memo) || eval_at(b, pos, prefix, cycle, n, m, memo)
        }
        Ltl::X(g) => eval_at(g, pos + 1, prefix, cycle, n, m, memo),
        Ltl::U(a, b) => {
            // Scan forward; after n+m steps from any position the suffix
            // repeats, so n+m+1 distinct positions suffice.
            let mut value = false;
            for p in pos..=pos + n + m {
                if eval_at(b, p, prefix, cycle, n, m, memo) {
                    value = true;
                    break;
                }
                if !eval_at(a, p, prefix, cycle, n, m, memo) {
                    value = false;
                    break;
                }
            }
            value
        }
        Ltl::R(a, b) => {
            // φ R ψ ≡ ¬(¬φ U ¬ψ)
            let mut holds = true;
            for p in pos..=pos + n + m {
                if !eval_at(b, p, prefix, cycle, n, m, memo) {
                    holds = false;
                    break;
                }
                if eval_at(a, p, prefix, cycle, n, m, memo) {
                    holds = true;
                    break;
                }
            }
            holds
        }
    };
    memo.insert(key, result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: Letter = 0b01;
    const P1: Letter = 0b10;
    const NONE: Letter = 0;

    #[test]
    fn nnf_pushes_negations_to_leaves() {
        // ¬(p0 U X p1) = ¬p0 R X ¬p1
        let f = Ltl::not(Ltl::until(Ltl::ap(0), Ltl::next(Ltl::ap(1))));
        let nnf = f.nnf();
        assert_eq!(
            nnf,
            Ltl::release(Ltl::not(Ltl::ap(0)), Ltl::next(Ltl::not(Ltl::ap(1))))
        );
        // double negation vanishes
        assert_eq!(Ltl::not(Ltl::not(Ltl::ap(2))).nnf(), Ltl::ap(2));
    }

    #[test]
    fn eval_atomic_and_boolean() {
        assert!(eval_on_lasso(&Ltl::ap(0), &[P0], &[NONE]));
        assert!(!eval_on_lasso(&Ltl::ap(1), &[P0], &[NONE]));
        assert!(eval_on_lasso(
            &Ltl::or(Ltl::ap(1), Ltl::not(Ltl::ap(1))),
            &[],
            &[NONE]
        ));
    }

    #[test]
    fn eval_next_and_until() {
        // X p0 on word NONE, (P0)^ω
        assert!(eval_on_lasso(&Ltl::next(Ltl::ap(0)), &[NONE], &[P0]));
        // p0 U p1 on P0 P0 P1 ...
        assert!(eval_on_lasso(
            &Ltl::until(Ltl::ap(0), Ltl::ap(1)),
            &[P0, P0],
            &[P1]
        ));
        // p0 U p1 fails when p0 breaks before p1
        assert!(!eval_on_lasso(
            &Ltl::until(Ltl::ap(0), Ltl::ap(1)),
            &[P0, NONE],
            &[P1]
        ));
        // F p1 with p1 only inside the cycle
        assert!(eval_on_lasso(
            &Ltl::finally(Ltl::ap(1)),
            &[NONE, NONE],
            &[NONE, P1]
        ));
        // G p0 fails if cycle has a gap
        assert!(!eval_on_lasso(
            &Ltl::globally(Ltl::ap(0)),
            &[P0],
            &[P0, NONE]
        ));
        assert!(eval_on_lasso(&Ltl::globally(Ltl::ap(0)), &[P0], &[P0, P0]));
    }

    #[test]
    fn eval_release() {
        // p0 R p1: p1 must hold up to and including the first p0 position.
        assert!(eval_on_lasso(
            &Ltl::release(Ltl::ap(0), Ltl::ap(1)),
            &[P1, P1 | P0],
            &[NONE]
        ));
        // never released, p1 forever: holds.
        assert!(eval_on_lasso(
            &Ltl::release(Ltl::ap(0), Ltl::ap(1)),
            &[],
            &[P1]
        ));
        // p1 breaks before release: fails.
        assert!(!eval_on_lasso(
            &Ltl::release(Ltl::ap(0), Ltl::ap(1)),
            &[P1, NONE],
            &[P0 | P1]
        ));
    }

    #[test]
    fn nnf_preserves_semantics_on_samples() {
        let formulas = [
            Ltl::not(Ltl::until(Ltl::ap(0), Ltl::ap(1))),
            Ltl::not(Ltl::and(Ltl::next(Ltl::ap(0)), Ltl::globally(Ltl::ap(1)))),
            Ltl::not(Ltl::release(Ltl::not(Ltl::ap(0)), Ltl::ap(1))),
        ];
        let words: [(&[Letter], &[Letter]); 4] = [
            (&[], &[NONE]),
            (&[P0, P1], &[P0 | P1]),
            (&[NONE], &[P0, P1]),
            (&[P1, P1], &[NONE, P0]),
        ];
        for f in &formulas {
            let g = f.nnf();
            for (p, c) in words {
                assert_eq!(
                    eval_on_lasso(f, p, c),
                    eval_on_lasso(&g, p, c),
                    "nnf changed semantics of {f} on ({p:?}, {c:?})"
                );
            }
        }
    }

    #[test]
    fn max_ap_finds_highest() {
        let f = Ltl::until(Ltl::ap(2), Ltl::next(Ltl::ap(5)));
        assert_eq!(f.max_ap(), Some(5));
        assert_eq!(Ltl::True.max_ap(), None);
    }
}
