//! Accepting-lasso search (Büchi emptiness) by nested depth-first search.
//!
//! The CVWY nested-DFS algorithm (Courcoubetis–Vardi–Wolper–Yannakakis):
//! an outer ("blue") DFS explores the reachable state space; whenever an
//! accepting state is *postordered*, an inner ("red") DFS looks for a cycle
//! back to it. The red visited-set persists across inner searches, which
//! keeps the whole procedure linear in the size of the product.
//!
//! The search is generic over [`TransitionSystem`], so the verifier can run
//! it directly on the on-the-fly product of a composition with a property
//! automaton without materializing either.

use crate::limits::{payload_string, EngineCheckpoint, Interrupted, LimitedResult, SearchLimits};
use ddws_telemetry::{AbortReason, EngineTelemetry};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Instant;

/// How many states the engines visit between progress-gate checks. A
/// power of two so the check compiles to a mask; coarse enough that the
/// `None`-gate fast path costs one branch per ~thousand states.
pub(crate) const PROGRESS_STRIDE_MASK: u64 = 0x3FF;

/// A (possibly reduced) expansion of one state, as produced by
/// [`TransitionSystem::successors_reduced`].
#[derive(Clone, Debug)]
pub struct Expansion<S> {
    /// The successor states the search should follow.
    pub states: Arc<[S]>,
    /// `true` when `states` is an *ample* strict subset of the full
    /// successor set (so the engine must apply the C3 cycle proviso before
    /// trusting it); `false` when it already is the full expansion.
    pub ample: bool,
}

/// An implicitly represented Büchi-annotated transition system.
///
/// Implementations must be `Sync` with `Send + Sync` states so the
/// [`parallel`](crate::parallel) engine can expand one system from many
/// worker threads; on-the-fly systems with memoization should use sharded
/// locks rather than `RefCell` (see the verifier's product system).
pub trait TransitionSystem: Sync {
    /// The state type; hashed into visited sets, so keep it compact.
    type State: Clone + Eq + Hash + Send + Sync;

    /// Initial states.
    fn initial_states(&self) -> Vec<Self::State>;

    /// Successor states (the on-the-fly expansion).
    ///
    /// The shared-slice return type lets memoizing implementations (the
    /// verifier's product system) hand the same cached expansion to every
    /// caller instead of cloning a `Vec` per visit — both DFS passes and
    /// every parallel worker then share one allocation per state.
    fn successors(&self, s: &Self::State) -> Arc<[Self::State]>;

    /// Büchi acceptance flag.
    fn is_accepting(&self, s: &Self::State) -> bool;

    /// Ample-set expansion: a subset of [`successors`](Self::successors)
    /// satisfying the C0–C2 ample conditions (non-emptiness, dependence
    /// closure, invisibility). The *engine* enforces the cycle proviso C3
    /// and falls back to [`successors_full`](Self::successors_full) when it
    /// fires. The default returns the full expansion (no reduction).
    fn successors_reduced(&self, s: &Self::State) -> Expansion<Self::State> {
        Expansion {
            states: self.successors(s),
            ample: false,
        }
    }

    /// The unreduced successor set, used when C3 forces a full expansion.
    fn successors_full(&self, s: &Self::State) -> Arc<[Self::State]> {
        self.successors(s)
    }

    /// Whether the engines should route expansions through
    /// [`successors_reduced`](Self::successors_reduced) and track the
    /// `ample_hits`/`full_expansions` counters. Defaults to `false`, which
    /// keeps the search bit-identical to the unreduced one.
    fn reduction_active(&self) -> bool {
        false
    }
}

/// A counterexample witness: the run `prefix · cycle^ω`.
///
/// `prefix` leads from an initial state to `cycle[0]` exclusive (it may be
/// empty when an initial state lies on the cycle); the last state of `cycle`
/// has a transition back to `cycle[0]`, and some state on `cycle` is
/// accepting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lasso<S> {
    /// States from an initial state up to (not including) the cycle entry.
    pub prefix: Vec<S>,
    /// The cycle, entered at `cycle[0]`; non-empty.
    pub cycle: Vec<S>,
}

/// Exploration statistics, reported by the verifier.
///
/// Compatibility shim: the struct now lives in `ddws-telemetry` (where the
/// shard/valuation merge `absorb` is defined once); this re-export keeps
/// every existing `ddws_automata::SearchStats` path working.
pub use ddws_telemetry::SearchStats;

/// The search's state budget was exhausted before an answer was reached.
///
/// The cap is checked between expansions, so `states_visited` may exceed
/// the configured maximum by one (the state whose expansion tripped it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// States visited when the budget tripped.
    pub states_visited: u64,
    /// The partial statistics at abort time, with `truncated` set.
    pub stats: SearchStats,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "state budget exhausted after {} states",
            self.states_visited
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// The outcome of a budgeted lasso search: the witness (if any) plus the
/// exploration statistics, or budget exhaustion. The error is boxed —
/// [`BudgetExceeded`] carries the full [`SearchStats`] snapshot, and the
/// exhaustion path is cold.
pub type SearchResult<S> = Result<(Option<Lasso<S>>, SearchStats), Box<BudgetExceeded>>;

/// Searches for an accepting lasso; `None` means the language is empty.
pub fn find_accepting_lasso<TS: TransitionSystem>(ts: &TS) -> Option<Lasso<TS::State>> {
    find_accepting_lasso_stats(ts).0
}

/// [`find_accepting_lasso`] with exploration statistics.
pub fn find_accepting_lasso_stats<TS: TransitionSystem>(
    ts: &TS,
) -> (Option<Lasso<TS::State>>, SearchStats) {
    find_accepting_lasso_budget(ts, u64::MAX).expect("unlimited budget")
}

/// [`find_accepting_lasso_stats`] with a cap on visited states — the
/// verifier's safety valve against state-space blowups (and the measuring
/// device of the `boundaries` crate's divergence experiments).
pub fn find_accepting_lasso_budget<TS: TransitionSystem>(
    ts: &TS,
    max_states: u64,
) -> SearchResult<TS::State> {
    find_accepting_lasso_budget_with(ts, max_states, &EngineTelemetry::silent())
}

/// [`find_accepting_lasso_budget`] with a telemetry bundle.
///
/// Compatibility wrapper over [`find_accepting_lasso_limits_with`] for
/// callers that only budget states: interruption maps back to
/// [`BudgetExceeded`], and a panic in the transition system propagates
/// (the limits-based API catches it into a typed stop instead).
pub fn find_accepting_lasso_budget_with<TS: TransitionSystem>(
    ts: &TS,
    max_states: u64,
    tel: &EngineTelemetry<'_>,
) -> SearchResult<TS::State> {
    match find_accepting_lasso_limits_with(ts, &SearchLimits::states(max_states), tel) {
        Ok(found) => Ok(found),
        Err(stop) => match stop.reason {
            AbortReason::WorkerPanicked { payload, .. } => {
                std::panic::resume_unwind(Box::new(payload))
            }
            _ => Err(Box::new(BudgetExceeded {
                states_visited: stop.stats.states_visited,
                stats: stop.stats,
            })),
        },
    }
}

/// Sequential nested-DFS search under the full [`SearchLimits`] contract:
/// periodic progress snapshots through the gate (frontier/depth = DFS
/// stack depth), the `lasso_ns` span covering the inner red searches, and
/// graceful, checkpointed stops for budget/deadline/cancellation. A panic
/// inside the transition system is caught and reported as
/// [`AbortReason::WorkerPanicked`] with the partial stats (no checkpoint).
pub fn find_accepting_lasso_limits_with<TS: TransitionSystem>(
    ts: &TS,
    limits: &SearchLimits,
    tel: &EngineTelemetry<'_>,
) -> LimitedResult<TS::State> {
    let mut engine = SeqEngine::fresh(ts);
    drive_seq_engine(&mut engine, limits, tel)
}

/// Continues a sequential checkpoint. The frozen frontier (blue/red sets,
/// DFS stack, expansion memo, remaining initial states) is restored
/// verbatim, so the continuation explores exactly the states the
/// uninterrupted run would have — the verdict is identical by
/// construction.
pub(crate) fn resume_seq<TS: TransitionSystem>(
    ts: &TS,
    cp: SeqCheckpoint<TS::State>,
    limits: &SearchLimits,
    tel: &EngineTelemetry<'_>,
) -> LimitedResult<TS::State> {
    let mut engine = SeqEngine::thaw(ts, cp);
    drive_seq_engine(&mut engine, limits, tel)
}

/// Runs an engine to completion or graceful stop, catching panics from
/// the transition system (and the fault hook) into a typed interruption
/// with the partial statistics preserved.
fn drive_seq_engine<TS: TransitionSystem>(
    engine: &mut SeqEngine<'_, TS>,
    limits: &SearchLimits,
    tel: &EngineTelemetry<'_>,
) -> LimitedResult<TS::State> {
    let run = std::panic::catch_unwind(AssertUnwindSafe(|| engine.run(limits, tel)));
    match run {
        Ok(Ok(lasso)) => Ok((lasso, engine.stats)),
        Ok(Err(reason)) => {
            let mut stats = engine.stats;
            stats.truncated = true;
            Err(Box::new(Interrupted {
                reason,
                stats,
                checkpoint: Some(EngineCheckpoint::Seq(engine.freeze())),
            }))
        }
        Err(payload) => {
            let mut stats = engine.stats;
            stats.truncated = true;
            Err(Box::new(Interrupted {
                reason: AbortReason::WorkerPanicked {
                    worker: 0,
                    payload: payload_string(payload),
                },
                stats,
                checkpoint: None,
            }))
        }
    }
}

/// A frozen sequential search: the exact engine state at a graceful stop.
/// Opaque; resume with
/// [`resume_accepting_lasso_with`](crate::limits::resume_accepting_lasso_with).
#[derive(Clone, Debug)]
pub struct SeqCheckpoint<S> {
    blue: HashSet<S>,
    red: HashSet<S>,
    /// `(state, memoized expansion, next successor index)` per DFS frame.
    stack: Vec<(S, Arc<[S]>, usize)>,
    pending_inits: VecDeque<S>,
    expansions: HashMap<S, Arc<[S]>>,
    stats: SearchStats,
}

impl<S> SeqCheckpoint<S> {
    pub(crate) fn stats(&self) -> &SearchStats {
        &self.stats
    }
}

struct Frame<S> {
    state: S,
    succs: Arc<[S]>,
    next: usize,
}

/// The sequential CVWY engine with its whole mutable state in one place,
/// so a graceful stop can freeze it into a [`SeqCheckpoint`] and a panic
/// still leaves the partial statistics readable.
struct SeqEngine<'ts, TS: TransitionSystem> {
    ts: &'ts TS,
    blue: HashSet<TS::State>,
    red: HashSet<TS::State>,
    stack: Vec<Frame<TS::State>>,
    pending_inits: VecDeque<TS::State>,
    reducer: Reducer<TS>,
    stats: SearchStats,
    /// Loop iterations, for the strided deadline check (starts at 0 so an
    /// expired deadline aborts before any expansion).
    ticks: u64,
    /// 1-based expansion ordinal handed to the fault hook.
    fault_tick: u64,
}

impl<'ts, TS: TransitionSystem> SeqEngine<'ts, TS> {
    fn fresh(ts: &'ts TS) -> Self {
        SeqEngine {
            ts,
            blue: HashSet::new(),
            red: HashSet::new(),
            stack: Vec::new(),
            pending_inits: ts.initial_states().into(),
            reducer: Reducer::new(ts.reduction_active()),
            stats: SearchStats::default(),
            ticks: 0,
            fault_tick: 0,
        }
    }

    fn thaw(ts: &'ts TS, cp: SeqCheckpoint<TS::State>) -> Self {
        let mut reducer = Reducer::new(ts.reduction_active());
        reducer.expansions = cp.expansions;
        if reducer.active {
            // The C3 on-stack set is exactly the set of stacked states.
            for (state, _, _) in &cp.stack {
                reducer.on_stack.insert(state.clone());
            }
        }
        let mut stats = cp.stats;
        stats.truncated = false;
        SeqEngine {
            ts,
            blue: cp.blue,
            red: cp.red,
            stack: cp
                .stack
                .into_iter()
                .map(|(state, succs, next)| Frame { state, succs, next })
                .collect(),
            pending_inits: cp.pending_inits,
            reducer,
            stats,
            ticks: 0,
            fault_tick: 0,
        }
    }

    fn freeze(&mut self) -> SeqCheckpoint<TS::State> {
        SeqCheckpoint {
            blue: std::mem::take(&mut self.blue),
            red: std::mem::take(&mut self.red),
            stack: std::mem::take(&mut self.stack)
                .into_iter()
                .map(|f| (f.state, f.succs, f.next))
                .collect(),
            pending_inits: std::mem::take(&mut self.pending_inits),
            expansions: std::mem::take(&mut self.reducer.expansions),
            stats: self.stats,
        }
    }

    /// Marks `state` blue-visited and pushes its (possibly reduced,
    /// memoized) expansion; fires the fault hook with the expansion
    /// ordinal first.
    fn visit(&mut self, state: TS::State, limits: &SearchLimits) {
        self.blue.insert(state.clone());
        self.stats.states_visited += 1;
        self.fault_tick += 1;
        if let Some(hook) = &limits.fault {
            hook(self.fault_tick);
        }
        self.reducer.enter(&state);
        self.stack.push(Frame {
            succs: self.reducer.expand(self.ts, &state, &mut self.stats),
            state,
            next: 0,
        });
    }

    /// The blue DFS. Abort checks run once per loop iteration — always
    /// with the DFS stack in a consistent, freezable position:
    /// cancellation every iteration (one relaxed load), the deadline on
    /// the progress stride, the state budget against the running count.
    fn run(
        &mut self,
        limits: &SearchLimits,
        tel: &EngineTelemetry<'_>,
    ) -> Result<Option<Lasso<TS::State>>, AbortReason> {
        let max_states = limits.state_cap();
        loop {
            if let Some(token) = &limits.cancel {
                if token.is_cancelled() {
                    return Err(AbortReason::Cancelled {
                        reason: token.reason().unwrap_or_default(),
                    });
                }
            }
            if self.ticks & PROGRESS_STRIDE_MASK == 0 {
                if let Some(deadline) = &limits.deadline {
                    if deadline.is_expired() {
                        return Err(AbortReason::DeadlineExceeded {
                            limit_ns: deadline.budget_ns,
                        });
                    }
                }
            }
            self.ticks += 1;
            if self.stats.states_visited > max_states {
                return Err(AbortReason::StateBudget { max_states });
            }
            if self.stack.is_empty() {
                let Some(init) = self.pending_inits.pop_front() else {
                    return Ok(None);
                };
                if !self.blue.contains(&init) {
                    self.visit(init, limits);
                }
                continue;
            }
            let next_succ = {
                let frame = self.stack.last_mut().expect("stack is non-empty");
                if frame.next < frame.succs.len() {
                    let succ = frame.succs[frame.next].clone();
                    frame.next += 1;
                    Some(succ)
                } else {
                    None
                }
            };
            if let Some(succ) = next_succ {
                self.stats.transitions_explored += 1;
                if !self.blue.contains(&succ) {
                    self.visit(succ, limits);
                    if self.stats.states_visited & PROGRESS_STRIDE_MASK == 0 {
                        tel.maybe_emit(
                            self.stats.states_visited,
                            self.stack.len() as u64,
                            self.stack.len() as u64,
                            self.stats.ample_hits,
                            self.stats.full_expansions,
                        );
                    }
                }
            } else {
                // Postorder.
                let state = self.stack.last().expect("stack is non-empty").state.clone();
                if self.ts.is_accepting(&state) {
                    let red_start = Instant::now();
                    let cycle = red_search(
                        self.ts,
                        &state,
                        &mut self.red,
                        &mut self.reducer,
                        &mut self.stats,
                    );
                    self.stats.lasso_ns += red_start.elapsed().as_nanos() as u64;
                    if let Some(cycle) = cycle {
                        // The blue stack spells the path from the initial
                        // state to `state` (inclusive at the top).
                        let prefix: Vec<TS::State> = self
                            .stack
                            .iter()
                            .take(self.stack.len() - 1)
                            .map(|f| f.state.clone())
                            .collect();
                        return Ok(Some(Lasso { prefix, cycle }));
                    }
                }
                self.reducer.leave(&state);
                self.stack.pop();
            }
        }
    }
}

/// Per-search partial-order-reduction bookkeeping for the sequential
/// engine. Inert (and allocation-free on the hot path) when the transition
/// system does not activate reduction.
///
/// The reduced graph the search runs on must be a *fixed* function of the
/// state for nested DFS to stay sound (blue and red must traverse the same
/// edges — Holzmann–Peled), so the first expansion computed for a state is
/// memoized and reused by both searches. C3 is the classic stack proviso:
/// an ample set containing a state on the blue DFS stack would let a cycle
/// consist entirely of reduced expansions and hide an accepting lasso, so
/// such states fall back to their full successor set. States first expanded
/// by the red search are expanded fully — the blue stack discipline does
/// not apply there, and full expansions are always sound.
struct Reducer<TS: TransitionSystem> {
    active: bool,
    on_stack: HashSet<TS::State>,
    expansions: HashMap<TS::State, Arc<[TS::State]>>,
}

impl<TS: TransitionSystem> Reducer<TS> {
    fn new(active: bool) -> Self {
        Reducer {
            active,
            on_stack: HashSet::new(),
            expansions: HashMap::new(),
        }
    }

    fn enter(&mut self, s: &TS::State) {
        if self.active {
            self.on_stack.insert(s.clone());
        }
    }

    fn leave(&mut self, s: &TS::State) {
        if self.active {
            self.on_stack.remove(s);
        }
    }

    /// The blue-DFS expansion of `s`: ample if C0–C3 allow, full otherwise.
    ///
    /// `states_expanded` counts exactly the freshly computed expansions
    /// (memoized re-reads don't count), at the same points `ample_hits`
    /// and `full_expansions` increment — so under active reduction
    /// `ample_hits + full_expansions == states_expanded` holds by
    /// construction.
    fn expand(&mut self, ts: &TS, s: &TS::State, stats: &mut SearchStats) -> Arc<[TS::State]> {
        if !self.active {
            stats.states_expanded += 1;
            return ts.successors(s);
        }
        if let Some(cached) = self.expansions.get(s) {
            return cached.clone();
        }
        stats.states_expanded += 1;
        let exp = ts.successors_reduced(s);
        let succs = if exp.ample {
            if exp.states.iter().any(|t| self.on_stack.contains(t)) {
                // C3 (cycle proviso): an ample successor closes back into
                // the DFS stack — expand fully instead.
                stats.full_expansions += 1;
                ts.successors_full(s)
            } else {
                stats.ample_hits += 1;
                exp.states
            }
        } else {
            stats.full_expansions += 1;
            exp.states
        };
        self.expansions.insert(s.clone(), succs.clone());
        succs
    }

    /// The red-DFS expansion of `s`: the memoized blue expansion when one
    /// exists, the full expansion (memoized for blue to reuse) otherwise.
    fn expand_red(&mut self, ts: &TS, s: &TS::State, stats: &mut SearchStats) -> Arc<[TS::State]> {
        if !self.active {
            stats.states_expanded += 1;
            return ts.successors(s);
        }
        if let Some(cached) = self.expansions.get(s) {
            return cached.clone();
        }
        stats.states_expanded += 1;
        stats.full_expansions += 1;
        let succs = ts.successors_full(s);
        self.expansions.insert(s.clone(), succs.clone());
        succs
    }
}

/// Inner DFS from `seed`, looking for a transition back to `seed`.
/// Returns the cycle `[seed, …, last]` (with `last → seed`) if found.
fn red_search<TS: TransitionSystem>(
    ts: &TS,
    seed: &TS::State,
    red: &mut HashSet<TS::State>,
    reducer: &mut Reducer<TS>,
    stats: &mut SearchStats,
) -> Option<Vec<TS::State>> {
    struct Frame<S> {
        state: S,
        succs: Arc<[S]>,
        next: usize,
    }
    if red.contains(seed) {
        // A previous inner search already explored `seed` without closing a
        // cycle through an accepting seed; by the CVWY invariant no cycle
        // through `seed` exists either.
        return None;
    }
    red.insert(seed.clone());
    let mut stack: Vec<Frame<TS::State>> = vec![Frame {
        succs: reducer.expand_red(ts, seed, stats),
        state: seed.clone(),
        next: 0,
    }];
    while let Some(frame) = stack.last_mut() {
        if frame.next < frame.succs.len() {
            let succ = frame.succs[frame.next].clone();
            frame.next += 1;
            stats.transitions_explored += 1;
            if &succ == seed {
                // Cycle closed: the red stack spells seed → … → top.
                return Some(stack.iter().map(|f| f.state.clone()).collect());
            }
            if !red.contains(&succ) {
                red.insert(succ.clone());
                stack.push(Frame {
                    succs: reducer.expand_red(ts, &succ, stats),
                    state: succ,
                    next: 0,
                });
            }
        } else {
            stack.pop();
        }
    }
    None
}

/// Test-only transition systems shared by the sequential and parallel
/// engine test suites.
#[cfg(test)]
pub(crate) mod test_graphs {
    use super::{Expansion, TransitionSystem};
    use std::sync::Arc;

    /// Explicit graph with per-state ample subsets declared by the test, so
    /// the engines' C3 handling can be probed directly.
    pub(crate) struct ReducedGraph {
        pub(crate) edges: Vec<Vec<usize>>,
        pub(crate) accepting: Vec<bool>,
        pub(crate) initial: Vec<usize>,
        /// `Some(subset)` ⇒ `successors_reduced` reports that subset with
        /// `ample = true`; `None` ⇒ full expansion.
        pub(crate) ample: Vec<Option<Vec<usize>>>,
    }

    impl TransitionSystem for ReducedGraph {
        type State = usize;
        fn initial_states(&self) -> Vec<usize> {
            self.initial.clone()
        }
        fn successors(&self, s: &usize) -> Arc<[usize]> {
            self.edges[*s].as_slice().into()
        }
        fn is_accepting(&self, s: &usize) -> bool {
            self.accepting[*s]
        }
        fn successors_reduced(&self, s: &usize) -> Expansion<usize> {
            match &self.ample[*s] {
                Some(subset) => Expansion {
                    states: subset.as_slice().into(),
                    ample: true,
                },
                None => Expansion {
                    states: self.edges[*s].as_slice().into(),
                    ample: false,
                },
            }
        }
        fn reduction_active(&self) -> bool {
            true
        }
    }

    /// A crafted cycle whose ample sets, taken at face value, would consist
    /// entirely of reduced expansions and hide the accepting lasso: full
    /// edges 0 → {1}, 1 → {0, 2}, 2 → {0}, accepting = {2}, with the ample
    /// set at 1 claiming {0}. Following only the ample edge at 1 closes the
    /// cycle 0-1 without ever reaching 2, so the C3 cycle proviso must fire
    /// at 1 and restore the full expansion — recovering the lasso
    /// 0 → 1 → 2 → 0.
    pub(crate) fn c3_trap() -> ReducedGraph {
        ReducedGraph {
            edges: vec![vec![1], vec![0, 2], vec![0]],
            accepting: vec![false, false, true],
            initial: vec![0],
            ample: vec![None, Some(vec![0]), None],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_graphs::{c3_trap, ReducedGraph};
    use super::*;

    /// A small explicit graph for testing.
    struct Graph {
        edges: Vec<Vec<usize>>,
        accepting: Vec<bool>,
        initial: Vec<usize>,
    }

    impl TransitionSystem for Graph {
        type State = usize;
        fn initial_states(&self) -> Vec<usize> {
            self.initial.clone()
        }
        fn successors(&self, s: &usize) -> Arc<[usize]> {
            self.edges[*s].as_slice().into()
        }
        fn is_accepting(&self, s: &usize) -> bool {
            self.accepting[*s]
        }
    }

    #[test]
    fn finds_self_loop_on_accepting_state() {
        let g = Graph {
            edges: vec![vec![1], vec![1]],
            accepting: vec![false, true],
            initial: vec![0],
        };
        let lasso = find_accepting_lasso(&g).unwrap();
        assert_eq!(lasso.prefix, vec![0]);
        assert_eq!(lasso.cycle, vec![1]);
    }

    #[test]
    fn rejects_acyclic_accepting_state() {
        let g = Graph {
            edges: vec![vec![1], vec![2], vec![]],
            accepting: vec![false, true, false],
            initial: vec![0],
        };
        assert!(find_accepting_lasso(&g).is_none());
    }

    #[test]
    fn rejects_cycle_without_accepting_state() {
        let g = Graph {
            edges: vec![vec![1], vec![0]],
            accepting: vec![false, false],
            initial: vec![0],
        };
        assert!(find_accepting_lasso(&g).is_none());
    }

    #[test]
    fn finds_longer_cycle_through_accepting_state() {
        // 0 → 1 → 2 → 3 → 1, accepting = {2}
        let g = Graph {
            edges: vec![vec![1], vec![2], vec![3], vec![1]],
            accepting: vec![false, false, true, false],
            initial: vec![0],
        };
        let lasso = find_accepting_lasso(&g).unwrap();
        // Witness validity: cycle closes and passes through an accepting state.
        assert!(!lasso.cycle.is_empty());
        let last = *lasso.cycle.last().unwrap();
        assert!(g.edges[last].contains(&lasso.cycle[0]));
        assert!(lasso.cycle.iter().any(|&s| g.accepting[s]));
        // Prefix is a real path from the initial state to the cycle entry.
        let mut cur = 0usize;
        for &next in lasso.prefix.iter().skip(1).chain(lasso.cycle.first()) {
            assert!(g.edges[cur].contains(&next));
            cur = next;
        }
    }

    #[test]
    fn accepting_state_only_reachable_not_on_cycle() {
        // 0 → 1(acc) → 2 → 0 : cycle 0,1,2 passes through 1 → lasso exists.
        let g = Graph {
            edges: vec![vec![1], vec![2], vec![0]],
            accepting: vec![false, true, false],
            initial: vec![0],
        };
        assert!(find_accepting_lasso(&g).is_some());
    }

    #[test]
    fn multiple_initial_states() {
        // Component of 0 is lasso-free; component of 5 has one.
        let g = Graph {
            edges: vec![vec![1], vec![], vec![], vec![], vec![], vec![6], vec![5]],
            accepting: vec![false, false, false, false, false, true, false],
            initial: vec![0, 5],
        };
        let lasso = find_accepting_lasso(&g).unwrap();
        assert!(lasso.cycle.contains(&5));
    }

    #[test]
    fn stats_count_states() {
        let g = Graph {
            edges: vec![vec![1], vec![2], vec![]],
            accepting: vec![false, false, false],
            initial: vec![0],
        };
        let (lasso, stats) = find_accepting_lasso_stats(&g);
        assert!(lasso.is_none());
        assert_eq!(stats.states_visited, 3);
        assert_eq!(stats.transitions_explored, 2);
    }

    /// Regression guard for the classic nested-DFS pitfall: an accepting
    /// state whose cycle is only discoverable after the red set has been
    /// seeded by an earlier (failed) inner search must still be found when
    /// postorder is respected.
    #[test]
    fn cvwy_postorder_interaction() {
        // 0 → 1 → 2, 2 → 1 (cycle 1-2), accepting = {1}; plus 0 → 3(acc) → 2.
        let g = Graph {
            edges: vec![vec![3, 1], vec![2], vec![1], vec![2]],
            accepting: vec![false, true, false, true],
            initial: vec![0],
        };
        let lasso = find_accepting_lasso(&g).unwrap();
        assert!(lasso.cycle.iter().any(|&s| g.accepting[s]));
    }

    #[test]
    fn c3_proviso_recovers_hidden_lasso() {
        let g = c3_trap();
        let (lasso, stats) = find_accepting_lasso_stats(&g);
        let lasso = lasso.expect("C3 must restore the full expansion at 1");
        assert!(
            lasso.cycle.contains(&2),
            "lasso runs through the accepting state"
        );
        assert_eq!(
            stats.ample_hits, 0,
            "every ample set here closes into the stack"
        );
        assert!(stats.full_expansions >= 1);
    }

    #[test]
    fn ample_subset_taken_when_no_cycle_closes() {
        // 0 → {1, 2} with ample {1}; both arms reach sink 3. No cycles, so
        // C3 never fires and the reduced search must skip state 2 entirely.
        let g = ReducedGraph {
            edges: vec![vec![1, 2], vec![3], vec![3], vec![]],
            accepting: vec![false, false, false, false],
            initial: vec![0],
            ample: vec![Some(vec![1]), None, None, None],
        };
        let (lasso, stats) = find_accepting_lasso_stats(&g);
        assert!(lasso.is_none());
        assert_eq!(stats.ample_hits, 1);
        assert_eq!(
            stats.states_visited, 3,
            "state 2 is pruned by the ample set"
        );
    }

    #[test]
    fn budget_error_carries_truncated_stats() {
        // A long chain, budget well short of its length.
        let n = 50;
        let g = Graph {
            edges: (0..n)
                .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
                .collect(),
            accepting: vec![false; n],
            initial: vec![0],
        };
        let err = find_accepting_lasso_budget(&g, 10).expect_err("budget must trip");
        assert!(err.stats.truncated);
        assert_eq!(err.stats.states_visited, err.states_visited);
        assert!(err.states_visited > 10 && err.states_visited <= 12);
    }

    /// The reduction-accounting invariant the telemetry suite relies on:
    /// with reduction active, every fresh expansion is either an ample hit
    /// or a full expansion; without it, both stay zero while
    /// `states_expanded` still counts.
    #[test]
    fn expansion_accounting_invariants() {
        let g = c3_trap();
        let (_, stats) = find_accepting_lasso_stats(&g);
        assert_eq!(
            stats.ample_hits + stats.full_expansions,
            stats.states_expanded
        );
        let g = Graph {
            edges: vec![vec![1], vec![2], vec![]],
            accepting: vec![false, false, false],
            initial: vec![0],
        };
        let (_, stats) = find_accepting_lasso_stats(&g);
        assert_eq!(stats.ample_hits, 0);
        assert_eq!(stats.full_expansions, 0);
        assert_eq!(stats.states_expanded, 3, "one blue expansion per state");
    }

    #[test]
    fn progress_snapshots_flow_through_the_gate() {
        use ddws_telemetry::{BufferReporter, ProgressGate};
        use std::time::Duration;
        // A chain longer than the progress stride, zero-interval gate: at
        // least one snapshot must be emitted.
        let n = 3000;
        let g = Graph {
            edges: (0..n)
                .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
                .collect(),
            accepting: vec![false; n],
            initial: vec![0],
        };
        let gate = ProgressGate::new(Duration::from_secs(0));
        let buf = BufferReporter::new();
        let tel = EngineTelemetry {
            reporter: &buf,
            gate: Some(&gate),
            rule_meter: None,
        };
        let (lasso, _) = find_accepting_lasso_budget_with(&g, u64::MAX, &tel).unwrap();
        assert!(lasso.is_none());
        let snaps = buf.snapshots();
        assert!(!snaps.is_empty(), "stride crossings must emit snapshots");
        assert!(snaps.iter().all(|s| s.states_visited > 0 && s.depth > 0));
    }
}
