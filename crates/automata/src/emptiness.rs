//! Accepting-lasso search (Büchi emptiness) by nested depth-first search.
//!
//! The CVWY nested-DFS algorithm (Courcoubetis–Vardi–Wolper–Yannakakis):
//! an outer ("blue") DFS explores the reachable state space; whenever an
//! accepting state is *postordered*, an inner ("red") DFS looks for a cycle
//! back to it. The red visited-set persists across inner searches, which
//! keeps the whole procedure linear in the size of the product.
//!
//! The search is generic over [`TransitionSystem`], so the verifier can run
//! it directly on the on-the-fly product of a composition with a property
//! automaton without materializing either.

use std::collections::HashSet;
use std::hash::Hash;

/// An implicitly represented Büchi-annotated transition system.
///
/// Implementations must be `Sync` with `Send + Sync` states so the
/// [`parallel`](crate::parallel) engine can expand one system from many
/// worker threads; on-the-fly systems with memoization should use sharded
/// locks rather than `RefCell` (see the verifier's product system).
pub trait TransitionSystem: Sync {
    /// The state type; hashed into visited sets, so keep it compact.
    type State: Clone + Eq + Hash + Send + Sync;

    /// Initial states.
    fn initial_states(&self) -> Vec<Self::State>;

    /// Successor states (the on-the-fly expansion).
    fn successors(&self, s: &Self::State) -> Vec<Self::State>;

    /// Büchi acceptance flag.
    fn is_accepting(&self, s: &Self::State) -> bool;
}

/// A counterexample witness: the run `prefix · cycle^ω`.
///
/// `prefix` leads from an initial state to `cycle[0]` exclusive (it may be
/// empty when an initial state lies on the cycle); the last state of `cycle`
/// has a transition back to `cycle[0]`, and some state on `cycle` is
/// accepting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lasso<S> {
    /// States from an initial state up to (not including) the cycle entry.
    pub prefix: Vec<S>,
    /// The cycle, entered at `cycle[0]`; non-empty.
    pub cycle: Vec<S>,
}

/// Exploration statistics, reported by the verifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distinct states visited by the outer DFS.
    pub states_visited: u64,
    /// Transitions expanded (outer and inner DFS).
    pub transitions_explored: u64,
}

/// The search's state budget was exhausted before an answer was reached.
///
/// The cap is checked between expansions, so `states_visited` may exceed
/// the configured maximum by one (the state whose expansion tripped it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// States visited when the budget tripped.
    pub states_visited: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "state budget exhausted after {} states",
            self.states_visited
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// The outcome of a budgeted lasso search: the witness (if any) plus the
/// exploration statistics, or budget exhaustion.
pub type SearchResult<S> = Result<(Option<Lasso<S>>, SearchStats), BudgetExceeded>;

/// Searches for an accepting lasso; `None` means the language is empty.
pub fn find_accepting_lasso<TS: TransitionSystem>(ts: &TS) -> Option<Lasso<TS::State>> {
    find_accepting_lasso_stats(ts).0
}

/// [`find_accepting_lasso`] with exploration statistics.
pub fn find_accepting_lasso_stats<TS: TransitionSystem>(
    ts: &TS,
) -> (Option<Lasso<TS::State>>, SearchStats) {
    find_accepting_lasso_budget(ts, u64::MAX).expect("unlimited budget")
}

/// [`find_accepting_lasso_stats`] with a cap on visited states — the
/// verifier's safety valve against state-space blowups (and the measuring
/// device of the `boundaries` crate's divergence experiments).
pub fn find_accepting_lasso_budget<TS: TransitionSystem>(
    ts: &TS,
    max_states: u64,
) -> SearchResult<TS::State> {
    let mut stats = SearchStats::default();
    let mut blue: HashSet<TS::State> = HashSet::new();
    let mut red: HashSet<TS::State> = HashSet::new();

    struct Frame<S> {
        state: S,
        succs: Vec<S>,
        next: usize,
    }

    for init in ts.initial_states() {
        if blue.contains(&init) {
            continue;
        }
        blue.insert(init.clone());
        stats.states_visited += 1;
        let mut stack: Vec<Frame<TS::State>> = vec![Frame {
            succs: ts.successors(&init),
            state: init,
            next: 0,
        }];
        while let Some(frame) = stack.last_mut() {
            if stats.states_visited > max_states {
                return Err(BudgetExceeded {
                    states_visited: stats.states_visited,
                });
            }
            if frame.next < frame.succs.len() {
                let succ = frame.succs[frame.next].clone();
                frame.next += 1;
                stats.transitions_explored += 1;
                if !blue.contains(&succ) {
                    blue.insert(succ.clone());
                    stats.states_visited += 1;
                    stack.push(Frame {
                        succs: ts.successors(&succ),
                        state: succ,
                        next: 0,
                    });
                }
            } else {
                // Postorder.
                let state = frame.state.clone();
                if ts.is_accepting(&state) {
                    if let Some(cycle) = red_search(ts, &state, &mut red, &mut stats) {
                        // The blue stack spells the path from the initial
                        // state to `state` (inclusive at the top).
                        let prefix: Vec<TS::State> = stack
                            .iter()
                            .take(stack.len() - 1)
                            .map(|f| f.state.clone())
                            .collect();
                        return Ok((Some(Lasso { prefix, cycle }), stats));
                    }
                }
                stack.pop();
            }
        }
    }
    Ok((None, stats))
}

/// Inner DFS from `seed`, looking for a transition back to `seed`.
/// Returns the cycle `[seed, …, last]` (with `last → seed`) if found.
fn red_search<TS: TransitionSystem>(
    ts: &TS,
    seed: &TS::State,
    red: &mut HashSet<TS::State>,
    stats: &mut SearchStats,
) -> Option<Vec<TS::State>> {
    struct Frame<S> {
        state: S,
        succs: Vec<S>,
        next: usize,
    }
    if red.contains(seed) {
        // A previous inner search already explored `seed` without closing a
        // cycle through an accepting seed; by the CVWY invariant no cycle
        // through `seed` exists either.
        return None;
    }
    red.insert(seed.clone());
    let mut stack: Vec<Frame<TS::State>> = vec![Frame {
        succs: ts.successors(seed),
        state: seed.clone(),
        next: 0,
    }];
    while let Some(frame) = stack.last_mut() {
        if frame.next < frame.succs.len() {
            let succ = frame.succs[frame.next].clone();
            frame.next += 1;
            stats.transitions_explored += 1;
            if &succ == seed {
                // Cycle closed: the red stack spells seed → … → top.
                return Some(stack.iter().map(|f| f.state.clone()).collect());
            }
            if !red.contains(&succ) {
                red.insert(succ.clone());
                stack.push(Frame {
                    succs: ts.successors(&succ),
                    state: succ,
                    next: 0,
                });
            }
        } else {
            stack.pop();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small explicit graph for testing.
    struct Graph {
        edges: Vec<Vec<usize>>,
        accepting: Vec<bool>,
        initial: Vec<usize>,
    }

    impl TransitionSystem for Graph {
        type State = usize;
        fn initial_states(&self) -> Vec<usize> {
            self.initial.clone()
        }
        fn successors(&self, s: &usize) -> Vec<usize> {
            self.edges[*s].clone()
        }
        fn is_accepting(&self, s: &usize) -> bool {
            self.accepting[*s]
        }
    }

    #[test]
    fn finds_self_loop_on_accepting_state() {
        let g = Graph {
            edges: vec![vec![1], vec![1]],
            accepting: vec![false, true],
            initial: vec![0],
        };
        let lasso = find_accepting_lasso(&g).unwrap();
        assert_eq!(lasso.prefix, vec![0]);
        assert_eq!(lasso.cycle, vec![1]);
    }

    #[test]
    fn rejects_acyclic_accepting_state() {
        let g = Graph {
            edges: vec![vec![1], vec![2], vec![]],
            accepting: vec![false, true, false],
            initial: vec![0],
        };
        assert!(find_accepting_lasso(&g).is_none());
    }

    #[test]
    fn rejects_cycle_without_accepting_state() {
        let g = Graph {
            edges: vec![vec![1], vec![0]],
            accepting: vec![false, false],
            initial: vec![0],
        };
        assert!(find_accepting_lasso(&g).is_none());
    }

    #[test]
    fn finds_longer_cycle_through_accepting_state() {
        // 0 → 1 → 2 → 3 → 1, accepting = {2}
        let g = Graph {
            edges: vec![vec![1], vec![2], vec![3], vec![1]],
            accepting: vec![false, false, true, false],
            initial: vec![0],
        };
        let lasso = find_accepting_lasso(&g).unwrap();
        // Witness validity: cycle closes and passes through an accepting state.
        assert!(!lasso.cycle.is_empty());
        let last = *lasso.cycle.last().unwrap();
        assert!(g.edges[last].contains(&lasso.cycle[0]));
        assert!(lasso.cycle.iter().any(|&s| g.accepting[s]));
        // Prefix is a real path from the initial state to the cycle entry.
        let mut cur = 0usize;
        for &next in lasso.prefix.iter().skip(1).chain(lasso.cycle.first()) {
            assert!(g.edges[cur].contains(&next));
            cur = next;
        }
    }

    #[test]
    fn accepting_state_only_reachable_not_on_cycle() {
        // 0 → 1(acc) → 2 → 0 : cycle 0,1,2 passes through 1 → lasso exists.
        let g = Graph {
            edges: vec![vec![1], vec![2], vec![0]],
            accepting: vec![false, true, false],
            initial: vec![0],
        };
        assert!(find_accepting_lasso(&g).is_some());
    }

    #[test]
    fn multiple_initial_states() {
        // Component of 0 is lasso-free; component of 5 has one.
        let g = Graph {
            edges: vec![vec![1], vec![], vec![], vec![], vec![], vec![6], vec![5]],
            accepting: vec![false, false, false, false, false, true, false],
            initial: vec![0, 5],
        };
        let lasso = find_accepting_lasso(&g).unwrap();
        assert!(lasso.cycle.contains(&5));
    }

    #[test]
    fn stats_count_states() {
        let g = Graph {
            edges: vec![vec![1], vec![2], vec![]],
            accepting: vec![false, false, false],
            initial: vec![0],
        };
        let (lasso, stats) = find_accepting_lasso_stats(&g);
        assert!(lasso.is_none());
        assert_eq!(stats.states_visited, 3);
        assert_eq!(stats.transitions_explored, 2);
    }

    /// Regression guard for the classic nested-DFS pitfall: an accepting
    /// state whose cycle is only discoverable after the red set has been
    /// seeded by an earlier (failed) inner search must still be found when
    /// postorder is respected.
    #[test]
    fn cvwy_postorder_interaction() {
        // 0 → 1 → 2, 2 → 1 (cycle 1-2), accepting = {1}; plus 0 → 3(acc) → 2.
        let g = Graph {
            edges: vec![vec![3, 1], vec![2], vec![1], vec![2]],
            accepting: vec![false, true, false, true],
            initial: vec![0],
        };
        let lasso = find_accepting_lasso(&g).unwrap();
        assert!(lasso.cycle.iter().any(|&s| g.accepting[s]));
    }
}
