//! Parallel accepting-lasso search (Büchi emptiness) over a shared
//! [`TransitionSystem`].
//!
//! The sequential engine ([`find_accepting_lasso_budget`]) runs CVWY
//! nested DFS, which is inherently sequential: its correctness leans on
//! postorder. Instead of a concurrent nested DFS, this engine splits the
//! problem into a phase that parallelizes perfectly and a phase that is
//! cheap enough to stay sequential:
//!
//! 1. **Parallel reachability** — `threads` workers explore the state
//!    space with per-worker deques and work stealing, recording every
//!    expanded edge. The visited set is sharded across mutexes; a shared
//!    atomic counter enforces the state budget.
//! 2. **Sequential analysis** — the recorded edges form an explicit graph
//!    (node count = states visited, which the budget already bounds).
//!    Tarjan's SCC algorithm finds a strongly connected component that
//!    both contains an accepting state and carries a cycle; breadth-first
//!    searches then extract a concrete lasso.
//!
//! **Determinism contract**: the *verdict* (lasso exists / empty / budget
//! exceeded at a given budget) depends only on the reachable graph, never
//! on thread scheduling. The particular lasso returned may differ between
//! runs — callers needing a canonical witness should re-run the sequential
//! engine.
//!
//! **Budget semantics**: like the sequential engine, the search fails once
//! visited states exceed `max_states`; concurrent insertion can overshoot
//! by at most one state per worker, so `states_visited ≤ max_states +
//! threads` on failure. Unlike the sequential engine — which can return a
//! lasso found before the budget trips — this engine explores the whole
//! reachable graph before looking for lassos, so a `Violated` verdict
//! requires a budget no smaller than the reachable state count.

use crate::emptiness::{
    BudgetExceeded, Lasso, SearchResult, SearchStats, TransitionSystem, PROGRESS_STRIDE_MASK,
};
use crate::limits::{payload_string, EngineCheckpoint, Interrupted, LimitedResult, SearchLimits};
use ddws_telemetry::{AbortReason, EngineTelemetry};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

#[cfg(doc)]
use crate::emptiness::find_accepting_lasso_budget;

/// Visited-set shards; a power of two well above any sane worker count so
/// shard collisions between concurrent inserts stay rare.
const VISIT_SHARDS: usize = 64;

fn shard_of<S: Hash>(s: &S) -> usize {
    // Keyless hasher: shard layout must not depend on process entropy.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    (h.finish() as usize) & (VISIT_SHARDS - 1)
}

/// Recovers a poisoned lock: a panicking worker may die while holding a
/// shard or queue lock, and the surviving workers must still be able to
/// drain and merge — the guarded structures stay structurally valid.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

struct Frontier<S> {
    visited: Vec<Mutex<HashSet<S>>>,
    queues: Vec<Mutex<VecDeque<S>>>,
    /// States enqueued or being expanded; 0 ⇒ exploration is complete.
    pending: AtomicUsize,
    visited_count: AtomicU64,
    /// Raised on any abort (budget, deadline, cancel, worker panic); every
    /// worker breaks out of its loop when it observes the flag.
    aborted: AtomicBool,
    /// The first abort reason recorded; later trips keep the flag raised
    /// but do not overwrite the reason.
    abort_reason: Mutex<Option<AbortReason>>,
    /// Global 1-based expansion ordinal for the fault hook.
    expansion_ticks: AtomicU64,
    max_states: u64,
}

impl<S: Clone + Eq + Hash> Frontier<S> {
    fn new(workers: usize, max_states: u64) -> Self {
        Frontier {
            visited: (0..VISIT_SHARDS).map(|_| Mutex::default()).collect(),
            queues: (0..workers).map(|_| Mutex::default()).collect(),
            pending: AtomicUsize::new(0),
            visited_count: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
            abort_reason: Mutex::new(None),
            expansion_ticks: AtomicU64::new(0),
            max_states,
        }
    }

    /// Records an abort: first reason wins, flag stays raised.
    fn trip(&self, reason: AbortReason) {
        let mut slot = relock(&self.abort_reason);
        if slot.is_none() {
            *slot = Some(reason);
        }
        self.aborted.store(true, Ordering::Relaxed);
    }

    /// Marks `s` visited; returns false if it already was. Trips the abort
    /// flag when the visited count passes `max_states` (mirroring the
    /// sequential engine's `states_visited > max_states` check).
    fn try_visit(&self, s: &S) -> bool {
        let mut shard = relock(&self.visited[shard_of(s)]);
        if !shard.insert(s.clone()) {
            return false;
        }
        drop(shard);
        let count = self.visited_count.fetch_add(1, Ordering::Relaxed) + 1;
        if count > self.max_states {
            self.trip(AbortReason::StateBudget {
                max_states: self.max_states,
            });
        }
        true
    }

    /// Enqueues `s` on worker `w`'s deque.
    fn push(&self, w: usize, s: S) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        relock(&self.queues[w]).push_back(s);
    }

    /// Whether `s` has already been marked visited (no insertion).
    ///
    /// This is the parallel engine's C3 probe: a state is always marked
    /// visited *before* it is expanded, so on any cycle of the reduced
    /// graph the last node to be expanded sees its cycle-successor already
    /// visited and falls back to a full expansion — every cycle therefore
    /// contains a fully expanded node, which is exactly the cycle proviso.
    fn already_visited(&self, s: &S) -> bool {
        relock(&self.visited[shard_of(s)]).contains(s)
    }

    /// Pops local work, or steals from another worker (oldest first, so
    /// stolen work is the coarsest-grained available).
    fn pop(&self, w: usize) -> Option<S> {
        if let Some(s) = relock(&self.queues[w]).pop_back() {
            return Some(s);
        }
        let n = self.queues.len();
        for i in 1..n {
            let victim = (w + i) % n;
            if let Some(s) = relock(&self.queues[victim]).pop_front() {
                return Some(s);
            }
        }
        None
    }

    /// Drains the visited shards into one vector (checkpoint capture).
    fn drain_visited(&self) -> Vec<S> {
        let mut all = Vec::with_capacity(self.visited_count.load(Ordering::Relaxed) as usize);
        for shard in &self.visited {
            all.extend(relock(shard).drain());
        }
        all
    }
}

/// One worker's share of the exploration: the edges it expanded and the
/// transitions it counted.
struct WorkerLog<S> {
    edges: Vec<(S, Arc<[S]>)>,
    transitions: u64,
    expanded: u64,
    ample_hits: u64,
    full_expansions: u64,
}

impl<S> WorkerLog<S> {
    fn new() -> Self {
        WorkerLog {
            edges: Vec::new(),
            transitions: 0,
            expanded: 0,
            ample_hits: 0,
            full_expansions: 0,
        }
    }
}

/// The worker body. Writes into a caller-owned log so a panic (caught by
/// the `catch_unwind` wrapper in [`run_exploration`]) still leaves the
/// partial counters and edge records mergeable.
///
/// Abort checks at the loop top: the shared abort flag and the cancel
/// token every iteration (one relaxed load each), the deadline on the
/// progress stride — first checked on iteration 0, so an expired deadline
/// stops the worker before it expands anything.
fn explore_worker_into<TS: TransitionSystem>(
    ts: &TS,
    frontier: &Frontier<TS::State>,
    w: usize,
    limits: &SearchLimits,
    tel: &EngineTelemetry<'_>,
    log: &mut WorkerLog<TS::State>,
) {
    let reduction = ts.reduction_active();
    let mut ticks: u64 = 0;
    loop {
        if frontier.aborted.load(Ordering::Relaxed) {
            break;
        }
        if let Some(token) = &limits.cancel {
            if token.is_cancelled() {
                frontier.trip(AbortReason::Cancelled {
                    reason: token.reason().unwrap_or_default(),
                });
                break;
            }
        }
        if ticks & PROGRESS_STRIDE_MASK == 0 {
            if let Some(deadline) = &limits.deadline {
                if deadline.is_expired() {
                    frontier.trip(AbortReason::DeadlineExceeded {
                        limit_ns: deadline.budget_ns,
                    });
                    break;
                }
            }
        }
        ticks += 1;
        let Some(state) = frontier.pop(w) else {
            if frontier.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::yield_now();
            continue;
        };
        // One expansion per dequeued state; worker-local counters only (the
        // shared atomics are touched once per ~1024 expansions below).
        log.expanded += 1;
        if let Some(hook) = &limits.fault {
            hook(frontier.expansion_ticks.fetch_add(1, Ordering::Relaxed) + 1);
        }
        if log.expanded & PROGRESS_STRIDE_MASK == 0 {
            tel.maybe_emit(
                frontier.visited_count.load(Ordering::Relaxed),
                frontier.pending.load(Ordering::SeqCst) as u64,
                0,
                log.ample_hits,
                log.full_expansions,
            );
        }
        let succs = if reduction {
            let exp = ts.successors_reduced(&state);
            if exp.ample && !exp.states.iter().any(|t| frontier.already_visited(t)) {
                log.ample_hits += 1;
                exp.states
            } else {
                // C3 fallback (an ample successor is already in the visited
                // set — see `already_visited`) or no ample subset existed.
                log.full_expansions += 1;
                if exp.ample {
                    ts.successors_full(&state)
                } else {
                    exp.states
                }
            }
        } else {
            ts.successors(&state)
        };
        log.transitions += succs.len() as u64;
        for succ in succs.iter() {
            if frontier.aborted.load(Ordering::Relaxed) {
                break;
            }
            if frontier.try_visit(succ) {
                frontier.push(w, succ.clone());
            }
        }
        // The edge record lands even when the successor loop aborted early:
        // resume treats recorded-but-unvisited targets as pending work.
        log.edges.push((state, succs));
        frontier.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Parallel counterpart of [`find_accepting_lasso_budget`]: same signature
/// plus a worker count, same verdict for any budget at least the reachable
/// state count (see the module docs for the budget caveat below that).
///
/// `threads = 0` uses [`std::thread::available_parallelism`]; `threads = 1`
/// still runs this engine (single worker), which is how the differential
/// harness pins scheduling out of the comparison.
pub fn find_accepting_lasso_budget_parallel<TS: TransitionSystem>(
    ts: &TS,
    max_states: u64,
    threads: usize,
) -> SearchResult<TS::State> {
    find_accepting_lasso_budget_parallel_with(ts, max_states, threads, &EngineTelemetry::silent())
}

/// [`find_accepting_lasso_budget_parallel`] with a telemetry bundle.
///
/// Compatibility wrapper over
/// [`find_accepting_lasso_limits_parallel_with`] for callers that only
/// budget states: interruption maps back to [`BudgetExceeded`], and a
/// worker panic propagates (the limits-based API catches it into a typed
/// stop instead).
pub fn find_accepting_lasso_budget_parallel_with<TS: TransitionSystem>(
    ts: &TS,
    max_states: u64,
    threads: usize,
    tel: &EngineTelemetry<'_>,
) -> SearchResult<TS::State> {
    match find_accepting_lasso_limits_parallel_with(
        ts,
        &SearchLimits::states(max_states),
        threads,
        tel,
    ) {
        Ok(found) => Ok(found),
        Err(stop) => match stop.reason {
            AbortReason::WorkerPanicked { payload, .. } => {
                std::panic::resume_unwind(Box::new(payload))
            }
            _ => Err(Box::new(BudgetExceeded {
                states_visited: stop.stats.states_visited,
                stats: stop.stats,
            })),
        },
    }
}

/// Parallel lasso search under the full [`SearchLimits`] contract: each
/// worker checks the progress gate on a coarse local-expansion stride
/// (frontier = pending queue size, depth reported as 0 — the exploration
/// is breadth-ordered), the sequential analysis phase is timed into
/// `lasso_ns`, and any stop — budget, deadline, cancellation, or a
/// panicking worker — drains the surviving workers, merges their partial
/// statistics, and returns a typed [`Interrupted`] (with a resumable
/// checkpoint for every reason except a panic).
pub fn find_accepting_lasso_limits_parallel_with<TS: TransitionSystem>(
    ts: &TS,
    limits: &SearchLimits,
    threads: usize,
    tel: &EngineTelemetry<'_>,
) -> LimitedResult<TS::State> {
    let workers = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    let frontier = Frontier::new(workers, limits.state_cap());
    for (i, init) in ts.initial_states().iter().enumerate() {
        if frontier.try_visit(init) {
            frontier.push(i % workers, init.clone());
        }
    }
    run_exploration(
        ts,
        frontier,
        workers,
        limits,
        tel,
        SearchStats::default(),
        Vec::new(),
    )
}

/// A frozen parallel search: the merged visited set and edge relation at
/// a graceful stop. Opaque; resume with
/// [`resume_accepting_lasso_with`](crate::limits::resume_accepting_lasso_with).
#[derive(Clone, Debug)]
pub struct ParCheckpoint<S> {
    visited: Vec<S>,
    edges: EdgeList<S>,
    workers: usize,
    stats: SearchStats,
}

/// The materialized edge relation: each expanded state with its memoized
/// successor slice.
type EdgeList<S> = Vec<(S, Arc<[S]>)>;

impl<S> ParCheckpoint<S> {
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    pub(crate) fn stats(&self) -> &SearchStats {
        &self.stats
    }
}

/// Continues a parallel checkpoint. The frontier is reconstructed from
/// the frozen visited set and edge relation: every visited state without
/// a recorded expansion is re-enqueued (covering states whose expansion
/// an abort cut short), and every recorded-but-unvisited edge target is
/// visited and enqueued. Re-expansion is idempotent — the visited set
/// already contains everything the first run saw, so the reachable set
/// (and hence the verdict) matches an uninterrupted run.
pub(crate) fn resume_par<TS: TransitionSystem>(
    ts: &TS,
    cp: ParCheckpoint<TS::State>,
    limits: &SearchLimits,
    tel: &EngineTelemetry<'_>,
) -> LimitedResult<TS::State> {
    let workers = cp.workers.max(1);
    let frontier = Frontier::new(workers, limits.state_cap());
    frontier
        .visited_count
        .store(cp.visited.len() as u64, Ordering::Relaxed);
    for s in &cp.visited {
        relock(&frontier.visited[shard_of(s)]).insert(s.clone());
    }
    let expanded: HashSet<&TS::State> = cp.edges.iter().map(|(src, _)| src).collect();
    let mut next_queue = 0usize;
    for s in &cp.visited {
        if !expanded.contains(s) {
            frontier.push(next_queue % workers, s.clone());
            next_queue += 1;
        }
    }
    for (_, succs) in &cp.edges {
        for t in succs.iter() {
            if frontier.try_visit(t) {
                frontier.push(next_queue % workers, t.clone());
                next_queue += 1;
            }
        }
    }
    let mut prior_stats = cp.stats;
    prior_stats.truncated = false;
    run_exploration(ts, frontier, workers, limits, tel, prior_stats, cp.edges)
}

/// Spawns the workers (each body wrapped in `catch_unwind`; a panicking
/// worker trips the abort flag and the survivors drain), joins them,
/// merges stats, and either reports the abort or runs the sequential
/// analysis phase over `prior_edges` plus the freshly recorded edges.
#[allow(clippy::too_many_arguments)]
fn run_exploration<TS: TransitionSystem>(
    ts: &TS,
    frontier: Frontier<TS::State>,
    workers: usize,
    limits: &SearchLimits,
    tel: &EngineTelemetry<'_>,
    prior_stats: SearchStats,
    prior_edges: EdgeList<TS::State>,
) -> LimitedResult<TS::State> {
    let mut logs: Vec<WorkerLog<TS::State>> = Vec::with_capacity(workers);
    let run_one = |w: usize, log: &mut WorkerLog<TS::State>| {
        let body = AssertUnwindSafe(|| explore_worker_into(ts, &frontier, w, limits, tel, log));
        if let Err(payload) = std::panic::catch_unwind(body) {
            frontier.trip(AbortReason::WorkerPanicked {
                worker: w,
                payload: payload_string(payload),
            });
        }
    };
    if workers == 1 {
        let mut log = WorkerLog::new();
        run_one(0, &mut log);
        logs.push(log);
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let run_one = &run_one;
                    scope.spawn(move || {
                        let mut log = WorkerLog::new();
                        run_one(w, &mut log);
                        log
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(log) => logs.push(log),
                    // Unreachable in practice (the worker body catches its
                    // own panics), but never let a join kill the process.
                    Err(payload) => frontier.trip(AbortReason::WorkerPanicked {
                        worker: w,
                        payload: payload_string(payload),
                    }),
                }
            }
        });
    }

    // Shard merge: each worker's plain counters fold into one block here,
    // at join — the exploration hot path never touches shared stats. On a
    // resumed run `prior_stats` carries the checkpointed counters and the
    // visited count (seeded into the frontier) already spans both legs.
    let mut stats = prior_stats;
    stats.states_visited = frontier.visited_count.load(Ordering::Relaxed);
    stats.transitions_explored += logs.iter().map(|l| l.transitions).sum::<u64>();
    stats.states_expanded += logs.iter().map(|l| l.expanded).sum::<u64>();
    stats.ample_hits += logs.iter().map(|l| l.ample_hits).sum::<u64>();
    stats.full_expansions += logs.iter().map(|l| l.full_expansions).sum::<u64>();

    if frontier.aborted.load(Ordering::Relaxed) {
        let reason = relock(&frontier.abort_reason)
            .take()
            .unwrap_or(AbortReason::StateBudget {
                max_states: frontier.max_states,
            });
        stats.truncated = true;
        let checkpoint = if matches!(reason, AbortReason::WorkerPanicked { .. }) {
            None
        } else {
            let mut edges = prior_edges;
            for log in logs {
                edges.extend(log.edges);
            }
            Some(EngineCheckpoint::Par(ParCheckpoint {
                visited: frontier.drain_visited(),
                edges,
                workers,
                stats,
            }))
        };
        return Err(Box::new(Interrupted {
            reason,
            stats,
            checkpoint,
        }));
    }

    // ---- Sequential analysis over the materialized graph. ----
    let analysis_start = Instant::now();
    let mut index: HashMap<TS::State, usize> = HashMap::new();
    let mut nodes: Vec<TS::State> = Vec::new();
    let intern =
        |s: &TS::State, nodes: &mut Vec<TS::State>, index: &mut HashMap<TS::State, usize>| {
            *index.entry(s.clone()).or_insert_with(|| {
                nodes.push(s.clone());
                nodes.len() - 1
            })
        };
    let mut adj: Vec<Vec<usize>> = Vec::new();
    let all_edges = prior_edges
        .iter()
        .chain(logs.iter().flat_map(|l| l.edges.iter()));
    for (src, succs) in all_edges {
        let si = intern(src, &mut nodes, &mut index);
        if adj.len() <= si {
            adj.resize(nodes.len(), Vec::new());
        }
        let targets: Vec<usize> = succs
            .iter()
            .map(|t| intern(t, &mut nodes, &mut index))
            .collect();
        adj.resize(nodes.len(), Vec::new());
        adj[si] = targets;
    }
    adj.resize(nodes.len(), Vec::new());

    let accepting: Vec<bool> = nodes.iter().map(|s| ts.is_accepting(s)).collect();
    let init_ids: Vec<usize> = ts
        .initial_states()
        .iter()
        .filter_map(|s| index.get(s).copied())
        .collect();

    let Some((entry, cycle_ids)) = find_accepting_cycle(&adj, &accepting) else {
        stats.lasso_ns += analysis_start.elapsed().as_nanos() as u64;
        return Ok((None, stats));
    };
    let prefix_ids = shortest_path_from_any(&adj, &init_ids, entry)
        .expect("cycle entry is reachable from an initial state");
    // BFS re-walks edges; count them so stats reflect the extraction work.
    stats.transitions_explored += cycle_ids.len() as u64 + prefix_ids.len() as u64;

    // `prefix` runs up to (not including) the cycle entry.
    let prefix: Vec<TS::State> = prefix_ids[..prefix_ids.len() - 1]
        .iter()
        .map(|&i| nodes[i].clone())
        .collect();
    let cycle: Vec<TS::State> = cycle_ids.iter().map(|&i| nodes[i].clone()).collect();
    stats.lasso_ns += analysis_start.elapsed().as_nanos() as u64;
    Ok((Some(Lasso { prefix, cycle }), stats))
}

/// Finds a cycle through an accepting state: picks a strongly connected
/// component that contains an accepting node and at least one edge inside
/// itself, and returns `(accepting node, cycle starting at that node)`.
fn find_accepting_cycle(adj: &[Vec<usize>], accepting: &[bool]) -> Option<(usize, Vec<usize>)> {
    let sccs = tarjan_sccs(adj);
    let mut comp_of = vec![0usize; adj.len()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &n in comp {
            comp_of[n] = ci;
        }
    }
    for comp in &sccs {
        let has_cycle = comp.len() > 1 || adj[comp[0]].contains(&comp[0]);
        if !has_cycle {
            continue;
        }
        let Some(&seed) = comp.iter().find(|&&n| accepting[n]) else {
            continue;
        };
        // Shortest cycle through `seed`, staying inside its component.
        let ci = comp_of[seed];
        let mut back: HashMap<usize, usize> = HashMap::new();
        let mut queue = VecDeque::new();
        for &t in &adj[seed] {
            if comp_of[t] == ci && !back.contains_key(&t) {
                back.insert(t, seed);
                queue.push_back(t);
            }
        }
        if adj[seed].contains(&seed) {
            return Some((seed, vec![seed]));
        }
        while let Some(n) = queue.pop_front() {
            if n == seed {
                break;
            }
            for &t in &adj[n] {
                if comp_of[t] == ci && !back.contains_key(&t) {
                    back.insert(t, n);
                    queue.push_back(t);
                }
            }
        }
        let mut cycle = vec![seed];
        let mut cur = *back.get(&seed).expect("cycle closes within the SCC");
        while cur != seed {
            cycle.push(cur);
            cur = back[&cur];
        }
        cycle[1..].reverse();
        return Some((seed, cycle));
    }
    None
}

/// Shortest path (inclusive of both ends) from any source to `target`.
fn shortest_path_from_any(
    adj: &[Vec<usize>],
    sources: &[usize],
    target: usize,
) -> Option<Vec<usize>> {
    let mut back: HashMap<usize, Option<usize>> = HashMap::new();
    let mut queue = VecDeque::new();
    for &s in sources {
        if let Entry::Vacant(e) = back.entry(s) {
            e.insert(None);
            queue.push_back(s);
        }
    }
    while let Some(n) = queue.pop_front() {
        if n == target {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&Some(p)) = back.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &t in &adj[n] {
            if let Entry::Vacant(e) = back.entry(t) {
                e.insert(Some(n));
                queue.push_back(t);
            }
        }
    }
    None
}

/// Iterative Tarjan strongly-connected components.
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // (node, next child position) — explicit call stack.
    let mut call: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        call.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emptiness::find_accepting_lasso_budget;

    struct Graph {
        edges: Vec<Vec<usize>>,
        accepting: Vec<bool>,
        initial: Vec<usize>,
    }

    impl TransitionSystem for Graph {
        type State = usize;
        fn initial_states(&self) -> Vec<usize> {
            self.initial.clone()
        }
        fn successors(&self, s: &usize) -> Arc<[usize]> {
            self.edges[*s].as_slice().into()
        }
        fn is_accepting(&self, s: &usize) -> bool {
            self.accepting[*s]
        }
    }

    fn assert_valid_lasso(g: &Graph, lasso: &Lasso<usize>) {
        assert!(!lasso.cycle.is_empty());
        let last = *lasso.cycle.last().unwrap();
        assert!(g.edges[last].contains(&lasso.cycle[0]), "cycle closes");
        assert!(lasso.cycle.iter().any(|&s| g.accepting[s]), "cycle accepts");
        let full: Vec<usize> = lasso.prefix.iter().chain(&lasso.cycle).copied().collect();
        assert!(g.initial.contains(&full[0]), "starts initial");
        for pair in full.windows(2) {
            assert!(g.edges[pair[0]].contains(&pair[1]), "path edge {pair:?}");
        }
    }

    /// A layered graph with an accepting cycle buried at the bottom, plus
    /// enough off-path states that several workers get real work.
    fn layered(width: usize, depth: usize, accepting_cycle: bool) -> Graph {
        // Node layout: layer l occupies [1 + l*width, 1 + (l+1)*width).
        let n = 2 + width * depth;
        let mut edges = vec![Vec::new(); n];
        let mut accepting = vec![false; n];
        for w in 0..width {
            edges[0].push(1 + w);
        }
        for l in 0..depth - 1 {
            for w in 0..width {
                let from = 1 + l * width + w;
                for w2 in 0..width {
                    edges[from].push(1 + (l + 1) * width + w2);
                }
            }
        }
        let sink = n - 1;
        for w in 0..width {
            edges[1 + (depth - 1) * width + w].push(sink);
        }
        if accepting_cycle {
            edges[sink].push(sink);
            accepting[sink] = true;
        }
        Graph {
            edges,
            accepting,
            initial: vec![0],
        }
    }

    #[test]
    fn verdict_matches_sequential_on_layered_graphs() {
        for &accepting in &[true, false] {
            let g = layered(8, 6, accepting);
            let seq = find_accepting_lasso_budget(&g, u64::MAX).unwrap();
            for threads in [1, 2, 4] {
                let par = find_accepting_lasso_budget_parallel(&g, u64::MAX, threads).unwrap();
                assert_eq!(seq.0.is_some(), par.0.is_some(), "threads={threads}");
                if seq.0.is_none() {
                    // On empty languages both engines visit the whole
                    // reachable set; with a lasso the sequential DFS may
                    // stop early, so counts are comparable only here.
                    assert_eq!(seq.1.states_visited, par.1.states_visited);
                }
                if let Some(lasso) = &par.0 {
                    assert_valid_lasso(&g, lasso);
                }
            }
        }
    }

    #[test]
    fn finds_long_cycle_through_accepting_state() {
        // 0 → 1 → 2 → 3 → 1, accepting = {2}: entry ≠ accepting seed.
        let g = Graph {
            edges: vec![vec![1], vec![2], vec![3], vec![1]],
            accepting: vec![false, false, true, false],
            initial: vec![0],
        };
        for threads in [1, 3] {
            let (lasso, _) = find_accepting_lasso_budget_parallel(&g, u64::MAX, threads).unwrap();
            assert_valid_lasso(&g, &lasso.unwrap());
        }
    }

    #[test]
    fn empty_language_and_multiple_initials() {
        let g = Graph {
            edges: vec![vec![1], vec![], vec![1]],
            accepting: vec![false, true, false],
            initial: vec![0, 2],
        };
        let (lasso, stats) = find_accepting_lasso_budget_parallel(&g, u64::MAX, 2).unwrap();
        assert!(lasso.is_none());
        assert_eq!(stats.states_visited, 3);
    }

    #[test]
    fn budget_trips_with_bounded_overshoot() {
        let g = layered(10, 50, false); // 502 states
        for threads in [1usize, 2, 4] {
            let err =
                find_accepting_lasso_budget_parallel(&g, 100, threads).expect_err("over budget");
            assert!(err.states_visited > 100);
            assert!(
                err.states_visited <= 100 + threads as u64 + 1,
                "overshoot {} with {threads} threads",
                err.states_visited
            );
            assert!(
                err.stats.truncated,
                "threads={threads}: abort stats flagged"
            );
            assert_eq!(err.stats.states_visited, err.states_visited);
        }
    }

    #[test]
    fn c3_proviso_recovers_hidden_lasso() {
        // The ample set at state 1 points back into the cycle; because every
        // state is marked visited before expansion, the worker expanding 1
        // sees its ample successor 0 already visited and falls back to the
        // full expansion, recovering the lasso through the accepting state.
        let g = crate::emptiness::test_graphs::c3_trap();
        for threads in [1usize, 2, 4] {
            let (lasso, stats) =
                find_accepting_lasso_budget_parallel(&g, u64::MAX, threads).unwrap();
            let lasso = lasso.expect("C3 fallback must restore the full expansion");
            assert!(lasso.cycle.contains(&2), "threads={threads}");
            assert_eq!(stats.ample_hits, 0);
            assert!(stats.full_expansions >= 1);
        }
    }

    #[test]
    fn ample_subset_taken_when_no_cycle_closes() {
        // Single worker keeps the exploration order deterministic: 0's ample
        // set {1} prunes state 2 from the search entirely.
        let g = crate::emptiness::test_graphs::ReducedGraph {
            edges: vec![vec![1, 2], vec![3], vec![3], vec![]],
            accepting: vec![false, false, false, false],
            initial: vec![0],
            ample: vec![Some(vec![1]), None, None, None],
        };
        let (lasso, stats) = find_accepting_lasso_budget_parallel(&g, u64::MAX, 1).unwrap();
        assert!(lasso.is_none());
        assert_eq!(stats.ample_hits, 1);
        assert_eq!(
            stats.states_visited, 3,
            "state 2 is pruned by the ample set"
        );
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let g = layered(4, 4, true);
        let (lasso, _) = find_accepting_lasso_budget_parallel(&g, u64::MAX, 0).unwrap();
        assert_valid_lasso(&g, &lasso.unwrap());
    }

    #[test]
    fn self_loop_on_initial_accepting_state() {
        let g = Graph {
            edges: vec![vec![0]],
            accepting: vec![true],
            initial: vec![0],
        };
        let (lasso, _) = find_accepting_lasso_budget_parallel(&g, u64::MAX, 2).unwrap();
        let lasso = lasso.unwrap();
        assert!(lasso.prefix.is_empty());
        assert_eq!(lasso.cycle, vec![0]);
    }
}
