//! Nondeterministic Büchi automata.

use crate::emptiness::{find_accepting_lasso, TransitionSystem};
use crate::guard::{Guard, Letter};
use std::fmt;
use std::sync::Arc;

/// Index of an automaton state.
pub type StateId = usize;

/// A transition: `guard` must admit the letter read; control moves to
/// `target`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Conjunctive-literal guard over the atomic propositions.
    pub guard: Guard,
    /// Destination state.
    pub target: StateId,
}

/// A nondeterministic Büchi automaton over the alphabet `2^num_aps`.
///
/// Accepts an infinite word iff some run visits an accepting state
/// infinitely often.
#[derive(Clone, Debug, Default)]
pub struct Nba {
    /// Number of atomic propositions (alphabet is `2^num_aps`).
    pub num_aps: u32,
    /// Outgoing transitions per state.
    pub transitions: Vec<Vec<Transition>>,
    /// Initial states.
    pub initial: Vec<StateId>,
    /// Acceptance flags per state.
    pub accepting: Vec<bool>,
}

impl Nba {
    /// Creates an automaton with `num_states` states and no transitions.
    pub fn new(num_aps: u32, num_states: usize) -> Self {
        assert!(num_aps <= 64, "at most 64 atomic propositions");
        Nba {
            num_aps,
            transitions: vec![Vec::new(); num_states],
            initial: Vec::new(),
            accepting: vec![false; num_states],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Adds a fresh state, returning its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        self.transitions.push(Vec::new());
        self.accepting.push(accepting);
        self.transitions.len() - 1
    }

    /// Adds a transition; unsatisfiable guards are silently dropped.
    pub fn add_transition(&mut self, from: StateId, guard: Guard, to: StateId) {
        if guard.is_satisfiable() {
            self.transitions[from].push(Transition { guard, target: to });
        }
    }

    /// Marks a state initial.
    pub fn add_initial(&mut self, s: StateId) {
        if !self.initial.contains(&s) {
            self.initial.push(s);
        }
    }

    /// Successor states on `letter`.
    pub fn successors(&self, s: StateId, letter: Letter) -> impl Iterator<Item = StateId> + '_ {
        self.transitions[s]
            .iter()
            .filter(move |t| t.guard.admits(letter))
            .map(|t| t.target)
    }

    /// Whether the automaton is deterministic *and complete*: exactly one
    /// successor per (state, letter). Checked by explicit alphabet
    /// enumeration, so only call it for small `num_aps`.
    pub fn is_deterministic_complete(&self) -> bool {
        if self.initial.len() != 1 {
            return false;
        }
        for s in 0..self.num_states() {
            for letter in crate::guard::all_letters(self.num_aps) {
                if self.successors(s, letter).count() != 1 {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the language is empty (no accepting lasso in the guard-
    /// satisfiable transition graph).
    pub fn is_empty(&self) -> bool {
        find_accepting_lasso(&NbaGraph { nba: self }).is_none()
    }

    /// Whether the automaton accepts the ultimately periodic word
    /// `prefix · cycle^ω`.
    ///
    /// # Panics
    /// Panics if `cycle` is empty.
    pub fn accepts_lasso(&self, prefix: &[Letter], cycle: &[Letter]) -> bool {
        assert!(!cycle.is_empty(), "lasso cycle must be non-empty");
        let product = WordProduct {
            nba: self,
            prefix,
            cycle,
        };
        find_accepting_lasso(&product).is_some()
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }
}

impl fmt::Display for Nba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "NBA: {} states, {} transitions, initial {:?}",
            self.num_states(),
            self.num_transitions(),
            self.initial
        )?;
        for (s, outs) in self.transitions.iter().enumerate() {
            let marker = if self.accepting[s] { "*" } else { " " };
            writeln!(f, " {marker}{s}:")?;
            for t in outs {
                writeln!(f, "    --[{}]--> {}", t.guard, t.target)?;
            }
        }
        Ok(())
    }
}

/// The NBA viewed as a plain graph (guards erased), for emptiness.
struct NbaGraph<'a> {
    nba: &'a Nba,
}

impl TransitionSystem for NbaGraph<'_> {
    type State = StateId;

    fn initial_states(&self) -> Vec<StateId> {
        self.nba.initial.clone()
    }

    fn successors(&self, s: &StateId) -> Arc<[StateId]> {
        self.nba.transitions[*s].iter().map(|t| t.target).collect()
    }

    fn is_accepting(&self, s: &StateId) -> bool {
        self.nba.accepting[*s]
    }
}

/// Product of the NBA with a lasso-shaped word, for membership testing.
struct WordProduct<'a> {
    nba: &'a Nba,
    prefix: &'a [Letter],
    cycle: &'a [Letter],
}

impl WordProduct<'_> {
    fn letter(&self, pos: usize) -> Letter {
        if pos < self.prefix.len() {
            self.prefix[pos]
        } else {
            self.cycle[(pos - self.prefix.len()) % self.cycle.len()]
        }
    }

    fn next_pos(&self, pos: usize) -> usize {
        let n = self.prefix.len();
        let m = self.cycle.len();
        if pos + 1 < n + m {
            pos + 1
        } else {
            n
        }
    }
}

impl TransitionSystem for WordProduct<'_> {
    type State = (StateId, usize);

    fn initial_states(&self) -> Vec<(StateId, usize)> {
        self.nba.initial.iter().map(|&s| (s, 0)).collect()
    }

    fn successors(&self, &(s, pos): &(StateId, usize)) -> Arc<[(StateId, usize)]> {
        let letter = self.letter(pos);
        let next = self.next_pos(pos);
        self.nba.successors(s, letter).map(|t| (t, next)).collect()
    }

    fn is_accepting(&self, &(s, _): &(StateId, usize)) -> bool {
        self.nba.accepting[s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Automaton for `G F p0`: two states, accepting on seeing p0.
    fn gf_p0() -> Nba {
        let mut nba = Nba::new(1, 2);
        nba.add_initial(0);
        // state 0: waiting for p0
        nba.add_transition(0, Guard::forbid(0), 0);
        nba.add_transition(0, Guard::require(0), 1);
        // state 1 (accepting): saw p0
        nba.add_transition(1, Guard::forbid(0), 0);
        nba.add_transition(1, Guard::require(0), 1);
        nba.accepting[1] = true;
        nba
    }

    #[test]
    fn accepts_lasso_membership() {
        let nba = gf_p0();
        assert!(nba.accepts_lasso(&[], &[1])); // p0 forever
        assert!(nba.accepts_lasso(&[0, 0], &[0, 1])); // p0 infinitely often
        assert!(!nba.accepts_lasso(&[1, 1], &[0])); // p0 only finitely often
    }

    #[test]
    fn emptiness() {
        let nba = gf_p0();
        assert!(!nba.is_empty());
        // An automaton whose accepting state is unreachable is empty.
        let mut dead = Nba::new(1, 2);
        dead.add_initial(0);
        dead.add_transition(0, Guard::TOP, 0);
        dead.accepting[1] = true;
        assert!(dead.is_empty());
        // An automaton with an accepting state but no cycle through it.
        let mut no_cycle = Nba::new(1, 2);
        no_cycle.add_initial(0);
        no_cycle.add_transition(0, Guard::TOP, 1);
        no_cycle.accepting[1] = true;
        assert!(no_cycle.is_empty());
    }

    #[test]
    fn unsatisfiable_guards_are_dropped() {
        let mut nba = Nba::new(1, 1);
        nba.add_transition(0, Guard::require(0).and(Guard::forbid(0)), 0);
        assert_eq!(nba.num_transitions(), 0);
    }

    #[test]
    fn determinism_check() {
        let nba = gf_p0();
        assert!(nba.is_deterministic_complete());
        let mut nondeterministic = gf_p0();
        nondeterministic.add_transition(0, Guard::TOP, 1);
        assert!(!nondeterministic.is_deterministic_complete());
        let mut incomplete = Nba::new(1, 1);
        incomplete.add_initial(0);
        incomplete.add_transition(0, Guard::require(0), 0);
        assert!(!incomplete.is_deterministic_complete());
    }
}
