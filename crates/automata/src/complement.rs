//! Büchi complementation.
//!
//! Conversation-protocol verification (Section 4 of the paper) asks whether
//! *every* run of a composition is accepted by the protocol automaton `B`,
//! i.e. whether `traces(C) ∩ L(B)^c = ∅`. That needs the complement of `B`:
//!
//! * [`complement_deterministic`] — the two-copy construction for
//!   deterministic automata (protocols are usually written
//!   deterministically): linear blow-up;
//! * [`complement`] — the rank-based Kupferman–Vardi construction for
//!   arbitrary automata: `2^{O(n log n)}` worst case, fine for the small
//!   automata protocols are in practice.
//!
//! Both constructions enumerate the alphabet explicitly, so they require a
//! modest number of atomic propositions (protocol alphabets are small).

use crate::guard::{all_letters, Guard, Letter};
use crate::nba::{Nba, StateId};
use std::collections::HashMap;

/// An exact-letter guard: admits `letter` and nothing else.
fn letter_guard(letter: Letter, num_aps: u32) -> Guard {
    let mask = if num_aps == 64 {
        u64::MAX
    } else {
        (1u64 << num_aps) - 1
    };
    Guard {
        pos: letter & mask,
        neg: !letter & mask,
    }
}

/// Completes an automaton: adds a rejecting sink so every state has at least
/// one successor on every letter. Preserves the language.
pub fn complete(nba: &Nba) -> Nba {
    let mut out = nba.clone();
    let mut sink: Option<StateId> = None;
    for s in 0..nba.num_states() {
        for letter in all_letters(nba.num_aps) {
            if out.successors(s, letter).next().is_none() {
                let sink_id = *sink.get_or_insert_with(|| out.add_state(false));
                out.add_transition(s, letter_guard(letter, nba.num_aps), sink_id);
            }
        }
    }
    if let Some(sink_id) = sink {
        out.add_transition(sink_id, Guard::TOP, sink_id);
    }
    if out.initial.is_empty() {
        // No initial state accepts nothing; completion gives it a sink start.
        let sink_id = sink.unwrap_or_else(|| {
            let id = out.add_state(false);
            out.add_transition(id, Guard::TOP, id);
            id
        });
        out.add_initial(sink_id);
    }
    out
}

/// Complements a *deterministic* automaton (after [`complete`]-ing it).
///
/// A word is rejected by a deterministic Büchi automaton iff its unique run
/// eventually stops visiting accepting states. The complement guesses that
/// point: copy 1 simulates the automaton; at any moment it may jump to
/// copy 2, which only admits non-accepting states and is entirely accepting.
///
/// # Panics
/// Panics if the completed automaton is not deterministic.
pub fn complement_deterministic(nba: &Nba) -> Nba {
    let a = complete(nba);
    assert!(
        a.is_deterministic_complete(),
        "complement_deterministic requires a deterministic automaton; \
         use `complement` for nondeterministic ones"
    );
    let n = a.num_states();
    // States: 0..n = copy 1 (non-accepting), n..2n = copy 2 (accepting).
    let mut out = Nba::new(a.num_aps, 2 * n);
    for s in n..2 * n {
        out.accepting[s] = true;
    }
    out.add_initial(a.initial[0]);
    for s in 0..n {
        for t in &a.transitions[s] {
            // Copy 1 follows the automaton...
            out.add_transition(s, t.guard, t.target);
            // ...and may jump to copy 2 on a non-accepting target.
            if !a.accepting[t.target] {
                out.add_transition(s, t.guard, n + t.target);
                // Copy 2 stays among non-accepting states.
                if !a.accepting[s] {
                    out.add_transition(n + s, t.guard, n + t.target);
                }
            }
        }
    }
    out
}

/// Rank-based (Kupferman–Vardi) complementation of an arbitrary Büchi
/// automaton.
///
/// States of the complement are pairs `(g, O)` where `g` is a *level
/// ranking* — a partial map from states to ranks in `0..=2n`, even on
/// accepting states — and `O` is the subset of even-ranked states still
/// owing a visit to an odd rank. A run of the complement exists iff every
/// run of the original gets trapped at an odd rank, i.e. the word is
/// rejected.
pub fn complement(nba: &Nba) -> Nba {
    let n = nba.num_states();
    assert!(
        n <= 10,
        "rank-based complementation is exponential; automaton has {n} > 10 states"
    );
    let max_rank = 2 * n;

    // A ranking: rank per state, `None` = ⊥ (state not tracked).
    type Ranking = Vec<Option<usize>>;

    #[derive(Clone, PartialEq, Eq, Hash)]
    struct KvState {
        g: Ranking,
        o: Vec<bool>,
    }

    let mut out = Nba::new(nba.num_aps, 0);
    let mut ids: HashMap<KvState, StateId> = HashMap::new();
    let mut worklist: Vec<KvState> = Vec::new();

    fn intern(
        ids: &mut HashMap<KvState, StateId>,
        s: KvState,
        out: &mut Nba,
        wl: &mut Vec<KvState>,
    ) -> StateId {
        if let Some(&id) = ids.get(&s) {
            return id;
        }
        let accepting = s.o.iter().all(|&b| !b);
        let id = out.add_state(accepting);
        ids.insert(s.clone(), id);
        wl.push(s);
        id
    }

    // Initial: initial states ranked 2n, everything else ⊥, O = ∅.
    let mut g0: Ranking = vec![None; n];
    for &q in &nba.initial {
        g0[q] = Some(max_rank);
    }
    let init = intern(
        &mut ids,
        KvState {
            g: g0,
            o: vec![false; n],
        },
        &mut out,
        &mut worklist,
    );
    out.add_initial(init);

    while let Some(state) = worklist.pop() {
        let src = ids[&state];
        for letter in all_letters(nba.num_aps) {
            // Rank ceiling per successor state: min over predecessors.
            let mut ceiling: Vec<Option<usize>> = vec![None; n];
            let mut covered = true;
            for q in 0..n {
                let Some(rank) = state.g[q] else { continue };
                for q2 in nba.successors(q, letter) {
                    ceiling[q2] = Some(match ceiling[q2] {
                        Some(c) => c.min(rank),
                        None => rank,
                    });
                }
                // A tracked state must have at least one successor for the
                // ranking to cover it — with `covered == false` this letter
                // admits no run at all from q, which only *helps* the
                // complement; the empty-domain ranking handles it, but only
                // if *no* tracked state moves. Mixed cases are fine: ranks
                // track runs, and runs that die need no rank.
                let _ = &mut covered;
            }

            // Enumerate all rankings g' with g'(q2) ≤ ceiling(q2) (and even
            // on accepting states), for exactly the covered successors.
            let domain: Vec<usize> = (0..n).filter(|&q| ceiling[q].is_some()).collect();
            let mut choices: Vec<Vec<usize>> = Vec::with_capacity(domain.len());
            for &q in &domain {
                let c = ceiling[q].expect("domain member");
                let ranks: Vec<usize> = (0..=c)
                    .filter(|r| !nba.accepting[q] || r % 2 == 0)
                    .collect();
                choices.push(ranks);
            }

            // Cartesian product of rank choices.
            let mut assignment = vec![0usize; domain.len()];
            loop {
                // Build g'.
                let mut g2: Ranking = vec![None; n];
                let mut ok = true;
                for (i, &q) in domain.iter().enumerate() {
                    let rank = choices[i].get(assignment[i]).copied();
                    match rank {
                        Some(r) => g2[q] = Some(r),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    // O' update.
                    let o_nonempty = state.o.iter().any(|&b| b);
                    let mut o2 = vec![false; n];
                    if o_nonempty {
                        // Successors of O that remain even-ranked.
                        for q in 0..n {
                            if state.o[q] {
                                for q2 in nba.successors(q, letter) {
                                    if let Some(r) = g2[q2] {
                                        if r % 2 == 0 {
                                            o2[q2] = true;
                                        }
                                    }
                                }
                            }
                        }
                    } else {
                        // Reset: all even-ranked states.
                        for q in 0..n {
                            if let Some(r) = g2[q] {
                                if r % 2 == 0 {
                                    o2[q] = true;
                                }
                            }
                        }
                    }
                    let dst = intern(&mut ids, KvState { g: g2, o: o2 }, &mut out, &mut worklist);
                    out.add_transition(src, letter_guard(letter, nba.num_aps), dst);
                }
                // Advance the odometer.
                let mut i = 0;
                loop {
                    if i == assignment.len() {
                        break;
                    }
                    assignment[i] += 1;
                    if assignment[i] < choices[i].len() {
                        break;
                    }
                    assignment[i] = 0;
                    i += 1;
                }
                if i == assignment.len() {
                    break;
                }
                if assignment.iter().all(|&x| x == 0) {
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ltl::Ltl;
    use crate::translate::ltl_to_nba;

    /// Hand-built deterministic automaton for `G F p0`.
    fn det_gf_p0() -> Nba {
        let mut nba = Nba::new(1, 2);
        nba.add_initial(0);
        nba.add_transition(0, Guard::forbid(0), 0);
        nba.add_transition(0, Guard::require(0), 1);
        nba.add_transition(1, Guard::forbid(0), 0);
        nba.add_transition(1, Guard::require(0), 1);
        nba.accepting[1] = true;
        nba
    }

    const WORDS: [(&[Letter], &[Letter]); 6] = [
        (&[], &[0]),
        (&[], &[1]),
        (&[1, 1], &[0]),
        (&[0], &[1, 0]),
        (&[1], &[0, 0, 1]),
        (&[0, 0], &[1, 1, 0]),
    ];

    #[test]
    fn deterministic_complement_flips_membership() {
        let nba = det_gf_p0();
        let comp = complement_deterministic(&nba);
        for (p, c) in WORDS {
            assert_eq!(
                comp.accepts_lasso(p, c),
                !nba.accepts_lasso(p, c),
                "on ({p:?}, {c:?})"
            );
        }
    }

    #[test]
    fn complete_preserves_language() {
        // An incomplete automaton: only a p0 self-loop.
        let mut nba = Nba::new(1, 1);
        nba.add_initial(0);
        nba.add_transition(0, Guard::require(0), 0);
        nba.accepting[0] = true;
        let completed = complete(&nba);
        for (p, c) in WORDS {
            assert_eq!(
                completed.accepts_lasso(p, c),
                nba.accepts_lasso(p, c),
                "on ({p:?}, {c:?})"
            );
        }
        assert!(completed.is_deterministic_complete());
    }

    #[test]
    fn rank_based_complement_on_deterministic_input() {
        let nba = det_gf_p0();
        let comp = complement(&nba);
        for (p, c) in WORDS {
            assert_eq!(
                comp.accepts_lasso(p, c),
                !nba.accepts_lasso(p, c),
                "on ({p:?}, {c:?})"
            );
        }
    }

    #[test]
    fn rank_based_complement_on_nondeterministic_input() {
        // F G p0 has no deterministic Büchi automaton — the canonical
        // nondeterministic complementation test.
        let nba = ltl_to_nba(&Ltl::finally(Ltl::globally(Ltl::ap(0))));
        let comp = complement(&nba);
        for (p, c) in WORDS {
            assert_eq!(
                comp.accepts_lasso(p, c),
                !nba.accepts_lasso(p, c),
                "on ({p:?}, {c:?})"
            );
        }
    }

    #[test]
    fn complement_of_universal_is_empty() {
        let top = ltl_to_nba(&Ltl::True);
        let comp = complement(&top);
        assert!(comp.is_empty());
    }

    #[test]
    fn complement_of_empty_is_universal() {
        let bottom = ltl_to_nba(&Ltl::False);
        let comp = complement(&bottom);
        for (p, c) in WORDS {
            assert!(comp.accepts_lasso(p, c), "on ({p:?}, {c:?})");
        }
    }
}
