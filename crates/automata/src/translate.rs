//! LTL → Büchi translation (Gerth–Peled–Vardi–Wolper tableau).
//!
//! The classic on-the-fly construction: the formula is brought to negation
//! normal form and expanded into tableau *nodes* carrying `old` (processed
//! obligations), `new` (pending obligations) and `next` (obligations for the
//! successor position). Nodes become the states of a state-labelled
//! generalized Büchi automaton with one acceptance set per `U`-subformula;
//! a counter-based degeneralization yields the final [`Nba`].

use crate::guard::Guard;
use crate::ltl::Ltl;
use crate::nba::{Nba, StateId};
use std::collections::{BTreeSet, HashMap};

/// Interned subformulas for cheap set operations inside tableau nodes.
struct Arena {
    formulas: Vec<Ltl>,
    ids: HashMap<Ltl, usize>,
}

impl Arena {
    fn new() -> Self {
        Arena {
            formulas: Vec::new(),
            ids: HashMap::new(),
        }
    }

    fn intern(&mut self, f: &Ltl) -> usize {
        if let Some(&id) = self.ids.get(f) {
            return id;
        }
        let id = self.formulas.len();
        self.formulas.push(f.clone());
        self.ids.insert(f.clone(), id);
        id
    }

    fn get(&self, id: usize) -> &Ltl {
        &self.formulas[id]
    }
}

/// A tableau node under construction.
#[derive(Clone)]
struct Node {
    incoming: BTreeSet<usize>,
    new: BTreeSet<usize>,
    old: BTreeSet<usize>,
    next: BTreeSet<usize>,
}

/// A finished tableau state.
struct TableauState {
    incoming: BTreeSet<usize>,
    old: BTreeSet<usize>,
    next: BTreeSet<usize>,
}

/// Sentinel id for the virtual initial node.
const INIT: usize = usize::MAX;

/// Translates an LTL formula into a Büchi automaton accepting exactly the
/// words satisfying it.
pub fn ltl_to_nba(formula: &Ltl) -> Nba {
    let nnf = formula.nnf();
    let num_aps = nnf.max_ap().map_or(0, |m| m + 1);

    let mut arena = Arena::new();
    let root = arena.intern(&nnf);

    let mut states: Vec<TableauState> = Vec::new();
    // The classical `expand` is recursive; a worklist of pending nodes keeps
    // it iterative (the order of expansion does not matter — duplicate
    // saturated nodes merge by their (old, next) signature).
    let mut worklist: Vec<Node> = vec![Node {
        incoming: BTreeSet::from([INIT]),
        new: BTreeSet::from([root]),
        old: BTreeSet::new(),
        next: BTreeSet::new(),
    }];

    while let Some(mut node) = worklist.pop() {
        match pick(&node.new) {
            None => {
                // Saturated: merge with an existing state or add a new one.
                if let Some(existing) = states
                    .iter_mut()
                    .find(|s| s.old == node.old && s.next == node.next)
                {
                    existing.incoming.extend(node.incoming.iter().copied());
                    continue;
                }
                let id = states.len();
                states.push(TableauState {
                    incoming: node.incoming,
                    old: node.old,
                    next: node.next.clone(),
                });
                worklist.push(Node {
                    incoming: BTreeSet::from([id]),
                    new: node.next,
                    old: BTreeSet::new(),
                    next: BTreeSet::new(),
                });
            }
            Some(eta) => {
                node.new.remove(&eta);
                let formula = arena.get(eta).clone();
                match formula {
                    Ltl::False => { /* contradiction: drop the node */ }
                    Ltl::True => {
                        node.old.insert(eta);
                        worklist.push(node);
                    }
                    Ltl::Ap(_) | Ltl::Not(_) => {
                        // Literal (NNF guarantees Not is only over Ap).
                        let negation = match &formula {
                            Ltl::Ap(i) => Ltl::not(Ltl::ap(*i)),
                            Ltl::Not(inner) => (**inner).clone(),
                            _ => unreachable!("literal shape"),
                        };
                        let neg_id = arena.intern(&negation);
                        if node.old.contains(&neg_id) {
                            // Contradiction: drop the node.
                        } else {
                            node.old.insert(eta);
                            worklist.push(node);
                        }
                    }
                    Ltl::And(a, b) => {
                        let ia = arena.intern(&a);
                        let ib = arena.intern(&b);
                        node.old.insert(eta);
                        if !node.old.contains(&ia) {
                            node.new.insert(ia);
                        }
                        if !node.old.contains(&ib) {
                            node.new.insert(ib);
                        }
                        worklist.push(node);
                    }
                    Ltl::X(a) => {
                        let ia = arena.intern(&a);
                        node.old.insert(eta);
                        node.next.insert(ia);
                        worklist.push(node);
                    }
                    Ltl::Or(a, b) => {
                        let ia = arena.intern(&a);
                        let ib = arena.intern(&b);
                        let mut left = node.clone();
                        left.old.insert(eta);
                        if !left.old.contains(&ia) {
                            left.new.insert(ia);
                        }
                        let mut right = node;
                        right.old.insert(eta);
                        if !right.old.contains(&ib) {
                            right.new.insert(ib);
                        }
                        worklist.push(left);
                        worklist.push(right);
                    }
                    Ltl::U(ref a, ref b) => {
                        let ia = arena.intern(a);
                        let ib = arena.intern(b);
                        // Left split: commit to φ now and φUψ next.
                        let mut left = node.clone();
                        left.old.insert(eta);
                        if !left.old.contains(&ia) {
                            left.new.insert(ia);
                        }
                        left.next.insert(eta);
                        // Right split: ψ holds now.
                        let mut right = node;
                        right.old.insert(eta);
                        if !right.old.contains(&ib) {
                            right.new.insert(ib);
                        }
                        worklist.push(left);
                        worklist.push(right);
                    }
                    Ltl::R(ref a, ref b) => {
                        let ia = arena.intern(a);
                        let ib = arena.intern(b);
                        // Left split: ψ now, φRψ next.
                        let mut left = node.clone();
                        left.old.insert(eta);
                        if !left.old.contains(&ib) {
                            left.new.insert(ib);
                        }
                        left.next.insert(eta);
                        // Right split: φ ∧ ψ now (release fires).
                        let mut right = node;
                        right.old.insert(eta);
                        if !right.old.contains(&ia) {
                            right.new.insert(ia);
                        }
                        if !right.old.contains(&ib) {
                            right.new.insert(ib);
                        }
                        worklist.push(left);
                        worklist.push(right);
                    }
                }
            }
        }
    }

    build_nba(&arena, &states, num_aps)
}

/// Deterministic pick from the pending set (smallest id keeps the
/// construction reproducible).
fn pick(set: &BTreeSet<usize>) -> Option<usize> {
    set.iter().next().copied()
}

/// Assembles the NBA from the tableau: state labels become transition
/// guards, and one acceptance set per `U`-subformula is degeneralized with
/// a counter.
fn build_nba(arena: &Arena, states: &[TableauState], num_aps: u32) -> Nba {
    // Acceptance sets: for each φUψ in the closure, the states where the
    // until is not pending (¬(φUψ ∈ old) ∨ ψ ∈ old).
    let untils: Vec<(usize, usize)> = arena
        .formulas
        .iter()
        .enumerate()
        .filter_map(|(id, f)| match f {
            Ltl::U(_, b) => {
                let ib = arena.ids.get(b.as_ref()).copied();
                // ψ is interned when the right split executes; if it never
                // was, no state contains it in `old`.
                Some((id, ib.unwrap_or(usize::MAX)))
            }
            _ => None,
        })
        .collect();
    let k = untils.len().max(1);

    let in_fulfil_set = |state: &TableauState, set_idx: usize| -> bool {
        if untils.is_empty() {
            return true; // single trivial acceptance set
        }
        let (u_id, psi_id) = untils[set_idx];
        !state.old.contains(&u_id) || state.old.contains(&psi_id)
    };

    // Guard of a state: conjunction of its literals.
    let guard_of = |state: &TableauState| -> Guard {
        let mut g = Guard::TOP;
        for &f in &state.old {
            match arena.get(f) {
                Ltl::Ap(i) => g = g.and(Guard::require(*i)),
                Ltl::Not(inner) => {
                    if let Ltl::Ap(i) = inner.as_ref() {
                        g = g.and(Guard::forbid(*i));
                    }
                }
                _ => {}
            }
        }
        g
    };

    // NBA states: a fresh initial state plus (tableau state, counter) pairs
    // with counter in 0..=k; counter k is the accepting layer and resets.
    let mut nba = Nba::new(num_aps, 0);
    let init = nba.add_state(false);
    nba.add_initial(init);

    let mut ids: HashMap<(usize, usize), StateId> = HashMap::new();
    for (q, _) in states.iter().enumerate() {
        for c in 0..=k {
            let id = nba.add_state(c == k);
            ids.insert((q, c), id);
        }
    }

    let next_counter = |c: usize, target: &TableauState| -> usize {
        let mut j = if c == k { 0 } else { c };
        while j < k && in_fulfil_set(target, j) {
            j += 1;
        }
        j
    };

    for (q, st) in states.iter().enumerate() {
        let g = guard_of(st);
        if !g.is_satisfiable() {
            continue;
        }
        for &src in &st.incoming {
            if src == INIT {
                let c = next_counter(0, st);
                nba.add_transition(init, g, ids[&(q, c)]);
            } else {
                for c in 0..=k {
                    let c2 = next_counter(c, st);
                    nba.add_transition(ids[&(src, c)], g, ids[&(q, c2)]);
                }
            }
        }
    }

    nba
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::Letter;
    use crate::ltl::eval_on_lasso;

    const P0: Letter = 0b01;
    const P1: Letter = 0b10;
    const NONE: Letter = 0;

    fn check(f: &Ltl, prefix: &[Letter], cycle: &[Letter]) {
        let nba = ltl_to_nba(f);
        let expected = eval_on_lasso(f, prefix, cycle);
        let got = nba.accepts_lasso(prefix, cycle);
        assert_eq!(
            got, expected,
            "automaton for {f} disagrees on ({prefix:?}, {cycle:?})"
        );
    }

    #[test]
    fn atomic_formulas() {
        check(&Ltl::ap(0), &[P0], &[NONE]);
        check(&Ltl::ap(0), &[NONE], &[P0]);
        check(&Ltl::not(Ltl::ap(0)), &[P0], &[NONE]);
        check(&Ltl::True, &[], &[NONE]);
        check(&Ltl::False, &[], &[P0]);
    }

    #[test]
    fn next_and_until() {
        let words: [(&[Letter], &[Letter]); 6] = [
            (&[], &[NONE]),
            (&[], &[P0]),
            (&[P0], &[P1]),
            (&[P0, P0, P1], &[NONE]),
            (&[NONE], &[P0, P1]),
            (&[P0, NONE], &[P1]),
        ];
        let formulas = [
            Ltl::next(Ltl::ap(0)),
            Ltl::next(Ltl::next(Ltl::ap(1))),
            Ltl::until(Ltl::ap(0), Ltl::ap(1)),
            Ltl::finally(Ltl::ap(1)),
            Ltl::globally(Ltl::ap(0)),
        ];
        for f in &formulas {
            for (p, c) in words {
                check(f, p, c);
            }
        }
    }

    #[test]
    fn response_property() {
        // G(p0 -> F p1): the canonical request/response pattern.
        let f = Ltl::globally(Ltl::implies(Ltl::ap(0), Ltl::finally(Ltl::ap(1))));
        check(&f, &[], &[NONE]); // no requests: holds
        check(&f, &[P0], &[P1]); // answered forever
        check(&f, &[P0], &[NONE]); // unanswered: fails
        check(&f, &[], &[P0, P1]); // each request answered
        check(&f, &[P1], &[P0]); // requests forever, answers stop: fails
    }

    #[test]
    fn nested_untils() {
        // (p0 U p1) U (G p0)
        let f = Ltl::until(
            Ltl::until(Ltl::ap(0), Ltl::ap(1)),
            Ltl::globally(Ltl::ap(0)),
        );
        let words: [(&[Letter], &[Letter]); 5] = [
            (&[], &[P0]),
            (&[P1, P1], &[P0]),
            (&[P0, P1], &[NONE]),
            (&[NONE], &[P1]),
            (&[P1], &[P0, P0]),
        ];
        for (p, c) in words {
            check(&f, p, c);
        }
    }

    #[test]
    fn fairness_conjunction() {
        // GF p0 & GF p1
        let f = Ltl::and(
            Ltl::globally(Ltl::finally(Ltl::ap(0))),
            Ltl::globally(Ltl::finally(Ltl::ap(1))),
        );
        check(&f, &[], &[P0, P1]);
        check(&f, &[], &[P0 | P1]);
        check(&f, &[P1], &[P0]);
        check(&f, &[], &[P0, NONE]);
    }

    #[test]
    fn release_formulas() {
        // p0 R p1
        let f = Ltl::release(Ltl::ap(0), Ltl::ap(1));
        check(&f, &[], &[P1]);
        check(&f, &[P1, P0 | P1], &[NONE]);
        check(&f, &[P1, NONE], &[P0 | P1]);
        check(&f, &[P0 | P1], &[NONE]);
        check(&f, &[P0], &[NONE]);
    }

    #[test]
    fn empty_language_formula() {
        let f = Ltl::and(Ltl::ap(0), Ltl::not(Ltl::ap(0)));
        let nba = ltl_to_nba(&f);
        assert!(nba.is_empty());
        let g = Ltl::and(
            Ltl::globally(Ltl::ap(0)),
            Ltl::finally(Ltl::not(Ltl::ap(0))),
        );
        assert!(ltl_to_nba(&g).is_empty());
    }
}
