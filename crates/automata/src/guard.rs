//! Letters and transition guards.

use std::fmt;

/// A letter of the alphabet `2^AP`: bit `i` is the truth value of atomic
/// proposition `i`. At most 64 propositions are supported, checked by the
/// automaton constructors.
pub type Letter = u64;

/// Index of an atomic proposition (a bit position in a [`Letter`]).
pub type ApId = u32;

/// A conjunction of literals over atomic propositions.
///
/// A guard admits a letter iff every `pos` bit is set and every `neg` bit is
/// clear. Any boolean combination of propositions is expressible as a set of
/// guards (its DNF), which is how richer transition labels are encoded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Guard {
    /// Propositions required true.
    pub pos: Letter,
    /// Propositions required false.
    pub neg: Letter,
}

impl Guard {
    /// The unconstrained guard (admits every letter).
    pub const TOP: Guard = Guard { pos: 0, neg: 0 };

    /// Guard requiring proposition `ap` to be true.
    pub fn require(ap: ApId) -> Guard {
        Guard {
            pos: 1 << ap,
            neg: 0,
        }
    }

    /// Guard requiring proposition `ap` to be false.
    pub fn forbid(ap: ApId) -> Guard {
        Guard {
            pos: 0,
            neg: 1 << ap,
        }
    }

    /// Conjunction of two guards (may become unsatisfiable).
    pub fn and(self, other: Guard) -> Guard {
        Guard {
            pos: self.pos | other.pos,
            neg: self.neg | other.neg,
        }
    }

    /// Whether some letter satisfies the guard.
    pub fn is_satisfiable(self) -> bool {
        self.pos & self.neg == 0
    }

    /// Whether `letter` satisfies the guard.
    #[inline]
    pub fn admits(self, letter: Letter) -> bool {
        (letter & self.pos) == self.pos && (letter & self.neg) == 0
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pos == 0 && self.neg == 0 {
            return write!(f, "true");
        }
        let mut first = true;
        for i in 0..64 {
            if self.pos >> i & 1 == 1 {
                if !first {
                    write!(f, " & ")?;
                }
                first = false;
                write!(f, "p{i}")?;
            }
            if self.neg >> i & 1 == 1 {
                if !first {
                    write!(f, " & ")?;
                }
                first = false;
                write!(f, "!p{i}")?;
            }
        }
        Ok(())
    }
}

/// Enumerates all letters over the first `num_aps` propositions.
///
/// Used by the complementation constructions, which need an explicit
/// alphabet; `num_aps` is small for conversation protocols.
pub fn all_letters(num_aps: u32) -> impl Iterator<Item = Letter> {
    assert!(
        num_aps <= 20,
        "explicit alphabet of 2^{num_aps} letters is too large"
    );
    0..(1u64 << num_aps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_checks_both_polarities() {
        let g = Guard::require(0).and(Guard::forbid(2));
        assert!(g.admits(0b001));
        assert!(g.admits(0b011));
        assert!(!g.admits(0b101)); // p2 true
        assert!(!g.admits(0b010)); // p0 false
    }

    #[test]
    fn contradiction_is_unsatisfiable() {
        let g = Guard::require(3).and(Guard::forbid(3));
        assert!(!g.is_satisfiable());
        assert!(!g.admits(0b1000));
        assert!(!g.admits(0));
    }

    #[test]
    fn top_admits_everything() {
        assert!(Guard::TOP.admits(0));
        assert!(Guard::TOP.admits(u64::MAX));
        assert!(Guard::TOP.is_satisfiable());
    }

    #[test]
    fn all_letters_enumerates_cube() {
        let letters: Vec<Letter> = all_letters(3).collect();
        assert_eq!(letters.len(), 8);
        assert_eq!(letters[0], 0);
        assert_eq!(letters[7], 7);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Guard::TOP.to_string(), "true");
        assert_eq!(
            Guard::require(1).and(Guard::forbid(0)).to_string(),
            "!p0 & p1"
        );
    }
}
