//! A small library of protocol-automaton shapes.
//!
//! Protocols are Büchi automata over `2^Σ`; these constructors cover the
//! patterns the paper's examples use (e.g. "each `getRating` is followed by
//! a `rating`", Example 4.1). All shapes are built **deterministic**, so
//! protocol checking can use the cheap two-copy complementation instead of
//! the exponential rank-based construction.
//!
//! Proposition `i` refers to the protocol's `i`-th symbol.

use ddws_automata::{ltl_to_nba, Guard, Ltl, Nba};

/// `G (trigger → F follow)`: every occurrence of `trigger` is eventually
/// followed by `follow` (Example 4.1). Deterministic, two states:
/// "no pending trigger" (accepting) and "pending".
pub fn response(num_aps: u32, trigger: u32, follow: u32) -> Nba {
    let t = Guard::require(trigger);
    let nt = Guard::forbid(trigger);
    let f = Guard::require(follow);
    let nf = Guard::forbid(follow);
    let mut nba = Nba::new(num_aps, 2);
    nba.add_initial(0);
    // State 0 (accepting): nothing pending. A trigger without an immediate
    // answer moves to pending.
    nba.add_transition(0, t.and(nf), 1);
    nba.add_transition(0, t.and(f), 0);
    nba.add_transition(0, nt, 0);
    // State 1: pending; an answer resets (unless a fresh trigger arrives in
    // the same letter without one).
    nba.add_transition(1, f.and(nt), 0);
    nba.add_transition(1, f.and(t), 0); // answered and re-triggered: F is satisfied at this step
    nba.add_transition(1, nf, 1);
    nba.accepting[0] = true;
    nba
}

/// `G ¬p`: proposition `p` never occurs. Deterministic (after completion).
pub fn never(num_aps: u32, p: u32) -> Nba {
    let mut nba = Nba::new(num_aps, 1);
    nba.add_initial(0);
    nba.add_transition(0, Guard::forbid(p), 0);
    nba.accepting[0] = true;
    nba
}

/// `G (a → X (¬a U b))`: after an `a`, no further `a` may occur until a `b`
/// does. Deterministic, three states (free / obliged / dead).
pub fn eventually_follows(num_aps: u32, a: u32, b: u32) -> Nba {
    let ga = Guard::require(a);
    let na = Guard::forbid(a);
    let gb = Guard::require(b);
    let nb = Guard::forbid(b);
    // States: 0 free (accepting), 1 pending, 2 pending-but-just-discharged
    // (accepting: the previous obligation was met this step and `a`
    // immediately renewed it), 3 dead. The obligation `¬a U b` is a
    // *liveness* condition, so plain pending must not be accepting.
    let mut nba = Nba::new(num_aps, 4);
    nba.add_initial(0);
    nba.add_transition(0, ga, 1);
    nba.add_transition(0, na, 0);
    for pending in [1, 2] {
        nba.add_transition(pending, gb.and(ga), 2);
        nba.add_transition(pending, gb.and(na), 0);
        nba.add_transition(pending, nb.and(ga), 3);
        nba.add_transition(pending, nb.and(na), 1);
    }
    nba.add_transition(3, Guard::TOP, 3);
    nba.accepting[0] = true;
    nba.accepting[2] = true;
    nba
}

/// Translates an arbitrary LTL pattern and widens its alphabet to
/// `num_aps`. The result may be nondeterministic — prefer the explicit
/// shapes above for protocols that need complementation.
pub fn from_ltl(num_aps: u32, f: &Ltl) -> Nba {
    let mut nba = ltl_to_nba(f);
    assert!(
        nba.num_aps <= num_aps,
        "pattern uses more APs than declared"
    );
    nba.num_aps = num_aps;
    nba
}

/// A deterministic automaton accepting everything (useful as a base for
/// manual protocol construction).
pub fn universal(num_aps: u32) -> Nba {
    let mut nba = Nba::new(num_aps, 1);
    nba.add_initial(0);
    nba.add_transition(0, Guard::TOP, 0);
    nba.accepting[0] = true;
    nba
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddws_automata::complement::complete;
    use ddws_automata::ltl::eval_on_lasso;
    use ddws_automata::Letter;

    /// Cross-check a shape against the LTL semantics on sample words.
    fn check_against(f: &Ltl, nba: &Nba, words: &[(&[Letter], &[Letter])]) {
        for (p, c) in words {
            assert_eq!(
                nba.accepts_lasso(p, c),
                eval_on_lasso(f, p, c),
                "shape disagrees with {f} on ({p:?}, {c:?})"
            );
        }
    }

    const WORDS: [(&[Letter], &[Letter]); 8] = [
        (&[], &[0b00]),
        (&[], &[0b01]),
        (&[], &[0b10]),
        (&[0b01, 0b10], &[0b00]),
        (&[0b01], &[0b00]),
        (&[], &[0b01, 0b10]),
        (&[0b11], &[0b00]),
        (&[0b01, 0b01], &[0b10, 0b00]),
    ];

    #[test]
    fn response_matches_ltl() {
        let f = Ltl::globally(Ltl::implies(Ltl::ap(0), Ltl::finally(Ltl::ap(1))));
        check_against(&f, &response(2, 0, 1), &WORDS);
    }

    #[test]
    fn never_matches_ltl() {
        let f = Ltl::globally(Ltl::not(Ltl::ap(0)));
        check_against(&f, &never(2, 0), &WORDS);
    }

    #[test]
    fn eventually_follows_matches_ltl() {
        let f = Ltl::globally(Ltl::implies(
            Ltl::ap(0),
            Ltl::next(Ltl::until(Ltl::not(Ltl::ap(0)), Ltl::ap(1))),
        ));
        check_against(&f, &eventually_follows(2, 0, 1), &WORDS);
    }

    #[test]
    fn shapes_are_deterministic() {
        assert!(complete(&response(2, 0, 1)).is_deterministic_complete());
        assert!(complete(&never(2, 0)).is_deterministic_complete());
        assert!(complete(&eventually_follows(2, 0, 1)).is_deterministic_complete());
        assert!(universal(2).is_deterministic_complete());
    }

    #[test]
    fn from_ltl_widens_alphabet() {
        let nba = from_ltl(3, &Ltl::finally(Ltl::ap(1)));
        assert_eq!(nba.num_aps, 3);
        assert!(nba.accepts_lasso(&[0b010], &[0]));
    }
}
