//! Protocol definitions and their compilation to snapshot atoms.

use ddws_logic::parser::{parse_fo, Resolver};
use ddws_logic::{Fo, ParseError};
use ddws_model::Composition;
use std::fmt;

/// Where the message observer sits (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Observer {
    /// Only messages actually enqueued count (decidable placement,
    /// Theorems 4.2/4.5).
    AtRecipient,
    /// Every emitted message counts, even if lost (undecidable in general,
    /// Theorem 4.3; supported for boundary experiments).
    AtSource,
}

/// A protocol-construction error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// A named channel does not exist in the composition.
    UnknownChannel(String),
    /// A guard formula failed to parse.
    Guard(String, ParseError),
    /// The automaton's proposition count does not match the symbol count.
    ArityMismatch {
        /// Symbols declared.
        symbols: usize,
        /// Propositions the automaton uses.
        automaton_aps: u32,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownChannel(c) => write!(f, "unknown channel `{c}`"),
            ProtocolError::Guard(s, e) => write!(f, "guard for symbol `{s}`: {e}"),
            ProtocolError::ArityMismatch {
                symbols,
                automaton_aps,
            } => write!(
                f,
                "protocol declares {symbols} symbols but the automaton reads {automaton_aps} \
                 propositions"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A data-agnostic conversation protocol `(Σ, B)`: proposition `i` of the
/// automaton observes channel `channels[i]`.
#[derive(Clone, Debug)]
pub struct DataAgnosticProtocol {
    /// Observed channels, in proposition order.
    pub channels: Vec<String>,
    /// The Büchi automaton over `2^channels`.
    pub automaton: ddws_automata::Nba,
    /// Observer placement.
    pub observer: Observer,
}

impl DataAgnosticProtocol {
    /// Builds the protocol, checking channel names against the composition.
    pub fn new(
        comp: &Composition,
        channels: &[&str],
        automaton: ddws_automata::Nba,
        observer: Observer,
    ) -> Result<Self, ProtocolError> {
        for c in channels {
            if comp.channel_by_name(c).is_none() {
                return Err(ProtocolError::UnknownChannel((*c).to_owned()));
            }
        }
        if automaton.num_aps as usize != channels.len() {
            return Err(ProtocolError::ArityMismatch {
                symbols: channels.len(),
                automaton_aps: automaton.num_aps,
            });
        }
        Ok(DataAgnosticProtocol {
            channels: channels.iter().map(|s| (*s).to_owned()).collect(),
            automaton,
            observer,
        })
    }

    /// Compiles each observed channel to the snapshot atom the verifier
    /// evaluates: `received_q` (observer-at-recipient) or `sent_q`
    /// (observer-at-source).
    pub fn observation_atoms(&self, comp: &Composition) -> Vec<Fo> {
        self.channels
            .iter()
            .map(|name| {
                let (_, ch) = comp
                    .channel_by_name(name)
                    .expect("validated at construction");
                let rel = match self.observer {
                    Observer::AtRecipient => ch.received_rel,
                    Observer::AtSource => ch.sent_rel,
                };
                Fo::Atom(rel, vec![])
            })
            .collect()
    }
}

/// A data-aware conversation protocol `(Σ, B, {ϕσ})`: proposition `i` of the
/// automaton holds on a snapshot iff `guards[i]` does. Guards are FO
/// formulas over the out-queue schema (`l(q)` semantics —
/// observer-at-recipient, the only decidable placement for data-aware
/// protocols).
#[derive(Clone, Debug)]
pub struct DataAwareProtocol {
    /// Symbol names (for diagnostics), in proposition order.
    pub symbols: Vec<String>,
    /// One guard per symbol; free variables are universally quantified at
    /// the protocol level (Definition 4.4).
    pub guards: Vec<Fo>,
    /// The Büchi automaton over `2^symbols`.
    pub automaton: ddws_automata::Nba,
}

impl DataAwareProtocol {
    /// Builds the protocol, parsing each guard over the composition schema.
    pub fn new(
        comp: &mut Composition,
        guards: &[(&str, &str)],
        automaton: ddws_automata::Nba,
    ) -> Result<Self, ProtocolError> {
        if automaton.num_aps as usize != guards.len() {
            return Err(ProtocolError::ArityMismatch {
                symbols: guards.len(),
                automaton_aps: automaton.num_aps,
            });
        }
        let mut symbols = Vec::new();
        let mut parsed = Vec::new();
        for (name, src) in guards {
            let fo = {
                let mut resolver = Resolver {
                    voc: &comp.voc,
                    vars: &mut comp.vars,
                    symbols: &mut comp.symbols,
                };
                parse_fo(src, &mut resolver)
                    .map_err(|e| ProtocolError::Guard((*name).to_owned(), e))?
            };
            symbols.push((*name).to_owned());
            parsed.push(fo);
        }
        Ok(DataAwareProtocol {
            symbols,
            guards: parsed,
            automaton,
        })
    }

    /// The free variables across all guards (the protocol's implicit
    /// universal quantification, Definition 4.4).
    pub fn free_vars(&self) -> Vec<ddws_logic::VarId> {
        let mut vars = std::collections::BTreeSet::new();
        for g in &self.guards {
            vars.extend(g.free_vars());
        }
        vars.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddws_automata::{Guard, Nba};
    use ddws_model::{CompositionBuilder, QueueKind};

    fn comp() -> Composition {
        let mut b = CompositionBuilder::new();
        b.channel("req", 1, QueueKind::Flat, "P", "R");
        b.channel("resp", 1, QueueKind::Flat, "R", "P");
        b.peer("P")
            .database("d", 1)
            .send_rule("req", &["x"], "d(x)");
        b.peer("R").send_rule("resp", &["x"], "?req(x)");
        b.build().unwrap()
    }

    fn trivial_nba(num_aps: u32) -> Nba {
        let mut nba = Nba::new(num_aps, 1);
        nba.add_initial(0);
        nba.add_transition(0, Guard::TOP, 0);
        nba.accepting[0] = true;
        nba
    }

    #[test]
    fn data_agnostic_validation() {
        let c = comp();
        let ok =
            DataAgnosticProtocol::new(&c, &["req", "resp"], trivial_nba(2), Observer::AtRecipient);
        assert!(ok.is_ok());
        let unknown =
            DataAgnosticProtocol::new(&c, &["nope"], trivial_nba(1), Observer::AtRecipient);
        assert!(matches!(unknown, Err(ProtocolError::UnknownChannel(_))));
        let arity = DataAgnosticProtocol::new(&c, &["req"], trivial_nba(2), Observer::AtRecipient);
        assert!(matches!(arity, Err(ProtocolError::ArityMismatch { .. })));
    }

    #[test]
    fn observation_atoms_pick_the_right_flags() {
        let c = comp();
        let recv =
            DataAgnosticProtocol::new(&c, &["req"], trivial_nba(1), Observer::AtRecipient).unwrap();
        let atoms = recv.observation_atoms(&c);
        let (_, ch) = c.channel_by_name("req").unwrap();
        assert_eq!(atoms, vec![Fo::Atom(ch.received_rel, vec![])]);
        let src =
            DataAgnosticProtocol::new(&c, &["req"], trivial_nba(1), Observer::AtSource).unwrap();
        assert_eq!(
            src.observation_atoms(&c),
            vec![Fo::Atom(ch.sent_rel, vec![])]
        );
    }

    #[test]
    fn data_aware_guards_parse_over_schema() {
        let mut c = comp();
        let p = DataAwareProtocol::new(
            &mut c,
            &[("reqX", "P.!req(x)"), ("respX", "R.!resp(x)")],
            trivial_nba(2),
        )
        .unwrap();
        assert_eq!(p.free_vars().len(), 1);
        let bad = DataAwareProtocol::new(&mut c, &[("g", "nosuch(x)")], trivial_nba(1));
        assert!(matches!(bad, Err(ProtocolError::Guard(..))));
    }
}
