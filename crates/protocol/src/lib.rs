//! # `ddws-protocol` — conversation protocols (Section 4)
//!
//! A **conversation protocol** constrains the global sequence of messages a
//! composition exchanges. The paper studies two flavours:
//!
//! * **data-agnostic** protocols `(Σ, B)`: `Σ` is a set of queue names, `B`
//!   a Büchi automaton over `2^Σ`; only message *names* matter (the classic
//!   CFSM notion of Fu–Bultan–Su, generalized to infinite-state
//!   compositions — Theorem 4.2);
//! * **data-aware** protocols `(Σ, B, {ϕσ})`: each symbol σ abbreviates an
//!   FO formula over the out-queue schema, evaluated on snapshots
//!   (Theorem 4.5).
//!
//! Two *observer placements* fix which events count (§4):
//!
//! * **observer-at-recipient** — a proposition for queue `q` holds iff a
//!   message was actually *enqueued* in the last transition (dropped
//!   messages are invisible); this is the decidable placement;
//! * **observer-at-source** — it holds iff the sender *emitted* a message,
//!   enqueued or not; verification is undecidable in general (Theorem 4.3),
//!   but the encoding is provided for the boundary experiments.
//!
//! Protocol *checking* lives in `ddws-verifier`
//! (`Verifier::check_data_agnostic` / `check_data_aware`), which complements
//! `B` and searches the product; this crate defines the protocol types, the
//! compilation of observer events to snapshot atoms, and a library of
//! commonly used automata shapes.

#![warn(missing_docs)]
pub mod automata_shapes;
pub mod protocol;

pub use automata_shapes::{eventually_follows, from_ltl, never, response, universal};
pub use protocol::{DataAgnosticProtocol, DataAwareProtocol, Observer, ProtocolError};
