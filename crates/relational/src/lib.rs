//! # `ddws-relational` — the relational substrate
//!
//! Every artifact in a data-driven web-service composition — the fixed
//! database of a peer, its mutable state, the user inputs, the performed
//! actions and the messages travelling through queues — is a finite
//! relational instance (Deutsch–Sui–Vianu–Zhou, PODS 2006, Definition 2.1).
//! This crate provides that substrate:
//!
//! * [`Symbols`] — an interner mapping external names (constants, domain
//!   elements) to compact [`Value`] handles,
//! * [`Tuple`] — an immutable, ordered sequence of values,
//! * [`Relation`] — a canonical (sorted, duplicate-free) finite set of
//!   same-arity tuples,
//! * [`Vocabulary`] / [`RelId`] — a registry of relation names and arities,
//! * [`Instance`] — a relational structure over a vocabulary,
//! * active-domain computation, the basis of active-domain quantification
//!   in the logic layer.
//!
//! Canonical representations are load-bearing: verification hashes millions
//! of configurations, so equal instances must be structurally identical.
//! [`Relation`] is a `BTreeSet` and [`Instance`] stores relations densely by
//! [`RelId`], which makes `Hash`/`Eq` on configurations sound and cheap.

#![warn(missing_docs)]
pub mod instance;
pub mod intern;
pub mod relation;
pub mod tuple;
pub mod value;
pub mod vocabulary;

pub use instance::Instance;
pub use intern::{Interner, PackSpec};
pub use relation::Relation;
pub use tuple::Tuple;
pub use value::{Symbols, Value};
pub use vocabulary::{RelDecl, RelId, Vocabulary};
