//! Interned data values.
//!
//! The paper treats data values as uninterpreted first-class citizens drawn
//! from an infinite domain; only equality matters. We intern every external
//! name (`"excellent"`, `"c1"`, …) into a dense `u32` handle so that tuples,
//! relations and whole configurations compare and hash in O(words).

use std::collections::HashMap;
use std::fmt;

/// A data value: an opaque handle into a [`Symbols`] table.
///
/// Values are totally ordered by their handle, which gives relations a
/// canonical order. The order carries no semantics — the logic layer only
/// ever tests equality, matching the paper's uninterpreted-domain model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(pub u32);

impl Value {
    /// Raw index of this value in its symbol table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A symbol table interning external names to [`Value`] handles.
///
/// One `Symbols` instance is shared by a specification and all verification
/// artifacts derived from it: constants appearing in rules and properties,
/// database elements, and the synthetic elements of the small verification
/// domain all live in the same table, so equality of handles is equality of
/// values.
#[derive(Clone, Debug, Default)]
pub struct Symbols {
    names: Vec<String>,
    by_name: HashMap<String, Value>,
    fresh_counter: u32,
}

impl Symbols {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing handle if already present.
    pub fn intern(&mut self, name: &str) -> Value {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = Value(u32::try_from(self.names.len()).expect("symbol table overflow"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), v);
        v
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Value> {
        self.by_name.get(name).copied()
    }

    /// The external name of `v`.
    ///
    /// # Panics
    /// Panics if `v` was not produced by this table.
    pub fn name(&self, v: Value) -> &str {
        &self.names[v.index()]
    }

    /// Mints a value guaranteed to be distinct from every interned name,
    /// named `{prefix}{n}` for the first unused `n`. Used to populate the
    /// small verification domain with elements disjoint from the
    /// specification's constants.
    pub fn fresh(&mut self, prefix: &str) -> Value {
        loop {
            let candidate = format!("{prefix}{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.by_name.contains_key(&candidate) {
                return self.intern(&candidate);
            }
        }
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all `(value, name)` pairs in handle order.
    pub fn iter(&self) -> impl Iterator<Item = (Value, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Value(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut s = Symbols::new();
        let a = s.intern("alpha");
        let b = s.intern("beta");
        assert_ne!(a, b);
        assert_eq!(s.intern("alpha"), a);
        assert_eq!(s.name(a), "alpha");
        assert_eq!(s.name(b), "beta");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn lookup_absent_is_none() {
        let s = Symbols::new();
        assert!(s.lookup("missing").is_none());
    }

    #[test]
    fn fresh_avoids_collisions() {
        let mut s = Symbols::new();
        s.intern("d0");
        let f = s.fresh("d");
        assert_eq!(s.name(f), "d1");
        let g = s.fresh("d");
        assert_eq!(s.name(g), "d2");
        assert_ne!(f, g);
    }

    #[test]
    fn values_order_by_interning_sequence() {
        let mut s = Symbols::new();
        let a = s.intern("z-last-name");
        let b = s.intern("a-first-name");
        assert!(a < b, "order follows interning, not lexicographic order");
    }

    #[test]
    fn iter_enumerates_in_handle_order() {
        let mut s = Symbols::new();
        s.intern("x");
        s.intern("y");
        let pairs: Vec<_> = s.iter().map(|(v, n)| (v.0, n.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }
}
