//! Bit-packed tuple codes and hash-cons interning.
//!
//! The input-bounded fragment (PODS 2006, §3.1) guarantees that every
//! value occurring in a reachable configuration is drawn from a *closed*
//! domain fixed before the search starts: rule constants, database values
//! and a finite pool of fresh values — all of them entries of the run's
//! [`Symbols`](crate::Symbols) table. Two consequences are exploited here:
//!
//! * **Packing.** A tuple over a domain of `n` values fits in
//!   `arity * ceil(log2(n))` bits. With the small domains input-bounded
//!   verification uses, whole tuples pack into single `u64` codes, and a
//!   relation becomes a sorted `Box<[u64]>` — set algebra collapses to
//!   linear merges over machine words ([`PackSpec`]).
//! * **Hash-consing.** The same few relation extensions recur across
//!   millions of configurations (queues mostly empty, states mostly
//!   stable). Interning each distinct extension once ([`Interner`]) turns
//!   configuration equality and hashing into `u32` comparisons.
//!
//! The interner is sharded like the verifier's configuration interner, so
//! parallel search workers intern without contending on one lock, and it
//! meters hits/misses for the telemetry invariants (`hits + misses ==
//! calls` at any quiescent point).

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Bit-packing layout for tuples of one arity over a closed value domain.
///
/// Values are packed most-significant-first, so the numeric order of codes
/// is exactly the lexicographic order of tuples — a sorted code slice
/// unpacks to a canonically ordered relation extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackSpec {
    /// Bits per value: `ceil(log2(domain_size))`, minimum 1.
    bits: u32,
    /// Values per tuple.
    arity: u32,
}

impl PackSpec {
    /// Layout for tuples of `arity` over a domain of `domain_size` values
    /// (value indices `0..domain_size`). Returns `None` when the packed
    /// form would not fit in 64 bits — callers fall back to unpacked
    /// interning for such relations.
    pub fn new(domain_size: usize, arity: usize) -> Option<PackSpec> {
        let bits = bits_for(domain_size);
        let arity = u32::try_from(arity).ok()?;
        if u64::from(arity) * u64::from(bits) > 64 {
            return None;
        }
        Some(PackSpec { bits, arity })
    }

    /// Bits per value.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Values per tuple.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// Packs a tuple into its code. `None` when the tuple has the wrong
    /// arity or a value outside the packed domain — under input-bounded
    /// semantics the latter cannot happen for domains sized to the symbol
    /// table, but the packer refuses rather than corrupting a code.
    pub fn pack(&self, tuple: &[Value]) -> Option<u64> {
        if tuple.len() != self.arity as usize {
            return None;
        }
        let mut code = 0u64;
        for v in tuple {
            if self.bits < 64 && u64::from(v.0) >= 1u64 << self.bits {
                return None;
            }
            code = (code << self.bits) | u64::from(v.0);
        }
        Some(code)
    }

    /// Unpacks a code back into its tuple (the inverse of [`PackSpec::pack`]).
    pub fn unpack(&self, code: u64) -> Vec<Value> {
        let mut out = vec![Value(0); self.arity as usize];
        let mask = if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        };
        let mut rest = code;
        for slot in out.iter_mut().rev() {
            *slot = Value((rest & mask) as u32);
            rest = if self.bits >= 64 {
                0
            } else {
                rest >> self.bits
            };
        }
        out
    }

    /// Packs a sorted, duplicate-free iterator of tuples into a sorted code
    /// slice. `None` if any tuple refuses to pack.
    pub fn pack_all<'a, I>(&self, tuples: I) -> Option<Vec<u64>>
    where
        I: IntoIterator<Item = &'a [Value]>,
    {
        let mut codes: Vec<u64> = tuples
            .into_iter()
            .map(|t| self.pack(t))
            .collect::<Option<_>>()?;
        // MSB-first packing is order-preserving, but callers may hand
        // unsorted extensions; canonicalize defensively.
        if !codes.windows(2).all(|w| w[0] < w[1]) {
            codes.sort_unstable();
            codes.dedup();
        }
        Some(codes)
    }

    /// Unpacks a sorted code slice into tuples, preserving canonical order.
    pub fn unpack_all(&self, codes: &[u64]) -> Vec<Tuple> {
        codes.iter().map(|&c| Tuple::new(self.unpack(c))).collect()
    }
}

/// Bits needed to address a domain of `n` values (minimum 1).
pub fn bits_for(n: usize) -> u32 {
    match n.saturating_sub(1) {
        0 => 1,
        m => usize::BITS - m.leading_zeros(),
    }
}

// --- Sorted-code set algebra -----------------------------------------

/// Binary-search membership in a sorted code slice.
pub fn codes_contain(codes: &[u64], code: u64) -> bool {
    codes.binary_search(&code).is_ok()
}

/// Union of two sorted code slices.
pub fn codes_union(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Applies Definition 2.4's no-op-on-conflict state update on sorted code
/// slices in one three-way merge:
/// `(ins \ del) ∪ (old ∩ ins ∩ del) ∪ (old \ (ins ∪ del))`.
pub fn codes_apply_update(old: &[u64], ins: &[u64], del: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(old.len() + ins.len());
    let (mut i, mut j, mut k) = (0, 0, 0);
    loop {
        let next = [old.get(i), ins.get(j), del.get(k)]
            .into_iter()
            .flatten()
            .min()
            .copied();
        let Some(c) = next else { break };
        let in_old = old.get(i) == Some(&c);
        let in_ins = ins.get(j) == Some(&c);
        let in_del = del.get(k) == Some(&c);
        // Written as Definition 2.4's three disjuncts verbatim, one per
        // case, rather than the minimal boolean form.
        #[allow(clippy::nonminimal_bool)]
        let keep = (in_ins && !in_del)            // inserted, undeleted
            || (in_old && in_ins && in_del)        // conflicting update: no-op
            || (in_old && !in_ins && !in_del); // untouched
        if keep {
            out.push(c);
        }
        i += usize::from(in_old);
        j += usize::from(in_ins);
        k += usize::from(in_del);
    }
    out
}

// --- Sharded hash-cons interner ---------------------------------------

const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;

fn shard_of<T: Hash>(item: &T) -> usize {
    let mut h = DefaultHasher::new();
    item.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

struct Shard<T> {
    items: Vec<Arc<T>>,
    ids: HashMap<Arc<T>, u32>,
}

impl<T> Default for Shard<T> {
    fn default() -> Self {
        Shard {
            items: Vec::new(),
            ids: HashMap::new(),
        }
    }
}

/// A thread-safe hash-cons table: equal values intern to the same dense
/// `u32` handle, so handle equality is value equality and handle hashing
/// replaces deep hashing. Handles encode their shard in the low
/// [`SHARD_BITS`] bits; resolution never consults a directory.
pub struct Interner<T> {
    shards: Vec<RwLock<Shard<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner {
            shards: (0..SHARDS).map(|_| RwLock::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<T: Hash + Eq> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a value, returning its handle. Books exactly one hit (the
    /// value was already interned — including the benign race where
    /// another thread interned it between the read and write probes) or
    /// one miss (a fresh entry) per call.
    pub fn intern(&self, item: T) -> u32 {
        let sh = shard_of(&item);
        {
            let shard = self.shards[sh].read().expect("interner shard poisoned");
            if let Some(&id) = shard.ids.get(&item) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return id;
            }
        }
        let mut shard = self.shards[sh].write().expect("interner shard poisoned");
        if let Some(&id) = shard.ids.get(&item) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let local = u32::try_from(shard.items.len()).expect("interner overflow");
        let id = local
            .checked_shl(SHARD_BITS)
            .filter(|id| id >> SHARD_BITS == local)
            .expect("interner overflow")
            | sh as u32;
        let arc = Arc::new(item);
        shard.items.push(Arc::clone(&arc));
        shard.ids.insert(arc, id);
        id
    }

    /// Resolves a handle back to its value (COW: the `Arc` aliases the
    /// interned entry; the table never mutates an entry in place).
    pub fn resolve(&self, id: u32) -> Arc<T> {
        let shard = self.shards[id as usize & (SHARDS - 1)]
            .read()
            .expect("interner shard poisoned");
        Arc::clone(&shard.items[(id >> SHARD_BITS) as usize])
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("interner shard poisoned").items.len())
            .sum()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern calls answered from the table so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Intern calls that created a fresh entry so far. Every call books
    /// exactly one hit or one miss, so `hits() + misses()` is the total
    /// number of intern calls — the telemetry-suite invariant.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Approximate heap bytes of the interned values, via a per-entry cost
    /// callback (used for checkpoint-size accounting).
    pub fn approx_bytes(&self, cost: impl Fn(&T) -> usize) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("interner shard poisoned")
                    .items
                    .iter()
                    .map(|i| cost(i))
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(v: &[u32]) -> Vec<Value> {
        v.iter().map(|&x| Value(x)).collect()
    }

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let spec = PackSpec::new(5, 3).unwrap();
        let t = vals(&[4, 0, 3]);
        let code = spec.pack(&t).unwrap();
        assert_eq!(spec.unpack(code), t);
    }

    #[test]
    fn packing_preserves_lexicographic_order() {
        let spec = PackSpec::new(4, 2).unwrap();
        let a = spec.pack(&vals(&[1, 3])).unwrap();
        let b = spec.pack(&vals(&[2, 0])).unwrap();
        assert!(a < b, "msb-first packing orders like tuples");
    }

    #[test]
    fn pack_refuses_out_of_domain_values() {
        let spec = PackSpec::new(4, 2).unwrap();
        assert!(spec.pack(&vals(&[4, 0])).is_none());
        assert!(spec.pack(&vals(&[0])).is_none(), "wrong arity");
    }

    #[test]
    fn wide_tuples_have_no_spec() {
        assert!(PackSpec::new(1 << 20, 4).is_none());
        assert!(PackSpec::new(2, 64).is_some());
        assert!(PackSpec::new(3, 64).is_none());
    }

    #[test]
    fn zero_arity_packs_to_unit_code() {
        let spec = PackSpec::new(7, 0).unwrap();
        assert_eq!(spec.pack(&[]), Some(0));
        assert!(spec.unpack(0).is_empty());
    }

    #[test]
    fn update_merge_matches_definition() {
        // old={1,2,3} ins={2,4} del={2,3,5}:
        //   4 inserted; 2 conflicting (kept); 3 deleted; 1 untouched.
        let out = codes_apply_update(&[1, 2, 3], &[2, 4], &[2, 3, 5]);
        assert_eq!(out, vec![1, 2, 4]);
    }

    #[test]
    fn union_and_contains() {
        assert_eq!(codes_union(&[1, 3], &[2, 3, 9]), vec![1, 2, 3, 9]);
        assert!(codes_contain(&[1, 4, 9], 4));
        assert!(!codes_contain(&[1, 4, 9], 5));
    }

    #[test]
    fn interner_hash_consing_and_metering() {
        let i: Interner<Vec<u64>> = Interner::new();
        let a = i.intern(vec![1, 2, 3]);
        let b = i.intern(vec![1, 2, 3]);
        let c = i.intern(vec![4]);
        assert_eq!(a, b, "equal values share a handle");
        assert_ne!(a, c, "distinct values get distinct handles");
        assert_eq!(*i.resolve(a), vec![1, 2, 3]);
        assert_eq!(*i.resolve(c), vec![4]);
        assert_eq!(i.len(), 2);
        assert_eq!(i.hits(), 1);
        assert_eq!(i.misses(), 2);
    }
}
