//! Relation-symbol registries.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a relation symbol within a [`Vocabulary`].
///
/// Dense and small so that instances can store relations in a flat `Vec`
/// indexed by `RelId` and the logic layer can refer to relations without
/// string comparisons.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl RelId {
    /// Raw index of this relation in its vocabulary.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Declaration of one relation symbol: its (qualified) name and arity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelDecl {
    /// Qualified name, e.g. `O.customer` or `CR.rating`.
    pub name: String,
    /// Number of columns; arity 0 relations are propositions.
    pub arity: usize,
}

/// A registry of relation symbols.
///
/// A composition's schema (Section 2 of the paper: the union of all peer
/// schemas with peer-qualified names, plus bookkeeping propositions such as
/// `moveW`) is represented as one `Vocabulary` so that every layer — rule
/// evaluation, property atoms, protocol guards — shares a single namespace.
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    decls: Vec<RelDecl>,
    by_name: HashMap<String, RelId>,
}

/// Error raised when declaring a relation whose name is already taken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DuplicateRelation(pub String);

impl fmt::Display for DuplicateRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "relation `{}` declared twice", self.0)
    }
}

impl std::error::Error for DuplicateRelation {}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relation, failing on name collision.
    ///
    /// Definition 2.1 requires the schemas of a peer (and, by qualification,
    /// of a composition) to be disjoint; collisions are specification bugs
    /// and are surfaced here.
    pub fn declare(&mut self, name: &str, arity: usize) -> Result<RelId, DuplicateRelation> {
        if self.by_name.contains_key(name) {
            return Err(DuplicateRelation(name.to_owned()));
        }
        let id = RelId(u32::try_from(self.decls.len()).expect("vocabulary overflow"));
        self.decls.push(RelDecl {
            name: name.to_owned(),
            arity,
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Resolves a relation name.
    pub fn lookup(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// The declaration of `id`.
    ///
    /// # Panics
    /// Panics if `id` is not from this vocabulary.
    pub fn decl(&self, id: RelId) -> &RelDecl {
        &self.decls[id.index()]
    }

    /// Qualified name of `id`.
    pub fn name(&self, id: RelId) -> &str {
        &self.decl(id).name
    }

    /// Arity of `id`.
    pub fn arity(&self, id: RelId) -> usize {
        self.decl(id).arity
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Whether no relation is declared.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Iterates `(id, decl)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelDecl)> {
        self.decls
            .iter()
            .enumerate()
            .map(|(i, d)| (RelId(i as u32), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut v = Vocabulary::new();
        let a = v.declare("O.customer", 3).unwrap();
        let b = v.declare("CR.rating", 2).unwrap();
        assert_ne!(a, b);
        assert_eq!(v.lookup("O.customer"), Some(a));
        assert_eq!(v.arity(a), 3);
        assert_eq!(v.name(b), "CR.rating");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn duplicate_declaration_fails() {
        let mut v = Vocabulary::new();
        v.declare("R", 1).unwrap();
        assert_eq!(v.declare("R", 2), Err(DuplicateRelation("R".into())));
    }

    #[test]
    fn iter_matches_declaration_order() {
        let mut v = Vocabulary::new();
        v.declare("A", 0).unwrap();
        v.declare("B", 2).unwrap();
        let names: Vec<_> = v.iter().map(|(_, d)| d.name.clone()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }
}
