//! Canonical finite relations.

use crate::tuple::Tuple;
use crate::value::{Symbols, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A finite relation: a canonical set of same-arity tuples.
///
/// The `BTreeSet` representation guarantees that two relations with the same
/// extension are structurally identical, which makes configurations (which
/// embed many relations) hashable and comparable — the visited-set of the
/// model checker depends on this.
///
/// Arity is not stored here; it is a property of the declaring
/// [`Vocabulary`](crate::Vocabulary) entry, and [`Instance`](crate::Instance)
/// enforces it on insertion.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Relation(BTreeSet<Tuple>);

impl Relation {
    /// The empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a relation from tuples (duplicates collapse).
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        Relation(tuples.into_iter().collect())
    }

    /// A singleton relation.
    pub fn singleton(t: Tuple) -> Self {
        let mut s = BTreeSet::new();
        s.insert(t);
        Relation(s)
    }

    /// Inserts a tuple; returns `true` if it was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.0.insert(t)
    }

    /// Removes a tuple; returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.0.remove(t)
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.0.contains(t)
    }

    /// Membership test on a borrowed slice — the evaluator's hot path,
    /// avoiding a `Tuple` allocation per atom lookup. Sound because
    /// `Tuple`'s derived `Ord` is the lexicographic slice order.
    pub fn contains_slice(&self, t: &[Value]) -> bool {
        self.0.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates tuples in canonical (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.0.iter()
    }

    /// The single tuple of a singleton relation, if it is one.
    pub fn the_tuple(&self) -> Option<&Tuple> {
        if self.0.len() == 1 {
            self.0.iter().next()
        } else {
            None
        }
    }

    /// Set union.
    pub fn union(&self, other: &Relation) -> Relation {
        Relation(self.0.union(&other.0).cloned().collect())
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Relation) -> Relation {
        Relation(self.0.difference(&other.0).cloned().collect())
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Relation) -> Relation {
        Relation(self.0.intersection(&other.0).cloned().collect())
    }

    /// Adds every value occurring in the relation to `dom`.
    pub fn collect_domain(&self, dom: &mut BTreeSet<Value>) {
        for t in &self.0 {
            dom.extend(t.values().iter().copied());
        }
    }

    /// Renders the relation with external names, e.g. `{(a, b), (c, d)}`.
    pub fn display<'a>(&'a self, symbols: &'a Symbols) -> impl fmt::Display + 'a {
        DisplayRelation { rel: self, symbols }
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.0.iter()).finish()
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        Relation(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

struct DisplayRelation<'a> {
    rel: &'a Relation,
    symbols: &'a Symbols,
}

impl fmt::Display for DisplayRelation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.rel.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.display(self.symbols))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[u32]) -> Tuple {
        vals.iter().map(|&v| Value(v)).collect()
    }

    #[test]
    fn duplicates_collapse() {
        let r = Relation::from_tuples(vec![t(&[1, 2]), t(&[1, 2]), t(&[3, 4])]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn canonical_equality_ignores_insertion_order() {
        let a = Relation::from_tuples(vec![t(&[1]), t(&[2]), t(&[3])]);
        let b = Relation::from_tuples(vec![t(&[3]), t(&[1]), t(&[2])]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn set_operations() {
        let a = Relation::from_tuples(vec![t(&[1]), t(&[2])]);
        let b = Relation::from_tuples(vec![t(&[2]), t(&[3])]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.difference(&b), Relation::singleton(t(&[1])));
    }

    #[test]
    fn the_tuple_only_for_singletons() {
        assert!(Relation::new().the_tuple().is_none());
        assert_eq!(Relation::singleton(t(&[7])).the_tuple(), Some(&t(&[7])));
        let two = Relation::from_tuples(vec![t(&[1]), t(&[2])]);
        assert!(two.the_tuple().is_none());
    }

    #[test]
    fn collect_domain_gathers_all_values() {
        let r = Relation::from_tuples(vec![t(&[1, 5]), t(&[2, 5])]);
        let mut dom = BTreeSet::new();
        r.collect_domain(&mut dom);
        assert_eq!(
            dom.into_iter().collect::<Vec<_>>(),
            vec![Value(1), Value(2), Value(5)]
        );
    }
}
