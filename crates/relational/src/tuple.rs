//! Immutable tuples of data values.

use crate::value::{Symbols, Value};
use std::fmt;

/// An immutable tuple of [`Value`]s.
///
/// Tuples are the unit of storage in relations, of transport in flat message
/// queues, and of binding in rule heads. The boxed-slice representation keeps
/// them two words wide, and the derived lexicographic `Ord` gives relations a
/// canonical element order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// The empty (0-ary) tuple, the single inhabitant of propositional
    /// relations such as queue-emptiness states.
    pub fn unit() -> Self {
        Tuple(Box::from([]))
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values, in order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Component at position `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.arity()`.
    pub fn get(&self, i: usize) -> Value {
        self.0[i]
    }

    /// Renders the tuple with external names, e.g. `(c1, "excellent")`.
    pub fn display<'a>(&'a self, symbols: &'a Symbols) -> impl fmt::Display + 'a {
        DisplayTuple {
            tuple: self,
            symbols,
        }
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

impl std::borrow::Borrow<[Value]> for Tuple {
    fn borrow(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v.into_boxed_slice())
    }
}

impl From<&[Value]> for Tuple {
    fn from(v: &[Value]) -> Self {
        Tuple(v.into())
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

struct DisplayTuple<'a> {
    tuple: &'a Tuple,
    symbols: &'a Symbols,
}

impl fmt::Display for DisplayTuple<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, &v) in self.tuple.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.symbols.name(v))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_tuple_has_zero_arity() {
        assert_eq!(Tuple::unit().arity(), 0);
        assert_eq!(Tuple::unit(), Tuple::new(vec![]));
    }

    #[test]
    fn tuples_order_lexicographically() {
        let a = Tuple::new(vec![Value(0), Value(5)]);
        let b = Tuple::new(vec![Value(1), Value(0)]);
        let c = Tuple::new(vec![Value(0), Value(9)]);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn display_uses_external_names() {
        let mut s = Symbols::new();
        let c1 = s.intern("c1");
        let ex = s.intern("excellent");
        let t = Tuple::new(vec![c1, ex]);
        assert_eq!(t.display(&s).to_string(), "(c1, excellent)");
    }

    #[test]
    fn from_iterator_collects() {
        let t: Tuple = (0..3).map(Value).collect();
        assert_eq!(t.values(), &[Value(0), Value(1), Value(2)]);
    }
}
