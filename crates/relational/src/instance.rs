//! Relational instances over a vocabulary.

use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::{Symbols, Value};
use crate::vocabulary::{RelId, Vocabulary};
use std::collections::BTreeSet;
use std::fmt;

/// A relational structure: one [`Relation`] per symbol of a vocabulary.
///
/// Instances are value types — cloned freely during successor generation —
/// and hash/compare structurally, which requires the canonical relation
/// representation guaranteed by [`Relation`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Instance {
    rels: Vec<Relation>,
}

/// Error raised when inserting a tuple of the wrong arity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArityMismatch {
    /// Relation the insertion targeted.
    pub relation: String,
    /// Declared arity.
    pub expected: usize,
    /// Arity of the offending tuple.
    pub got: usize,
}

impl fmt::Display for ArityMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tuple of arity {} inserted into `{}` of arity {}",
            self.got, self.relation, self.expected
        )
    }
}

impl std::error::Error for ArityMismatch {}

impl Instance {
    /// The empty instance over `voc` (every relation empty).
    pub fn empty(voc: &Vocabulary) -> Self {
        Instance {
            rels: vec![Relation::new(); voc.len()],
        }
    }

    /// Iterates the relations in [`RelId`] order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.rels.iter()
    }

    /// The relation interpreting `id`.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.rels[id.index()]
    }

    /// Mutable access to the relation interpreting `id`.
    pub fn relation_mut(&mut self, id: RelId) -> &mut Relation {
        &mut self.rels[id.index()]
    }

    /// Replaces the interpretation of `id` wholesale.
    pub fn set_relation(&mut self, id: RelId, rel: Relation) {
        self.rels[id.index()] = rel;
    }

    /// Inserts `t` into `id`, checking arity against `voc`.
    pub fn insert_checked(
        &mut self,
        voc: &Vocabulary,
        id: RelId,
        t: Tuple,
    ) -> Result<bool, ArityMismatch> {
        let expected = voc.arity(id);
        if t.arity() != expected {
            return Err(ArityMismatch {
                relation: voc.name(id).to_owned(),
                expected,
                got: t.arity(),
            });
        }
        Ok(self.rels[id.index()].insert(t))
    }

    /// Membership test `t ∈ id`.
    pub fn contains(&self, id: RelId, t: &Tuple) -> bool {
        self.rels[id.index()].contains(t)
    }

    /// Allocation-free membership test on a value slice.
    pub fn contains_slice(&self, id: RelId, t: &[Value]) -> bool {
        self.rels[id.index()].contains_slice(t)
    }

    /// Truth value of a propositional (0-ary) relation.
    pub fn holds(&self, id: RelId) -> bool {
        self.rels[id.index()].contains(&Tuple::unit())
    }

    /// Sets a propositional (0-ary) relation.
    pub fn set_holds(&mut self, id: RelId, value: bool) {
        if value {
            self.rels[id.index()].insert(Tuple::unit());
        } else {
            self.rels[id.index()].remove(&Tuple::unit());
        }
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.rels.iter().map(Relation::len).sum()
    }

    /// Whether every relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rels.iter().all(Relation::is_empty)
    }

    /// The active domain: every value occurring in some tuple.
    ///
    /// The paper's run semantics quantifies over the active domain of the
    /// run; the verifier extends this set with the specification's constants
    /// and the synthetic verification domain.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for r in &self.rels {
            r.collect_domain(&mut dom);
        }
        dom
    }

    /// Number of relations (the vocabulary size this instance was built for).
    pub fn width(&self) -> usize {
        self.rels.len()
    }

    /// Renders all non-empty relations with external names.
    pub fn display<'a>(
        &'a self,
        voc: &'a Vocabulary,
        symbols: &'a Symbols,
    ) -> impl fmt::Display + 'a {
        DisplayInstance {
            inst: self,
            voc,
            symbols,
        }
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_map();
        for (i, r) in self.rels.iter().enumerate() {
            if !r.is_empty() {
                m.entry(&RelId(i as u32), r);
            }
        }
        m.finish()
    }
}

struct DisplayInstance<'a> {
    inst: &'a Instance,
    voc: &'a Vocabulary,
    symbols: &'a Symbols,
}

impl fmt::Display for DisplayInstance<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (id, decl) in self.voc.iter() {
            let rel = self.inst.relation(id);
            if rel.is_empty() {
                continue;
            }
            if !first {
                writeln!(f)?;
            }
            first = false;
            write!(f, "{} = {}", decl.name, rel.display(self.symbols))?;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vocabulary, Symbols) {
        let mut voc = Vocabulary::new();
        voc.declare("customer", 2).unwrap();
        voc.declare("flag", 0).unwrap();
        let mut sym = Symbols::new();
        sym.intern("a");
        sym.intern("b");
        (voc, sym)
    }

    #[test]
    fn empty_instance_has_no_tuples() {
        let (voc, _) = setup();
        let inst = Instance::empty(&voc);
        assert!(inst.is_empty());
        assert_eq!(inst.total_tuples(), 0);
        assert_eq!(inst.width(), 2);
    }

    #[test]
    fn insert_checked_enforces_arity() {
        let (voc, _) = setup();
        let customer = voc.lookup("customer").unwrap();
        let mut inst = Instance::empty(&voc);
        let ok = inst.insert_checked(&voc, customer, Tuple::new(vec![Value(0), Value(1)]));
        assert_eq!(ok, Ok(true));
        let err = inst.insert_checked(&voc, customer, Tuple::new(vec![Value(0)]));
        assert!(err.is_err());
        assert_eq!(err.unwrap_err().expected, 2);
    }

    #[test]
    fn propositional_relations() {
        let (voc, _) = setup();
        let flag = voc.lookup("flag").unwrap();
        let mut inst = Instance::empty(&voc);
        assert!(!inst.holds(flag));
        inst.set_holds(flag, true);
        assert!(inst.holds(flag));
        inst.set_holds(flag, false);
        assert!(!inst.holds(flag));
    }

    #[test]
    fn active_domain_collects_values() {
        let (voc, _) = setup();
        let customer = voc.lookup("customer").unwrap();
        let mut inst = Instance::empty(&voc);
        inst.relation_mut(customer)
            .insert(Tuple::new(vec![Value(3), Value(1)]));
        inst.relation_mut(customer)
            .insert(Tuple::new(vec![Value(3), Value(7)]));
        let dom: Vec<_> = inst.active_domain().into_iter().collect();
        assert_eq!(dom, vec![Value(1), Value(3), Value(7)]);
    }

    #[test]
    fn structural_equality_and_hash() {
        let (voc, _) = setup();
        let customer = voc.lookup("customer").unwrap();
        let mut a = Instance::empty(&voc);
        let mut b = Instance::empty(&voc);
        a.relation_mut(customer)
            .insert(Tuple::new(vec![Value(0), Value(1)]));
        b.relation_mut(customer)
            .insert(Tuple::new(vec![Value(0), Value(1)]));
        assert_eq!(a, b);
    }

    #[test]
    fn display_shows_nonempty_relations() {
        let (voc, sym) = setup();
        let customer = voc.lookup("customer").unwrap();
        let mut inst = Instance::empty(&voc);
        inst.relation_mut(customer)
            .insert(Tuple::new(vec![Value(0), Value(1)]));
        let s = inst.display(&voc, &sym).to_string();
        assert_eq!(s, "customer = {(a, b)}");
    }
}
