//! Property-based tests for the hash-cons interner and the bit-packed
//! tuple codes — the substrate of the compact state representation.
//!
//! Unlike `tests/prop.rs` this target has no `required-features` gate: the
//! testkit shim is deterministic and dependency-free, so the suite runs
//! under plain (offline) `cargo test` *and* under `--features proptest`,
//! keeping the representation's invariants pinned in both configurations.

use ddws_relational::intern::{bits_for, codes_apply_update, codes_contain, codes_union};
use ddws_relational::{Interner, PackSpec, Relation, Tuple, Value};
use ddws_testkit::proptest::{self, prelude::*};
use std::collections::BTreeSet;
use std::sync::Arc;

fn arb_tuple(arity: usize, dom: u32) -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(0..dom, arity).prop_map(|vs| vs.into_iter().map(Value).collect())
}

proptest! {
    /// Interning then resolving returns the original value, and equal
    /// values intern to the *same* handle while distinct values never
    /// collide: handle equality is exactly value equality.
    #[test]
    fn intern_resolve_roundtrip_and_id_equality(
        tuples in proptest::collection::vec(arb_tuple(3, 6), 1..20),
    ) {
        let interner: Interner<Tuple> = Interner::new();
        let ids: Vec<u32> = tuples.iter().map(|t| interner.intern(t.clone())).collect();
        for (t, &id) in tuples.iter().zip(&ids) {
            prop_assert_eq!(&*interner.resolve(id), t);
        }
        for (i, a) in tuples.iter().enumerate() {
            for (j, b) in tuples.iter().enumerate() {
                prop_assert_eq!(ids[i] == ids[j], a == b);
            }
        }
        let distinct: BTreeSet<&Tuple> = tuples.iter().collect();
        prop_assert_eq!(interner.len(), distinct.len());
        prop_assert_eq!(
            interner.hits() + interner.misses(),
            tuples.len() as u64
        );
        prop_assert_eq!(interner.misses(), distinct.len() as u64);
    }

    /// Resolving the same handle twice aliases one shared allocation (the
    /// copy-on-write snapshot guarantee: configurations holding the same
    /// interned extension share storage, never deep-copies).
    #[test]
    fn resolve_aliases_shared_storage(t in arb_tuple(4, 9)) {
        let interner: Interner<Relation> = Interner::new();
        let rel = Relation::singleton(t);
        let id = interner.intern(rel.clone());
        let a = interner.resolve(id);
        let b = interner.resolve(id);
        prop_assert!(Arc::ptr_eq(&a, &b));
        // Re-interning an equal value books a hit and allocates nothing new.
        let before = interner.len();
        prop_assert_eq!(interner.intern(rel), id);
        prop_assert_eq!(interner.len(), before);
        prop_assert!(Arc::ptr_eq(&interner.resolve(id), &a));
    }

    /// `pack` then `unpack` is the identity over the full packable domain.
    #[test]
    fn pack_unpack_identity(t in arb_tuple(3, 21)) {
        let spec = PackSpec::new(21, 3).expect("3×5 bits packs");
        let code = spec.pack(t.values()).expect("in-domain tuple packs");
        prop_assert_eq!(spec.unpack(code), t.values().to_vec());
    }

    /// Packed codes order-embed tuples: `codes_union` and
    /// `codes_apply_update` on sorted codes agree with the set-level
    /// operations on the tuples they encode.
    #[test]
    fn code_merges_agree_with_set_semantics(
        old in proptest::collection::vec(arb_tuple(2, 5), 0..12),
        ins in proptest::collection::vec(arb_tuple(2, 5), 0..12),
        del in proptest::collection::vec(arb_tuple(2, 5), 0..12),
    ) {
        let spec = PackSpec::new(5, 2).expect("2×3 bits packs");
        let encode = |ts: &[Tuple]| -> Vec<u64> {
            let mut codes: Vec<u64> = ts
                .iter()
                .map(|t| spec.pack(t.values()).expect("in-domain"))
                .collect();
            codes.sort_unstable();
            codes.dedup();
            codes
        };
        let (o, i, d) = (encode(&old), encode(&ins), encode(&del));
        let as_set = |codes: &[u64]| -> BTreeSet<u64> { codes.iter().copied().collect() };
        let union = codes_union(&o, &i);
        prop_assert!(union.windows(2).all(|w| w[0] < w[1]), "union stays sorted+deduped");
        prop_assert_eq!(as_set(&union), &as_set(&o) | &as_set(&i));
        // Definition 2.4's no-op-on-conflict update, checked pointwise.
        let updated = codes_apply_update(&o, &i, &d);
        prop_assert!(updated.windows(2).all(|w| w[0] < w[1]));
        for c in as_set(&union).union(&as_set(&d)) {
            let (in_o, in_i, in_d) =
                (codes_contain(&o, *c), codes_contain(&i, *c), codes_contain(&d, *c));
            // Definition 2.4's three disjuncts verbatim, one per case.
            #[allow(clippy::nonminimal_bool)]
            let expect = (in_i && !in_d) || (in_o && in_i && in_d) || (in_o && !in_i && !in_d);
            prop_assert_eq!(codes_contain(&updated, *c), expect);
        }
    }
}

/// Boundary widths: packing must fill exactly 64 bits at every arity ×
/// width split, `unpack` must invert `pack` at the extreme code points,
/// and anything one bit wider must be refused, never truncated.
#[test]
fn pack_boundary_widths() {
    // 2×32 bits, 4×16, 8×8, 16×4, 32×2, 64×1 — each saturates the 64-bit
    // code exactly.
    for (arity, bits) in [(2u32, 32u32), (4, 16), (8, 8), (16, 4), (32, 2), (64, 1)] {
        let dom = 1usize << bits;
        let spec = PackSpec::new(dom, arity as usize)
            .unwrap_or_else(|| panic!("arity {arity} × {bits} bits must pack"));
        assert_eq!(bits_for(dom), bits, "bits_for({dom})");
        assert_eq!((spec.bits(), spec.arity()), (bits, arity));
        let lo: Vec<Value> = vec![Value(0); arity as usize];
        let hi: Vec<Value> = vec![Value((dom - 1) as u32); arity as usize];
        for t in [lo, hi] {
            let code = spec.pack(&t).expect("boundary tuple packs");
            assert_eq!(spec.unpack(code), t, "arity {arity} boundary round-trip");
        }
    }
    // One value past a power of two bumps the width; one bit past 64 total
    // must refuse.
    assert_eq!(bits_for((1 << 16) + 1), 17);
    assert!(
        PackSpec::new((1 << 16) + 1, 4).is_none(),
        "4×17 bits must be rejected"
    );
    assert!(
        PackSpec::new(1 << 32, 3).is_none(),
        "3×32 bits must be rejected"
    );
    // Out-of-domain values and wrong arities refuse to pack, never wrap.
    let spec = PackSpec::new(4, 2).expect("2×2 bits");
    assert_eq!(spec.pack(&[Value(0), Value(4)]), None);
    assert_eq!(spec.pack(&[Value(u32::MAX), Value(0)]), None);
    assert_eq!(spec.pack(&[Value(0)]), None);
    // Degenerate one-value domain still addresses with one bit.
    let one = PackSpec::new(1, 64).expect("64×1 bit");
    assert_eq!(one.pack(&vec![Value(0); 64]), Some(0));
    assert_eq!(one.unpack(0), vec![Value(0); 64]);
}
