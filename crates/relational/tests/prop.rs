//! Property-based tests for the relational substrate.

use ddws_relational::{Instance, Relation, Symbols, Tuple, Value, Vocabulary};
use ddws_testkit::proptest::{self, prelude::*};

fn arb_tuple(arity: usize, dom: u32) -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(0..dom, arity).prop_map(|vs| vs.into_iter().map(Value).collect())
}

fn arb_relation(arity: usize, dom: u32, max_len: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(arb_tuple(arity, dom), 0..=max_len).prop_map(Relation::from_tuples)
}

proptest! {
    /// A relation built from any permutation of the same tuples is identical.
    #[test]
    fn relation_is_canonical(tuples in proptest::collection::vec(arb_tuple(2, 5), 0..12)) {
        let forward = Relation::from_tuples(tuples.clone());
        let mut reversed = tuples.clone();
        reversed.reverse();
        let backward = Relation::from_tuples(reversed);
        prop_assert_eq!(&forward, &backward);
    }

    /// `insert` then `contains` holds; `remove` then `contains` fails.
    #[test]
    fn insert_remove_roundtrip(mut rel in arb_relation(2, 5, 10), t in arb_tuple(2, 5)) {
        rel.insert(t.clone());
        prop_assert!(rel.contains(&t));
        rel.remove(&t);
        prop_assert!(!rel.contains(&t));
    }

    /// Union is commutative, and both arguments embed into it.
    #[test]
    fn union_laws(a in arb_relation(1, 6, 10), b in arb_relation(1, 6, 10)) {
        let u = a.union(&b);
        prop_assert_eq!(&u, &b.union(&a));
        for t in a.iter() {
            prop_assert!(u.contains(t));
        }
        for t in b.iter() {
            prop_assert!(u.contains(t));
        }
        prop_assert!(u.len() <= a.len() + b.len());
    }

    /// `difference` and `intersection` partition the left argument.
    #[test]
    fn difference_intersection_partition(a in arb_relation(1, 6, 10), b in arb_relation(1, 6, 10)) {
        let d = a.difference(&b);
        let i = a.intersection(&b);
        prop_assert_eq!(d.len() + i.len(), a.len());
        prop_assert!(d.intersection(&i).is_empty());
        prop_assert_eq!(&d.union(&i), &a);
    }

    /// The active domain of an instance is exactly the set of values in its tuples.
    #[test]
    fn active_domain_is_exact(tuples in proptest::collection::vec(arb_tuple(3, 8), 0..10)) {
        let mut voc = Vocabulary::new();
        let r = voc.declare("R", 3).unwrap();
        let mut inst = Instance::empty(&voc);
        let mut expected = std::collections::BTreeSet::new();
        for t in &tuples {
            expected.extend(t.values().iter().copied());
            inst.relation_mut(r).insert(t.clone());
        }
        prop_assert_eq!(inst.active_domain(), expected);
    }
}

#[test]
fn symbols_roundtrip_many() {
    let mut s = Symbols::new();
    let names: Vec<String> = (0..100).map(|i| format!("name-{i}")).collect();
    let vals: Vec<Value> = names.iter().map(|n| s.intern(n)).collect();
    for (n, v) in names.iter().zip(&vals) {
        assert_eq!(s.lookup(n), Some(*v));
        assert_eq!(s.name(*v), n);
    }
}
