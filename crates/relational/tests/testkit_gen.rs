//! Randomized tests on the native `ddws-testkit` generator API — the
//! always-on, shrink-free counterpart of `tests/prop.rs` (which needs
//! `--features proptest`). Same relation laws, seeded xorshift PRNG.

use ddws_relational::{Relation, Tuple, Value};
use ddws_testkit::{gen, rng::XorShift, seed_from};

fn gen_tuple(rng: &mut XorShift, arity: usize, dom: u64) -> Tuple {
    (0..arity).map(|_| Value(rng.below(dom) as u32)).collect()
}

fn gen_relation(rng: &mut XorShift, arity: usize, dom: u64, max_len: usize) -> Relation {
    Relation::from_tuples(gen::vec_of(rng, 0, max_len, |r| gen_tuple(r, arity, dom)))
}

#[test]
fn relation_is_canonical() {
    gen::cases(64, seed_from("relation_is_canonical"), |rng| {
        let tuples = gen::vec_of(rng, 0, 12, |r| gen_tuple(r, 2, 5));
        let forward = Relation::from_tuples(tuples.clone());
        let mut reversed = tuples;
        reversed.reverse();
        assert_eq!(forward, Relation::from_tuples(reversed));
    });
}

#[test]
fn insert_remove_roundtrip() {
    gen::cases(64, seed_from("insert_remove_roundtrip"), |rng| {
        let mut rel = gen_relation(rng, 2, 5, 10);
        let t = gen_tuple(rng, 2, 5);
        rel.insert(t.clone());
        assert!(rel.contains(&t));
        rel.remove(&t);
        assert!(!rel.contains(&t));
    });
}

#[test]
fn union_laws() {
    gen::cases(64, seed_from("union_laws"), |rng| {
        let a = gen_relation(rng, 1, 6, 10);
        let b = gen_relation(rng, 1, 6, 10);
        let u = a.union(&b);
        assert_eq!(u, b.union(&a));
        assert!(a.iter().all(|t| u.contains(t)));
        assert!(b.iter().all(|t| u.contains(t)));
        assert!(u.len() <= a.len() + b.len());
    });
}

#[test]
fn difference_intersection_partition() {
    gen::cases(64, seed_from("difference_intersection_partition"), |rng| {
        let a = gen_relation(rng, 1, 6, 10);
        let b = gen_relation(rng, 1, 6, 10);
        let d = a.difference(&b);
        let i = a.intersection(&b);
        assert_eq!(d.len() + i.len(), a.len());
        assert!(d.intersection(&i).is_empty());
        assert_eq!(d.union(&i), a);
    });
}
