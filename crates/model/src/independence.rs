//! Static mover independence for ample-set partial-order reduction.
//!
//! The product search serializes peer moves (Definition 2.6), so from every
//! configuration it branches on *which* mover steps next. Under the snapshot
//! semantics of Definition 2.4 most of those branches commute: a peer's move
//! reads its own relations and its in-queue heads, and writes its own
//! relations and the queues it touches — two movers whose read/write
//! footprints are disjoint reach the same configurations in either order.
//!
//! This module derives a conservative **may-conflict relation** between
//! movers from the rule schemas (validated per Definition 2.1) and selects,
//! per configuration, an *ample* mover whose scheduling alone preserves the
//! verdict. The selection enforces the classic ample-set conditions:
//!
//! * **C0** (non-emptiness): a peer move is always enabled — every peer has
//!   at least the empty-input successor — so a singleton ample set is never
//!   empty;
//! * **C1** (dependence): the ample mover is chosen only if it is
//!   independent of *every* other mover, so no dependent transition can
//!   fire before it along any path of the full graph;
//! * **C2** (invisibility): the ample mover must not write any resource an
//!   observed proposition reads (the FO-atom registry's ground atoms plus
//!   the `emptyQ`/`receivedQ`/`enqueuedQ` observer propositions); if any
//!   observed atom reads a `moveW`/`moveE` bookkeeping proposition, every
//!   mover is visible and the reduction disables itself;
//! * **C3** (cycle proviso) is the engines' job: the sequential nested DFS
//!   falls back to a full expansion when an ample successor is on the DFS
//!   stack, the parallel engine when an ample successor is already visited.
//!
//! The footprints are *static* (schema-level), so the relation is
//! conservative: a sender and its receiver always conflict through the
//! queue, and when a `received_q`/`sent_q` flag is tracked in
//! configurations, every mover writes it (each move resets the flags of
//! all channels), making all movers mutually dependent — the reduction
//! then degrades soundly to full expansion everywhere.

use crate::composition::{ChannelRole, Composition, Mover};
use crate::config::Config;
use crate::view::Database;
use ddws_logic::RelClass;
use ddws_relational::{RelId, Value};
use std::collections::BTreeSet;

/// A mutable resource a mover's step may read or write. Database relations
/// are immutable during a run (the lazy oracle only *decides* them, which
/// the product layer handles via fork edges) and are therefore not
/// resources.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Resource {
    /// A configuration relation (state / input / previous-input / action).
    Rel(u32),
    /// A channel's queue contents (read through `?q`, `!q`, `empty_q` and
    /// the nested-message emptiness test; written by sends and dequeues).
    Queue(u32),
    /// A channel's deterministic-send error flag.
    ErrFlag(u32),
    /// A channel's tracked `received_q` flag.
    RecvFlag(u32),
    /// A channel's tracked `sent_q` flag.
    SentFlag(u32),
}

/// Read/write footprint of one mover's step, over [`Resource`]s.
#[derive(Clone, Debug, Default)]
struct Footprint {
    reads: BTreeSet<Resource>,
    writes: BTreeSet<Resource>,
}

impl Footprint {
    fn conflicts(&self, other: &Footprint) -> bool {
        self.writes.iter().any(|r| other.reads.contains(r))
            || other.writes.iter().any(|r| self.reads.contains(r))
            || self.writes.iter().any(|r| other.writes.contains(r))
    }
}

/// Maps a relation to the resource it denotes; `Ok(None)` for static
/// (database) relations, `Err(())` for bookkeeping propositions
/// (`moveW`/`moveE`), which poison whatever mentions them.
fn resource_of(comp: &Composition, rel: RelId) -> Result<Option<Resource>, ()> {
    if let Some((cid, role)) = comp.rel_channel[rel.index()] {
        let c = cid.index() as u32;
        return Ok(Some(match role {
            ChannelRole::In | ChannelRole::Out | ChannelRole::Empty | ChannelRole::MsgEmpty => {
                Resource::Queue(c)
            }
            ChannelRole::Received => Resource::RecvFlag(c),
            ChannelRole::Sent => Resource::SentFlag(c),
            ChannelRole::Error => Resource::ErrFlag(c),
        }));
    }
    match comp.class(rel) {
        RelClass::Database => Ok(None),
        RelClass::Bookkeeping => Err(()),
        _ => Ok(Some(Resource::Rel(rel.index() as u32))),
    }
}

/// Precomputed ample-mover selection for one composition + property-atom
/// vocabulary. Built once per product system; queried per configuration.
#[derive(Clone, Debug)]
pub struct IndependenceOracle {
    /// Movers in [`Composition::movers`] order that satisfy C1 + C2
    /// statically; the first one is the ample choice everywhere.
    eligible: Vec<Mover>,
    /// Whether the reduction is usable at all (false when an observed atom
    /// reads a move proposition, under `strict_input_validity`, or with
    /// fewer than two movers — a singleton schedule has nothing to reduce).
    enabled: bool,
}

impl IndependenceOracle {
    /// Builds the oracle for `comp` with `visible_rels` the relations read
    /// by the observed propositions (every ground FO atom registered for
    /// the property automaton, after flag observation has been applied via
    /// [`Composition::observe_flags`]).
    pub fn new(comp: &Composition, visible_rels: &BTreeSet<RelId>) -> Self {
        let movers = comp.movers();
        let disabled = Self {
            eligible: Vec::new(),
            enabled: false,
        };
        if movers.len() < 2 {
            return disabled;
        }
        // `strict_input_validity` re-filters input choices against the
        // *current* snapshot, so a peer's enabled moves can depend on
        // relations outside its footprint; don't reduce under it.
        if comp.semantics.strict_input_validity {
            return disabled;
        }

        // Visible resources (C2). An atom over a move proposition makes the
        // scheduled mover itself observable, so no mover is invisible.
        let mut visible: BTreeSet<Resource> = BTreeSet::new();
        for &rel in visible_rels {
            match resource_of(comp, rel) {
                Ok(Some(r)) => {
                    visible.insert(r);
                }
                Ok(None) => {}
                Err(()) => return disabled,
            }
        }

        let mut footprints = Vec::with_capacity(movers.len());
        for &m in &movers {
            match mover_footprint(comp, m) {
                Some(fp) => footprints.push(fp),
                None => return disabled,
            }
        }

        let eligible = movers
            .iter()
            .enumerate()
            .filter(|&(i, _)| {
                let fp = &footprints[i];
                let invisible = fp.writes.iter().all(|r| !visible.contains(r));
                invisible
                    && footprints
                        .iter()
                        .enumerate()
                        .all(|(j, other)| j == i || !fp.conflicts(other))
            })
            .map(|(_, &m)| m)
            .collect();
        Self {
            eligible,
            enabled: true,
        }
    }

    /// Whether any configuration can be reduced at all.
    pub fn can_reduce(&self) -> bool {
        self.enabled && !self.eligible.is_empty()
    }

    /// The ample mover to schedule from `_cfg`, or `None` when the
    /// configuration must be fully expanded.
    ///
    /// The static footprints make eligibility configuration-independent,
    /// so today this returns the first eligible mover everywhere; the
    /// configuration parameter is part of the contract so a dynamic
    /// refinement (e.g. queue-state-conditional independence) stays a
    /// drop-in replacement.
    pub fn ample_mover(&self, _cfg: &Config) -> Option<Mover> {
        self.ample_mover_static()
    }

    /// The configuration-independent form of [`ample_mover`]: with static
    /// footprints the ample choice never inspects the configuration, so
    /// representation-agnostic callers (the compact state path never
    /// materializes a [`Config`]) use this directly.
    ///
    /// [`ample_mover`]: Self::ample_mover
    pub fn ample_mover_static(&self) -> Option<Mover> {
        if !self.enabled {
            return None;
        }
        self.eligible.first().copied()
    }
}

/// The static read/write footprint of one mover; `None` when a rule body
/// mentions a bookkeeping proposition (never valid per Definition 2.1, but
/// poison rather than trust it).
fn mover_footprint(comp: &Composition, mover: Mover) -> Option<Footprint> {
    let mut fp = Footprint::default();
    // Every move resets the received/sent flags of *all* channels
    // (Definition 2.4's per-snapshot observers), so each tracked flag is
    // written by every mover.
    for (i, _) in comp.channels.iter().enumerate() {
        if comp.observed_received[i] {
            fp.writes.insert(Resource::RecvFlag(i as u32));
        }
        if comp.observed_sent[i] {
            fp.writes.insert(Resource::SentFlag(i as u32));
        }
    }
    match mover {
        Mover::Environment => {
            for cid in comp.env_in_channels() {
                // Keeps or drops the head: reads and rewrites the queue.
                fp.reads.insert(Resource::Queue(cid.index() as u32));
                fp.writes.insert(Resource::Queue(cid.index() as u32));
            }
            for cid in comp.env_out_channels() {
                // Appends (capacity-checked): reads length, writes contents.
                fp.reads.insert(Resource::Queue(cid.index() as u32));
                fp.writes.insert(Resource::Queue(cid.index() as u32));
            }
        }
        Mover::Peer(pid) => {
            let peer = &comp.peers[pid.index()];
            let read_rel = |rel: RelId, fp: &mut Footprint| -> Option<()> {
                match resource_of(comp, rel) {
                    Ok(Some(r)) => {
                        fp.reads.insert(r);
                        Some(())
                    }
                    Ok(None) => Some(()),
                    Err(()) => None,
                }
            };
            for hr in peer
                .input_rules
                .iter()
                .chain(peer.action_rules.iter())
                .chain(peer.send_rules.iter().map(|(_, hr)| hr))
            {
                for rel in hr.body.relations() {
                    read_rel(rel, &mut fp)?;
                }
            }
            for sr in &peer.state_rules {
                for body in sr.insert.iter().chain(sr.delete.iter()) {
                    for rel in body.relations() {
                        read_rel(rel, &mut fp)?;
                    }
                }
            }
            // Own dynamic relations are rewritten every move (state rules,
            // input choice, prev shift, action recomputation).
            for &rel in peer
                .states
                .iter()
                .chain(peer.inputs.iter())
                .chain(peer.prev.iter().flatten())
                .chain(peer.actions.iter())
            {
                fp.writes.insert(Resource::Rel(rel.index() as u32));
            }
            for &cid in &peer.dequeues {
                fp.reads.insert(Resource::Queue(cid.index() as u32));
                fp.writes.insert(Resource::Queue(cid.index() as u32));
            }
            for &cid in &peer.out_channels {
                // Sends append (capacity-checked) and recompute the
                // channel's deterministic-send error flag.
                fp.reads.insert(Resource::Queue(cid.index() as u32));
                fp.writes.insert(Resource::Queue(cid.index() as u32));
                fp.writes.insert(Resource::ErrFlag(cid.index() as u32));
            }
        }
    }
    Some(fp)
}

impl Composition {
    /// Reduced successor generation: the model-level entry point of the
    /// ample-set reduction. Expands only the ample mover chosen by
    /// `oracle` (falling back to all movers when none qualifies) and
    /// returns `(successors-tagged-by-mover, ample)` where `ample` reports
    /// whether the expansion was genuinely reduced.
    ///
    /// The verifier's product system applies the same selection inline (it
    /// needs the mover choice per successor configuration); this entry
    /// point is what model-level tests and tools drive directly.
    pub fn successors_reduced(
        &self,
        db: &dyn Database,
        domain: &[Value],
        cfg: &Config,
        oracle: &IndependenceOracle,
    ) -> (Vec<(Mover, Config)>, bool) {
        let movers = self.movers();
        if let Some(m) = oracle.ample_mover(cfg) {
            if movers.len() > 1 {
                let succs = self
                    .successors(db, domain, cfg, m)
                    .into_iter()
                    .map(|c| (m, c))
                    .collect();
                return (succs, true);
            }
        }
        let mut out = Vec::new();
        for m in movers {
            out.extend(
                self.successors(db, domain, cfg, m)
                    .into_iter()
                    .map(|c| (m, c)),
            );
        }
        (out, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CompositionBuilder;
    use crate::composition::QueueKind;
    use ddws_relational::Instance;

    /// Two peers joined by a channel plus a channel-free auditor: the
    /// chained peers conflict through the queue, the auditor is
    /// independent of everyone.
    fn chained_with_auditor() -> Composition {
        let mut b = CompositionBuilder::new();
        b.default_lossy(true);
        b.channel("hop", 1, QueueKind::Flat, "A", "B");
        b.peer("A")
            .database("token", 1)
            .input("emit", 1)
            .input_rule("emit", &["x"], "token(x)")
            .send_rule("hop", &["x"], "emit(x)");
        b.peer("B")
            .state("seen", 1)
            .state_insert_rule("seen", &["x"], "?hop(x)");
        b.peer("Aud")
            .database("ring", 2)
            .state("phase", 1)
            .state_insert_rule("phase", &["x"], "exists p: phase(p) and ring(p, x)")
            .state_delete_rule("phase", &["x"], "phase(x)");
        let mut comp = b.build().unwrap();
        // Mirror the verifier: flags are tracked only when observed.
        comp.observe_flags(&BTreeSet::new());
        comp
    }

    #[test]
    fn auditor_is_the_only_eligible_mover() {
        let comp = chained_with_auditor();
        let oracle = IndependenceOracle::new(&comp, &BTreeSet::new());
        assert!(oracle.can_reduce());
        let aud = comp.peer_by_name("Aud").unwrap().id;
        assert_eq!(oracle.eligible, vec![Mover::Peer(aud)]);
    }

    #[test]
    fn observing_the_auditor_state_makes_it_visible() {
        let comp = chained_with_auditor();
        let phase = comp.voc.lookup("Aud.phase").unwrap();
        let visible: BTreeSet<RelId> = [phase].into_iter().collect();
        let oracle = IndependenceOracle::new(&comp, &visible);
        assert!(!oracle.can_reduce());
    }

    #[test]
    fn tracked_received_flag_disables_every_mover() {
        let mut comp = chained_with_auditor();
        // Track `received_hop` as a property observing it would.
        comp.observed_received[0] = true;
        let oracle = IndependenceOracle::new(&comp, &BTreeSet::new());
        assert!(!oracle.can_reduce());
    }

    #[test]
    fn strict_input_validity_disables_reduction() {
        let mut comp = chained_with_auditor();
        comp.semantics.strict_input_validity = true;
        let oracle = IndependenceOracle::new(&comp, &BTreeSet::new());
        assert!(!oracle.can_reduce());
    }

    #[test]
    fn reduced_successors_schedule_only_the_auditor() {
        let comp = chained_with_auditor();
        let oracle = IndependenceOracle::new(&comp, &BTreeSet::new());
        let db = Instance::empty(&comp.voc);
        let domain: Vec<Value> = Vec::new();
        let cfg = comp
            .initial_configs(&db, &domain)
            .into_iter()
            .next()
            .unwrap();
        let aud = comp.peer_by_name("Aud").unwrap().id;
        let (succs, ample) = comp.successors_reduced(&db, &domain, &cfg, &oracle);
        assert!(ample);
        assert!(!succs.is_empty());
        assert!(succs.iter().all(|(m, _)| *m == Mover::Peer(aud)));
    }
}
