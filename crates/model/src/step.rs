//! Successor generation: the legal-successor relation of Definition 2.4,
//! lifted to composition snapshots (Definition 2.6), plus environment moves
//! for open compositions (§5).
//!
//! One peer moves per step ("serialized runs"). A move:
//!
//! 1. evaluates all state, action and send rules simultaneously on the
//!    *current* snapshot (snapshot semantics),
//! 2. updates state relations with the no-op-on-conflict combination of
//!    insertions and deletions,
//! 3. replaces action relations with the rule results,
//! 4. dequeues the first message of every in-queue mentioned in the rules,
//! 5. sends: nested rules enqueue their full result as one message (empty
//!    or not); flat rules enqueue one nondeterministically chosen tuple —
//!    or, under the deterministic-send semantics of Theorem 3.8, raise the
//!    channel's error flag when several candidates exist,
//! 6. loses messages nondeterministically on lossy channels and drops them
//!    silently when the receiver's queue holds `queue_bound` messages,
//! 7. shifts the mover's previous-input chain, and
//! 8. chooses the mover's next input among the options its input rules
//!    generate in the *new* configuration (Definition 2.3's validity).
//!
//! An environment move nondeterministically consumes first messages from
//! the environment's in-queues and emits messages over the verification
//! domain on its out-queues (§5), subject to the same channel semantics.

use crate::composition::{Composition, Endpoint, Mover, Peer, PeerId, QueueKind};
use crate::config::{Config, Message};
use crate::plan::{EvalCtx, RuleRef};
use crate::view::{Database, RuleView};
use ddws_relational::{Relation, Tuple, Value};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A pending send resolved during branching.
#[derive(Clone, Debug)]
enum SendOutcome {
    /// Nothing to send.
    Nothing,
    /// Raise the deterministic-send error flag (Theorem 3.8).
    Error,
    /// Send this message (channel semantics still applies).
    Send(Message),
}

impl Composition {
    /// Initial configurations over `db`: empty states, actions, previous
    /// inputs and queues (Definition 2.6), with every peer's input chosen
    /// among its options in the empty configuration.
    pub fn initial_configs(&self, db: &dyn Database, domain: &[Value]) -> Vec<Config> {
        self.initial_configs_with(db, domain, EvalCtx::default())
    }

    /// [`Composition::initial_configs`] with an explicit rule-evaluation
    /// context (compiled plans and/or memoization).
    pub fn initial_configs_with(
        &self,
        db: &dyn Database,
        domain: &[Value],
        ctx: EvalCtx<'_>,
    ) -> Vec<Config> {
        let base = Config::empty(self);
        let mut configs = vec![base];
        for peer in &self.peers {
            configs = configs
                .into_iter()
                .flat_map(|c| self.with_input_choices(db, domain, c, peer, ctx))
                .collect();
        }
        if self.semantics.strict_input_validity {
            // Choices were generated peer-by-peer against intermediate
            // configs; inputs do not influence options (input rules cannot
            // read inputs), so the enumeration is already consistent.
        }
        configs
    }

    /// All legal successor configurations when `mover` takes the next step.
    pub fn successors(
        &self,
        db: &dyn Database,
        domain: &[Value],
        config: &Config,
        mover: Mover,
    ) -> Vec<Config> {
        self.successors_with(db, domain, config, mover, EvalCtx::default())
    }

    /// [`Composition::successors`] with an explicit rule-evaluation context:
    /// compiled plans replace FO re-interpretation and a [`RuleCache`]
    /// (when provided) memoizes rule extensions by read footprint. The
    /// default context is the interpreted oracle of record.
    ///
    /// [`RuleCache`]: crate::plan::RuleCache
    pub fn successors_with(
        &self,
        db: &dyn Database,
        domain: &[Value],
        config: &Config,
        mover: Mover,
        ctx: EvalCtx<'_>,
    ) -> Vec<Config> {
        let raw = match mover {
            Mover::Peer(p) => self.peer_successors(db, domain, config, p, ctx),
            Mover::Environment => self.env_successors(db, domain, config),
        };
        // Distinct nondeterministic resolutions can coincide (e.g. a lossy
        // drop vs. a capacity drop); deduplicate to keep the search lean.
        dedup_preserving_order(raw)
    }

    fn peer_successors(
        &self,
        db: &dyn Database,
        domain: &[Value],
        config: &Config,
        pid: PeerId,
        ctx: EvalCtx<'_>,
    ) -> Vec<Config> {
        let peer = &self.peers[pid.index()];
        let view = RuleView::new(self, db, config, pid, domain);

        // 1. Evaluate every rule on the current snapshot.
        let mut state_updates: Vec<(ddws_relational::RelId, Relation)> = Vec::new();
        for (i, sr) in peer.state_rules.iter().enumerate() {
            if self.frozen[sr.rel.index()] {
                continue;
            }
            let inserts: Relation = sr
                .insert
                .as_ref()
                .map(|b| {
                    to_relation(&ctx.eval_rule(RuleRef::StateInsert(pid, i), &sr.head, b, &view))
                })
                .unwrap_or_default();
            let deletes: Relation = sr
                .delete
                .as_ref()
                .map(|b| {
                    to_relation(&ctx.eval_rule(RuleRef::StateDelete(pid, i), &sr.head, b, &view))
                })
                .unwrap_or_default();
            let old = config.rel.relation(sr.rel);
            // Definition 2.4: (ϕ+ ∧ ¬ϕ−) ∨ (S ∧ ϕ+ ∧ ϕ−) ∨ (S ∧ ¬ϕ+ ∧ ¬ϕ−).
            let keep_conflict = old.intersection(&inserts).intersection(&deletes);
            let keep_untouched = old.difference(&inserts.union(&deletes));
            let new = inserts
                .difference(&deletes)
                .union(&keep_conflict)
                .union(&keep_untouched);
            state_updates.push((sr.rel, new));
        }

        let mut action_updates: Vec<(ddws_relational::RelId, Relation)> = peer
            .actions
            .iter()
            .filter(|a| !self.frozen[a.index()])
            .map(|&a| (a, Relation::new()))
            .collect();
        for (i, ar) in peer.action_rules.iter().enumerate() {
            if self.frozen[ar.rel.index()] {
                continue;
            }
            let ext = ctx.eval_rule(RuleRef::Action(pid, i), &ar.head, &ar.body, &view);
            if let Some(slot) = action_updates.iter_mut().find(|(r, _)| *r == ar.rel) {
                slot.1 = to_relation(&ext);
            }
        }

        let mut send_results: Vec<(crate::ChannelId, std::sync::Arc<Vec<Vec<Value>>>)> = Vec::new();
        for (i, (cid, rule)) in peer.send_rules.iter().enumerate() {
            send_results.push((
                *cid,
                ctx.eval_rule(RuleRef::Send(pid, i), &rule.head, &rule.body, &view),
            ));
        }

        // 2. Build the deterministic part of the successor.
        let mut base = config.clone();
        for (rel, new) in state_updates {
            base.rel.set_relation(rel, new);
        }
        for (rel, new) in action_updates {
            base.rel.set_relation(rel, new);
        }
        // Previous-input shift: only on non-empty current input; frozen
        // chain links (read by nothing) are skipped.
        for (i, &input_rel) in peer.inputs.iter().enumerate() {
            let current = config.rel.relation(input_rel).clone();
            if !current.is_empty() {
                let chain = &peer.prev[i];
                for j in (1..chain.len()).rev() {
                    if self.frozen[chain[j].index()] {
                        continue;
                    }
                    let prev = base.rel.relation(chain[j - 1]).clone();
                    base.rel.set_relation(chain[j], prev);
                }
                if let Some(&first) = chain.first() {
                    if !self.frozen[first.index()] {
                        base.rel.set_relation(first, current);
                    }
                }
            }
        }
        // Dequeues.
        for &cid in &peer.dequeues {
            base.queues[cid.index()].pop_front();
        }
        // Transition-scoped flags reset.
        for i in 0..self.channels.len() {
            base.received[i] = false;
            base.sent[i] = false;
        }
        // The mover's error flags are recomputed by this move.
        for &cid in &peer.out_channels {
            base.error[cid.index()] = false;
        }

        // 3. Resolve send nondeterminism per channel.
        let mut per_channel: Vec<(crate::ChannelId, Vec<SendOutcome>)> = Vec::new();
        for (cid, tuples) in send_results {
            let ch = &self.channels[cid.index()];
            let outcomes = match ch.kind {
                QueueKind::Nested => {
                    let rel = to_relation(&tuples);
                    if rel.is_empty() && self.semantics.nested_send_skips_empty {
                        vec![SendOutcome::Nothing]
                    } else {
                        // Definition 2.4 enqueues the (possibly empty)
                        // message on every firing.
                        vec![SendOutcome::Send(Message::Nested(rel))]
                    }
                }
                QueueKind::Flat => match tuples.len() {
                    0 => vec![SendOutcome::Nothing],
                    1 => vec![SendOutcome::Send(Message::Flat(Tuple::from(
                        tuples[0].as_slice(),
                    )))],
                    _ if self.semantics.deterministic_send => vec![SendOutcome::Error],
                    _ => tuples
                        .iter()
                        .map(|t| SendOutcome::Send(Message::Flat(Tuple::from(t.as_slice()))))
                        .collect(),
                },
            };
            per_channel.push((cid, outcomes));
        }

        let mut variants = vec![base];
        for (cid, outcomes) in per_channel {
            let ch = &self.channels[cid.index()];
            let mut next: Vec<Config> = Vec::new();
            for v in &variants {
                for outcome in &outcomes {
                    match outcome {
                        SendOutcome::Nothing => next.push(v.clone()),
                        SendOutcome::Error => {
                            let mut c = v.clone();
                            c.error[cid.index()] = true;
                            next.push(c);
                        }
                        SendOutcome::Send(msg) => {
                            // The message is *sent* in every resolution.
                            let mut sent = v.clone();
                            sent.sent[cid.index()] = self.observed_sent[cid.index()];
                            if ch.lossy {
                                // In-transit loss: sent but never enqueued.
                                next.push(sent.clone());
                            }
                            // Delivery attempt: enqueue unless the queue is
                            // full (k-bounded semantics drop silently).
                            let mut delivered = sent;
                            if delivered.queues[cid.index()].len() < self.semantics.queue_bound {
                                delivered.queues[cid.index()].push_back(msg.clone());
                                delivered.received[cid.index()] =
                                    self.observed_received[cid.index()];
                            }
                            next.push(delivered);
                        }
                    }
                }
            }
            variants = next;
        }

        // 4. Choose the mover's next input in each resulting configuration.
        let mut out = Vec::new();
        for v in variants {
            out.extend(self.with_input_choices(db, domain, v, peer, ctx));
        }
        if self.semantics.strict_input_validity {
            out.retain(|c| self.all_inputs_valid(db, domain, c, ctx));
        }
        out
    }

    /// Branches a configuration over all valid input choices for `peer`
    /// (Definition 2.3: each input holds at most one tuple from its
    /// options; propositional inputs imply their options).
    fn with_input_choices(
        &self,
        db: &dyn Database,
        domain: &[Value],
        config: Config,
        peer: &Peer,
        ctx: EvalCtx<'_>,
    ) -> Vec<Config> {
        // Input rules never read inputs, so evaluating options against
        // `config` (whose inputs are about to be replaced) is sound.
        let mut choice_sets: Vec<(ddws_relational::RelId, Vec<Relation>)> = Vec::new();
        {
            let view = RuleView::new(self, db, &config, peer.id, domain);
            for (i, rule) in peer.input_rules.iter().enumerate() {
                let options =
                    ctx.eval_rule(RuleRef::Input(peer.id, i), &rule.head, &rule.body, &view);
                let mut choices: Vec<Relation> = vec![Relation::new()];
                if self.voc.arity(rule.rel) == 0 {
                    if !options.is_empty() {
                        choices.push(Relation::singleton(Tuple::unit()));
                    }
                } else {
                    for t in options.iter() {
                        choices.push(Relation::singleton(Tuple::from(t.as_slice())));
                    }
                }
                choice_sets.push((rule.rel, choices));
            }
        }
        let mut variants = vec![config];
        for (rel, choices) in choice_sets {
            let mut next = Vec::with_capacity(variants.len() * choices.len());
            for v in &variants {
                for choice in &choices {
                    let mut c = v.clone();
                    c.rel.set_relation(rel, choice.clone());
                    next.push(c);
                }
            }
            variants = next;
        }
        variants
    }

    /// Definition 2.3 validity for every peer (used by
    /// [`Semantics::strict_input_validity`](crate::Semantics)).
    fn all_inputs_valid(
        &self,
        db: &dyn Database,
        domain: &[Value],
        config: &Config,
        ctx: EvalCtx<'_>,
    ) -> bool {
        for peer in &self.peers {
            let view = RuleView::new(self, db, config, peer.id, domain);
            for (i, rule) in peer.input_rules.iter().enumerate() {
                let current = config.rel.relation(rule.rel);
                if current.is_empty() {
                    continue;
                }
                let options = to_relation(&ctx.eval_rule(
                    RuleRef::Input(peer.id, i),
                    &rule.head,
                    &rule.body,
                    &view,
                ));
                let ok = match current.the_tuple() {
                    Some(t) => options.contains(t),
                    None => false, // more than one tuple can never be valid
                };
                if !ok {
                    return false;
                }
            }
        }
        true
    }

    /// Environment transitions (§5): nondeterministically consume from
    /// `E.Q_in` and send over `E.Q_out` with values from the verification
    /// domain.
    fn env_successors(&self, _db: &dyn Database, domain: &[Value], config: &Config) -> Vec<Config> {
        let mut base = config.clone();
        for i in 0..self.channels.len() {
            base.received[i] = false;
            base.sent[i] = false;
        }

        // Consume: each env in-queue independently keeps or drops its head.
        let mut variants = vec![base];
        for cid in self.env_in_channels() {
            let mut next = Vec::new();
            for v in &variants {
                next.push(v.clone());
                if !v.queues[cid.index()].is_empty() {
                    let mut c = v.clone();
                    c.queues[cid.index()].pop_front();
                    next.push(c);
                }
            }
            variants = next;
        }

        // Emit: each env out-queue independently stays silent or sends one
        // message over the domain.
        for cid in self.env_out_channels() {
            let ch = &self.channels[cid.index()];
            let messages = env_messages(
                ch.kind,
                ch.arity,
                domain,
                self.semantics.env_nested_message_max,
            );
            let mut next = Vec::new();
            for v in &variants {
                next.push(v.clone());
                for msg in &messages {
                    let mut sent = v.clone();
                    sent.sent[cid.index()] = self.observed_sent[cid.index()];
                    if ch.lossy {
                        next.push(sent.clone());
                    }
                    let mut delivered = sent;
                    if delivered.queues[cid.index()].len() < self.semantics.queue_bound {
                        delivered.queues[cid.index()].push_back(msg.clone());
                        delivered.received[cid.index()] = self.observed_received[cid.index()];
                    }
                    next.push(delivered);
                }
            }
            variants = next;
        }
        variants
    }
}

/// All messages the environment can emit on a channel (shared with the
/// compact stepper, which interns them once per channel).
pub(crate) fn env_messages(
    kind: QueueKind,
    arity: usize,
    domain: &[Value],
    nested_max: usize,
) -> Vec<Message> {
    let tuples = all_tuples(domain, arity);
    match kind {
        QueueKind::Flat => tuples.into_iter().map(Message::Flat).collect(),
        QueueKind::Nested => {
            // All subsets of size ≤ nested_max, including the empty message.
            let mut out = vec![Message::Nested(Relation::new())];
            let mut current: Vec<Relation> = vec![Relation::new()];
            for _ in 0..nested_max {
                let mut grown = Vec::new();
                for r in &current {
                    for t in &tuples {
                        if !r.contains(t) {
                            let mut r2 = r.clone();
                            r2.insert(t.clone());
                            grown.push(r2);
                        }
                    }
                }
                // Dedup via canonical form.
                grown = dedup_preserving_order(grown);
                out.extend(grown.iter().cloned().map(Message::Nested));
                current = grown;
            }
            out
        }
    }
}

/// Every tuple over `domain` of the given arity.
fn all_tuples(domain: &[Value], arity: usize) -> Vec<Tuple> {
    let mut out = vec![Vec::new()];
    for _ in 0..arity {
        let mut next = Vec::with_capacity(out.len() * domain.len());
        for t in &out {
            for &d in domain {
                let mut t2 = t.clone();
                t2.push(d);
                next.push(t2);
            }
        }
        out = next;
    }
    out.into_iter().map(Tuple::from).collect()
}

pub(crate) fn to_relation(tuples: &[Vec<Value>]) -> Relation {
    Relation::from_tuples(tuples.iter().map(|t| Tuple::from(t.as_slice())))
}

/// Order-preserving dedup without cloning the items: candidates are moved
/// into the output once, a 64-bit fingerprint pre-screens for duplicates,
/// and only fingerprint collisions pay an exact comparison (against the
/// already-kept item — never a deep copy).
pub(crate) fn dedup_preserving_order<T: Hash + Eq>(items: Vec<T>) -> Vec<T> {
    if items.len() <= 1 {
        return items;
    }
    let mut by_fp: HashMap<u64, Vec<usize>> = HashMap::with_capacity(items.len());
    let mut out: Vec<T> = Vec::with_capacity(items.len());
    for item in items {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        item.hash(&mut h);
        let kept = by_fp.entry(h.finish()).or_default();
        if kept.iter().any(|&i| out[i] == item) {
            continue;
        }
        kept.push(out.len());
        out.push(item);
    }
    out
}

/// Environment endpoint helper re-export for tests.
#[doc(hidden)]
pub fn is_env(e: Endpoint) -> bool {
    e == Endpoint::Environment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CompositionBuilder;
    use crate::composition::Semantics;
    use ddws_relational::{Instance, Value};

    /// A two-peer ping-pong: Alice's user picks a friend to greet, Alice
    /// pings Bob, Bob records it and pongs back.
    fn ping_pong(lossy: bool) -> (Composition, Instance, Vec<Value>) {
        let mut b = CompositionBuilder::new();
        b.default_lossy(lossy);
        b.channel("ping", 1, QueueKind::Flat, "Alice", "Bob");
        b.channel("pong", 1, QueueKind::Flat, "Bob", "Alice");
        b.peer("Alice")
            .database("friend", 1)
            .state("ponged", 1)
            .input("greet", 1)
            .input_rule("greet", &["x"], "friend(x)")
            .state_insert_rule("ponged", &["x"], "?pong(x)")
            .send_rule("ping", &["x"], "greet(x)");
        b.peer("Bob")
            .state("seen", 1)
            .state_insert_rule("seen", &["x"], "?ping(x)")
            .send_rule("pong", &["x"], "?ping(x)");
        let comp = b.build().unwrap();
        let mut db = Instance::empty(&comp.voc);
        let friend = comp.voc.lookup("Alice.friend").unwrap();
        db.relation_mut(friend).insert(Tuple::new(vec![Value(0)]));
        (comp, db, vec![Value(0), Value(1)])
    }

    #[test]
    fn initial_configs_enumerate_input_choices() {
        let (comp, db, dom) = ping_pong(false);
        let configs = comp.initial_configs(&db, &dom);
        // Alice.greet: no input or greet(0) — friend(1) is not in the DB.
        assert_eq!(configs.len(), 2);
        let greet = comp.voc.lookup("Alice.greet").unwrap();
        let extensions: Vec<usize> = configs
            .iter()
            .map(|c| c.rel.relation(greet).len())
            .collect();
        assert!(extensions.contains(&0));
        assert!(extensions.contains(&1));
    }

    #[test]
    fn greeting_flows_through_perfect_channels() {
        let (comp, db, dom) = ping_pong(false);
        let alice = comp.peer_by_name("Alice").unwrap().id;
        let bob = comp.peer_by_name("Bob").unwrap().id;
        let greet = comp.voc.lookup("Alice.greet").unwrap();
        let seen = comp.voc.lookup("Bob.seen").unwrap();
        let ponged = comp.voc.lookup("Alice.ponged").unwrap();
        let (ping_id, _) = comp.channel_by_name("ping").unwrap();

        // Initial config where Alice greets 0.
        let init = comp
            .initial_configs(&db, &dom)
            .into_iter()
            .find(|c| c.rel.relation(greet).len() == 1)
            .unwrap();

        // Alice moves: the greeting is sent on `ping`.
        let after_alice: Vec<Config> = comp.successors(&db, &dom, &init, Mover::Peer(alice));
        assert!(!after_alice.is_empty());
        let with_ping = after_alice
            .iter()
            .find(|c| !c.queues[ping_id.index()].is_empty())
            .expect("perfect channel must deliver");
        assert!(with_ping.received[ping_id.index()]);
        assert!(with_ping.sent[ping_id.index()]);
        // prev_greet now holds the greeting.
        let prev_greet = comp.voc.lookup("Alice.prev_greet").unwrap();
        assert_eq!(with_ping.rel.relation(prev_greet).len(), 1);

        // Bob moves: consumes ping, records seen, sends pong.
        let after_bob = comp.successors(&db, &dom, with_ping, Mover::Peer(bob));
        let done = after_bob
            .iter()
            .find(|c| c.rel.relation(seen).len() == 1)
            .expect("Bob records the ping");
        assert!(done.queues[ping_id.index()].is_empty(), "ping dequeued");
        let (pong_id, _) = comp.channel_by_name("pong").unwrap();
        assert!(!done.queues[pong_id.index()].is_empty(), "pong sent");

        // Alice moves again: ponged recorded. (pong is mentioned in her
        // state rule, so it is dequeued.)
        let after_alice2 = comp.successors(&db, &dom, done, Mover::Peer(alice));
        assert!(after_alice2
            .iter()
            .any(|c| c.rel.relation(ponged).len() == 1));
    }

    #[test]
    fn lossy_channels_branch_on_delivery() {
        let (comp, db, dom) = ping_pong(true);
        let alice = comp.peer_by_name("Alice").unwrap().id;
        let greet = comp.voc.lookup("Alice.greet").unwrap();
        let (ping_id, _) = comp.channel_by_name("ping").unwrap();
        let init = comp
            .initial_configs(&db, &dom)
            .into_iter()
            .find(|c| c.rel.relation(greet).len() == 1)
            .unwrap();
        let succs = comp.successors(&db, &dom, &init, Mover::Peer(alice));
        let delivered = succs
            .iter()
            .filter(|c| !c.queues[ping_id.index()].is_empty())
            .count();
        let lost = succs
            .iter()
            .filter(|c| c.queues[ping_id.index()].is_empty() && c.sent[ping_id.index()])
            .count();
        assert!(delivered > 0, "delivery branch exists");
        assert!(lost > 0, "loss branch exists");
    }

    #[test]
    fn full_queue_drops_messages() {
        let (comp, db, dom) = ping_pong(false);
        assert_eq!(comp.semantics.queue_bound, 1);
        let alice = comp.peer_by_name("Alice").unwrap().id;
        let greet = comp.voc.lookup("Alice.greet").unwrap();
        let (ping_id, _) = comp.channel_by_name("ping").unwrap();
        let init = comp
            .initial_configs(&db, &dom)
            .into_iter()
            .find(|c| c.rel.relation(greet).len() == 1)
            .unwrap();
        // Alice moves twice without Bob consuming: second send is dropped.
        let first = comp
            .successors(&db, &dom, &init, Mover::Peer(alice))
            .into_iter()
            .find(|c| !c.queues[ping_id.index()].is_empty() && c.rel.relation(greet).len() == 1)
            .unwrap();
        let second = comp.successors(&db, &dom, &first, Mover::Peer(alice));
        for c in &second {
            assert!(
                c.queues[ping_id.index()].len() <= 1,
                "queue bound must hold"
            );
        }
        // The send still happened (observer-at-source sees it).
        assert!(second.iter().any(|c| c.sent[ping_id.index()]
            && c.queues[ping_id.index()].len() == 1
            && !c.received[ping_id.index()]));
    }

    #[test]
    fn deterministic_send_raises_error_flag() {
        let mut b = CompositionBuilder::new();
        b.semantics(Semantics {
            deterministic_send: true,
            ..Semantics::default()
        });
        b.default_lossy(false);
        b.channel("out", 1, QueueKind::Flat, "P", "R");
        b.peer("P")
            .database("d", 1)
            .send_rule("out", &["x"], "d(x)");
        b.peer("R");
        let comp = b.build().unwrap();
        let d = comp.voc.lookup("P.d").unwrap();
        let mut db = Instance::empty(&comp.voc);
        db.relation_mut(d).insert(Tuple::new(vec![Value(0)]));
        db.relation_mut(d).insert(Tuple::new(vec![Value(1)]));
        let dom = vec![Value(0), Value(1)];
        let p = comp.peer_by_name("P").unwrap().id;
        let init = comp.initial_configs(&db, &dom).remove(0);
        let succs = comp.successors(&db, &dom, &init, Mover::Peer(p));
        let (out_id, _) = comp.channel_by_name("out").unwrap();
        assert_eq!(succs.len(), 1);
        assert!(succs[0].error[out_id.index()], "error flag raised");
        assert!(succs[0].queues[out_id.index()].is_empty(), "nothing sent");
    }

    #[test]
    fn nested_sends_enqueue_empty_messages() {
        let mut b = CompositionBuilder::new();
        b.default_lossy(false);
        b.channel("set", 1, QueueKind::Nested, "P", "R");
        b.peer("P")
            .database("d", 1)
            .send_rule("set", &["x"], "d(x) and false");
        b.peer("R");
        let comp = b.build().unwrap();
        let db = Instance::empty(&comp.voc);
        let dom = vec![Value(0)];
        let p = comp.peer_by_name("P").unwrap().id;
        let init = comp.initial_configs(&db, &dom).remove(0);
        let succs = comp.successors(&db, &dom, &init, Mover::Peer(p));
        let (set_id, _) = comp.channel_by_name("set").unwrap();
        assert_eq!(succs.len(), 1);
        let msg = succs[0].queues[set_id.index()].front().unwrap();
        assert!(msg.is_empty(), "paper semantics: empty nested message sent");
    }

    #[test]
    fn env_moves_consume_and_emit() {
        let mut b = CompositionBuilder::new();
        b.default_lossy(false);
        b.channel("req", 1, QueueKind::Flat, "P", crate::builder::ENV);
        b.channel("resp", 1, QueueKind::Flat, crate::builder::ENV, "P");
        b.peer("P")
            .state("got", 1)
            .state_insert_rule("got", &["x"], "?resp(x)")
            .send_rule("req", &["x"], "?resp(x)");
        let comp = b.build().unwrap();
        let db = Instance::empty(&comp.voc);
        let dom = vec![Value(0), Value(1)];
        let init = comp.initial_configs(&db, &dom).remove(0);
        let succs = comp.successors(&db, &dom, &init, Mover::Environment);
        let (resp_id, _) = comp.channel_by_name("resp").unwrap();
        // Silent + one message per domain value (perfect channel).
        assert_eq!(succs.len(), 3);
        assert!(succs.iter().any(|c| c.queues[resp_id.index()].is_empty()));
        for v in &dom {
            assert!(succs.iter().any(|c| c.queues[resp_id.index()]
                .front()
                .is_some_and(|m| m.contains(&[*v]))));
        }
    }
}
