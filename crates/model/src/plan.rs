//! Compiled rule plans and footprint-keyed rule memoization.
//!
//! [`CompiledRules`] lowers every rule body of a [`Composition`] once into a
//! flat join/filter/project [`Plan`](ddws_logic::Plan)
//! ([`compile_rule`](ddws_logic::compile_rule)), replacing the per-step FO
//! re-interpretation of `satisfying_valuations`. On top, [`RuleCache`]
//! memoizes rule extensions keyed by the rule's *read footprint*: the exact
//! materialized contents of every relation the plan can read
//! ([`SnapshotView::footprint`](crate::view::SnapshotView::footprint)).
//! Successive configurations mostly agree on any single rule's footprint —
//! a peer move touches a handful of relations while every rule of every
//! peer is re-evaluated — so most evaluations become a cache probe.
//!
//! **Soundness.** A cached extension is returned only when the footprint
//! key — which covers every relation in the rule body, positive, negated or
//! residual — compares *equal* (never hash-equal) to the stored one, and
//! the footprint materializes exactly what the evaluation views read per
//! relation. Lazily decided database relations cannot be materialized;
//! rules reading them are evaluated compiled but unmemoized. See DESIGN.md
//! §3.8.
//!
//! [`EvalCtx`] threads an optional compiled-plan table and cache through
//! [`Composition::successors_with`](crate::Composition::successors_with);
//! the default context reproduces the interpreted path bit for bit, keeping
//! the interpreter available as the oracle of record.

use crate::composition::{Composition, PeerId};
use crate::view::{EvalView, ReadSlot};
use ddws_logic::{compile_rule, eval_plan, satisfying_valuations, Fo, Plan, VarId};
use ddws_relational::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Identifies one rule of a composition for plan lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleRef {
    /// `state_rules[i].insert` of a peer.
    StateInsert(PeerId, usize),
    /// `state_rules[i].delete` of a peer.
    StateDelete(PeerId, usize),
    /// `action_rules[i]` of a peer.
    Action(PeerId, usize),
    /// `send_rules[i]` of a peer.
    Send(PeerId, usize),
    /// `input_rules[i]` of a peer.
    Input(PeerId, usize),
}

/// Every rule body of a composition, compiled once at build time.
#[derive(Clone, Debug)]
pub struct CompiledRules {
    plans: Vec<Plan>,
    state: Vec<Vec<(Option<u32>, Option<u32>)>>,
    action: Vec<Vec<u32>>,
    send: Vec<Vec<u32>>,
    input: Vec<Vec<u32>>,
}

impl CompiledRules {
    /// Compiles every rule of `comp`.
    pub fn new(comp: &Composition) -> Self {
        let mut plans = Vec::new();
        let mut push = |head: &[VarId], body: &Fo| -> u32 {
            let id = u32::try_from(plans.len()).expect("rule table overflow");
            plans.push(compile_rule(head, body));
            id
        };
        let mut state = Vec::with_capacity(comp.peers.len());
        let mut action = Vec::with_capacity(comp.peers.len());
        let mut send = Vec::with_capacity(comp.peers.len());
        let mut input = Vec::with_capacity(comp.peers.len());
        for peer in &comp.peers {
            state.push(
                peer.state_rules
                    .iter()
                    .map(|sr| {
                        (
                            sr.insert.as_ref().map(|b| push(&sr.head, b)),
                            sr.delete.as_ref().map(|b| push(&sr.head, b)),
                        )
                    })
                    .collect(),
            );
            action.push(
                peer.action_rules
                    .iter()
                    .map(|ar| push(&ar.head, &ar.body))
                    .collect(),
            );
            send.push(
                peer.send_rules
                    .iter()
                    .map(|(_, rule)| push(&rule.head, &rule.body))
                    .collect(),
            );
            input.push(
                peer.input_rules
                    .iter()
                    .map(|ir| push(&ir.head, &ir.body))
                    .collect(),
            );
        }
        CompiledRules {
            plans,
            state,
            action,
            send,
            input,
        }
    }

    /// The plan for a rule, with its table-wide id (the cache-key prefix).
    pub fn plan(&self, rule: RuleRef) -> Option<(u32, &Plan)> {
        let id = match rule {
            RuleRef::StateInsert(p, i) => self.state[p.index()][i].0?,
            RuleRef::StateDelete(p, i) => self.state[p.index()][i].1?,
            RuleRef::Action(p, i) => self.action[p.index()][i],
            RuleRef::Send(p, i) => self.send[p.index()][i],
            RuleRef::Input(p, i) => self.input[p.index()][i],
        };
        Some((id, &self.plans[id as usize]))
    }

    /// Number of compiled plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the composition has no rules at all.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

type Extension = Arc<Vec<Vec<Value>>>;

/// A memo table from `(rule, footprint)` to the rule's extension, sharded
/// per rule (each rule's entries live behind their own lock, so concurrent
/// workers evaluating different rules never contend), with hit/miss/timing
/// counters. One cache serves one verification run: the quantification
/// domain must stay fixed for its lifetime (database contents may vary —
/// they are part of the key).
#[derive(Debug, Default)]
pub struct RuleCache {
    rules: Vec<RwLock<HashMap<Vec<ReadSlot>, Extension>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evals: AtomicU64,
    eval_ns: AtomicU64,
}

impl RuleCache {
    /// A cache for the rules of `compiled`.
    pub fn new(compiled: &CompiledRules) -> Self {
        RuleCache {
            rules: (0..compiled.len()).map(|_| RwLock::default()).collect(),
            ..Default::default()
        }
    }

    /// An instrumentation-only cache: meters evaluation time but memoizes
    /// nothing (used to time the interpreted path with identical overhead).
    pub fn timing_only() -> Self {
        Self::default()
    }

    fn get(&self, rule: u32, key: &[ReadSlot]) -> Option<Extension> {
        let shard = self
            .rules
            .get(rule as usize)?
            .read()
            .expect("rule cache poisoned");
        shard.get(key).cloned()
    }

    fn insert(&self, rule: u32, key: Vec<ReadSlot>, ext: Extension) {
        if let Some(shard) = self.rules.get(rule as usize) {
            shard.write().expect("rule cache poisoned").insert(key, ext);
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (plus unmemoizable evaluations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Metered rule evaluations so far. Every metered evaluation counts
    /// exactly one hit or one miss, so `hits() + misses() == evals()` at
    /// any quiescent point — the invariant the telemetry suite checks.
    pub fn evals(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }

    /// Total nanoseconds spent evaluating rules (cache probes included).
    pub fn eval_ns(&self) -> u64 {
        self.eval_ns.load(Ordering::Relaxed)
    }
}

/// Evaluation context threaded through successor generation: which engine
/// evaluates rule bodies, and where results are memoized and metered.
///
/// The default (`compiled: None, cache: None`) is the interpreted path with
/// no instrumentation — exactly the pre-compilation behaviour.
#[derive(Clone, Copy, Default)]
pub struct EvalCtx<'a> {
    /// Compiled plans; `None` evaluates through the FO interpreter.
    pub compiled: Option<&'a CompiledRules>,
    /// Footprint-keyed memo table and metrics. Works for both engines
    /// (timing accrues either way); memoization engages only with plans,
    /// whose `reads()` set bounds the footprint.
    pub cache: Option<&'a RuleCache>,
}

impl EvalCtx<'_> {
    /// Evaluates one rule body over `view` — the legacy [`RuleView`] or the
    /// compact representation's view — through plans and the cache when
    /// available. Returns the head tuples in sorted order — identical for
    /// both engines (the swarm differential pins this).
    ///
    /// [`RuleView`]: crate::view::RuleView
    pub fn eval_rule<V: EvalView + ?Sized>(
        &self,
        rule: RuleRef,
        head: &[VarId],
        body: &Fo,
        view: &V,
    ) -> Extension {
        let start = self.cache.map(|_| Instant::now());
        let result = self.eval_inner(rule, head, body, view);
        if let (Some(cache), Some(start)) = (self.cache, start) {
            cache.evals.fetch_add(1, Ordering::Relaxed);
            cache
                .eval_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        result
    }

    fn eval_inner<V: EvalView + ?Sized>(
        &self,
        rule: RuleRef,
        head: &[VarId],
        body: &Fo,
        view: &V,
    ) -> Extension {
        let Some((id, plan)) = self.compiled.and_then(|c| c.plan(rule)) else {
            // Interpreted evaluation: nothing is memoizable, so a metered
            // run books it as a miss (keeping hits + misses == evals).
            if let Some(cache) = self.cache {
                cache.misses.fetch_add(1, Ordering::Relaxed);
            }
            return Arc::new(satisfying_valuations(head, body, view));
        };
        let Some(cache) = self.cache else {
            return Arc::new(eval_plan(plan, view));
        };
        match view.eval_footprint(plan.reads()) {
            Some(key) => {
                if let Some(hit) = cache.get(id, &key) {
                    cache.hits.fetch_add(1, Ordering::Relaxed);
                    return hit;
                }
                cache.misses.fetch_add(1, Ordering::Relaxed);
                let ext = Arc::new(eval_plan(plan, view));
                cache.insert(id, key, ext.clone());
                ext
            }
            None => {
                // A lazily decided database relation is in the footprint:
                // evaluate compiled, skip memoization.
                cache.misses.fetch_add(1, Ordering::Relaxed);
                Arc::new(eval_plan(plan, view))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CompositionBuilder;
    use crate::composition::QueueKind;
    use crate::config::Config;
    use ddws_relational::{Instance, Tuple, Value};

    /// A three-peer relay with state, action, send and input rules —
    /// every rule kind goes through the compiled path.
    fn fixture() -> (Composition, Instance, Vec<Value>) {
        let mut b = CompositionBuilder::new();
        b.default_lossy(true);
        b.channel("fwd", 1, QueueKind::Flat, "A", "B");
        b.channel("ack", 1, QueueKind::Flat, "B", "C");
        b.peer("A")
            .database("d", 1)
            .input("pick", 1)
            .input_rule("pick", &["x"], "d(x)")
            .send_rule("fwd", &["x"], "pick(x)");
        b.peer("B")
            .state("seen", 1)
            .action("log", 1)
            .state_insert_rule("seen", &["x"], "?fwd(x)")
            .state_delete_rule("seen", &["x"], "seen(x) and not ?fwd(x)")
            .action_rule("log", &["x"], "seen(x) or ?fwd(x)")
            .send_rule("ack", &["x"], "?fwd(x)");
        b.peer("C")
            .state("done", 1)
            .state_insert_rule("done", &["x"], "?ack(x)");
        let comp = b.build().unwrap();
        let mut db = Instance::empty(&comp.voc);
        let d = comp.voc.lookup("A.d").unwrap();
        db.relation_mut(d).insert(Tuple::new(vec![Value(0)]));
        db.relation_mut(d).insert(Tuple::new(vec![Value(1)]));
        (comp, db, vec![Value(0), Value(1), Value(2)])
    }

    /// BFS a few levels under both evaluation modes and compare the full
    /// successor lists configuration-for-configuration.
    #[test]
    fn compiled_and_cached_successors_match_interpreted() {
        let (comp, db, dom) = fixture();
        let compiled = CompiledRules::new(&comp);
        let cache = RuleCache::new(&compiled);
        let ctx = EvalCtx {
            compiled: Some(&compiled),
            cache: Some(&cache),
        };

        let init_i = comp.initial_configs(&db, &dom);
        let init_c = comp.initial_configs_with(&db, &dom, ctx);
        assert_eq!(init_i, init_c, "initial configurations diverge");

        let mut frontier: Vec<Config> = init_i;
        for _level in 0..3 {
            let mut next = Vec::new();
            for cfg in &frontier {
                for mover in comp.movers() {
                    let interp = comp.successors(&db, &dom, cfg, mover);
                    let comp_c = comp.successors_with(&db, &dom, cfg, mover, ctx);
                    assert_eq!(interp, comp_c, "successors diverge for {mover:?}");
                    next.extend(interp);
                }
            }
            next.truncate(40);
            frontier = next;
        }
        assert!(cache.hits() > 0, "footprint memoization never engaged");
        assert!(cache.misses() > 0);
        assert!(cache.eval_ns() > 0);
        assert_eq!(
            cache.hits() + cache.misses(),
            cache.evals(),
            "every metered evaluation is exactly one hit or one miss"
        );
    }

    /// The interpreted path under a timing-only cache books every
    /// evaluation as a miss, so the accounting invariant holds there too.
    #[test]
    fn interpreted_metering_counts_every_eval_as_a_miss() {
        let (comp, db, dom) = fixture();
        let cache = RuleCache::timing_only();
        let ctx = EvalCtx {
            compiled: None,
            cache: Some(&cache),
        };
        let init = comp.initial_configs_with(&db, &dom, ctx);
        for cfg in &init {
            for mover in comp.movers() {
                comp.successors_with(&db, &dom, cfg, mover, ctx);
            }
        }
        assert!(cache.evals() > 0, "boot + successor evals were metered");
        assert_eq!(cache.hits(), 0, "nothing is memoizable when interpreting");
        assert_eq!(cache.misses(), cache.evals());
    }

    /// The cache must key on everything a rule reads: stepping a peer whose
    /// move changes a read relation must not serve a stale extension.
    #[test]
    fn cache_distinguishes_footprints() {
        let (comp, db, dom) = fixture();
        let compiled = CompiledRules::new(&comp);
        let cache = RuleCache::new(&compiled);
        let ctx = EvalCtx {
            compiled: Some(&compiled),
            cache: Some(&cache),
        };
        let a = comp.peer_by_name("A").unwrap().id;
        let b = comp.peer_by_name("B").unwrap().id;
        let init = comp
            .initial_configs_with(&db, &dom, ctx)
            .into_iter()
            .find(|c| {
                let pick = comp.voc.lookup("A.pick").unwrap();
                !c.rel.relation(pick).is_empty()
            })
            .unwrap();
        // A sends; B's `?fwd`-reading rules must see the new queue head in
        // every delivery branch.
        let seen = comp.voc.lookup("B.seen").unwrap();
        let (fwd, _) = comp.channel_by_name("fwd").unwrap();
        let delivered = comp
            .successors_with(&db, &dom, &init, crate::Mover::Peer(a), ctx)
            .into_iter()
            .find(|c| !c.queues[fwd.index()].is_empty())
            .unwrap();
        let recorded = comp
            .successors_with(&db, &dom, &delivered, crate::Mover::Peer(b), ctx)
            .iter()
            .any(|c| !c.rel.relation(seen).is_empty());
        assert!(recorded, "stale cached extension suppressed the insert");
    }
}
