//! Succinct interned configurations and allocation-light successor
//! generation.
//!
//! The input-bounded fragment (PODS 2006, §3.1) closes the value domain
//! before the search starts, so every relation extension and every queued
//! message a reachable configuration can hold is drawn from a small, fixed
//! universe. [`StatePool`] exploits this with two layers:
//!
//! * **Bit-packing.** Each vocabulary slot and each channel gets a
//!   [`PackSpec`] sized to the run's value capacity; a relation extension
//!   becomes a sorted `Box<[u64]>` of tuple codes, and Definition 2.4's
//!   state update collapses to one three-way linear merge over machine
//!   words ([`codes_apply_update`]). Slots whose packed form would exceed
//!   64 bits fall back to interning the legacy [`Relation`] ("wide").
//! * **Hash-consing.** Every distinct extension (packed or wide) is
//!   interned once in the pool's sharded tables; a [`CompactConfig`] is
//!   then three flat arrays of handles and flag words, so cloning a
//!   configuration is three `memcpy`s and equality/hashing never walk
//!   tuples. Interned `Arc` entries are copy-on-write: the tables never
//!   mutate an entry, and resolution hands out aliases.
//!
//! The compact stepper ([`StatePool::successors`]) mirrors
//! [`Composition::successors`] branch for branch — same rule-evaluation
//! order, same nondeterministic resolution order, same dedup — so the two
//! representations produce identical successor *sequences*, which the
//! representation-equivalence differential suite pins tuple for tuple. The
//! legacy path stays compiled-in as the oracle of record
//! (`VerifyOptions::state_repr` in the verifier).
//!
//! One pool serves one search: it is sized to a `(composition, domain)`
//! pair and caches the environment's message alphabet per channel, so it
//! must not be reused across domains.

use crate::composition::{ChannelRole, Composition, Mover, Peer, PeerId, QueueKind};
use crate::config::{Config, Message};
use crate::plan::{EvalCtx, RuleRef};
use crate::step::{dedup_preserving_order, env_messages, to_relation};
use crate::view::{Database, EvalView, ReadSlot};
use ddws_logic::input_bounded::RelClass;
use ddws_logic::Structure;
use ddws_relational::intern::{codes_apply_update, codes_contain};
use ddws_relational::{Interner, PackSpec, RelId, Relation, Tuple, Value};
use std::sync::{Arc, OnceLock};

/// The handle marking an absent queue position in [`CompactConfig::queues`].
const NONE: u32 = u32::MAX;

/// How one vocabulary slot (or channel alphabet) is encoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Enc {
    /// Tuples pack into `u64` codes; extensions are sorted code slices.
    Packed(PackSpec),
    /// Packed form would exceed 64 bits; extensions intern as [`Relation`]s.
    Wide,
}

impl Enc {
    fn of(value_capacity: usize, arity: usize) -> Enc {
        match PackSpec::new(value_capacity, arity) {
            Some(spec) => Enc::Packed(spec),
            None => Enc::Wide,
        }
    }
}

/// A transition-scoped boolean of a channel.
#[derive(Clone, Copy)]
enum Flag {
    Received,
    Sent,
    Error,
}

/// A configuration in interned form: one extension handle per vocabulary
/// slot, one message handle per queue position (`u32::MAX` = absent, front
/// at offset 0), and the `received`/`sent`/`error` flags bit-packed into
/// words. Equality and hashing are flat word comparisons; cloning is three
/// buffer copies.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CompactConfig {
    rels: Box<[u32]>,
    queues: Box<[u32]>,
    flags: Box<[u64]>,
}

impl CompactConfig {
    /// Approximate heap footprint in bytes (checkpoint-size accounting).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<CompactConfig>()
            + self.rels.len() * 4
            + self.queues.len() * 4
            + self.flags.len() * 8
    }
}

/// The per-search intern pool: encodings, hash-cons tables and the
/// compact stepper. See the module docs for the layout.
pub struct StatePool {
    /// Per-vocabulary-slot encoding.
    slots: Box<[Enc]>,
    /// Per-channel message-content encoding.
    chans: Box<[Enc]>,
    packed: Interner<Box<[u64]>>,
    wide: Interner<Relation>,
    empty_packed: u32,
    empty_wide: u32,
    queue_bound: usize,
    n_channels: usize,
    /// The environment's message alphabet per channel, interned once.
    env_msgs: Box<[OnceLock<Vec<u32>>]>,
    /// Per-vocabulary-slot footprint handle for the *fixed* database's
    /// extension, interned lazily on first use. A pool serves exactly one
    /// verification run over one database (the same invariant that scopes
    /// the rule memo table), so a database read contributes a constant
    /// O(1) handle to every footprint key instead of a fresh scan + clone
    /// per rule evaluation.
    db_slots: Box<[OnceLock<u32>]>,
    empty_config: CompactConfig,
}

impl StatePool {
    /// Builds a pool for `comp` where every packable value index is below
    /// `value_capacity` (the verifier derives this from the closed
    /// input-bounded domain; see `verifier::domain`).
    pub fn new(comp: &Composition, value_capacity: usize) -> StatePool {
        let cap = value_capacity.max(1);
        let packed: Interner<Box<[u64]>> = Interner::new();
        let wide: Interner<Relation> = Interner::new();
        let empty_packed = packed.intern(Box::from([]));
        let empty_wide = wide.intern(Relation::new());
        let slots: Box<[Enc]> = comp
            .voc
            .iter()
            .map(|(rel, _)| Enc::of(cap, comp.voc.arity(rel)))
            .collect();
        let chans: Box<[Enc]> = comp
            .channels
            .iter()
            .map(|c| Enc::of(cap, c.arity))
            .collect();
        let n_channels = comp.channels.len();
        let queue_bound = comp.semantics.queue_bound;
        let db_slots: Box<[OnceLock<u32>]> = (0..slots.len()).map(|_| OnceLock::new()).collect();
        let empty_config = CompactConfig {
            rels: slots
                .iter()
                .map(|e| match e {
                    Enc::Packed(_) => empty_packed,
                    Enc::Wide => empty_wide,
                })
                .collect(),
            queues: vec![NONE; n_channels * queue_bound].into_boxed_slice(),
            flags: vec![0u64; (3 * n_channels).div_ceil(64)].into_boxed_slice(),
        };
        StatePool {
            slots,
            chans,
            packed,
            wide,
            empty_packed,
            empty_wide,
            queue_bound,
            n_channels,
            env_msgs: (0..n_channels).map(|_| OnceLock::new()).collect(),
            db_slots,
            empty_config,
        }
    }

    // --- Interning and resolution -------------------------------------

    fn empty_handle(&self, enc: Enc) -> u32 {
        match enc {
            Enc::Packed(_) => self.empty_packed,
            Enc::Wide => self.empty_wide,
        }
    }

    fn handle_is_empty(&self, enc: Enc, h: u32) -> bool {
        h == self.empty_handle(enc)
    }

    /// Interns a rule-evaluation extension (sorted tuple rows).
    fn intern_ext(&self, enc: Enc, tuples: &[Vec<Value>]) -> u32 {
        match enc {
            Enc::Packed(spec) => {
                let codes = spec
                    .pack_all(tuples.iter().map(Vec::as_slice))
                    .expect("input-bounded extension packs over the closed domain");
                self.packed.intern(codes.into_boxed_slice())
            }
            Enc::Wide => self.wide.intern(to_relation(tuples)),
        }
    }

    /// Interns a canonical [`Relation`].
    fn intern_relation(&self, enc: Enc, rel: &Relation) -> u32 {
        match enc {
            Enc::Packed(spec) => {
                let codes = spec
                    .pack_all(rel.iter().map(|t| t.values()))
                    .expect("input-bounded relation packs over the closed domain");
                self.packed.intern(codes.into_boxed_slice())
            }
            Enc::Wide => self.wide.intern(rel.clone()),
        }
    }

    /// Interns a single tuple as a singleton extension.
    fn intern_tuple(&self, enc: Enc, tuple: &[Value]) -> u32 {
        match enc {
            Enc::Packed(spec) => {
                let code = spec
                    .pack(tuple)
                    .expect("input-bounded tuple packs over the closed domain");
                self.packed.intern(Box::from([code]))
            }
            Enc::Wide => self.wide.intern(Relation::singleton(Tuple::from(tuple))),
        }
    }

    /// Footprint handle for a database relation: the fixed database's
    /// extension, interned once per pool lifetime and answered from the
    /// per-slot cache afterwards. Returns `None` when the database cannot
    /// be enumerated (the oracle-backed all-databases search), which makes
    /// the footprint unkeyable — exactly the legacy fallback.
    ///
    /// Concurrent first calls may both scan and intern, but `to_relation`
    /// canonicalizes the rows and the interner dedups by value, so every
    /// caller caches the same handle.
    fn db_handle(&self, rel: RelId, db: &dyn Database) -> Option<u32> {
        if let Some(&h) = self.db_slots[rel.index()].get() {
            return Some(h);
        }
        let ext = db.db_scan(rel)?;
        let h = self.wide.intern(to_relation(&ext));
        Some(*self.db_slots[rel.index()].get_or_init(|| h))
    }

    fn intern_message(&self, enc: Enc, msg: &Message) -> u32 {
        match msg {
            Message::Flat(t) => self.intern_tuple(enc, t.values()),
            Message::Nested(r) => self.intern_relation(enc, r),
        }
    }

    /// Materializes a handle back into a canonical relation.
    fn expand_handle(&self, enc: Enc, h: u32) -> Relation {
        match enc {
            Enc::Packed(spec) => Relation::from_tuples(spec.unpack_all(&self.packed.resolve(h))),
            Enc::Wide => (*self.wide.resolve(h)).clone(),
        }
    }

    fn handle_contains(&self, enc: Enc, h: u32, tuple: &[Value]) -> bool {
        match enc {
            Enc::Packed(spec) => match spec.pack(tuple) {
                // Out-of-capacity values cannot be stored, so they are
                // never members.
                Some(code) => codes_contain(&self.packed.resolve(h), code),
                None => false,
            },
            Enc::Wide => self.wide.resolve(h).contains_slice(tuple),
        }
    }

    fn handle_rows(&self, enc: Enc, h: u32) -> Vec<Vec<Value>> {
        match enc {
            Enc::Packed(spec) => self
                .packed
                .resolve(h)
                .iter()
                .map(|&c| spec.unpack(c))
                .collect(),
            Enc::Wide => self
                .wide
                .resolve(h)
                .iter()
                .map(|t| t.values().to_vec())
                .collect(),
        }
    }

    /// The single tuple of a singleton extension, if it is one.
    fn the_tuple(&self, enc: Enc, h: u32) -> Option<Vec<Value>> {
        match enc {
            Enc::Packed(spec) => {
                let codes = self.packed.resolve(h);
                match *codes.as_ref().as_ref() {
                    [code] => Some(spec.unpack(code)),
                    _ => None,
                }
            }
            Enc::Wide => self
                .wide
                .resolve(h)
                .the_tuple()
                .map(|t| t.values().to_vec()),
        }
    }

    /// Definition 2.4's no-op-on-conflict state update, handle to handle.
    fn apply_state_update(
        &self,
        enc: Enc,
        old: u32,
        ins: &[Vec<Value>],
        del: &[Vec<Value>],
    ) -> u32 {
        match enc {
            Enc::Packed(spec) => {
                let pack = |rows: &[Vec<Value>]| -> Vec<u64> {
                    spec.pack_all(rows.iter().map(Vec::as_slice))
                        .expect("input-bounded extension packs over the closed domain")
                };
                let old_codes = self.packed.resolve(old);
                let merged = codes_apply_update(&old_codes, &pack(ins), &pack(del));
                self.packed.intern(merged.into_boxed_slice())
            }
            Enc::Wide => {
                let inserts = to_relation(ins);
                let deletes = to_relation(del);
                let old = self.wide.resolve(old);
                let keep_conflict = old.intersection(&inserts).intersection(&deletes);
                let keep_untouched = old.difference(&inserts.union(&deletes));
                let new = inserts
                    .difference(&deletes)
                    .union(&keep_conflict)
                    .union(&keep_untouched);
                self.wide.intern(new)
            }
        }
    }

    // --- Queue and flag accessors -------------------------------------

    fn queue_len(&self, cc: &CompactConfig, channel: usize) -> usize {
        let q = &cc.queues[channel * self.queue_bound..(channel + 1) * self.queue_bound];
        q.iter().take_while(|&&h| h != NONE).count()
    }

    fn queue_front(&self, cc: &CompactConfig, channel: usize) -> Option<u32> {
        self.queue_bound
            .checked_sub(1)
            .map(|_| cc.queues[channel * self.queue_bound])
            .filter(|&h| h != NONE)
    }

    fn queue_back(&self, cc: &CompactConfig, channel: usize) -> Option<u32> {
        let len = self.queue_len(cc, channel);
        len.checked_sub(1)
            .map(|i| cc.queues[channel * self.queue_bound + i])
    }

    fn queue_pop_front(&self, cc: &mut CompactConfig, channel: usize) {
        let q = &mut cc.queues[channel * self.queue_bound..(channel + 1) * self.queue_bound];
        if q.first().is_some_and(|&h| h != NONE) {
            q.copy_within(1.., 0);
            q[self.queue_bound - 1] = NONE;
        }
    }

    /// Appends a message; the caller has already checked capacity.
    fn queue_push_back(&self, cc: &mut CompactConfig, channel: usize, h: u32) {
        let len = self.queue_len(cc, channel);
        debug_assert!(len < self.queue_bound, "queue bound violated");
        cc.queues[channel * self.queue_bound + len] = h;
    }

    fn flag_bit(&self, kind: Flag, channel: usize) -> usize {
        match kind {
            Flag::Received => channel,
            Flag::Sent => self.n_channels + channel,
            Flag::Error => 2 * self.n_channels + channel,
        }
    }

    fn flag(&self, cc: &CompactConfig, kind: Flag, channel: usize) -> bool {
        let bit = self.flag_bit(kind, channel);
        cc.flags[bit / 64] >> (bit % 64) & 1 == 1
    }

    fn set_flag(&self, cc: &mut CompactConfig, kind: Flag, channel: usize, v: bool) {
        let bit = self.flag_bit(kind, channel);
        if v {
            cc.flags[bit / 64] |= 1u64 << (bit % 64);
        } else {
            cc.flags[bit / 64] &= !(1u64 << (bit % 64));
        }
    }

    // --- Conversion to and from the legacy representation -------------

    /// Interns a legacy configuration.
    pub fn compact(&self, comp: &Composition, config: &Config) -> CompactConfig {
        let rels: Box<[u32]> = comp
            .voc
            .iter()
            .map(|(rel, _)| self.intern_relation(self.slots[rel.index()], config.rel.relation(rel)))
            .collect();
        let mut queues = vec![NONE; self.n_channels * self.queue_bound].into_boxed_slice();
        for (i, q) in config.queues.iter().enumerate() {
            assert!(q.len() <= self.queue_bound, "queue bound violated");
            for (j, msg) in q.iter().enumerate() {
                queues[i * self.queue_bound + j] = self.intern_message(self.chans[i], msg);
            }
        }
        let mut cc = CompactConfig {
            rels,
            queues,
            flags: vec![0u64; (3 * self.n_channels).div_ceil(64)].into_boxed_slice(),
        };
        for i in 0..self.n_channels {
            self.set_flag(&mut cc, Flag::Received, i, config.received[i]);
            self.set_flag(&mut cc, Flag::Sent, i, config.sent[i]);
            self.set_flag(&mut cc, Flag::Error, i, config.error[i]);
        }
        cc
    }

    /// Materializes a compact configuration back into the legacy form.
    pub fn expand(&self, comp: &Composition, cc: &CompactConfig) -> Config {
        let mut config = Config::empty(comp);
        for (rel, _) in comp.voc.iter() {
            let h = cc.rels[rel.index()];
            let enc = self.slots[rel.index()];
            if !self.handle_is_empty(enc, h) {
                config.rel.set_relation(rel, self.expand_handle(enc, h));
            }
        }
        for i in 0..self.n_channels {
            let kind = comp.channels[i].kind;
            for j in 0..self.queue_bound {
                let h = cc.queues[i * self.queue_bound + j];
                if h == NONE {
                    break;
                }
                let content = self.expand_handle(self.chans[i], h);
                let msg = match kind {
                    QueueKind::Nested => Message::Nested(content),
                    QueueKind::Flat => Message::Flat(
                        content
                            .the_tuple()
                            .expect("flat messages are singletons")
                            .clone(),
                    ),
                };
                config.queues[i].push_back(msg);
            }
            config.received[i] = self.flag(cc, Flag::Received, i);
            config.sent[i] = self.flag(cc, Flag::Sent, i);
            config.error[i] = self.flag(cc, Flag::Error, i);
        }
        config
    }

    // --- Telemetry and size accounting --------------------------------

    /// Intern calls answered from the tables so far.
    pub fn intern_hits(&self) -> u64 {
        self.packed.hits() + self.wide.hits()
    }

    /// Intern calls that created fresh entries so far.
    pub fn intern_misses(&self) -> u64 {
        self.packed.misses() + self.wide.misses()
    }

    /// Number of distinct interned extensions.
    pub fn len(&self) -> usize {
        self.packed.len() + self.wide.len()
    }

    /// Whether nothing beyond the pre-interned empties exists.
    pub fn is_empty(&self) -> bool {
        self.len() <= 2
    }

    /// Approximate heap bytes of the interned extensions.
    pub fn approx_bytes(&self) -> usize {
        self.packed.approx_bytes(|codes| codes.len() * 8 + 24)
            + self
                .wide
                .approx_bytes(|rel| rel.iter().map(|t| t.arity() * 4 + 24).sum::<usize>() + 24)
    }

    // --- The compact stepper ------------------------------------------

    /// Initial configurations, mirroring [`Composition::initial_configs`].
    pub fn initial_configs(
        &self,
        comp: &Composition,
        db: &dyn Database,
        domain: &[Value],
        ctx: EvalCtx<'_>,
    ) -> Vec<CompactConfig> {
        let mut configs = vec![self.empty_config.clone()];
        for peer in &comp.peers {
            configs = configs
                .into_iter()
                .flat_map(|c| self.with_input_choices(comp, db, domain, c, peer, ctx))
                .collect();
        }
        configs
    }

    /// Successor configurations, mirroring [`Composition::successors_with`]
    /// branch for branch so the successor sequences coincide.
    pub fn successors(
        &self,
        comp: &Composition,
        db: &dyn Database,
        domain: &[Value],
        cc: &CompactConfig,
        mover: Mover,
        ctx: EvalCtx<'_>,
    ) -> Vec<CompactConfig> {
        let raw = match mover {
            Mover::Peer(p) => self.peer_successors(comp, db, domain, cc, p, ctx),
            Mover::Environment => self.env_successors(comp, domain, cc),
        };
        dedup_preserving_order(raw)
    }

    #[allow(clippy::too_many_lines)]
    fn peer_successors(
        &self,
        comp: &Composition,
        db: &dyn Database,
        domain: &[Value],
        cc: &CompactConfig,
        pid: PeerId,
        ctx: EvalCtx<'_>,
    ) -> Vec<CompactConfig> {
        let peer = &comp.peers[pid.index()];
        let view = CompactView::for_rules(self, comp, db, cc, pid, domain);

        // 1. Evaluate every rule on the current snapshot (same order as the
        //    legacy stepper, so cache hit/miss sequences coincide).
        let mut state_updates: Vec<(usize, u32)> = Vec::new();
        for (i, sr) in peer.state_rules.iter().enumerate() {
            if comp.frozen[sr.rel.index()] {
                continue;
            }
            let inserts = sr
                .insert
                .as_ref()
                .map(|b| ctx.eval_rule(RuleRef::StateInsert(pid, i), &sr.head, b, &view));
            let deletes = sr
                .delete
                .as_ref()
                .map(|b| ctx.eval_rule(RuleRef::StateDelete(pid, i), &sr.head, b, &view));
            let slot = sr.rel.index();
            let new = self.apply_state_update(
                self.slots[slot],
                cc.rels[slot],
                inserts.as_deref().map_or(&[], Vec::as_slice),
                deletes.as_deref().map_or(&[], Vec::as_slice),
            );
            state_updates.push((slot, new));
        }

        let mut action_updates: Vec<(usize, u32)> = peer
            .actions
            .iter()
            .filter(|a| !comp.frozen[a.index()])
            .map(|&a| (a.index(), self.empty_handle(self.slots[a.index()])))
            .collect();
        for (i, ar) in peer.action_rules.iter().enumerate() {
            if comp.frozen[ar.rel.index()] {
                continue;
            }
            let ext = ctx.eval_rule(RuleRef::Action(pid, i), &ar.head, &ar.body, &view);
            if let Some(slot) = action_updates
                .iter_mut()
                .find(|(s, _)| *s == ar.rel.index())
            {
                slot.1 = self.intern_ext(self.slots[slot.0], &ext);
            }
        }

        let mut send_results: Vec<(crate::ChannelId, Arc<Vec<Vec<Value>>>)> = Vec::new();
        for (i, (cid, rule)) in peer.send_rules.iter().enumerate() {
            send_results.push((
                *cid,
                ctx.eval_rule(RuleRef::Send(pid, i), &rule.head, &rule.body, &view),
            ));
        }

        // 2. Build the deterministic part of the successor.
        let mut base = cc.clone();
        for (slot, h) in state_updates {
            base.rels[slot] = h;
        }
        for (slot, h) in action_updates {
            base.rels[slot] = h;
        }
        // Previous-input shift: a handle copy per chain link (prev slots
        // share the input's arity, hence its encoding).
        for (i, &input_rel) in peer.inputs.iter().enumerate() {
            let current = cc.rels[input_rel.index()];
            if !self.handle_is_empty(self.slots[input_rel.index()], current) {
                let chain = &peer.prev[i];
                for j in (1..chain.len()).rev() {
                    if comp.frozen[chain[j].index()] {
                        continue;
                    }
                    debug_assert_eq!(
                        self.slots[chain[j].index()],
                        self.slots[chain[j - 1].index()]
                    );
                    base.rels[chain[j].index()] = base.rels[chain[j - 1].index()];
                }
                if let Some(&first) = chain.first() {
                    if !comp.frozen[first.index()] {
                        debug_assert_eq!(self.slots[first.index()], self.slots[input_rel.index()]);
                        base.rels[first.index()] = current;
                    }
                }
            }
        }
        // Dequeues.
        for &cid in &peer.dequeues {
            self.queue_pop_front(&mut base, cid.index());
        }
        // Transition-scoped flags reset.
        for i in 0..self.n_channels {
            self.set_flag(&mut base, Flag::Received, i, false);
            self.set_flag(&mut base, Flag::Sent, i, false);
        }
        // The mover's error flags are recomputed by this move.
        for &cid in &peer.out_channels {
            self.set_flag(&mut base, Flag::Error, cid.index(), false);
        }

        // 3. Resolve send nondeterminism per channel.
        enum SendOutcome {
            Nothing,
            Error,
            Send(u32),
        }
        let mut per_channel: Vec<(crate::ChannelId, Vec<SendOutcome>)> = Vec::new();
        for (cid, tuples) in send_results {
            let ch = &comp.channels[cid.index()];
            let enc = self.chans[cid.index()];
            let outcomes = match ch.kind {
                QueueKind::Nested => {
                    if tuples.is_empty() && comp.semantics.nested_send_skips_empty {
                        vec![SendOutcome::Nothing]
                    } else {
                        vec![SendOutcome::Send(self.intern_ext(enc, &tuples))]
                    }
                }
                QueueKind::Flat => match tuples.len() {
                    0 => vec![SendOutcome::Nothing],
                    1 => vec![SendOutcome::Send(self.intern_tuple(enc, &tuples[0]))],
                    _ if comp.semantics.deterministic_send => vec![SendOutcome::Error],
                    _ => tuples
                        .iter()
                        .map(|t| SendOutcome::Send(self.intern_tuple(enc, t)))
                        .collect(),
                },
            };
            per_channel.push((cid, outcomes));
        }

        let mut variants = vec![base];
        for (cid, outcomes) in per_channel {
            let ch = &comp.channels[cid.index()];
            let i = cid.index();
            let mut next: Vec<CompactConfig> = Vec::new();
            for v in &variants {
                for outcome in &outcomes {
                    match outcome {
                        SendOutcome::Nothing => next.push(v.clone()),
                        SendOutcome::Error => {
                            let mut c = v.clone();
                            self.set_flag(&mut c, Flag::Error, i, true);
                            next.push(c);
                        }
                        SendOutcome::Send(h) => {
                            // The message is *sent* in every resolution.
                            let mut sent = v.clone();
                            self.set_flag(&mut sent, Flag::Sent, i, comp.observed_sent[i]);
                            if ch.lossy {
                                // In-transit loss: sent but never enqueued.
                                next.push(sent.clone());
                            }
                            // Delivery attempt: enqueue unless the queue is
                            // full (k-bounded semantics drop silently).
                            let mut delivered = sent;
                            if self.queue_len(&delivered, i) < self.queue_bound {
                                self.queue_push_back(&mut delivered, i, *h);
                                self.set_flag(
                                    &mut delivered,
                                    Flag::Received,
                                    i,
                                    comp.observed_received[i],
                                );
                            }
                            next.push(delivered);
                        }
                    }
                }
            }
            variants = next;
        }

        // 4. Choose the mover's next input in each resulting configuration.
        let mut out = Vec::new();
        for v in variants {
            out.extend(self.with_input_choices(comp, db, domain, v, peer, ctx));
        }
        if comp.semantics.strict_input_validity {
            out.retain(|c| self.all_inputs_valid(comp, db, domain, c, ctx));
        }
        out
    }

    fn with_input_choices(
        &self,
        comp: &Composition,
        db: &dyn Database,
        domain: &[Value],
        config: CompactConfig,
        peer: &Peer,
        ctx: EvalCtx<'_>,
    ) -> Vec<CompactConfig> {
        // Input rules never read inputs, so evaluating options against
        // `config` (whose inputs are about to be replaced) is sound.
        let mut choice_sets: Vec<(usize, Vec<u32>)> = Vec::new();
        {
            let view = CompactView::for_rules(self, comp, db, &config, peer.id, domain);
            for (i, rule) in peer.input_rules.iter().enumerate() {
                let options =
                    ctx.eval_rule(RuleRef::Input(peer.id, i), &rule.head, &rule.body, &view);
                let enc = self.slots[rule.rel.index()];
                let mut choices: Vec<u32> = vec![self.empty_handle(enc)];
                if comp.voc.arity(rule.rel) == 0 {
                    if !options.is_empty() {
                        choices.push(self.intern_tuple(enc, &[]));
                    }
                } else {
                    for t in options.iter() {
                        choices.push(self.intern_tuple(enc, t));
                    }
                }
                choice_sets.push((rule.rel.index(), choices));
            }
        }
        let mut variants = vec![config];
        for (slot, choices) in choice_sets {
            let mut next = Vec::with_capacity(variants.len() * choices.len());
            for v in &variants {
                for &choice in &choices {
                    let mut c = v.clone();
                    c.rels[slot] = choice;
                    next.push(c);
                }
            }
            variants = next;
        }
        variants
    }

    fn all_inputs_valid(
        &self,
        comp: &Composition,
        db: &dyn Database,
        domain: &[Value],
        config: &CompactConfig,
        ctx: EvalCtx<'_>,
    ) -> bool {
        for peer in &comp.peers {
            let view = CompactView::for_rules(self, comp, db, config, peer.id, domain);
            for (i, rule) in peer.input_rules.iter().enumerate() {
                let slot = rule.rel.index();
                let enc = self.slots[slot];
                let current = config.rels[slot];
                if self.handle_is_empty(enc, current) {
                    continue;
                }
                let options =
                    ctx.eval_rule(RuleRef::Input(peer.id, i), &rule.head, &rule.body, &view);
                let ok = match self.the_tuple(enc, current) {
                    Some(t) => options.iter().any(|o| o[..] == t[..]),
                    None => false, // more than one tuple can never be valid
                };
                if !ok {
                    return false;
                }
            }
        }
        true
    }

    fn env_successors(
        &self,
        comp: &Composition,
        domain: &[Value],
        cc: &CompactConfig,
    ) -> Vec<CompactConfig> {
        let mut base = cc.clone();
        for i in 0..self.n_channels {
            self.set_flag(&mut base, Flag::Received, i, false);
            self.set_flag(&mut base, Flag::Sent, i, false);
        }

        // Consume: each env in-queue independently keeps or drops its head.
        let mut variants = vec![base];
        for cid in comp.env_in_channels() {
            let i = cid.index();
            let mut next = Vec::new();
            for v in &variants {
                next.push(v.clone());
                if self.queue_len(v, i) > 0 {
                    let mut c = v.clone();
                    self.queue_pop_front(&mut c, i);
                    next.push(c);
                }
            }
            variants = next;
        }

        // Emit: each env out-queue independently stays silent or sends one
        // message over the domain.
        for cid in comp.env_out_channels() {
            let i = cid.index();
            let ch = &comp.channels[i];
            let messages = self.env_message_handles(comp, i, domain);
            let mut next = Vec::new();
            for v in &variants {
                next.push(v.clone());
                for &h in messages {
                    let mut sent = v.clone();
                    self.set_flag(&mut sent, Flag::Sent, i, comp.observed_sent[i]);
                    if ch.lossy {
                        next.push(sent.clone());
                    }
                    let mut delivered = sent;
                    if self.queue_len(&delivered, i) < self.queue_bound {
                        self.queue_push_back(&mut delivered, i, h);
                        self.set_flag(&mut delivered, Flag::Received, i, comp.observed_received[i]);
                    }
                    next.push(delivered);
                }
            }
            variants = next;
        }
        variants
    }

    /// The environment's message alphabet on a channel, interned once per
    /// pool (the domain is fixed for a pool's lifetime).
    fn env_message_handles(&self, comp: &Composition, channel: usize, domain: &[Value]) -> &[u32] {
        self.env_msgs[channel].get_or_init(|| {
            let ch = &comp.channels[channel];
            env_messages(
                ch.kind,
                ch.arity,
                domain,
                comp.semantics.env_nested_message_max,
            )
            .iter()
            .map(|m| self.intern_message(self.chans[channel], m))
            .collect()
        })
    }
}

/// The compact counterpart of [`SnapshotView`](crate::view::SnapshotView):
/// a [`Structure`] over a [`CompactConfig`] that answers atom lookups from
/// packed codes and materializes footprints as interned handles
/// ([`ReadSlot::Interned`]) — so footprint keys cost four bytes per
/// relation and compare in O(1), while remaining exactly as discriminating
/// as the legacy materialized keys.
pub struct CompactView<'a> {
    pool: &'a StatePool,
    comp: &'a Composition,
    db: &'a dyn Database,
    cfg: &'a CompactConfig,
    mover: Option<Mover>,
    domain: &'a [Value],
}

impl<'a> CompactView<'a> {
    /// Builds the view; `mover` labels the `moveW` propositions exactly as
    /// in the legacy snapshot view.
    pub fn new(
        pool: &'a StatePool,
        comp: &'a Composition,
        db: &'a dyn Database,
        cfg: &'a CompactConfig,
        mover: Option<Mover>,
        domain: &'a [Value],
    ) -> Self {
        CompactView {
            pool,
            comp,
            db,
            cfg,
            mover,
            domain,
        }
    }

    /// View for evaluating the rules of `peer` on a snapshot.
    pub fn for_rules(
        pool: &'a StatePool,
        comp: &'a Composition,
        db: &'a dyn Database,
        cfg: &'a CompactConfig,
        peer: PeerId,
        domain: &'a [Value],
    ) -> Self {
        Self::new(pool, comp, db, cfg, Some(Mover::Peer(peer)), domain)
    }

    fn msg_contains(&self, channel: usize, h: Option<u32>, tuple: &[Value]) -> bool {
        h.is_some_and(|h| {
            self.pool
                .handle_contains(self.pool.chans[channel], h, tuple)
        })
    }
}

impl Structure for CompactView<'_> {
    fn contains(&self, rel: RelId, tuple: &[Value]) -> bool {
        if let Some((cid, role)) = self.comp.rel_channel[rel.index()] {
            let i = cid.index();
            return match role {
                ChannelRole::In => self.msg_contains(i, self.pool.queue_front(self.cfg, i), tuple),
                ChannelRole::Out => self.msg_contains(i, self.pool.queue_back(self.cfg, i), tuple),
                ChannelRole::Empty => self.pool.queue_len(self.cfg, i) == 0,
                ChannelRole::Received => self.pool.flag(self.cfg, Flag::Received, i),
                ChannelRole::Sent => self.pool.flag(self.cfg, Flag::Sent, i),
                ChannelRole::Error => self.pool.flag(self.cfg, Flag::Error, i),
                ChannelRole::MsgEmpty => self
                    .pool
                    .queue_front(self.cfg, i)
                    .is_some_and(|h| self.pool.handle_is_empty(self.pool.chans[i], h)),
            };
        }
        match self.comp.class(rel) {
            RelClass::Database => self.db.db_contains(rel, tuple),
            RelClass::State | RelClass::Input | RelClass::PrevInput | RelClass::Action => {
                self.pool.handle_contains(
                    self.pool.slots[rel.index()],
                    self.cfg.rels[rel.index()],
                    tuple,
                )
            }
            RelClass::Bookkeeping => match self.mover {
                Some(Mover::Peer(p)) => self.comp.move_rels[p.index()] == rel,
                Some(Mover::Environment) => self.comp.move_env_rel == Some(rel),
                None => false,
            },
            // Queue-backed classes are fully covered by the reverse index.
            _ => false,
        }
    }

    fn scan(&self, rel: RelId) -> Option<Vec<Vec<Value>>> {
        if let Some((cid, role)) = self.comp.rel_channel[rel.index()] {
            let i = cid.index();
            return match role {
                ChannelRole::In => Some(
                    self.pool
                        .queue_front(self.cfg, i)
                        .map(|h| self.pool.handle_rows(self.pool.chans[i], h))
                        .unwrap_or_default(),
                ),
                ChannelRole::Out => Some(
                    self.pool
                        .queue_back(self.cfg, i)
                        .map(|h| self.pool.handle_rows(self.pool.chans[i], h))
                        .unwrap_or_default(),
                ),
                ChannelRole::Error => Some(if self.pool.flag(self.cfg, Flag::Error, i) {
                    vec![vec![]]
                } else {
                    vec![]
                }),
                // Propositional roles: membership is cheap, no scan needed.
                _ => None,
            };
        }
        match self.comp.class(rel) {
            RelClass::Database => self.db.db_scan(rel),
            RelClass::State | RelClass::Input | RelClass::PrevInput | RelClass::Action => Some(
                self.pool
                    .handle_rows(self.pool.slots[rel.index()], self.cfg.rels[rel.index()]),
            ),
            _ => None,
        }
    }

    fn domain(&self) -> &[Value] {
        self.domain
    }
}

impl EvalView for CompactView<'_> {
    fn eval_footprint(&self, reads: &[RelId]) -> Option<Vec<ReadSlot>> {
        let mut slots = Vec::with_capacity(reads.len());
        for &rel in reads {
            if let Some((cid, role)) = self.comp.rel_channel[rel.index()] {
                let i = cid.index();
                let enc = self.pool.chans[i];
                slots.push(match role {
                    // An absent message reads as the empty extension, so it
                    // keys like one — exactly the legacy collapse.
                    ChannelRole::In => ReadSlot::Interned(
                        self.pool
                            .queue_front(self.cfg, i)
                            .unwrap_or_else(|| self.pool.empty_handle(enc)),
                    ),
                    ChannelRole::Out => ReadSlot::Interned(
                        self.pool
                            .queue_back(self.cfg, i)
                            .unwrap_or_else(|| self.pool.empty_handle(enc)),
                    ),
                    ChannelRole::Empty => ReadSlot::Flag(self.pool.queue_len(self.cfg, i) == 0),
                    ChannelRole::Received => {
                        ReadSlot::Flag(self.pool.flag(self.cfg, Flag::Received, i))
                    }
                    ChannelRole::Sent => ReadSlot::Flag(self.pool.flag(self.cfg, Flag::Sent, i)),
                    ChannelRole::Error => ReadSlot::Flag(self.pool.flag(self.cfg, Flag::Error, i)),
                    ChannelRole::MsgEmpty => ReadSlot::Flag(
                        self.pool
                            .queue_front(self.cfg, i)
                            .is_some_and(|h| self.pool.handle_is_empty(enc, h)),
                    ),
                });
                continue;
            }
            match self.comp.class(rel) {
                // The run's database is fixed for the pool's lifetime, so
                // its extension keys as one interned handle — the scan and
                // clone the legacy footprint pays on every evaluation
                // happen once per relation here.
                RelClass::Database => match self.pool.db_handle(rel, self.db) {
                    Some(h) => slots.push(ReadSlot::Interned(h)),
                    None => return None,
                },
                RelClass::State | RelClass::Input | RelClass::PrevInput | RelClass::Action => {
                    slots.push(ReadSlot::Interned(self.cfg.rels[rel.index()]));
                }
                RelClass::Bookkeeping => slots.push(ReadSlot::Flag(match self.mover {
                    Some(Mover::Peer(p)) => self.comp.move_rels[p.index()] == rel,
                    Some(Mover::Environment) => self.comp.move_env_rel == Some(rel),
                    None => false,
                })),
                _ => slots.push(ReadSlot::Flag(false)),
            }
        }
        Some(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CompositionBuilder;
    use crate::composition::Semantics;
    use ddws_relational::Instance;

    fn capacity(domain: &[Value]) -> usize {
        domain.iter().map(|v| v.index()).max().unwrap_or(0) + 1
    }

    /// A two-peer relay exercising flat and nested channels, every rule
    /// kind, lossy branching and a database read on each side.
    fn relay() -> (Composition, Instance, Vec<Value>) {
        let mut b = CompositionBuilder::new();
        b.default_lossy(true);
        b.channel("fwd", 1, QueueKind::Flat, "A", "B");
        b.channel("ack", 2, QueueKind::Nested, "B", "A");
        b.peer("A")
            .database("d", 1)
            .state("done", 2)
            .input("pick", 1)
            .input_rule("pick", &["x"], "d(x)")
            .state_insert_rule("done", &["x", "y"], "?ack(x, y)")
            .send_rule("fwd", &["x"], "pick(x)");
        b.peer("B")
            .database("m", 1)
            .state("seen", 1)
            .action("log", 1)
            .state_insert_rule("seen", &["x"], "?fwd(x)")
            .state_delete_rule("seen", &["x"], "seen(x) and not ?fwd(x)")
            .action_rule("log", &["x"], "seen(x) or ?fwd(x)")
            .send_rule("ack", &["x", "y"], "?fwd(x) and m(y)");
        let comp = b.build().unwrap();
        let mut db = Instance::empty(&comp.voc);
        let d = comp.voc.lookup("A.d").unwrap();
        let m = comp.voc.lookup("B.m").unwrap();
        db.relation_mut(d).insert(Tuple::new(vec![Value(0)]));
        db.relation_mut(d).insert(Tuple::new(vec![Value(1)]));
        db.relation_mut(m).insert(Tuple::new(vec![Value(2)]));
        (comp, db, vec![Value(0), Value(1), Value(2)])
    }

    #[test]
    fn compact_expand_round_trips() {
        let (comp, db, dom) = relay();
        let pool = StatePool::new(&comp, capacity(&dom));
        for cfg in comp.initial_configs(&db, &dom) {
            let cc = pool.compact(&comp, &cfg);
            assert_eq!(pool.expand(&comp, &cc), cfg);
            // Re-compacting yields the identical handles.
            assert_eq!(pool.compact(&comp, &cfg), cc);
        }
    }

    #[test]
    fn compact_successors_mirror_legacy_in_order() {
        let (comp, db, dom) = relay();
        let pool = StatePool::new(&comp, capacity(&dom));

        let legacy_init = comp.initial_configs(&db, &dom);
        let compact_init = pool.initial_configs(&comp, &db, &dom, EvalCtx::default());
        assert_eq!(
            legacy_init,
            compact_init
                .iter()
                .map(|c| pool.expand(&comp, c))
                .collect::<Vec<_>>(),
            "initial configurations diverge"
        );

        let mut frontier = legacy_init;
        for _level in 0..3 {
            let mut next = Vec::new();
            for cfg in &frontier {
                let cc = pool.compact(&comp, cfg);
                for mover in comp.movers() {
                    let legacy = comp.successors(&db, &dom, cfg, mover);
                    let compact: Vec<Config> = pool
                        .successors(&comp, &db, &dom, &cc, mover, EvalCtx::default())
                        .iter()
                        .map(|c| pool.expand(&comp, c))
                        .collect();
                    assert_eq!(legacy, compact, "successors diverge for {mover:?}");
                    next.extend(legacy);
                }
            }
            next.truncate(24);
            frontier = next;
        }
        assert!(pool.intern_hits() > 0, "hash-consing never engaged");
    }

    #[test]
    fn compact_mirrors_deterministic_send_and_strict_validity() {
        let mut b = CompositionBuilder::new();
        b.semantics(Semantics {
            deterministic_send: true,
            strict_input_validity: true,
            ..Semantics::default()
        });
        b.default_lossy(false);
        b.channel("out", 1, QueueKind::Flat, "P", "R");
        b.peer("P")
            .database("d", 1)
            .input("pick", 1)
            .input_rule("pick", &["x"], "d(x)")
            .send_rule("out", &["x"], "d(x)");
        b.peer("R");
        let comp = b.build().unwrap();
        let d = comp.voc.lookup("P.d").unwrap();
        let mut db = Instance::empty(&comp.voc);
        db.relation_mut(d).insert(Tuple::new(vec![Value(0)]));
        db.relation_mut(d).insert(Tuple::new(vec![Value(1)]));
        let dom = vec![Value(0), Value(1)];
        let pool = StatePool::new(&comp, capacity(&dom));
        let p = comp.peer_by_name("P").unwrap().id;
        for init in comp.initial_configs(&db, &dom) {
            let cc = pool.compact(&comp, &init);
            let legacy = comp.successors(&db, &dom, &init, Mover::Peer(p));
            let compact: Vec<Config> = pool
                .successors(&comp, &db, &dom, &cc, Mover::Peer(p), EvalCtx::default())
                .iter()
                .map(|c| pool.expand(&comp, c))
                .collect();
            assert_eq!(legacy, compact);
        }
    }

    #[test]
    fn compact_mirrors_environment_moves() {
        let mut b = CompositionBuilder::new();
        b.default_lossy(false);
        b.channel("req", 1, QueueKind::Flat, "P", crate::builder::ENV);
        b.channel("resp", 1, QueueKind::Flat, crate::builder::ENV, "P");
        b.peer("P")
            .state("got", 1)
            .state_insert_rule("got", &["x"], "?resp(x)")
            .send_rule("req", &["x"], "?resp(x)");
        let comp = b.build().unwrap();
        let db = Instance::empty(&comp.voc);
        let dom = vec![Value(0), Value(1)];
        let pool = StatePool::new(&comp, capacity(&dom));
        let init = comp.initial_configs(&db, &dom).remove(0);
        let cc = pool.compact(&comp, &init);
        let legacy = comp.successors(&db, &dom, &init, Mover::Environment);
        let compact: Vec<Config> = pool
            .successors(
                &comp,
                &db,
                &dom,
                &cc,
                Mover::Environment,
                EvalCtx::default(),
            )
            .iter()
            .map(|c| pool.expand(&comp, c))
            .collect();
        assert_eq!(legacy, compact);
        // One level deeper: queue contents and dequeues round-trip.
        for (l, c) in legacy.iter().zip(compact.iter()) {
            let lc = pool.compact(&comp, l);
            let l2 = comp.successors(&db, &dom, c, Mover::Environment);
            let c2: Vec<Config> = pool
                .successors(
                    &comp,
                    &db,
                    &dom,
                    &lc,
                    Mover::Environment,
                    EvalCtx::default(),
                )
                .iter()
                .map(|c| pool.expand(&comp, c))
                .collect();
            assert_eq!(l2, c2);
        }
    }

    #[test]
    fn wide_slots_fall_back_to_relation_interning() {
        let mut b = CompositionBuilder::new();
        b.default_lossy(false);
        b.channel("c", 1, QueueKind::Flat, "P", "R");
        b.peer("P")
            .state("s", 3)
            .send_rule("c", &["x"], "s(x, x, x)");
        b.peer("R");
        let comp = b.build().unwrap();
        // A capacity so large that 3 values cannot pack into 64 bits.
        let pool = StatePool::new(&comp, 1 << 30);
        let s = comp.voc.lookup("P.s").unwrap();
        assert!(matches!(pool.slots[s.index()], Enc::Wide));
        let mut cfg = Config::empty(&comp);
        cfg.rel
            .relation_mut(s)
            .insert(Tuple::new(vec![Value(7), Value(8), Value(9)]));
        let cc = pool.compact(&comp, &cfg);
        assert_eq!(pool.expand(&comp, &cc), cfg);
    }

    #[test]
    fn intern_counters_meter_every_call() {
        let (comp, db, dom) = relay();
        let pool = StatePool::new(&comp, capacity(&dom));
        let before = pool.intern_hits() + pool.intern_misses();
        let init = pool.initial_configs(&comp, &db, &dom, EvalCtx::default());
        assert!(!init.is_empty());
        let after = pool.intern_hits() + pool.intern_misses();
        assert!(after > before, "stepping interns extensions");
    }
}
