//! Structure views over snapshots.
//!
//! The paper gives two readings of queue relations:
//!
//! * **rules** of a peer read the *first* messages of its in-queues
//!   (`f(Q_in)`, Definition 2.4);
//! * **properties** read in-queue atoms as `f(q)` and out-queue atoms as
//!   `l(q)`, plus the `moveW` propositions (Section 3, "Semantics of LTL-FO
//!   Properties").
//!
//! Both are implemented as [`Structure`] adapters over a
//! ([`Composition`], database, [`Config`], mover) snapshot. Queue states
//! `empty_q`, error flags, `received_q`/`sent_q` and the emptiness tests of
//! Theorem 3.9 are derived here rather than stored.

use crate::composition::{ChannelRole, Composition, Mover, PeerId};
use crate::config::Config;
use ddws_logic::input_bounded::RelClass;
use ddws_logic::Structure;
use ddws_relational::{Instance, RelId, Value};

/// A source of database facts.
///
/// The fixed database of Definition 2.3 is usually an [`Instance`], but the
/// verifier's *lazy oracle* (which decides database facts on demand while
/// searching over all databases) also implements this trait, intercepting
/// every lookup the rule and property evaluators make.
pub trait Database {
    /// Membership of a ground tuple in a database relation.
    fn db_contains(&self, rel: RelId, tuple: &[Value]) -> bool;

    /// Enumerates the relation's tuples when the database is concrete;
    /// `None` when facts are decided lazily (the verifier's oracle).
    fn db_scan(&self, rel: RelId) -> Option<Vec<Vec<Value>>> {
        let _ = rel;
        None
    }
}

impl Database for Instance {
    fn db_contains(&self, rel: RelId, tuple: &[Value]) -> bool {
        self.contains_slice(rel, tuple)
    }

    fn db_scan(&self, rel: RelId) -> Option<Vec<Vec<Value>>> {
        Some(
            self.relation(rel)
                .iter()
                .map(|t| t.values().to_vec())
                .collect(),
        )
    }
}

/// How an atom over a queue relation reads the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum QueueRead {
    /// `f(q)`: the first (oldest) message.
    First,
    /// `l(q)`: the last (most recent) message.
    Last,
}

/// The property-evaluation view of a snapshot: in-queues read `f(q)`,
/// out-queues read `l(q)`, `moveW` reflects the mover of the outgoing
/// transition.
pub struct SnapshotView<'a> {
    comp: &'a Composition,
    db: &'a dyn Database,
    config: &'a Config,
    mover: Option<Mover>,
    domain: &'a [Value],
}

impl<'a> SnapshotView<'a> {
    /// Builds the view. `mover` is the peer (or environment) taking the
    /// *next* step — the paper's `moveW` labels snapshots this way; pass
    /// `None` when move propositions are irrelevant (they then all read
    /// false).
    pub fn new(
        comp: &'a Composition,
        db: &'a dyn Database,
        config: &'a Config,
        mover: Option<Mover>,
        domain: &'a [Value],
    ) -> Self {
        SnapshotView {
            comp,
            db,
            config,
            mover,
            domain,
        }
    }

    fn queue_contains(&self, channel: usize, read: QueueRead, tuple: &[Value]) -> bool {
        let q = &self.config.queues[channel];
        let msg = match read {
            QueueRead::First => q.front(),
            QueueRead::Last => q.back(),
        };
        msg.is_some_and(|m| m.contains(tuple))
    }
}

/// What one relation contributed to an evaluation: either its full
/// extension (for queue-message and stored relations) or a boolean (for the
/// propositional roles). Footprint-keyed rule memoization
/// ([`crate::plan::RuleCache`]) keys cached extensions on these — *exact*
/// materialized reads, never hashes, so a collision can never smuggle in a
/// stale result.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ReadSlot {
    /// The relation's extension as the evaluator would see it (sorted).
    Ext(Vec<Vec<Value>>),
    /// A propositional read (queue-empty, bookkeeping flags, move markers).
    Flag(bool),
    /// A hash-consed extension handle from the compact state pool
    /// ([`crate::compact::StatePool`]): handle equality is content equality
    /// within one pool, so a handle is as exact a key as the materialized
    /// extension — at four bytes.
    Interned(u32),
}

/// A snapshot view usable by [`EvalCtx`](crate::plan::EvalCtx): a
/// [`Structure`] that can additionally materialize the read footprint of a
/// compiled plan for footprint-keyed rule memoization.
pub trait EvalView: Structure {
    /// Materializes everything evaluation over `reads` can observe, one
    /// slot per relation in the order given; `None` when some relation
    /// cannot be materialized (lazily decided database facts) — such
    /// evaluations must not be memoized.
    fn eval_footprint(&self, reads: &[RelId]) -> Option<Vec<ReadSlot>>;
}

impl SnapshotView<'_> {
    /// Materializes everything evaluation over `reads` can observe in this
    /// snapshot, one slot per relation, in the order given.
    ///
    /// This mirrors [`Structure::scan`]/[`Structure::contains`] case for
    /// case — any two snapshots with equal footprints give identical answers
    /// to every query over `reads`, which is the soundness invariant of the
    /// rule cache (DESIGN.md §3.8). Returns `None` when a relation cannot be
    /// materialized (a lazily decided database relation): such evaluations
    /// must not be memoized.
    pub fn footprint(&self, reads: &[RelId]) -> Option<Vec<ReadSlot>> {
        let mut slots = Vec::with_capacity(reads.len());
        for &rel in reads {
            if let Some((cid, role)) = self.comp.rel_channel[rel.index()] {
                let i = cid.index();
                let q = &self.config.queues[i];
                slots.push(match role {
                    ChannelRole::In => ReadSlot::Ext(
                        q.front()
                            .map(|m| {
                                m.as_relation()
                                    .iter()
                                    .map(|t| t.values().to_vec())
                                    .collect()
                            })
                            .unwrap_or_default(),
                    ),
                    ChannelRole::Out => ReadSlot::Ext(
                        q.back()
                            .map(|m| {
                                m.as_relation()
                                    .iter()
                                    .map(|t| t.values().to_vec())
                                    .collect()
                            })
                            .unwrap_or_default(),
                    ),
                    ChannelRole::Empty => ReadSlot::Flag(q.is_empty()),
                    ChannelRole::Received => ReadSlot::Flag(self.config.received[i]),
                    ChannelRole::Sent => ReadSlot::Flag(self.config.sent[i]),
                    ChannelRole::Error => ReadSlot::Flag(self.config.error[i]),
                    ChannelRole::MsgEmpty => {
                        ReadSlot::Flag(q.front().is_some_and(|m| m.is_empty()))
                    }
                });
                continue;
            }
            match self.comp.class(rel) {
                RelClass::Database => match self.db.db_scan(rel) {
                    Some(ext) => slots.push(ReadSlot::Ext(ext)),
                    None => return None,
                },
                RelClass::State | RelClass::Input | RelClass::PrevInput | RelClass::Action => {
                    slots.push(ReadSlot::Ext(
                        self.config
                            .rel
                            .relation(rel)
                            .iter()
                            .map(|t| t.values().to_vec())
                            .collect(),
                    ));
                }
                RelClass::Bookkeeping => slots.push(ReadSlot::Flag(match self.mover {
                    Some(Mover::Peer(p)) => self.comp.move_rels[p.index()] == rel,
                    Some(Mover::Environment) => self.comp.move_env_rel == Some(rel),
                    None => false,
                })),
                // Queue-backed classes are covered by the reverse index
                // above; anything else reads as constantly false.
                _ => slots.push(ReadSlot::Flag(false)),
            }
        }
        Some(slots)
    }

    fn scan_impl(&self, rel: RelId) -> Option<Vec<Vec<Value>>> {
        let as_vecs = |r: &ddws_relational::Relation| -> Vec<Vec<Value>> {
            r.iter().map(|t| t.values().to_vec()).collect()
        };
        if let Some((cid, role)) = self.comp.rel_channel[rel.index()] {
            let i = cid.index();
            return match role {
                ChannelRole::In => Some(
                    self.config.queues[i]
                        .front()
                        .map(|m| as_vecs(&m.as_relation()))
                        .unwrap_or_default(),
                ),
                ChannelRole::Out => Some(
                    self.config.queues[i]
                        .back()
                        .map(|m| as_vecs(&m.as_relation()))
                        .unwrap_or_default(),
                ),
                ChannelRole::Error => Some(if self.config.error[i] {
                    vec![vec![]]
                } else {
                    vec![]
                }),
                // Propositional roles: membership is cheap, no scan needed.
                _ => None,
            };
        }
        match self.comp.class(rel) {
            RelClass::Database => self.db.db_scan(rel),
            RelClass::State | RelClass::Input | RelClass::PrevInput | RelClass::Action => {
                Some(as_vecs(self.config.rel.relation(rel)))
            }
            _ => None,
        }
    }
}

impl Structure for SnapshotView<'_> {
    fn scan(&self, rel: RelId) -> Option<Vec<Vec<Value>>> {
        self.scan_impl(rel)
    }

    fn contains(&self, rel: RelId, tuple: &[Value]) -> bool {
        // Channel-backed relations resolve through the reverse index.
        if let Some((cid, role)) = self.comp.rel_channel[rel.index()] {
            let i = cid.index();
            return match role {
                ChannelRole::In => self.queue_contains(i, QueueRead::First, tuple),
                ChannelRole::Out => self.queue_contains(i, QueueRead::Last, tuple),
                ChannelRole::Empty => self.config.queues[i].is_empty(),
                ChannelRole::Received => self.config.received[i],
                ChannelRole::Sent => self.config.sent[i],
                ChannelRole::Error => self.config.error[i],
                ChannelRole::MsgEmpty => {
                    self.config.queues[i].front().is_some_and(|m| m.is_empty())
                }
            };
        }
        match self.comp.class(rel) {
            RelClass::Database => self.db.db_contains(rel, tuple),
            RelClass::State | RelClass::Input | RelClass::PrevInput | RelClass::Action => {
                self.config.rel.contains_slice(rel, tuple)
            }
            RelClass::Bookkeeping => match self.mover {
                Some(Mover::Peer(p)) => self.comp.move_rels[p.index()] == rel,
                Some(Mover::Environment) => self.comp.move_env_rel == Some(rel),
                None => false,
            },
            // Queue-backed classes are fully covered by the reverse index.
            _ => false,
        }
    }

    fn domain(&self) -> &[Value] {
        self.domain
    }
}

/// The rule-evaluation view for one peer's move: like [`SnapshotView`] but
/// restricted to the mover's perspective — in-queue atoms read `f(q)` (same
/// as properties), and by Definition 2.1 rules never mention out-queues,
/// move flags or other peers' relations, so the property view is reused
/// directly. A wrapper type documents the intent.
pub struct RuleView<'a>(pub SnapshotView<'a>);

impl<'a> RuleView<'a> {
    /// View for evaluating the rules of `peer` on a snapshot.
    pub fn new(
        comp: &'a Composition,
        db: &'a dyn Database,
        config: &'a Config,
        peer: PeerId,
        domain: &'a [Value],
    ) -> Self {
        RuleView(SnapshotView::new(
            comp,
            db,
            config,
            Some(Mover::Peer(peer)),
            domain,
        ))
    }
}

impl Structure for RuleView<'_> {
    fn contains(&self, rel: RelId, tuple: &[Value]) -> bool {
        self.0.contains(rel, tuple)
    }

    fn domain(&self) -> &[Value] {
        self.0.domain()
    }

    fn scan(&self, rel: RelId) -> Option<Vec<Vec<Value>>> {
        self.0.scan(rel)
    }
}

impl EvalView for RuleView<'_> {
    fn eval_footprint(&self, reads: &[RelId]) -> Option<Vec<ReadSlot>> {
        self.0.footprint(reads)
    }
}
