//! Configurations of a composition.

use crate::composition::{ChannelId, Composition, QueueKind};
use ddws_relational::{Instance, Relation, Symbols, Tuple};
use std::collections::VecDeque;
use std::fmt;

/// A message in transit: a single tuple on a flat channel, a set of tuples
/// on a nested channel (possibly empty — the paper's Definition 2.4 enqueues
/// a nested message on every firing).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Message {
    /// Flat-channel message.
    Flat(Tuple),
    /// Nested-channel message.
    Nested(Relation),
}

impl Message {
    /// The message contents as a relation (singleton for flat messages).
    pub fn as_relation(&self) -> Relation {
        match self {
            Message::Flat(t) => Relation::singleton(t.clone()),
            Message::Nested(r) => r.clone(),
        }
    }

    /// Whether the message carries no tuples.
    pub fn is_empty(&self) -> bool {
        match self {
            Message::Flat(_) => false,
            Message::Nested(r) => r.is_empty(),
        }
    }

    /// Membership of a tuple in the message contents.
    pub fn contains(&self, tuple: &[ddws_relational::Value]) -> bool {
        match self {
            Message::Flat(t) => t.values() == tuple,
            Message::Nested(r) => r.contains(&Tuple::from(tuple)),
        }
    }
}

/// A configuration of the whole composition: the union of the peers'
/// configurations of Definition 2.3 (minus the shared fixed database, which
/// the verifier holds separately, and minus derived propositions such as
/// queue states, which are computed from the queues on demand).
///
/// Configurations are hashed into the model checker's visited set, so every
/// component is canonical.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Config {
    /// Dynamic relations: states, inputs, previous inputs, actions. Database
    /// and queue relation slots exist but stay empty.
    pub rel: Instance,
    /// Queue contents per channel, FIFO (front = next to dequeue).
    pub queues: Box<[VecDeque<Message>]>,
    /// `received_q`: channel got a message enqueued in the transition
    /// leading here.
    pub received: Box<[bool]>,
    /// `sent_q`: the sender emitted a message in that transition (even if
    /// dropped).
    pub sent: Box<[bool]>,
    /// Deterministic-send error flags (Theorem 3.8), per channel.
    pub error: Box<[bool]>,
}

impl Config {
    /// The all-empty initial configuration skeleton (inputs still to be
    /// chosen — see [`Composition::initial_configs`](crate::Composition::initial_configs)).
    pub fn empty(comp: &Composition) -> Config {
        Config {
            rel: Instance::empty(&comp.voc),
            queues: vec![VecDeque::new(); comp.channels.len()].into_boxed_slice(),
            received: vec![false; comp.channels.len()].into_boxed_slice(),
            sent: vec![false; comp.channels.len()].into_boxed_slice(),
            error: vec![false; comp.channels.len()].into_boxed_slice(),
        }
    }

    /// The queue of a channel.
    pub fn queue(&self, c: ChannelId) -> &VecDeque<Message> {
        &self.queues[c.index()]
    }

    /// First message of a channel's queue (`f(q)`).
    pub fn first_message(&self, c: ChannelId) -> Option<&Message> {
        self.queues[c.index()].front()
    }

    /// Last message of a channel's queue (`l(q)`).
    pub fn last_message(&self, c: ChannelId) -> Option<&Message> {
        self.queues[c.index()].back()
    }

    /// Approximate heap footprint in bytes — the checkpoint-size
    /// accounting counterpart of
    /// [`CompactConfig::approx_bytes`](crate::compact::CompactConfig::approx_bytes).
    pub fn approx_bytes(&self) -> usize {
        let tuple_bytes = |t: &Tuple| t.values().len() * 4 + 24;
        let msg_bytes = |m: &Message| match m {
            Message::Flat(t) => tuple_bytes(t),
            Message::Nested(r) => r.iter().map(tuple_bytes).sum::<usize>() + 24,
        };
        std::mem::size_of::<Config>()
            + self
                .rel
                .relations()
                .map(|r| r.iter().map(tuple_bytes).sum::<usize>() + 24)
                .sum::<usize>()
            + self
                .queues
                .iter()
                .map(|q| q.iter().map(msg_bytes).sum::<usize>() + 24)
                .sum::<usize>()
            + 3 * self.received.len()
    }

    /// Renders the configuration for counterexample output.
    pub fn display<'a>(
        &'a self,
        comp: &'a Composition,
        symbols: &'a Symbols,
    ) -> impl fmt::Display + 'a {
        DisplayConfig {
            config: self,
            comp,
            symbols,
        }
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Config")
            .field("rel", &self.rel)
            .field("queues", &self.queues)
            .finish_non_exhaustive()
    }
}

struct DisplayConfig<'a> {
    config: &'a Config,
    comp: &'a Composition,
    symbols: &'a Symbols,
}

impl fmt::Display for DisplayConfig<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rels = self.config.rel.display(&self.comp.voc, self.symbols);
        write!(f, "{rels}")?;
        for (i, ch) in self.comp.channels.iter().enumerate() {
            let q = &self.config.queues[i];
            if q.is_empty() && !self.config.received[i] && !self.config.sent[i] {
                continue;
            }
            write!(f, "\nqueue {}", ch.name)?;
            if self.config.received[i] {
                write!(f, " [received]")?;
            }
            if self.config.sent[i] {
                write!(f, " [sent]")?;
            }
            if self.config.error[i] {
                write!(f, " [error]")?;
            }
            write!(f, ": ")?;
            for (j, m) in q.iter().enumerate() {
                if j > 0 {
                    write!(f, " | ")?;
                }
                match (m, ch.kind) {
                    (Message::Flat(t), _) => write!(f, "{}", t.display(self.symbols))?,
                    (Message::Nested(r), QueueKind::Nested | QueueKind::Flat) => {
                        write!(f, "{}", r.display(self.symbols))?
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_helpers() {
        let flat = Message::Flat(Tuple::new(vec![ddws_relational::Value(1)]));
        assert!(!flat.is_empty());
        assert!(flat.contains(&[ddws_relational::Value(1)]));
        assert!(!flat.contains(&[ddws_relational::Value(2)]));
        assert_eq!(flat.as_relation().len(), 1);

        let nested = Message::Nested(Relation::new());
        assert!(nested.is_empty());
        assert!(!nested.contains(&[ddws_relational::Value(1)]));
    }
}
