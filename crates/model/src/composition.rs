//! Compiled compositions.

use ddws_logic::input_bounded::{RelClass, SchemaClassifier};
use ddws_logic::parser::RelLookup;
use ddws_logic::{Fo, Vars};
use ddws_relational::{RelId, Symbols, Vocabulary};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a peer within a composition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u32);

impl PeerId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a channel (a message queue) within a composition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// Queue flavour: flat queues carry single tuples, nested queues carry sets
/// of tuples (Section 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// Single-tuple messages; a send rule yielding several candidates picks
    /// one nondeterministically (or raises the error flag under the
    /// deterministic-send semantics of Theorem 3.8).
    Flat,
    /// Set-of-tuples messages; one message per rule firing.
    Nested,
}

/// One end of a channel: a peer of the composition or the environment of an
/// open composition (§5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A composition member.
    Peer(PeerId),
    /// The (unspecified) environment.
    Environment,
}

/// How a relation symbol hooks into a channel (the reverse index used by
/// snapshot evaluation, avoiding a per-atom scan over the channel list).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelRole {
    /// Receiver-side `?q` atom (reads `f(q)`).
    In,
    /// Sender-side `!q` atom (reads `l(q)`).
    Out,
    /// Queue-state proposition `empty_q`.
    Empty,
    /// Bookkeeping `received_q`.
    Received,
    /// Bookkeeping `sent_q`.
    Sent,
    /// Deterministic-send error flag.
    Error,
    /// Nested-message emptiness test (Theorem 3.9).
    MsgEmpty,
}

/// The entity taking a step: used as part of the verifier's search state,
/// since the snapshot proposition `moveW` labels the *outgoing* transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mover {
    /// A peer moves (Definition 2.4/2.6).
    Peer(PeerId),
    /// The environment moves (only in open compositions).
    Environment,
}

/// A compiled channel with all its schema hooks.
#[derive(Clone, Debug)]
pub struct Channel {
    /// Unqualified queue name (e.g. `apply`).
    pub name: String,
    /// Message tuple arity.
    pub arity: usize,
    /// Flat or nested.
    pub kind: QueueKind,
    /// Sender end.
    pub sender: Endpoint,
    /// Receiver end.
    pub receiver: Endpoint,
    /// Whether messages may be lost in transit (§2, "lossy channels").
    pub lossy: bool,
    /// Receiver-side atom `?q` (reads the first message `f(q)`); absent for
    /// environment receivers.
    pub in_rel: Option<RelId>,
    /// Sender-side atom `!q` (reads the last message `l(q)`); present for
    /// environment senders too (environment specs mention them).
    pub out_rel: RelId,
    /// Receiver-side queue-state proposition `empty_q` (Definition 2.1).
    pub empty_rel: Option<RelId>,
    /// Bookkeeping proposition `received_q`: a message was enqueued in the
    /// transition leading to this snapshot (§4 observer-at-recipient, §5).
    pub received_rel: RelId,
    /// Bookkeeping proposition `sent_q`: the sender emitted a message in
    /// that transition, whether or not it was enqueued (§4
    /// observer-at-source).
    pub sent_rel: RelId,
    /// Sender-side error flag for the deterministic-send semantics of
    /// Theorem 3.8 (only for flat channels with a peer sender).
    pub error_rel: Option<RelId>,
    /// The nested-message emptiness test of Theorem 3.9: true iff the first
    /// message of the queue is the empty set (only for nested channels with
    /// a peer receiver). Outside the input-bounded language.
    pub msg_empty_rel: Option<RelId>,
}

/// A state relation's update rules (either may be absent; both firing on the
/// same tuple is a no-op, Definition 2.4).
#[derive(Clone, Debug)]
pub struct StateRule {
    /// The state relation.
    pub rel: RelId,
    /// Head variables (shared by both bodies).
    pub head: Vec<ddws_logic::VarId>,
    /// Insertion body `ϕ+`.
    pub insert: Option<Fo>,
    /// Deletion body `ϕ−`.
    pub delete: Option<Fo>,
}

/// A rule with a head relation and body.
#[derive(Clone, Debug)]
pub struct HeadRule {
    /// The head relation (input options / action / out-queue).
    pub rel: RelId,
    /// Head variables.
    pub head: Vec<ddws_logic::VarId>,
    /// Body formula.
    pub body: Fo,
}

/// A compiled peer.
#[derive(Clone, Debug)]
pub struct Peer {
    /// Peer name (qualifies its relations in the global vocabulary).
    pub name: String,
    /// This peer's id.
    pub id: PeerId,
    /// Database relations (fixed during runs).
    pub database: Vec<RelId>,
    /// State relations (excluding queue states and error flags, which are
    /// tracked per channel).
    pub states: Vec<RelId>,
    /// Input relations.
    pub inputs: Vec<RelId>,
    /// `prev` chains per input: `prev[i][j]` is the (j+1)-th most recent
    /// non-empty input to `inputs[i]` (k-lookback; the paper's `prevI` is
    /// lookback 1).
    pub prev: Vec<Vec<RelId>>,
    /// Action relations.
    pub actions: Vec<RelId>,
    /// Channels this peer receives from.
    pub in_channels: Vec<ChannelId>,
    /// Channels this peer sends to.
    pub out_channels: Vec<ChannelId>,
    /// In-channels mentioned in some rule body — these are dequeued on every
    /// move (Definition 2.4).
    pub dequeues: Vec<ChannelId>,
    /// Input rules (`Options_I`), one per input relation, aligned with
    /// `inputs`.
    pub input_rules: Vec<HeadRule>,
    /// State rules.
    pub state_rules: Vec<StateRule>,
    /// Action rules.
    pub action_rules: Vec<HeadRule>,
    /// Send rules, keyed by out-channel.
    pub send_rules: Vec<(ChannelId, HeadRule)>,
}

/// Channel and run semantics knobs (the axes of the paper's decidability
/// map).
#[derive(Clone, Copy, Debug)]
pub struct Semantics {
    /// Queue capacity `k` (Theorem 3.4 requires bounded queues; arriving
    /// messages are dropped when the receiver's queue is full).
    pub queue_bound: usize,
    /// Deterministic-send semantics for flat queues (Theorem 3.8): a send
    /// rule yielding multiple candidates sends nothing and raises the
    /// channel's error flag instead of picking nondeterministically.
    pub deterministic_send: bool,
    /// Whether a nested send rule with an empty result still enqueues the
    /// empty message. The paper's Definition 2.4 enqueues unconditionally;
    /// `true` skips empty messages (a pragmatic deviation, off by default).
    pub nested_send_skips_empty: bool,
    /// Maximum number of tuples in a message the *environment* may send on a
    /// nested channel (the environment of §5 uses values from a finite
    /// domain; this bounds its nested-message branching).
    pub env_nested_message_max: usize,
    /// Input lookback `k`: peers may consult the `k` most recent non-empty
    /// inputs via `prev_I, prev2_I, …` (the k-lookback extension used by the
    /// proof of Theorem 3.4; the paper's base model is `1`).
    pub lookback: usize,
    /// Enforce Definition 2.3's input-validity constraint on *every* peer in
    /// every configuration (not just the mover at its move). Literal but
    /// expensive; off by default — see DESIGN.md.
    pub strict_input_validity: bool,
}

impl Default for Semantics {
    fn default() -> Self {
        Semantics {
            queue_bound: 1,
            deterministic_send: false,
            nested_send_skips_empty: false,
            env_nested_message_max: 1,
            lookback: 1,
            strict_input_validity: false,
        }
    }
}

/// A compiled, validated composition.
#[derive(Clone, Debug)]
pub struct Composition {
    /// Constant/value symbol table (shared with databases and properties).
    pub symbols: Symbols,
    /// Variable table (shared by all rules; extended by property parsing).
    pub vars: Vars,
    /// The global composition schema: every peer relation qualified by peer
    /// name, queue relations on both ends, and bookkeeping propositions.
    pub voc: Vocabulary,
    /// The peers.
    pub peers: Vec<Peer>,
    /// The channels.
    pub channels: Vec<Channel>,
    /// Schema class per relation (aligned with `voc`).
    pub classes: Vec<RelClass>,
    /// Semantics knobs.
    pub semantics: Semantics,
    /// `move_{peer}` propositions, aligned with `peers`.
    pub move_rels: Vec<RelId>,
    /// `move_ENV` proposition (present iff the composition is open).
    pub move_env_rel: Option<RelId>,
    /// Constants mentioned in rules (used for the verification domain).
    pub rule_constants: Vec<ddws_relational::Value>,
    /// Which channels' `received_q` flag is tracked in configurations.
    ///
    /// The flags are semantically always defined, but tracking one the
    /// property never reads doubles the state space per channel for
    /// nothing. Defaults to all-tracked; the verifier masks the set down to
    /// the channels its atoms actually observe
    /// ([`Composition::observe_flags`]).
    pub observed_received: Vec<bool>,
    /// Which channels' `sent_q` flag is tracked (see `observed_received`).
    pub observed_sent: Vec<bool>,
    /// Reverse index: relation → (channel, role), for the queue-backed
    /// relations; `None` for ordinary relations.
    pub rel_channel: Vec<Option<(ChannelId, ChannelRole)>>,
    /// Relations mentioned in any rule body (used to decide what can be
    /// frozen without affecting behaviour).
    pub rule_mentioned: std::collections::BTreeSet<RelId>,
    /// Relations whose updates are *frozen* (left empty) because neither a
    /// rule nor an observed property atom reads them: unread previous-input
    /// chains and unobserved action relations. Freezing is behaviour-
    /// preserving for everything that can still be evaluated, and collapses
    /// otherwise-distinct configurations.
    pub frozen: Vec<bool>,
}

impl Composition {
    /// Restricts flag tracking to the given relations: any `received_q` /
    /// `sent_q` relation in `observed` keeps its flag; all others are
    /// frozen to false (sound for any property that does not mention them).
    pub fn observe_flags(&mut self, observed: &std::collections::BTreeSet<RelId>) {
        for (i, ch) in self.channels.iter().enumerate() {
            self.observed_received[i] = observed.contains(&ch.received_rel);
            self.observed_sent[i] = observed.contains(&ch.sent_rel);
        }
    }

    /// Tracks every channel's flags (the faithful default).
    pub fn observe_all_flags(&mut self) {
        self.observed_received.iter_mut().for_each(|b| *b = true);
        self.observed_sent.iter_mut().for_each(|b| *b = true);
    }

    /// Freezes every relation that neither a rule nor `observed` reads:
    /// previous-input chains and action relations become inert (their
    /// updates are skipped, so configurations that differ only in them
    /// collapse). Call with the set of relations the property/protocol
    /// mentions; [`Composition::unfreeze_all`] restores full tracking.
    pub fn freeze_unobserved(&mut self, observed: &std::collections::BTreeSet<RelId>) {
        self.frozen = vec![false; self.voc.len()];
        for peer in &self.peers {
            for chain in &peer.prev {
                for &prev_rel in chain {
                    if !self.rule_mentioned.contains(&prev_rel) && !observed.contains(&prev_rel) {
                        self.frozen[prev_rel.index()] = true;
                    }
                }
            }
            for &action in &peer.actions {
                // Rules can never read actions (Definition 2.1), so only
                // the property matters.
                if !observed.contains(&action) {
                    self.frozen[action.index()] = true;
                }
            }
            for &state in &peer.states {
                // A state relation read by no rule and no property atom
                // influences nothing: its updates can be skipped.
                if !self.rule_mentioned.contains(&state) && !observed.contains(&state) {
                    self.frozen[state.index()] = true;
                }
            }
        }
    }

    /// Restores tracking of every relation.
    pub fn unfreeze_all(&mut self) {
        self.frozen = vec![false; self.voc.len()];
    }

    /// Whether the composition is closed: every channel connects two peers
    /// (Definition 2.5).
    pub fn is_closed(&self) -> bool {
        self.channels
            .iter()
            .all(|c| c.sender != Endpoint::Environment && c.receiver != Endpoint::Environment)
    }

    /// The peer with the given name.
    pub fn peer_by_name(&self, name: &str) -> Option<&Peer> {
        self.peers.iter().find(|p| p.name == name)
    }

    /// The channel with the given name.
    pub fn channel_by_name(&self, name: &str) -> Option<(ChannelId, &Channel)> {
        self.channels
            .iter()
            .enumerate()
            .find(|(_, c)| c.name == name)
            .map(|(i, c)| (ChannelId(i as u32), c))
    }

    /// All movers: every peer, plus the environment if the composition is
    /// open.
    pub fn movers(&self) -> Vec<Mover> {
        let mut m: Vec<Mover> = self.peers.iter().map(|p| Mover::Peer(p.id)).collect();
        if !self.is_closed() {
            m.push(Mover::Environment);
        }
        m
    }

    /// Channels the environment sends on (`E.Q_out`).
    pub fn env_out_channels(&self) -> Vec<ChannelId> {
        self.channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.sender == Endpoint::Environment)
            .map(|(i, _)| ChannelId(i as u32))
            .collect()
    }

    /// Channels the environment consumes from (`E.Q_in`).
    pub fn env_in_channels(&self) -> Vec<ChannelId> {
        self.channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.receiver == Endpoint::Environment)
            .map(|(i, _)| ChannelId(i as u32))
            .collect()
    }

    /// The schema class of a relation.
    pub fn class(&self, rel: RelId) -> RelClass {
        self.classes[rel.index()]
    }
}

impl Composition {
    /// Checks the peer-side input-boundedness conditions of §3.1:
    ///
    /// * state, action and *nested*-queue send rules are input-bounded
    ///   formulas;
    /// * input rules and *flat*-queue send rules are `∃*FO` with ground
    ///   state and nested-queue atoms.
    ///
    /// This is the precondition of the decidability theorems (3.4, 4.2,
    /// 4.5, 5.4); the verifier enforces it by default.
    pub fn check_input_bounded(
        &self,
        opts: ddws_logic::input_bounded::IbOptions,
    ) -> Result<(), Vec<ddws_logic::input_bounded::IbViolation>> {
        use ddws_logic::input_bounded::{check_exists_star_ground, check_input_bounded_fo};
        let mut violations = Vec::new();
        let mut note =
            |peer: &str, what: &str, r: Result<(), Vec<ddws_logic::input_bounded::IbViolation>>| {
                if let Err(vs) = r {
                    for v in vs {
                        violations.push(ddws_logic::input_bounded::IbViolation {
                            message: format!("peer `{peer}`, {what}: {}", v.message),
                        });
                    }
                }
            };
        for peer in &self.peers {
            for sr in &peer.state_rules {
                let name = self.voc.name(sr.rel);
                for body in [&sr.insert, &sr.delete].into_iter().flatten() {
                    note(
                        &peer.name,
                        &format!("state rule for `{name}`"),
                        check_input_bounded_fo(body, self, opts),
                    );
                }
            }
            for ar in &peer.action_rules {
                note(
                    &peer.name,
                    &format!("action rule for `{}`", self.voc.name(ar.rel)),
                    check_input_bounded_fo(&ar.body, self, opts),
                );
            }
            for (cid, rule) in &peer.send_rules {
                let ch = &self.channels[cid.index()];
                match ch.kind {
                    QueueKind::Nested => note(
                        &peer.name,
                        &format!("nested send rule for `{}`", ch.name),
                        check_input_bounded_fo(&rule.body, self, opts),
                    ),
                    QueueKind::Flat => note(
                        &peer.name,
                        &format!("flat send rule for `{}`", ch.name),
                        check_exists_star_ground(&rule.body, self),
                    ),
                }
            }
            for ir in &peer.input_rules {
                note(
                    &peer.name,
                    &format!("input rule for `{}`", self.voc.name(ir.rel)),
                    check_exists_star_ground(&ir.body, self),
                );
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

impl SchemaClassifier for Composition {
    fn class(&self, rel: RelId) -> RelClass {
        self.classes[rel.index()]
    }

    fn rel_name(&self, rel: RelId) -> String {
        self.voc.name(rel).to_owned()
    }
}

/// A peer-local name scope for parsing rule bodies: resolves `customer`,
/// `?apply`, `!getRating`, `prev_reccom`, `empty_apply`, `error_req`,
/// `msgempty_history` to the qualified relations of the composition schema.
pub struct PeerScope<'a> {
    /// The global vocabulary.
    pub voc: &'a Vocabulary,
    /// Local-name map for the peer under construction.
    pub local: &'a HashMap<String, RelId>,
}

impl RelLookup for PeerScope<'_> {
    fn lookup_rel(&self, name: &str) -> Option<RelId> {
        self.local.get(name).copied()
    }

    fn rel_arity(&self, rel: RelId) -> usize {
        self.voc.arity(rel)
    }
}
