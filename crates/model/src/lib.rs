//! # `ddws-model` — peers, compositions and runs
//!
//! The executable form of Section 2 of the paper: a **peer** (Definition
//! 2.1) is a tuple `⟨D, S, I, A, Q_in, Q_out, R⟩` of relational schemas plus
//! reaction rules; a **composition** (Definition 2.5) connects peers through
//! one-way FIFO channels; a **run** (Definition 2.6) is an infinite
//! serialized sequence of snapshots.
//!
//! This crate provides:
//!
//! * [`CompositionBuilder`] — declarative construction of peers, channels
//!   and rules (rule bodies in the text syntax of `ddws-logic`, resolved
//!   against each peer's local namespace: `customer`, `?apply`,
//!   `!getRating`, `prev_reccom`, `empty_apply`, …), with full validation of
//!   Definition 2.1's vocabulary restrictions;
//! * [`Composition`] — the compiled form, including the global qualified
//!   vocabulary (`O.customer`, `O.?apply`, `A.!apply`, `move_O`,
//!   `received_apply`, …) over which properties are written;
//! * [`Config`] — a configuration: dynamic relations plus queue contents;
//! * successor generation ([`Composition::successors`]) implementing
//!   Definition 2.4's snapshot semantics with every channel flavour the
//!   paper studies: flat/nested, lossy/perfect, k-bounded, deterministic
//!   send (Theorem 3.8), and environment moves for open compositions (§5);
//! * snapshot [`Structure`](ddws_logic::Structure) views for rule and
//!   property evaluation (in-queue atoms read `f(q)`, out-queue atoms read
//!   `l(q)`, exactly as in the paper's LTL-FO semantics).

#![warn(missing_docs)]
pub mod builder;
pub mod compact;
pub mod composition;
pub mod config;
pub mod independence;
pub mod plan;
pub mod step;
pub mod view;

pub use builder::{BuildError, CompositionBuilder, PeerBuilder};
pub use compact::{CompactConfig, CompactView, StatePool};
pub use composition::{
    Channel, ChannelId, ChannelRole, Composition, Endpoint, Mover, Peer, PeerId, QueueKind,
    Semantics,
};
pub use config::{Config, Message};
pub use independence::IndependenceOracle;
pub use plan::{CompiledRules, EvalCtx, RuleCache, RuleRef};
pub use view::{Database, ReadSlot, RuleView, SnapshotView};
