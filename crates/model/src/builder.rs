//! Declarative construction and validation of compositions.
//!
//! ```
//! use ddws_model::{CompositionBuilder, QueueKind, Semantics};
//!
//! let mut b = CompositionBuilder::new();
//! b.channel("ping", 1, QueueKind::Flat, "Alice", "Bob");
//! b.channel("pong", 1, QueueKind::Flat, "Bob", "Alice");
//!
//! b.peer("Alice")
//!     .database("friend", 1)
//!     .input("greet", 1)
//!     .input_rule("greet", &["x"], "friend(x)")
//!     .send_rule("ping", &["x"], "greet(x)");
//!
//! b.peer("Bob")
//!     .state("seen", 1)
//!     .state_insert_rule("seen", &["x"], "?ping(x)")
//!     .send_rule("pong", &["x"], "?ping(x)");
//!
//! let comp = b.build().expect("valid composition");
//! assert!(comp.is_closed());
//! ```

use crate::composition::{
    Channel, ChannelId, ChannelRole, Composition, Endpoint, HeadRule, Peer, PeerId, PeerScope,
    QueueKind, Semantics, StateRule,
};
use ddws_logic::input_bounded::RelClass;
use ddws_logic::parser::{parse_fo, Resolver};
use ddws_logic::{Fo, Term, VarId, Vars};
use ddws_relational::{RelId, Symbols, Value, Vocabulary};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// The reserved endpoint name for the environment of an open composition.
pub const ENV: &str = "ENV";

/// A specification error detected while building a composition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildError(pub String);

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "composition error: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

fn err<T>(msg: impl Into<String>) -> Result<T, BuildError> {
    Err(BuildError(msg.into()))
}

#[derive(Clone, Debug)]
struct RuleDraft {
    /// Head relation local name (input/state/action) or channel name (send).
    target: String,
    head: Vec<String>,
    body: String,
}

#[derive(Clone, Debug, Default)]
struct PeerDraft {
    name: String,
    database: Vec<(String, usize)>,
    states: Vec<(String, usize)>,
    inputs: Vec<(String, usize)>,
    actions: Vec<(String, usize)>,
    input_rules: Vec<RuleDraft>,
    state_inserts: Vec<RuleDraft>,
    state_deletes: Vec<RuleDraft>,
    action_rules: Vec<RuleDraft>,
    send_rules: Vec<RuleDraft>,
}

#[derive(Clone, Debug)]
struct ChannelDraft {
    name: String,
    arity: usize,
    kind: QueueKind,
    sender: String,
    receiver: String,
    lossy: Option<bool>,
}

/// Builder for a [`Composition`]. Declare channels and peers in any order;
/// [`build`](CompositionBuilder::build) compiles and validates everything.
#[derive(Debug, Default)]
pub struct CompositionBuilder {
    peers: Vec<PeerDraft>,
    channels: Vec<ChannelDraft>,
    semantics: Semantics,
    default_lossy: bool,
}

/// Mutable handle onto one peer's draft; all methods chain.
pub struct PeerBuilder<'a> {
    builder: &'a mut CompositionBuilder,
    idx: usize,
}

impl CompositionBuilder {
    /// New builder with default semantics (1-bounded lossy queues).
    pub fn new() -> Self {
        CompositionBuilder {
            peers: Vec::new(),
            channels: Vec::new(),
            semantics: Semantics::default(),
            default_lossy: true,
        }
    }

    /// Overrides the run semantics.
    pub fn semantics(&mut self, s: Semantics) -> &mut Self {
        self.semantics = s;
        self
    }

    /// Sets the default channel lossiness (lossy by default, matching the
    /// decidable regime of Theorem 3.4).
    pub fn default_lossy(&mut self, lossy: bool) -> &mut Self {
        self.default_lossy = lossy;
        self
    }

    /// Opens (or reopens) a peer for declarations.
    pub fn peer(&mut self, name: &str) -> PeerBuilder<'_> {
        let idx = match self.peers.iter().position(|p| p.name == name) {
            Some(i) => i,
            None => {
                self.peers.push(PeerDraft {
                    name: name.to_owned(),
                    ..PeerDraft::default()
                });
                self.peers.len() - 1
            }
        };
        PeerBuilder { builder: self, idx }
    }

    /// Declares a channel. `sender`/`receiver` are peer names or [`ENV`].
    pub fn channel(
        &mut self,
        name: &str,
        arity: usize,
        kind: QueueKind,
        sender: &str,
        receiver: &str,
    ) -> &mut Self {
        self.channels.push(ChannelDraft {
            name: name.to_owned(),
            arity,
            kind,
            sender: sender.to_owned(),
            receiver: receiver.to_owned(),
            lossy: None,
        });
        self
    }

    /// Overrides lossiness for one channel (e.g. perfect nested channels,
    /// see the remark after Theorem 3.4).
    pub fn channel_lossy(&mut self, name: &str, lossy: bool) -> &mut Self {
        if let Some(c) = self.channels.iter_mut().find(|c| c.name == name) {
            c.lossy = Some(lossy);
        }
        self
    }

    /// Compiles and validates the composition.
    pub fn build(&self) -> Result<Composition, BuildError> {
        Builder::new(self)?.run()
    }
}

impl PeerBuilder<'_> {
    fn draft(&mut self) -> &mut PeerDraft {
        &mut self.builder.peers[self.idx]
    }

    /// Declares a database relation.
    pub fn database(&mut self, name: &str, arity: usize) -> &mut Self {
        self.draft().database.push((name.to_owned(), arity));
        self
    }

    /// Declares a state relation.
    pub fn state(&mut self, name: &str, arity: usize) -> &mut Self {
        self.draft().states.push((name.to_owned(), arity));
        self
    }

    /// Declares an input relation.
    pub fn input(&mut self, name: &str, arity: usize) -> &mut Self {
        self.draft().inputs.push((name.to_owned(), arity));
        self
    }

    /// Declares an action relation.
    pub fn action(&mut self, name: &str, arity: usize) -> &mut Self {
        self.draft().actions.push((name.to_owned(), arity));
        self
    }

    /// Input rule `Options_I(x̄) ← body`.
    pub fn input_rule(&mut self, input: &str, head: &[&str], body: &str) -> &mut Self {
        self.draft().input_rules.push(RuleDraft {
            target: input.to_owned(),
            head: head.iter().map(|s| (*s).to_owned()).collect(),
            body: body.to_owned(),
        });
        self
    }

    /// State insertion rule `S(x̄) ← body`.
    pub fn state_insert_rule(&mut self, state: &str, head: &[&str], body: &str) -> &mut Self {
        self.draft().state_inserts.push(RuleDraft {
            target: state.to_owned(),
            head: head.iter().map(|s| (*s).to_owned()).collect(),
            body: body.to_owned(),
        });
        self
    }

    /// State deletion rule `¬S(x̄) ← body`.
    pub fn state_delete_rule(&mut self, state: &str, head: &[&str], body: &str) -> &mut Self {
        self.draft().state_deletes.push(RuleDraft {
            target: state.to_owned(),
            head: head.iter().map(|s| (*s).to_owned()).collect(),
            body: body.to_owned(),
        });
        self
    }

    /// Action rule `A(x̄) ← body`.
    pub fn action_rule(&mut self, action: &str, head: &[&str], body: &str) -> &mut Self {
        self.draft().action_rules.push(RuleDraft {
            target: action.to_owned(),
            head: head.iter().map(|s| (*s).to_owned()).collect(),
            body: body.to_owned(),
        });
        self
    }

    /// Send rule `!q(x̄) ← body` for an out-channel of this peer.
    pub fn send_rule(&mut self, channel: &str, head: &[&str], body: &str) -> &mut Self {
        self.draft().send_rules.push(RuleDraft {
            target: channel.to_owned(),
            head: head.iter().map(|s| (*s).to_owned()).collect(),
            body: body.to_owned(),
        });
        self
    }
}

/// One-shot compiler from drafts to the validated [`Composition`].
struct Builder<'a> {
    spec: &'a CompositionBuilder,
    symbols: Symbols,
    vars: Vars,
    voc: Vocabulary,
    classes: Vec<RelClass>,
}

impl<'a> Builder<'a> {
    fn new(spec: &'a CompositionBuilder) -> Result<Self, BuildError> {
        Ok(Builder {
            spec,
            symbols: Symbols::new(),
            vars: Vars::new(),
            voc: Vocabulary::new(),
            classes: Vec::new(),
        })
    }

    fn declare(&mut self, name: &str, arity: usize, class: RelClass) -> Result<RelId, BuildError> {
        let id = self
            .voc
            .declare(name, arity)
            .map_err(|e| BuildError(e.to_string()))?;
        self.classes.push(class);
        debug_assert_eq!(self.classes.len(), self.voc.len());
        Ok(id)
    }

    fn run(mut self) -> Result<Composition, BuildError> {
        let spec = self.spec;
        // --- validate structural well-formedness -------------------------
        let mut peer_names = BTreeSet::new();
        for p in &spec.peers {
            if p.name == ENV {
                return err("`ENV` is reserved for the environment endpoint");
            }
            if !peer_names.insert(p.name.clone()) {
                return err(format!("peer `{}` declared twice", p.name));
            }
        }
        let mut channel_names = BTreeSet::new();
        for c in &spec.channels {
            if !channel_names.insert(c.name.clone()) {
                return err(format!("channel `{}` declared twice", c.name));
            }
            for end in [&c.sender, &c.receiver] {
                if end != ENV && !peer_names.contains(end) {
                    return err(format!(
                        "channel `{}` references unknown peer `{end}`",
                        c.name
                    ));
                }
            }
            if c.sender == ENV && c.receiver == ENV {
                return err(format!("channel `{}` connects ENV to ENV", c.name));
            }
        }

        let endpoint = |name: &str| -> Endpoint {
            if name == ENV {
                Endpoint::Environment
            } else {
                Endpoint::Peer(PeerId(
                    spec.peers
                        .iter()
                        .position(|p| p.name == name)
                        .expect("validated") as u32,
                ))
            }
        };

        // --- declare the global vocabulary -------------------------------
        // Per-peer local scopes are built alongside.
        let mut locals: Vec<HashMap<String, RelId>> = vec![HashMap::new(); spec.peers.len()];
        let mut peer_db: Vec<Vec<RelId>> = vec![Vec::new(); spec.peers.len()];
        let mut peer_states: Vec<Vec<RelId>> = vec![Vec::new(); spec.peers.len()];
        let mut peer_inputs: Vec<Vec<RelId>> = vec![Vec::new(); spec.peers.len()];
        let mut peer_prev: Vec<Vec<Vec<RelId>>> = vec![Vec::new(); spec.peers.len()];
        let mut peer_actions: Vec<Vec<RelId>> = vec![Vec::new(); spec.peers.len()];

        for (pi, p) in spec.peers.iter().enumerate() {
            let local_declare = |b: &mut Self,
                                 local: &mut HashMap<String, RelId>,
                                 local_name: String,
                                 arity: usize,
                                 class: RelClass|
             -> Result<RelId, BuildError> {
                let qualified = format!("{}.{}", p.name, local_name);
                let id = b.declare(&qualified, arity, class)?;
                if local.insert(local_name.clone(), id).is_some() {
                    return err(format!(
                        "peer `{}`: relation `{}` declared twice",
                        p.name, local_name
                    ));
                }
                Ok(id)
            };
            let local = &mut locals[pi];
            for (n, a) in &p.database {
                let id = local_declare(&mut self, local, n.clone(), *a, RelClass::Database)?;
                peer_db[pi].push(id);
            }
            for (n, a) in &p.states {
                let id = local_declare(&mut self, local, n.clone(), *a, RelClass::State)?;
                peer_states[pi].push(id);
            }
            for (n, a) in &p.inputs {
                let id = local_declare(&mut self, local, n.clone(), *a, RelClass::Input)?;
                peer_inputs[pi].push(id);
                let mut chain = Vec::new();
                for j in 1..=spec.semantics.lookback.max(1) {
                    let prev_name = if j == 1 {
                        format!("prev_{n}")
                    } else {
                        format!("prev{j}_{n}")
                    };
                    let id = local_declare(&mut self, local, prev_name, *a, RelClass::PrevInput)?;
                    chain.push(id);
                }
                peer_prev[pi].push(chain);
            }
            for (n, a) in &p.actions {
                let id = local_declare(&mut self, local, n.clone(), *a, RelClass::Action)?;
                peer_actions[pi].push(id);
            }
        }

        // Channels.
        let mut channels: Vec<Channel> = Vec::new();
        for c in &spec.channels {
            let sender = endpoint(&c.sender);
            let receiver = endpoint(&c.receiver);
            let in_class = match c.kind {
                QueueKind::Flat => RelClass::InFlat,
                QueueKind::Nested => RelClass::InNested,
            };
            let out_class = match c.kind {
                QueueKind::Flat => RelClass::OutFlat,
                QueueKind::Nested => RelClass::OutNested,
            };
            let out_rel = self.declare(&format!("{}.!{}", c.sender, c.name), c.arity, out_class)?;
            let in_rel = self.declare(&format!("{}.?{}", c.receiver, c.name), c.arity, in_class)?;
            let empty_rel = if receiver != Endpoint::Environment {
                Some(self.declare(
                    &format!("{}.empty_{}", c.receiver, c.name),
                    0,
                    RelClass::QueueState,
                )?)
            } else {
                None
            };
            let received_rel =
                self.declare(&format!("received_{}", c.name), 0, RelClass::Bookkeeping)?;
            let sent_rel = self.declare(&format!("sent_{}", c.name), 0, RelClass::Bookkeeping)?;
            let error_rel = if c.kind == QueueKind::Flat && sender != Endpoint::Environment {
                Some(self.declare(
                    &format!("{}.error_{}", c.sender, c.name),
                    0,
                    RelClass::State,
                )?)
            } else {
                None
            };
            let msg_empty_rel = if c.kind == QueueKind::Nested && receiver != Endpoint::Environment
            {
                Some(self.declare(
                    &format!("{}.msgempty_{}", c.receiver, c.name),
                    0,
                    RelClass::MsgEmptinessTest,
                )?)
            } else {
                None
            };

            // Local scope entries.
            if let Endpoint::Peer(pid) = receiver {
                let local = &mut locals[pid.index()];
                local.insert(format!("?{}", c.name), in_rel);
                if let Some(e) = empty_rel {
                    local.insert(format!("empty_{}", c.name), e);
                }
                if let Some(m) = msg_empty_rel {
                    local.insert(format!("msgempty_{}", c.name), m);
                }
            }
            if let Endpoint::Peer(pid) = sender {
                let local = &mut locals[pid.index()];
                local.insert(format!("!{}", c.name), out_rel);
                if let Some(e) = error_rel {
                    local.insert(format!("error_{}", c.name), e);
                }
            }

            channels.push(Channel {
                name: c.name.clone(),
                arity: c.arity,
                kind: c.kind,
                sender,
                receiver,
                lossy: c.lossy.unwrap_or(spec.default_lossy),
                in_rel: Some(in_rel),
                out_rel,
                empty_rel,
                received_rel,
                sent_rel,
                error_rel,
                msg_empty_rel,
            });
        }

        // Move propositions.
        let mut move_rels = Vec::new();
        for p in &spec.peers {
            move_rels.push(self.declare(&format!("move_{}", p.name), 0, RelClass::Bookkeeping)?);
        }
        let open = channels
            .iter()
            .any(|c| c.sender == Endpoint::Environment || c.receiver == Endpoint::Environment);
        let move_env_rel = if open {
            Some(self.declare("move_ENV", 0, RelClass::Bookkeeping)?)
        } else {
            None
        };

        // --- compile rules ------------------------------------------------
        let mut peers: Vec<Peer> = Vec::new();
        let mut rule_constants: BTreeSet<Value> = BTreeSet::new();
        let mut all_mentioned: BTreeSet<RelId> = BTreeSet::new();
        for (pi, p) in spec.peers.iter().enumerate() {
            let pid = PeerId(pi as u32);
            let in_channels: Vec<ChannelId> = channels
                .iter()
                .enumerate()
                .filter(|(_, c)| c.receiver == Endpoint::Peer(pid))
                .map(|(i, _)| ChannelId(i as u32))
                .collect();
            let out_channels: Vec<ChannelId> = channels
                .iter()
                .enumerate()
                .filter(|(_, c)| c.sender == Endpoint::Peer(pid))
                .map(|(i, _)| ChannelId(i as u32))
                .collect();

            let compiled = {
                let ctx = RuleCtx {
                    builder: &mut self,
                    peer: p,
                    local: &locals[pi],
                    channels: &channels,
                    constants: &mut rule_constants,
                    mentioned: BTreeSet::new(),
                };
                ctx.compile(&out_channels)?
            };

            // Dequeued in-channels: those whose `?q` atom occurs in a rule.
            let mentioned: BTreeSet<RelId> = compiled.mentioned_rels.clone();
            all_mentioned.extend(compiled.mentioned_rels.iter().copied());
            let dequeues: Vec<ChannelId> = in_channels
                .iter()
                .copied()
                .filter(|cid| {
                    channels[cid.index()]
                        .in_rel
                        .is_some_and(|r| mentioned.contains(&r))
                })
                .collect();

            peers.push(Peer {
                name: p.name.clone(),
                id: pid,
                database: peer_db[pi].clone(),
                states: peer_states[pi].clone(),
                inputs: peer_inputs[pi].clone(),
                prev: peer_prev[pi].clone(),
                actions: peer_actions[pi].clone(),
                in_channels,
                out_channels,
                dequeues,
                input_rules: compiled.input_rules,
                state_rules: compiled.state_rules,
                action_rules: compiled.action_rules,
                send_rules: compiled.send_rules,
            });
        }

        let num_channels = channels.len();
        let num_rels = self.voc.len();
        let mut rel_channel: Vec<Option<(ChannelId, ChannelRole)>> = vec![None; num_rels];
        for (i, ch) in channels.iter().enumerate() {
            let cid = ChannelId(i as u32);
            let mut set = |rel: Option<RelId>, role: ChannelRole| {
                if let Some(r) = rel {
                    rel_channel[r.index()] = Some((cid, role));
                }
            };
            set(ch.in_rel, ChannelRole::In);
            set(Some(ch.out_rel), ChannelRole::Out);
            set(ch.empty_rel, ChannelRole::Empty);
            set(Some(ch.received_rel), ChannelRole::Received);
            set(Some(ch.sent_rel), ChannelRole::Sent);
            set(ch.error_rel, ChannelRole::Error);
            set(ch.msg_empty_rel, ChannelRole::MsgEmpty);
        }
        Ok(Composition {
            symbols: self.symbols,
            vars: self.vars,
            voc: self.voc,
            peers,
            channels,
            classes: self.classes,
            semantics: spec.semantics,
            move_rels,
            move_env_rel,
            rule_constants: rule_constants.into_iter().collect(),
            observed_received: vec![true; num_channels],
            observed_sent: vec![true; num_channels],
            rule_mentioned: all_mentioned,
            frozen: vec![false; num_rels],
            rel_channel,
        })
    }
}

#[derive(Default)]
struct CompiledPeerRules {
    input_rules: Vec<HeadRule>,
    state_rules: Vec<StateRule>,
    action_rules: Vec<HeadRule>,
    send_rules: Vec<(ChannelId, HeadRule)>,
    mentioned_rels: BTreeSet<RelId>,
}

/// Which relation classes a rule body may mention (Definition 2.1).
#[derive(Clone, Copy, PartialEq, Eq)]
enum RuleKind {
    Input,
    StateActionSend,
}

struct RuleCtx<'a, 'b> {
    builder: &'b mut Builder<'a>,
    peer: &'b PeerDraft,
    local: &'b HashMap<String, RelId>,
    channels: &'b [Channel],
    constants: &'b mut BTreeSet<Value>,
    mentioned: BTreeSet<RelId>,
}

impl RuleCtx<'_, '_> {
    fn compile(mut self, out_channels: &[ChannelId]) -> Result<CompiledPeerRules, BuildError> {
        let mut out = CompiledPeerRules::default();
        let p = self.peer;

        // Input rules: exactly one per declared input (propositional inputs
        // default to `true`).
        for (name, arity) in &p.inputs {
            let drafts: Vec<&RuleDraft> =
                p.input_rules.iter().filter(|r| &r.target == name).collect();
            let rel = self.local[name];
            let rule = match drafts.len() {
                0 if *arity == 0 => HeadRule {
                    rel,
                    head: vec![],
                    body: Fo::True,
                },
                0 => {
                    return err(format!(
                        "peer `{}`: input `{name}` has no input rule (required for arity > 0)",
                        p.name
                    ))
                }
                1 => self.head_rule(rel, drafts[0], RuleKind::Input)?,
                _ => {
                    return err(format!(
                        "peer `{}`: input `{name}` has multiple input rules",
                        p.name
                    ))
                }
            };
            out.input_rules.push(rule);
        }
        for r in &p.input_rules {
            if !p.inputs.iter().any(|(n, _)| n == &r.target) {
                return err(format!(
                    "peer `{}`: input rule targets unknown input `{}`",
                    p.name, r.target
                ));
            }
        }

        // State rules: at most one insert and one delete per state.
        for (name, _) in &p.states {
            let rel = self.local[name];
            let inserts: Vec<&RuleDraft> = p
                .state_inserts
                .iter()
                .filter(|r| &r.target == name)
                .collect();
            let deletes: Vec<&RuleDraft> = p
                .state_deletes
                .iter()
                .filter(|r| &r.target == name)
                .collect();
            if inserts.len() > 1 || deletes.len() > 1 {
                return err(format!(
                    "peer `{}`: state `{name}` has duplicate insertion/deletion rules",
                    p.name
                ));
            }
            if inserts.is_empty() && deletes.is_empty() {
                continue;
            }
            // Both rules must agree on head variables; compile each and
            // check.
            let mut head: Option<Vec<VarId>> = None;
            let mut insert = None;
            let mut delete = None;
            if let Some(d) = inserts.first() {
                let r = self.head_rule(rel, d, RuleKind::StateActionSend)?;
                head = Some(r.head);
                insert = Some(r.body);
            }
            if let Some(d) = deletes.first() {
                let r = self.head_rule(rel, d, RuleKind::StateActionSend)?;
                match &head {
                    None => head = Some(r.head),
                    Some(h) if *h != r.head => {
                        return err(format!(
                            "peer `{}`: state `{name}` insertion and deletion rules must use \
                             the same head variables",
                            p.name
                        ))
                    }
                    Some(_) => {}
                }
                delete = Some(r.body);
            }
            out.state_rules.push(StateRule {
                rel,
                head: head.expect("at least one rule present"),
                insert,
                delete,
            });
        }
        for r in p.state_inserts.iter().chain(&p.state_deletes) {
            if !p.states.iter().any(|(n, _)| n == &r.target) {
                return err(format!(
                    "peer `{}`: state rule targets unknown state `{}`",
                    p.name, r.target
                ));
            }
        }

        // Action rules: at most one per action; none means "never".
        for (name, _) in &p.actions {
            let rel = self.local[name];
            let drafts: Vec<&RuleDraft> = p
                .action_rules
                .iter()
                .filter(|r| &r.target == name)
                .collect();
            match drafts.len() {
                0 => {}
                1 => out.action_rules.push(self.head_rule(
                    rel,
                    drafts[0],
                    RuleKind::StateActionSend,
                )?),
                _ => {
                    return err(format!(
                        "peer `{}`: action `{name}` has multiple rules",
                        p.name
                    ))
                }
            }
        }
        for r in &p.action_rules {
            if !p.actions.iter().any(|(n, _)| n == &r.target) {
                return err(format!(
                    "peer `{}`: action rule targets unknown action `{}`",
                    p.name, r.target
                ));
            }
        }

        // Send rules: exactly one per out-channel (Definition 2.1).
        for &cid in out_channels {
            let ch = &self.channels[cid.index()];
            let drafts: Vec<&RuleDraft> = p
                .send_rules
                .iter()
                .filter(|r| r.target == ch.name)
                .collect();
            match drafts.len() {
                0 => {
                    return err(format!(
                        "peer `{}`: out-channel `{}` has no send rule",
                        p.name, ch.name
                    ))
                }
                1 => {
                    let rel = ch.out_rel;
                    let rule = self.head_rule(rel, drafts[0], RuleKind::StateActionSend)?;
                    out.send_rules.push((cid, rule));
                }
                _ => {
                    return err(format!(
                        "peer `{}`: out-channel `{}` has multiple send rules",
                        p.name, ch.name
                    ))
                }
            }
        }
        for r in &p.send_rules {
            let known = out_channels
                .iter()
                .any(|&cid| self.channels[cid.index()].name == r.target);
            if !known {
                return err(format!(
                    "peer `{}`: send rule targets `{}`, which is not an out-channel of this peer",
                    p.name, r.target
                ));
            }
        }

        out.mentioned_rels = self.mentioned;
        Ok(out)
    }

    /// Parses one rule, interning head variables and validating the body
    /// vocabulary against Definition 2.1.
    fn head_rule(
        &mut self,
        rel: RelId,
        draft: &RuleDraft,
        kind: RuleKind,
    ) -> Result<HeadRule, BuildError> {
        let peer_name = &self.peer.name;
        let arity = self.builder.voc.arity(rel);
        if draft.head.len() != arity {
            return err(format!(
                "peer `{peer_name}`: rule for `{}` has {} head variables, relation arity is \
                 {arity}",
                draft.target,
                draft.head.len()
            ));
        }
        let mut head: Vec<VarId> = Vec::with_capacity(draft.head.len());
        for h in &draft.head {
            let v = self.builder.vars.intern(h);
            if head.contains(&v) {
                return err(format!(
                    "peer `{peer_name}`: rule for `{}` repeats head variable `{h}` \
                     (Definition 2.1 requires distinct variables)",
                    draft.target
                ));
            }
            head.push(v);
        }
        let scope = PeerScope {
            voc: &self.builder.voc,
            local: self.local,
        };
        let body = {
            let mut resolver = Resolver {
                voc: &scope,
                vars: &mut self.builder.vars,
                symbols: &mut self.builder.symbols,
            };
            parse_fo(&draft.body, &mut resolver).map_err(|e| {
                BuildError(format!(
                    "peer `{peer_name}`: rule for `{}`: {e}",
                    draft.target
                ))
            })?
        };
        // Free variables must be among the head variables.
        for v in body.free_vars() {
            if !head.contains(&v) {
                return err(format!(
                    "peer `{peer_name}`: rule for `{}` has free body variable `{}` not in \
                     the head",
                    draft.target,
                    self.builder.vars.name(v)
                ));
            }
        }
        // Vocabulary restrictions (Definition 2.1).
        let mut violation: Option<String> = None;
        let mut mentioned_here: BTreeSet<RelId> = BTreeSet::new();
        body.visit_atoms(&mut |r, _| {
            if violation.is_some() {
                return;
            }
            mentioned_here.insert(r);
            let class = self.builder.classes[r.index()];
            let allowed = match class {
                RelClass::Database
                | RelClass::State
                | RelClass::QueueState
                | RelClass::PrevInput
                | RelClass::InFlat
                | RelClass::InNested
                | RelClass::MsgEmptinessTest => true,
                RelClass::Input => kind == RuleKind::StateActionSend,
                RelClass::Action
                | RelClass::OutFlat
                | RelClass::OutNested
                | RelClass::Bookkeeping => false,
            };
            if !allowed {
                violation = Some(format!(
                    "peer `{peer_name}`: rule for `{}` mentions `{}` ({:?}), which its \
                     vocabulary does not allow (Definition 2.1)",
                    draft.target,
                    self.builder.voc.name(r),
                    class
                ));
            }
        });
        if let Some(v) = violation {
            return err(v);
        }
        self.mentioned.extend(mentioned_here);
        // Collect constants for the verification domain.
        collect_constants(&body, self.constants);
        Ok(HeadRule { rel, head, body })
    }
}

/// Gathers every constant occurring in a formula.
pub fn collect_constants(fo: &Fo, out: &mut BTreeSet<Value>) {
    fo.visit_atoms(&mut |_, args| {
        for t in args {
            if let Term::Const(c) = t {
                out.insert(*c);
            }
        }
    });
    // Equality terms are not atoms; walk them explicitly.
    fn walk(fo: &Fo, out: &mut BTreeSet<Value>) {
        match fo {
            Fo::Eq(a, b) => {
                for t in [a, b] {
                    if let Term::Const(c) = t {
                        out.insert(*c);
                    }
                }
            }
            Fo::Not(f) | Fo::Exists(_, f) | Fo::Forall(_, f) => walk(f, out),
            Fo::And(fs) | Fo::Or(fs) => fs.iter().for_each(|f| walk(f, out)),
            Fo::Implies(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            _ => {}
        }
    }
    walk(fo, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ping_pong() -> CompositionBuilder {
        let mut b = CompositionBuilder::new();
        b.channel("ping", 1, QueueKind::Flat, "Alice", "Bob");
        b.channel("pong", 1, QueueKind::Flat, "Bob", "Alice");
        b.peer("Alice")
            .database("friend", 1)
            .input("greet", 1)
            .input_rule("greet", &["x"], "friend(x)")
            .send_rule("ping", &["x"], "greet(x)");
        b.peer("Bob")
            .state("seen", 1)
            .state_insert_rule("seen", &["x"], "?ping(x)")
            .send_rule("pong", &["x"], "?ping(x)");
        b
    }

    #[test]
    fn ping_pong_builds() {
        let comp = ping_pong().build().unwrap();
        assert!(comp.is_closed());
        assert_eq!(comp.peers.len(), 2);
        assert_eq!(comp.channels.len(), 2);
        // Qualified names exist.
        for name in [
            "Alice.friend",
            "Alice.greet",
            "Alice.prev_greet",
            "Alice.!ping",
            "Bob.?ping",
            "Bob.empty_ping",
            "Bob.seen",
            "received_ping",
            "sent_pong",
            "move_Alice",
        ] {
            assert!(comp.voc.lookup(name).is_some(), "missing {name}");
        }
        // Bob dequeues ping (mentioned), Alice dequeues pong? pong is not
        // mentioned in any Alice rule, so it is not dequeued.
        let bob = comp.peer_by_name("Bob").unwrap();
        assert_eq!(bob.dequeues.len(), 1);
        let alice = comp.peer_by_name("Alice").unwrap();
        assert!(alice.dequeues.is_empty());
    }

    #[test]
    fn open_composition_detected() {
        let mut b = CompositionBuilder::new();
        b.channel("req", 1, QueueKind::Flat, "P", ENV);
        b.channel("resp", 1, QueueKind::Flat, ENV, "P");
        b.peer("P")
            .state("got", 1)
            .state_insert_rule("got", &["x"], "?resp(x)")
            .send_rule("req", &["x"], "?resp(x)");
        let comp = b.build().unwrap();
        assert!(!comp.is_closed());
        assert!(comp.move_env_rel.is_some());
        assert_eq!(comp.env_out_channels().len(), 1);
        assert_eq!(comp.env_in_channels().len(), 1);
        assert!(comp.voc.lookup("ENV.!resp").is_some());
        assert!(comp.voc.lookup("ENV.?req").is_some());
    }

    #[test]
    fn missing_send_rule_rejected() {
        let mut b = ping_pong();
        b.channel("extra", 1, QueueKind::Flat, "Alice", "Bob");
        let e = b.build().unwrap_err();
        assert!(e.0.contains("no send rule"), "{e}");
    }

    #[test]
    fn missing_input_rule_rejected() {
        let mut b = ping_pong();
        b.peer("Alice").input("other", 2);
        let e = b.build().unwrap_err();
        assert!(e.0.contains("no input rule"), "{e}");
    }

    #[test]
    fn rule_vocabulary_enforced() {
        // Input rules may not read the current input.
        let mut b = CompositionBuilder::new();
        b.channel("q", 1, QueueKind::Flat, "P", "R");
        b.peer("P")
            .input("choice", 1)
            .input_rule("choice", &["x"], "choice(x)")
            .send_rule("q", &["x"], "choice(x)");
        b.peer("R");
        let e = b.build().unwrap_err();
        assert!(e.0.contains("Definition 2.1"), "{e}");

        // Rule bodies may not read out-queues.
        let mut b = CompositionBuilder::new();
        b.channel("q", 1, QueueKind::Flat, "P", "R");
        b.peer("P")
            .state("s", 1)
            .state_insert_rule("s", &["x"], "!q(x)")
            .send_rule("q", &["x"], "s(x)");
        b.peer("R");
        let e = b.build().unwrap_err();
        assert!(e.0.contains("Definition 2.1"), "{e}");
    }

    #[test]
    fn free_variable_outside_head_rejected() {
        let mut b = CompositionBuilder::new();
        b.channel("q", 2, QueueKind::Flat, "P", "R");
        b.peer("P")
            .database("d", 2)
            .send_rule("q", &["x", "y"], "d(x, z)");
        b.peer("R");
        let e = b.build().unwrap_err();
        assert!(e.0.contains("free body variable"), "{e}");
    }

    #[test]
    fn duplicate_head_variable_rejected() {
        let mut b = CompositionBuilder::new();
        b.channel("q", 2, QueueKind::Flat, "P", "R");
        b.peer("P")
            .database("d", 2)
            .send_rule("q", &["x", "x"], "d(x, x)");
        b.peer("R");
        let e = b.build().unwrap_err();
        assert!(e.0.contains("distinct"), "{e}");
    }

    #[test]
    fn unknown_channel_endpoint_rejected() {
        let mut b = CompositionBuilder::new();
        b.channel("q", 1, QueueKind::Flat, "Nobody", "AlsoNobody");
        let e = b.build().unwrap_err();
        assert!(e.0.contains("unknown peer"), "{e}");
    }

    #[test]
    fn lookback_declares_prev_chain() {
        let mut b = ping_pong();
        b.semantics(Semantics {
            lookback: 3,
            ..Semantics::default()
        });
        let comp = b.build().unwrap();
        for name in ["Alice.prev_greet", "Alice.prev2_greet", "Alice.prev3_greet"] {
            assert!(comp.voc.lookup(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn constants_are_collected() {
        let mut b = CompositionBuilder::new();
        b.channel("q", 1, QueueKind::Flat, "P", "R");
        b.peer("P")
            .database("d", 1)
            .send_rule("q", &["x"], "d(x) and x = \"magic\"");
        b.peer("R");
        let comp = b.build().unwrap();
        assert_eq!(comp.rule_constants.len(), 1);
        assert_eq!(comp.symbols.name(comp.rule_constants[0]), "magic");
    }
}
