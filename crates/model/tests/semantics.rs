//! Focused semantics tests: k-lookback previous inputs, FIFO delivery
//! order, and per-channel lossiness overrides.

use ddws_model::{Composition, CompositionBuilder, Config, Mover, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple, Value};

fn sender(lookback: usize, queue_bound: usize, default_lossy: bool) -> Composition {
    let mut b = CompositionBuilder::new();
    b.semantics(Semantics {
        lookback,
        queue_bound,
        ..Semantics::default()
    });
    b.default_lossy(default_lossy);
    b.channel("out", 1, QueueKind::Flat, "A", "B");
    b.peer("A")
        .database("d", 1)
        .input("pick", 1)
        .input_rule("pick", &["x"], "d(x)")
        .send_rule("out", &["x"], "pick(x)");
    b.peer("B")
        .state("seen", 1)
        .state_insert_rule("seen", &["x"], "?out(x)");
    b.build().unwrap()
}

fn two_value_db(comp: &mut Composition) -> (Instance, Vec<Value>) {
    let mut db = Instance::empty(&comp.voc);
    let d = comp.voc.lookup("A.d").unwrap();
    let v0 = comp.symbols.intern("v0");
    let v1 = comp.symbols.intern("v1");
    db.relation_mut(d).insert(Tuple::new(vec![v0]));
    db.relation_mut(d).insert(Tuple::new(vec![v1]));
    (db, vec![v0, v1])
}

/// Finds a successor where `rel` holds exactly the given singleton.
fn pick_successor(
    comp: &Composition,
    db: &Instance,
    dom: &[Value],
    from: &Config,
    mover: Mover,
    rel: &str,
    value: Value,
) -> Config {
    let id = comp.voc.lookup(rel).unwrap();
    comp.successors(db, dom, from, mover)
        .into_iter()
        .find(|c| {
            let r = c.rel.relation(id);
            r.len() == 1 && r.contains(&Tuple::new(vec![value]))
        })
        .unwrap_or_else(|| panic!("no successor with {rel} = {{{value:?}}}"))
}

#[test]
fn lookback_two_keeps_a_history_of_inputs() {
    let mut comp = sender(2, 1, false);
    let (db, dom) = two_value_db(&mut comp);
    let a = comp.peer_by_name("A").unwrap().id;
    let pick = comp.voc.lookup("A.pick").unwrap();
    let prev1 = comp.voc.lookup("A.prev_pick").unwrap();
    let prev2 = comp.voc.lookup("A.prev2_pick").unwrap();

    // Initial config with pick = v0.
    let init = comp
        .initial_configs(&db, &dom)
        .into_iter()
        .find(|c| c.rel.relation(pick).contains(&Tuple::new(vec![dom[0]])))
        .unwrap();
    // A moves (consuming pick=v0), new pick = v1.
    let second = pick_successor(&comp, &db, &dom, &init, Mover::Peer(a), "A.pick", dom[1]);
    assert!(second
        .rel
        .relation(prev1)
        .contains(&Tuple::new(vec![dom[0]])));
    assert!(second.rel.relation(prev2).is_empty());
    // A moves again (consuming pick=v1), new pick = v0: chain shifts.
    let third = pick_successor(&comp, &db, &dom, &second, Mover::Peer(a), "A.pick", dom[0]);
    assert!(third
        .rel
        .relation(prev1)
        .contains(&Tuple::new(vec![dom[1]])));
    assert!(
        third
            .rel
            .relation(prev2)
            .contains(&Tuple::new(vec![dom[0]])),
        "the older input shifts into prev2"
    );
}

#[test]
fn queues_deliver_in_fifo_order() {
    let mut comp = sender(1, 2, false);
    let (db, dom) = two_value_db(&mut comp);
    let a = comp.peer_by_name("A").unwrap().id;
    let b = comp.peer_by_name("B").unwrap().id;
    let (out, _) = comp.channel_by_name("out").unwrap();
    let pick = comp.voc.lookup("A.pick").unwrap();
    let seen = comp.voc.lookup("B.seen").unwrap();

    let init = comp
        .initial_configs(&db, &dom)
        .into_iter()
        .find(|c| c.rel.relation(pick).contains(&Tuple::new(vec![dom[0]])))
        .unwrap();
    // A sends v0, then (with pick = v1) sends v1: queue = [v0, v1].
    let s1 = pick_successor(&comp, &db, &dom, &init, Mover::Peer(a), "A.pick", dom[1]);
    let s2 = comp
        .successors(&db, &dom, &s1, Mover::Peer(a))
        .into_iter()
        .find(|c| c.queues[out.index()].len() == 2)
        .expect("bound-2 queue holds both messages");
    // B's first move records v0 (the head), not v1.
    let after_b = comp.successors(&db, &dom, &s2, Mover::Peer(b));
    for c in &after_b {
        let r = c.rel.relation(seen);
        assert!(
            r.contains(&Tuple::new(vec![dom[0]])),
            "head delivered first"
        );
        assert!(!r.contains(&Tuple::new(vec![dom[1]])), "tail not yet seen");
        assert_eq!(c.queues[out.index()].len(), 1, "head dequeued");
    }
}

#[test]
fn per_channel_lossiness_override() {
    // Default perfect, but override `out` to lossy: loss branches appear.
    let mut b = CompositionBuilder::new();
    b.default_lossy(false);
    b.channel("out", 1, QueueKind::Flat, "A", "B");
    b.channel_lossy("out", true);
    b.peer("A")
        .database("d", 1)
        .input("pick", 1)
        .input_rule("pick", &["x"], "d(x)")
        .send_rule("out", &["x"], "pick(x)");
    b.peer("B");
    let mut comp = b.build().unwrap();
    assert!(comp.channels[0].lossy);
    let (db, dom) = two_value_db(&mut comp);
    let a = comp.peer_by_name("A").unwrap().id;
    let pick = comp.voc.lookup("A.pick").unwrap();
    let init = comp
        .initial_configs(&db, &dom)
        .into_iter()
        .find(|c| !c.rel.relation(pick).is_empty())
        .unwrap();
    let succs = comp.successors(&db, &dom, &init, Mover::Peer(a));
    let (out, _) = comp.channel_by_name("out").unwrap();
    assert!(succs.iter().any(|c| c.queues[out.index()].is_empty()));
    assert!(succs.iter().any(|c| !c.queues[out.index()].is_empty()));
}

#[test]
fn strict_input_validity_prunes_stale_inputs() {
    // With an empty database the only valid input is "no input"; strict
    // validity should never discard anything here (sanity), and with a
    // nonempty database the mode must still produce successors.
    let mut b = CompositionBuilder::new();
    b.semantics(Semantics {
        strict_input_validity: true,
        ..Semantics::default()
    });
    b.default_lossy(true);
    b.channel("out", 1, QueueKind::Flat, "A", "B");
    b.peer("A")
        .database("d", 1)
        .input("pick", 1)
        .input_rule("pick", &["x"], "d(x)")
        .send_rule("out", &["x"], "pick(x)");
    b.peer("B");
    let mut comp = b.build().unwrap();
    let (db, dom) = two_value_db(&mut comp);
    let a = comp.peer_by_name("A").unwrap().id;
    for c in comp.initial_configs(&db, &dom) {
        assert!(!comp.successors(&db, &dom, &c, Mover::Peer(a)).is_empty());
    }
}
