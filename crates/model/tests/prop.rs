//! Property-based tests of the run semantics (Definitions 2.3–2.6):
//! invariants that must hold for every reachable configuration and every
//! successor, under randomized databases, domains and exploration order.

use ddws_model::{Composition, CompositionBuilder, Config, Mover, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple, Value};
use ddws_testkit::proptest::prelude::*;
use std::collections::HashSet;

fn relay(k: usize, lossy: bool) -> Composition {
    let mut b = CompositionBuilder::new();
    b.semantics(Semantics {
        queue_bound: k,
        ..Semantics::default()
    });
    b.default_lossy(lossy);
    b.channel("belt", 1, QueueKind::Flat, "A", "B");
    b.channel("ack", 1, QueueKind::Flat, "B", "A");
    b.peer("A")
        .database("d", 1)
        .state("acked", 1)
        .input("push", 1)
        .input_rule("push", &["x"], "d(x)")
        .state_insert_rule("acked", &["x"], "?ack(x)")
        .send_rule("belt", &["x"], "push(x)");
    b.peer("B")
        .state("seen", 1)
        .state_insert_rule("seen", &["x"], "?belt(x)")
        .send_rule("ack", &["x"], "?belt(x)");
    b.build().unwrap()
}

fn db_of(comp: &mut Composition, n: usize) -> (Instance, Vec<Value>) {
    let mut db = Instance::empty(&comp.voc);
    let d = comp.voc.lookup("A.d").unwrap();
    let mut dom = Vec::new();
    for i in 0..n {
        let v = comp.symbols.intern(&format!("x{i}"));
        db.relation_mut(d).insert(Tuple::new(vec![v]));
        dom.push(v);
    }
    (db, dom)
}

/// Explores up to `budget` configurations, applying `check` to every
/// (config, successor) pair.
fn explore(
    comp: &Composition,
    db: &Instance,
    dom: &[Value],
    budget: usize,
    check: &mut dyn FnMut(&Composition, &Config, Mover, &Config),
) {
    let movers = comp.movers();
    let mut seen: HashSet<Config> = HashSet::new();
    let mut queue: Vec<Config> = comp.initial_configs(db, dom);
    for c in &queue {
        seen.insert(c.clone());
    }
    while let Some(c) = queue.pop() {
        if seen.len() > budget {
            return;
        }
        for &m in &movers {
            for s in comp.successors(db, dom, &c, m) {
                check(comp, &c, m, &s);
                if seen.insert(s.clone()) {
                    queue.push(s);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Queue bounds hold in every reachable configuration.
    #[test]
    fn queue_bound_is_invariant(k in 1usize..4, lossy in any::<bool>(), n in 1usize..3) {
        let mut comp = relay(k, lossy);
        let (db, dom) = db_of(&mut comp, n);
        explore(&comp, &db, &dom, 3_000, &mut |comp, _, _, s| {
            for q in s.queues.iter() {
                assert!(q.len() <= comp.semantics.queue_bound);
            }
        });
    }

    /// A non-mover's state, inputs and previous inputs are untouched by a
    /// step (Definition 2.6); only its queues may change.
    #[test]
    fn non_movers_are_frozen(k in 1usize..3, lossy in any::<bool>()) {
        let mut comp = relay(k, lossy);
        let (db, dom) = db_of(&mut comp, 2);
        explore(&comp, &db, &dom, 2_000, &mut |comp, before, mover, after| {
            for peer in &comp.peers {
                if Mover::Peer(peer.id) == mover {
                    continue;
                }
                for &rel in peer
                    .states
                    .iter()
                    .chain(&peer.inputs)
                    .chain(peer.prev.iter().flatten())
                    .chain(&peer.actions)
                {
                    assert_eq!(
                        before.rel.relation(rel),
                        after.rel.relation(rel),
                        "non-mover relation {} changed",
                        comp.voc.name(rel)
                    );
                }
            }
        });
    }

    /// Perfect channels deliver: when the mover sends and the queue has
    /// room, at least one successor has the message enqueued.
    #[test]
    fn perfect_channels_always_offer_delivery(k in 1usize..3) {
        let mut comp = relay(k, false);
        let (db, dom) = db_of(&mut comp, 1);
        let (belt, _) = comp.channel_by_name("belt").unwrap();
        let a = comp.peer_by_name("A").unwrap().id;
        let push = comp.voc.lookup("A.push").unwrap();
        explore(&comp, &db, &dom, 2_000, &mut |_, before, mover, _| {
            // Only meaningful when A moves with a chosen push and room.
            let _ = (before, mover);
        });
        // Direct check at the initial configurations.
        for c in comp.initial_configs(&db, &dom) {
            if c.rel.relation(push).is_empty() {
                continue;
            }
            let succs = comp.successors(&db, &dom, &c, Mover::Peer(a));
            assert!(
                succs.iter().any(|s| !s.queues[belt.index()].is_empty()),
                "perfect channel must offer the delivery branch"
            );
        }
    }

    /// Successor sets are duplicate-free.
    #[test]
    fn successors_are_deduplicated(k in 1usize..3, lossy in any::<bool>()) {
        let mut comp = relay(k, lossy);
        let (db, dom) = db_of(&mut comp, 2);
        let movers = comp.movers();
        for c in comp.initial_configs(&db, &dom) {
            for &m in &movers {
                let succs = comp.successors(&db, &dom, &c, m);
                let unique: HashSet<_> = succs.iter().cloned().collect();
                assert_eq!(unique.len(), succs.len());
            }
        }
    }
}
