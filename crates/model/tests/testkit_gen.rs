//! Randomized run-semantics invariants on the native `ddws-testkit`
//! generator API — the always-on, shrink-free counterpart of the queue
//! bound test in `prop.rs` (which needs `--features proptest`). The
//! (queue bound, lossiness, database size) triple is drawn per case.

use ddws_model::{Composition, CompositionBuilder, Config, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple, Value};
use ddws_testkit::{gen, rng::XorShift, seed_from};
use std::collections::HashSet;

fn relay(k: usize, lossy: bool) -> Composition {
    let mut b = CompositionBuilder::new();
    b.semantics(Semantics {
        queue_bound: k,
        ..Semantics::default()
    });
    b.default_lossy(lossy);
    b.channel("belt", 1, QueueKind::Flat, "A", "B");
    b.channel("ack", 1, QueueKind::Flat, "B", "A");
    b.peer("A")
        .database("d", 1)
        .state("acked", 1)
        .input("push", 1)
        .input_rule("push", &["x"], "d(x)")
        .state_insert_rule("acked", &["x"], "?ack(x)")
        .send_rule("belt", &["x"], "push(x)");
    b.peer("B")
        .state("seen", 1)
        .state_insert_rule("seen", &["x"], "?belt(x)")
        .send_rule("ack", &["x"], "?belt(x)");
    b.build().unwrap()
}

fn db_of(comp: &mut Composition, n: usize) -> (Instance, Vec<Value>) {
    let mut db = Instance::empty(&comp.voc);
    let d = comp.voc.lookup("A.d").unwrap();
    let mut dom = Vec::new();
    for i in 0..n {
        let v = comp.symbols.intern(&format!("x{i}"));
        db.relation_mut(d).insert(Tuple::new(vec![v]));
        dom.push(v);
    }
    (db, dom)
}

/// Queue bounds hold in every reachable configuration, for random relay
/// parameters and exploration budgets.
#[test]
fn queue_bound_is_invariant() {
    gen::cases(
        12,
        seed_from("queue_bound_is_invariant"),
        |rng: &mut XorShift| {
            let k = rng.range(1, 4);
            let lossy = rng.bool();
            let n = rng.range(1, 3);
            let mut comp = relay(k, lossy);
            let (db, dom) = db_of(&mut comp, n);

            let movers = comp.movers();
            let mut seen: HashSet<Config> = HashSet::new();
            let mut queue: Vec<Config> = comp.initial_configs(&db, &dom);
            for c in &queue {
                seen.insert(c.clone());
            }
            while let Some(c) = queue.pop() {
                if seen.len() > 3_000 {
                    return;
                }
                for &m in &movers {
                    for s in comp.successors(&db, &dom, &c, m) {
                        for q in s.queues.iter() {
                            assert!(
                                q.len() <= comp.semantics.queue_bound,
                                "queue bound {k} exceeded (lossy={lossy}, n={n})"
                            );
                        }
                        if seen.insert(s.clone()) {
                            queue.push(s);
                        }
                    }
                }
            }
        },
    );
}

/// Successor sets are duplicate-free from random initial configurations.
#[test]
fn successors_are_deduplicated() {
    gen::cases(12, seed_from("successors_are_deduplicated"), |rng| {
        let k = rng.range(1, 3);
        let lossy = rng.bool();
        let mut comp = relay(k, lossy);
        let (db, dom) = db_of(&mut comp, 2);
        let movers = comp.movers();
        for c in comp.initial_configs(&db, &dom) {
            for &m in &movers {
                let succs = comp.successors(&db, &dom, &c, m);
                let unique: HashSet<_> = succs.iter().cloned().collect();
                assert_eq!(unique.len(), succs.len());
            }
        }
    });
}
