//! The bounded, admission-controlled job queue and the per-job records.
//!
//! Admission control is a hard capacity on *active* (non-terminal) jobs:
//! a `submit_job` beyond it is rejected with
//! [`ErrorCode::QueueFull`](crate::wire::ErrorCode::QueueFull) rather
//! than buffered — back-pressure is the client's problem, by design.
//!
//! Scheduling is strict round-robin over a FIFO run queue of job ids.
//! A worker pops the head, runs **one quantum** (a state-budget slice,
//! see [`crate::service`]), and pushes the job back to the tail if it
//! parked. The FIFO invariant is the fairness law the service tests
//! enforce: between two consecutive slices of any job, every other
//! runnable job runs at most once — so no job can delay another's
//! completion by more than one full round of quanta, no matter how
//! pathological its composition is.
//!
//! Two bounded side tables keep hostile or unlucky clients from growing
//! the service without limit:
//!
//! * the **dedup window** — the last [`DEDUP_WINDOW`] `submit_token`s
//!   with their job ids. A `submit_job` whose token is in the window
//!   answers the *original* job id instead of enqueueing again, so a
//!   client retrying a lost ack cannot double-submit. Entries age out
//!   FIFO; a token resubmitted after falling out of the window enqueues
//!   a fresh job (at-most-once per window, by design).
//! * the **retention store** — terminal results (report +
//!   counterexample) are kept under a capacity + TTL policy with LRU
//!   eviction ([`JobQueue::evict_results`]); a `fetch_result` after
//!   eviction answers the typed `result_evicted`, never a hang.

use crate::wire::{CexDigest, ErrorCode, JobOptions, WireError};
use ddws_relational::Instance;
use ddws_telemetry::{CancelToken, RunReport, StreamReporter};
use ddws_verifier::{Checkpoint, Verifier};
use std::collections::VecDeque;

/// How many recent `submit_token`s the dedup window remembers.
pub const DEDUP_WINDOW: usize = 64;

/// The scheduling state of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, no slice run yet.
    Queued,
    /// A worker is executing a slice right now.
    Running,
    /// Preempted between slices; the checkpoint is parked in the queue.
    Parked,
    /// Terminal: the job ran to a verdict (`holds`, `violated`, or
    /// `budget_exceeded` — see the job's verdict label).
    Done,
    /// Terminal: cancelled before reaching a verdict; any parked
    /// checkpoint was discarded.
    Cancelled,
    /// Terminal: the service failed the job (bad property, worker panic).
    Failed,
}

impl JobState {
    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Parked => "parked",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "parked" => JobState::Parked,
            "done" => JobState::Done,
            "cancelled" => JobState::Cancelled,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }

    /// Whether the state is terminal (no further slices will run).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

/// The executable part of a job: what a worker takes off the queue for
/// one slice. Between slices the parked [`Checkpoint`] (the PR 8
/// multi-leg `EngineCheckpoint` set) lives here.
pub(crate) struct JobWork {
    /// The job's own verifier (owns the composition).
    pub verifier: Verifier,
    /// The property source text.
    pub property: String,
    /// The fixed database the job verifies against.
    pub database: Instance,
    /// The parked search, absent before the first slice.
    pub checkpoint: Option<Checkpoint>,
}

/// One job's full record.
pub struct JobEntry {
    /// The wire-visible job id.
    pub id: u64,
    /// Scheduling state.
    pub state: JobState,
    /// Quanta executed so far.
    pub slices: u64,
    /// Cumulative visited states across slices.
    pub states_visited: u64,
    /// Terminal verdict label, once terminal.
    pub verdict: Option<String>,
    /// The final slice's run report, once terminal (absent for jobs
    /// cancelled before any slice completed).
    pub report: Option<RunReport>,
    /// Counterexample digest on a `violated` verdict.
    pub counterexample: Option<CexDigest>,
    /// The per-job limits from `submit_job`.
    pub options: JobOptions,
    /// The job's cancel token, threaded into every slice.
    pub cancel: CancelToken,
    /// Whether a `cancel_job` arrived (observed between or during slices).
    pub cancel_requested: bool,
    /// Whether the cancel discarded a parked checkpoint.
    pub discarded_checkpoint: bool,
    /// Crashed slices the supervisor absorbed and re-dispatched.
    pub crash_recoveries: u64,
    /// Whether the retention store evicted this job's result (report and
    /// counterexample dropped; `fetch_result` answers `result_evicted`).
    pub evicted: bool,
    /// The idempotency token the submit carried, if any.
    pub submit_token: Option<u64>,
    /// The per-job telemetry stream (`stream_telemetry` drains it).
    pub stream: StreamReporter,
    /// Scheduler step count at admission (fairness accounting).
    pub submitted_step: u64,
    /// Scheduler step count at the terminal transition.
    pub completed_step: Option<u64>,
    pub(crate) work: Option<JobWork>,
}

/// The bounded job table plus the round-robin run queue, the dedup
/// window, and the retention store's LRU order.
pub struct JobQueue {
    capacity: usize,
    jobs: Vec<JobEntry>,
    run_queue: VecDeque<u64>,
    /// `(submit_token, job)` pairs, oldest first, at most [`DEDUP_WINDOW`].
    dedup: VecDeque<(u64, u64)>,
    /// Retained terminal results as `(job, last_touch_ns)`, LRU first.
    retained: VecDeque<(u64, u64)>,
}

impl JobQueue {
    /// An empty queue admitting at most `capacity` active jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            capacity: capacity.max(1),
            jobs: Vec::new(),
            run_queue: VecDeque::new(),
            dedup: VecDeque::new(),
            retained: VecDeque::new(),
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of active (non-terminal) jobs.
    pub fn active(&self) -> usize {
        self.jobs.iter().filter(|j| !j.state.is_terminal()).count()
    }

    /// All job records, in admission order.
    pub fn jobs(&self) -> &[JobEntry] {
        &self.jobs
    }

    /// Looks a `submit_token` up in the dedup window.
    pub fn dedup_lookup(&self, token: u64) -> Option<u64> {
        self.dedup
            .iter()
            .rev()
            .find(|&&(t, _)| t == token)
            .map(|&(_, job)| job)
    }

    /// Admits a job, or rejects it with `queue_full`. A token already in
    /// the dedup window is the *caller's* business ([`Self::dedup_lookup`]
    /// first); this records the token unconditionally.
    pub(crate) fn submit(
        &mut self,
        work: JobWork,
        options: JobOptions,
        step: u64,
        submit_token: Option<u64>,
    ) -> Result<u64, WireError> {
        if self.active() >= self.capacity {
            return Err(WireError::new(
                ErrorCode::QueueFull,
                format!(
                    "{} active jobs at capacity {}",
                    self.active(),
                    self.capacity
                ),
            ));
        }
        let id = self.jobs.len() as u64;
        self.jobs.push(JobEntry {
            id,
            state: JobState::Queued,
            slices: 0,
            states_visited: 0,
            verdict: None,
            report: None,
            counterexample: None,
            options,
            cancel: CancelToken::new(),
            cancel_requested: false,
            discarded_checkpoint: false,
            crash_recoveries: 0,
            evicted: false,
            submit_token,
            stream: StreamReporter::new(),
            submitted_step: step,
            completed_step: None,
            work: Some(work),
        });
        self.run_queue.push_back(id);
        if let Some(token) = submit_token {
            if self.dedup.len() == DEDUP_WINDOW {
                self.dedup.pop_front();
            }
            self.dedup.push_back((token, id));
        }
        Ok(id)
    }

    /// Borrows a job by id.
    pub fn job(&self, id: u64) -> Option<&JobEntry> {
        self.jobs.get(id as usize)
    }

    /// Mutably borrows a job by id.
    pub(crate) fn job_mut(&mut self, id: u64) -> Option<&mut JobEntry> {
        self.jobs.get_mut(id as usize)
    }

    /// Pops the next runnable job id off the round-robin queue, skipping
    /// ids that went terminal (cancelled) while queued.
    pub(crate) fn next_runnable(&mut self) -> Option<u64> {
        while let Some(id) = self.run_queue.pop_front() {
            if !self.jobs[id as usize].state.is_terminal() {
                return Some(id);
            }
        }
        None
    }

    /// Returns a parked job to the tail of the round-robin queue.
    pub(crate) fn requeue(&mut self, id: u64) {
        self.run_queue.push_back(id);
    }

    /// Whether any job is waiting for a quantum.
    pub fn has_runnable(&self) -> bool {
        self.run_queue
            .iter()
            .any(|&id| !self.jobs[id as usize].state.is_terminal())
    }

    /// Enters a freshly terminal job's result into the retention store
    /// (most-recently-used position).
    pub(crate) fn retain_result(&mut self, id: u64, now_ns: u64) {
        self.retained.push_back((id, now_ns));
    }

    /// Refreshes a retained result's LRU position and TTL clock (a
    /// successful `fetch_result` counts as a use). No-op for ids the
    /// store no longer holds.
    pub(crate) fn touch_result(&mut self, id: u64, now_ns: u64) {
        if let Some(pos) = self.retained.iter().position(|&(j, _)| j == id) {
            self.retained.remove(pos);
            self.retained.push_back((id, now_ns));
        }
    }

    /// Applies the retention policy: drops results whose TTL expired,
    /// then evicts from the LRU end until at most `capacity` results
    /// remain. Evicted jobs lose their report and counterexample and are
    /// marked [`JobEntry::evicted`]; returns the evicted ids in eviction
    /// order.
    pub(crate) fn evict_results(&mut self, now_ns: u64, capacity: usize, ttl_ns: u64) -> Vec<u64> {
        let mut evicted = Vec::new();
        self.retained.retain(|&(id, touched)| {
            if now_ns.saturating_sub(touched) >= ttl_ns {
                evicted.push(id);
                false
            } else {
                true
            }
        });
        while self.retained.len() > capacity {
            let (id, _) = self.retained.pop_front().expect("non-empty store");
            evicted.push(id);
        }
        for &id in &evicted {
            let entry = &mut self.jobs[id as usize];
            entry.report = None;
            entry.counterexample = None;
            entry.evicted = true;
        }
        evicted
    }

    /// Number of results the retention store currently holds.
    pub fn retained_results(&self) -> usize {
        self.retained.len()
    }
}
