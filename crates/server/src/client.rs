//! The client retry layer: sessions that survive a lossy, reordering,
//! overloaded wire.
//!
//! A [`ClientSession`] speaks the ordinary [`crate::wire`] frames
//! through any [`Transport`] and owns the whole retry discipline so
//! callers never see a transient failure:
//!
//! * **Loss** — a `None` from [`Transport::call`] (request or response
//!   vanished) retries after seeded full-jitter exponential backoff.
//! * **Corruption** — an undecodable response, or a typed transport
//!   error (`1xx`) proving the request arrived mangled, retries the
//!   same way. Nothing the wire does can make the session panic.
//! * **Reordering** — a response whose correlation id is not the
//!   attempt's own is stale (a displaced duplicate); it is discarded
//!   and the attempt retried.
//! * **Overload** — `queue_full` honors the server's `retry_after_ns`
//!   back-pressure hint before the next attempt; `job_not_terminal` on
//!   a fetch retries until the job settles, turning `fetch_result`
//!   into a bounded poll.
//!
//! Retried submits are **idempotent**: [`ClientSession::submit`] draws
//! one random `submit_token` per logical submission and reuses it on
//! every attempt, so a lost ack collapses onto the original job inside
//! the server's dedup window — the service runs the job once and every
//! ack names the same id.
//!
//! The only randomness is the session's own seeded
//! [`XorShift`], so a client's full retry schedule — backoffs and
//! tokens — is a pure function of its seed, and the deterministic sim
//! can replay hostile-wire scenarios byte-identically.

use crate::wire::{
    decode_response, encode_request, ErrorCode, JobOptions, JobSpec, Request, Response, WireError,
};
use ddws_testkit::rng::XorShift;
use std::fmt;

/// How a session reaches the service. `call` sends one request frame
/// and returns the response frame, or `None` when either direction was
/// lost. `wait` spends `ns` nanoseconds of backoff — a wall client
/// sleeps, the deterministic sim advances virtual time and lets the
/// server run.
pub trait Transport {
    /// Sends a frame; `None` models a lost request or response.
    fn call(&mut self, frame: &[u8]) -> Option<Vec<u8>>;
    /// Spends `ns` nanoseconds before the next attempt.
    fn wait(&mut self, ns: u64);
}

/// Retry limits and backoff shape.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Attempts per logical request before giving up.
    pub max_attempts: u32,
    /// First backoff's upper bound; doubles per retry (full jitter
    /// draws uniformly below the doubled cap).
    pub base_backoff_ns: u64,
    /// Backoff cap.
    pub max_backoff_ns: u64,
    /// Per-request deadline on total waited nanoseconds (`None` for
    /// attempts-only bounding).
    pub deadline_ns: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 16,
            base_backoff_ns: 1_000_000,
            max_backoff_ns: 1_000_000_000,
            deadline_ns: None,
        }
    }
}

/// Why a logical request ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// Every attempt was lost, stale, or retryably rejected.
    Exhausted {
        /// How many attempts the policy allowed.
        attempts: u32,
    },
    /// The per-request deadline elapsed before an answer arrived.
    DeadlineExceeded {
        /// Total nanoseconds waited when the deadline tripped.
        waited_ns: u64,
    },
    /// The service answered a typed, non-retryable error (unknown job,
    /// invalid spec, poisoned job, evicted result, …).
    Service(WireError),
    /// The service answered a response kind the request cannot produce.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Exhausted { attempts } => {
                write!(f, "request exhausted its {attempts} attempts")
            }
            ClientError::DeadlineExceeded { waited_ns } => {
                write!(
                    f,
                    "request deadline exceeded after {waited_ns}ns of backoff"
                )
            }
            ClientError::Service(err) => write!(f, "service error: {err}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One client's retry session; see the module docs.
pub struct ClientSession {
    rng: XorShift,
    policy: RetryPolicy,
    next_id: u64,
}

impl ClientSession {
    /// A session with its own seeded retry schedule.
    pub fn new(seed: u64, policy: RetryPolicy) -> ClientSession {
        ClientSession {
            rng: XorShift::new(seed ^ 0xc11e_57a5_c11e_57a5),
            policy,
            next_id: 1,
        }
    }

    /// Submits a job idempotently: one `submit_token` is drawn for the
    /// logical submission and reused across retries, so however many
    /// attempts the wire eats, exactly one job runs and every ack names
    /// its id.
    pub fn submit(
        &mut self,
        transport: &mut impl Transport,
        spec: JobSpec,
        options: JobOptions,
    ) -> Result<u64, ClientError> {
        let token = self.rng.next_u64();
        let req = Request::SubmitJob {
            spec,
            options,
            submit_token: Some(token),
        };
        match self.request(transport, &req)? {
            Response::Accepted { job } => Ok(job),
            other => Err(ClientError::Protocol(format!(
                "submit_job answered {other:?}"
            ))),
        }
    }

    /// Sends one logical request through the retry discipline.
    pub fn request(
        &mut self,
        transport: &mut impl Transport,
        req: &Request,
    ) -> Result<Response, ClientError> {
        let mut waited_ns: u64 = 0;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                let backoff = self.backoff(attempt);
                self.pace(transport, backoff, &mut waited_ns)?;
            }
            let id = self.next_id;
            self.next_id += 1;
            let frame = encode_request(id, req);
            let Some(bytes) = transport.call(&frame) else {
                continue; // lost in either direction
            };
            let Ok((rid, resp, _)) = decode_response(&bytes) else {
                continue; // response corrupted in flight
            };
            if rid != id {
                // A stale or displaced response (reordered wire, or the
                // server's id-0 answer to a request corrupted beyond
                // recognition): the answer to *this* attempt is gone.
                continue;
            }
            match resp {
                Response::Error(err) if err.code.code() < 200 => {
                    // A transport-class rejection: the request arrived
                    // mangled but still carried a readable id.
                    continue;
                }
                Response::Error(err)
                    if matches!(err.code, ErrorCode::QueueFull | ErrorCode::JobNotTerminal) =>
                {
                    if let Some(hint) = err.retry_after_ns {
                        self.pace(transport, hint, &mut waited_ns)?;
                    }
                    continue;
                }
                Response::Error(err) => return Err(ClientError::Service(err)),
                other => return Ok(other),
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.policy.max_attempts,
        })
    }

    /// Spends `ns` of wait, enforcing the per-request deadline first.
    fn pace(
        &mut self,
        transport: &mut impl Transport,
        ns: u64,
        waited_ns: &mut u64,
    ) -> Result<(), ClientError> {
        *waited_ns = waited_ns.saturating_add(ns);
        if let Some(deadline) = self.policy.deadline_ns {
            if *waited_ns > deadline {
                return Err(ClientError::DeadlineExceeded {
                    waited_ns: *waited_ns,
                });
            }
        }
        transport.wait(ns);
        Ok(())
    }

    /// Full-jitter exponential backoff: uniform in `[1, cap]` where the
    /// cap doubles per retry up to `max_backoff_ns`.
    fn backoff(&mut self, attempt: u32) -> u64 {
        let doublings = attempt.saturating_sub(1).min(32);
        let cap = self
            .policy
            .base_backoff_ns
            .saturating_mul(1u64 << doublings)
            .min(self.policy.max_backoff_ns)
            .max(1);
        1 + self.rng.below(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Server, ServerConfig};

    /// An in-process transport that drops some responses after the
    /// server has already acted (lost acks) and lets the server run one
    /// quantum per backoff wait.
    struct FlakyTransport {
        server: Server,
        calls: u64,
        /// Drop the response of every call where `calls % drop_in == 1`
        /// (0 disables).
        drop_in: u64,
    }

    impl Transport for FlakyTransport {
        fn call(&mut self, frame: &[u8]) -> Option<Vec<u8>> {
            self.calls += 1;
            let resp = self.server.handle_frame(frame);
            if self.drop_in > 0 && self.calls % self.drop_in == 1 {
                None
            } else {
                Some(resp)
            }
        }

        fn wait(&mut self, _ns: u64) {
            self.server.step();
        }
    }

    fn flaky(config: ServerConfig, drop_in: u64) -> FlakyTransport {
        FlakyTransport {
            server: Server::new(config),
            calls: 0,
            drop_in,
        }
    }

    #[test]
    fn lost_acks_resubmit_onto_the_same_job() {
        // Every other response is dropped *after* the server acted, so
        // the first submit's ack is lost. The retry reuses the token and
        // collapses onto the original job.
        let mut t = flaky(ServerConfig::deterministic(8, 64), 2);
        let mut session = ClientSession::new(42, RetryPolicy::default());
        let job = session
            .submit(
                &mut t,
                JobSpec::Scenario("req_resp".to_string()),
                JobOptions {
                    budget: 100_000,
                    ..JobOptions::default()
                },
            )
            .expect("submit retries through lost acks");
        assert_eq!(t.server.jobs().len(), 1, "dedup ran exactly one job");
        assert_eq!(job, t.server.jobs()[0].job);
        assert!(t.server.canonical_log().contains("-> dedup job=0"));
    }

    #[test]
    fn fetch_polls_until_the_job_settles() {
        let mut t = flaky(ServerConfig::deterministic(8, 64), 0);
        let mut session = ClientSession::new(
            7,
            RetryPolicy {
                max_attempts: 64,
                ..RetryPolicy::default()
            },
        );
        let job = session
            .submit(
                &mut t,
                JobSpec::Scenario("req_resp".to_string()),
                JobOptions {
                    budget: 100_000,
                    ..JobOptions::default()
                },
            )
            .unwrap();
        // No drain: the fetch's job_not_terminal retries drive the
        // server through its quanta via `wait`.
        match session.request(&mut t, &Request::FetchResult { job }) {
            Ok(Response::Result { verdict, .. }) => assert_eq!(verdict, "holds"),
            other => panic!("fetch should settle: {other:?}"),
        }
    }

    #[test]
    fn queue_full_backs_off_until_capacity_frees() {
        let mut t = flaky(ServerConfig::deterministic(1, 128), 0);
        let mut session = ClientSession::new(
            11,
            RetryPolicy {
                max_attempts: 64,
                ..RetryPolicy::default()
            },
        );
        let first = session
            .submit(
                &mut t,
                JobSpec::Scenario("drop_audit".to_string()),
                JobOptions {
                    budget: 100_000,
                    ..JobOptions::default()
                },
            )
            .unwrap();
        // Capacity 1: the second submit is rejected with a retry hint
        // until the first job's violation frees the slot.
        let second = session
            .submit(
                &mut t,
                JobSpec::Scenario("req_resp".to_string()),
                JobOptions {
                    budget: 100_000,
                    ..JobOptions::default()
                },
            )
            .expect("backoff outlasts the occupying job");
        assert_ne!(first, second);
        assert!(t.server.canonical_log().contains("rejected queue_full"));
    }

    #[test]
    fn deadlines_bound_total_retry_time() {
        struct BlackHole;
        impl Transport for BlackHole {
            fn call(&mut self, _frame: &[u8]) -> Option<Vec<u8>> {
                None
            }
            fn wait(&mut self, _ns: u64) {}
        }
        let mut session = ClientSession::new(
            3,
            RetryPolicy {
                max_attempts: 10_000,
                deadline_ns: Some(5_000_000),
                ..RetryPolicy::default()
            },
        );
        match session.request(&mut BlackHole, &Request::JobStatus { job: 0 }) {
            Err(ClientError::DeadlineExceeded { waited_ns }) => {
                assert!(waited_ns > 5_000_000);
            }
            other => panic!("expected deadline, got {other:?}"),
        }
    }

    #[test]
    fn typed_service_errors_are_not_retried() {
        let mut t = flaky(ServerConfig::deterministic(8, 64), 0);
        let mut session = ClientSession::new(5, RetryPolicy::default());
        match session.request(&mut t, &Request::JobStatus { job: 99 }) {
            Err(ClientError::Service(err)) => assert_eq!(err.code, ErrorCode::UnknownJob),
            other => panic!("expected service error, got {other:?}"),
        }
        assert_eq!(t.calls, 1, "non-retryable errors answer in one attempt");
    }
}
