//! The `ddws.wire` protocol: versioned, length-prefixed JSON frames.
//!
//! Every message is one *frame*: a 4-byte big-endian payload length
//! followed by a canonical-JSON payload (the same order-preserving,
//! exact-integer conventions as the `ddws.run-report` schema — both sides
//! of the wire use [`ddws_telemetry::Json`], so a message has exactly one
//! byte representation). The payload is an *envelope*:
//!
//! ```json
//! {"schema": "ddws.wire", "version": 2, "id": 7, "type": "submit_job", ...}
//! ```
//!
//! * `schema` — always `"ddws.wire"`.
//! * `version` — the protocol version. A decoder accepts every version in
//!   `[`[`MIN_WIRE_VERSION`]`, `[`WIRE_VERSION`]`]`; anything else is
//!   rejected with [`ErrorCode::UnsupportedVersion`]. Version 1 lacked
//!   `stream_telemetry`/`telemetry` messages and the `options` object of
//!   `submit_job`; version 3 adds the optional `submit_token` field of
//!   `submit_job` (idempotent resubmission), the optional
//!   `retry_after_ns` field of `error` envelopes (back-pressure hint on
//!   `queue_full`), and the 2xx codes `job_poisoned` / `result_evicted`.
//!   Decoders fill the gaps of older versions with defaults, so v1 and
//!   v2 frames parse unchanged.
//! * `id` — a client-chosen correlation id, echoed on the response.
//! * `type` — the message type; remaining keys are the message body.
//!
//! Decoding is total: truncated, oversized, or garbage input yields a
//! typed [`WireError`] from the [`ErrorCode`] registry — never a panic.

use crate::queue::JobState;
use ddws_telemetry::{Json, Progress, RunReport};
use ddws_testkit::compgen::{AuditorSpec, CaseSpec, ChanSpec};

/// The envelope's `schema` value.
pub const WIRE_SCHEMA: &str = "ddws.wire";
/// The current protocol version, written by every encoder.
pub const WIRE_VERSION: u64 = 3;
/// The oldest protocol version decoders still accept.
pub const MIN_WIRE_VERSION: u64 = 1;
/// Hard cap on a frame's payload length; longer frames are rejected with
/// [`ErrorCode::FrameTooLarge`] *before* any allocation.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// The error-code registry. Codes are stable wire constants: 1xx are
/// frame/envelope errors, 2xx service errors, 3xx internal errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The buffer ends before the length header or the announced payload.
    TruncatedFrame,
    /// The announced payload length exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge,
    /// The payload is not canonical JSON or not a `ddws.wire` envelope.
    MalformedFrame,
    /// The envelope's `version` is outside the accepted range.
    UnsupportedVersion,
    /// The envelope's `type` names no message of the announced version.
    UnknownRequest,
    /// The message body is missing or mistypes a field.
    InvalidRequest,
    /// An `error` envelope carried a code outside the registry. Produced
    /// by *decoders* only — a frame with an unregistered code still
    /// parses into this typed error rather than failing, so a newer
    /// peer's codes degrade gracefully instead of breaking the session.
    UnknownErrorCode,
    /// Admission control: the job queue is at capacity.
    QueueFull,
    /// No job with the given id.
    UnknownJob,
    /// `fetch_result` on a job that has not reached a terminal state.
    JobNotTerminal,
    /// `cancel_job` on a job already in a terminal state.
    JobTerminal,
    /// The submitted `CaseSpec` does not build a well-formed composition.
    SpecInvalid,
    /// `submit_job` named a scenario the server does not know.
    UnknownScenario,
    /// The job crashed its slice too many times and was quarantined by
    /// the supervisor (see `crate::supervisor`); terminal.
    JobPoisoned,
    /// `fetch_result` on a job whose result the retention store already
    /// evicted (TTL or LRU); terminal, the verdict is gone.
    ResultEvicted,
    /// The service failed internally (worker panic, unparseable property).
    Internal,
}

/// Every registered error code, for exhaustive tests and docs.
pub const ERROR_CODES: &[ErrorCode] = &[
    ErrorCode::TruncatedFrame,
    ErrorCode::FrameTooLarge,
    ErrorCode::MalformedFrame,
    ErrorCode::UnsupportedVersion,
    ErrorCode::UnknownRequest,
    ErrorCode::InvalidRequest,
    ErrorCode::UnknownErrorCode,
    ErrorCode::QueueFull,
    ErrorCode::UnknownJob,
    ErrorCode::JobNotTerminal,
    ErrorCode::JobTerminal,
    ErrorCode::SpecInvalid,
    ErrorCode::UnknownScenario,
    ErrorCode::JobPoisoned,
    ErrorCode::ResultEvicted,
    ErrorCode::Internal,
];

impl ErrorCode {
    /// The numeric wire constant.
    pub fn code(self) -> u64 {
        match self {
            ErrorCode::TruncatedFrame => 100,
            ErrorCode::FrameTooLarge => 101,
            ErrorCode::MalformedFrame => 102,
            ErrorCode::UnsupportedVersion => 103,
            ErrorCode::UnknownRequest => 104,
            ErrorCode::InvalidRequest => 105,
            ErrorCode::UnknownErrorCode => 106,
            ErrorCode::QueueFull => 200,
            ErrorCode::UnknownJob => 201,
            ErrorCode::JobNotTerminal => 202,
            ErrorCode::JobTerminal => 203,
            ErrorCode::SpecInvalid => 204,
            ErrorCode::UnknownScenario => 205,
            ErrorCode::JobPoisoned => 206,
            ErrorCode::ResultEvicted => 207,
            ErrorCode::Internal => 300,
        }
    }

    /// The stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::TruncatedFrame => "truncated_frame",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::UnknownRequest => "unknown_request",
            ErrorCode::InvalidRequest => "invalid_request",
            ErrorCode::UnknownErrorCode => "unknown_error_code",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::JobNotTerminal => "job_not_terminal",
            ErrorCode::JobTerminal => "job_terminal",
            ErrorCode::SpecInvalid => "spec_invalid",
            ErrorCode::UnknownScenario => "unknown_scenario",
            ErrorCode::JobPoisoned => "job_poisoned",
            ErrorCode::ResultEvicted => "result_evicted",
            ErrorCode::Internal => "internal",
        }
    }

    /// Looks a code up in the registry.
    pub fn from_code(code: u64) -> Option<ErrorCode> {
        ERROR_CODES.iter().copied().find(|c| c.code() == code)
    }
}

/// A typed wire/service error: a registry code plus a human message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// The registry code.
    pub code: ErrorCode,
    /// Diagnostic detail (not part of the protocol contract).
    pub message: String,
    /// Back-pressure hint (protocol version ≥ 3): how long the client
    /// should wait before retrying, in nanoseconds. Set on `queue_full`
    /// rejections from the server's observed slice throughput; absent
    /// everywhere else.
    pub retry_after_ns: Option<u64>,
}

impl WireError {
    /// An error with the given code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
            retry_after_ns: None,
        }
    }

    /// Attaches a `retry_after_ns` back-pressure hint.
    pub fn with_retry_after(mut self, ns: u64) -> WireError {
        self.retry_after_ns = Some(ns);
        self
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}): {}",
            self.code.name(),
            self.code.code(),
            self.message
        )
    }
}

/// The `VerifyOptions` subset a client may set per job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOptions {
    /// State budget with `VerifyOptions::max_states` semantics (a cap
    /// per universal-closure valuation): the sliced job ends
    /// `budget_exceeded` exactly when a direct one-shot check under
    /// this cap would.
    pub budget: u64,
    /// Fresh-value budget forwarded to `VerifyOptions::fresh_values`.
    pub fresh_values: Option<usize>,
    /// Valuation-shard count forwarded to
    /// `VerifyOptions::valuation_threads`.
    pub valuation_threads: Option<usize>,
}

impl Default for JobOptions {
    fn default() -> JobOptions {
        JobOptions {
            budget: 200_000,
            fresh_values: Some(1),
            valuation_threads: None,
        }
    }
}

/// What a job verifies: an inline compgen spec or a named scenario from
/// the server's registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobSpec {
    /// A structured composition description, built server-side.
    Spec(CaseSpec),
    /// A scenario name resolved by [`crate::service::scenario`].
    Scenario(String),
}

/// A client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a job for verification.
    SubmitJob {
        /// What to verify.
        spec: JobSpec,
        /// Per-job limits.
        options: JobOptions,
        /// Client-chosen idempotency key (protocol version ≥ 3). Two
        /// `submit_job` frames with the same token within the server's
        /// dedup window enqueue **one** job and answer the same id, so
        /// a client retrying a lost ack cannot double-submit.
        submit_token: Option<u64>,
    },
    /// Poll a job's scheduling state.
    JobStatus {
        /// The job id from `accepted`.
        job: u64,
    },
    /// Cancel a queued, parked, or running job.
    CancelJob {
        /// The job id from `accepted`.
        job: u64,
    },
    /// Fetch the final verdict and run report of a terminal job.
    FetchResult {
        /// The job id from `accepted`.
        job: u64,
    },
    /// Drain the job's telemetry stream (progress snapshots and per-slice
    /// run reports emitted since the last drain). Protocol version ≥ 2.
    StreamTelemetry {
        /// The job id from `accepted`.
        job: u64,
    },
}

/// One entry of a `status` or `result` body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSnapshot {
    /// The job id.
    pub job: u64,
    /// Scheduling state.
    pub state: JobState,
    /// Quanta executed so far.
    pub slices: u64,
    /// Cumulative visited states.
    pub states_visited: u64,
}

/// A violation digest: enough of the counterexample to compare against an
/// oracle without shipping whole relational instances.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CexDigest {
    /// The universal-closure valuation, as external constant names in
    /// variable order.
    pub values: Vec<String>,
    /// Length of the lasso prefix.
    pub prefix_len: u64,
    /// Length of the repeating cycle.
    pub cycle_len: u64,
}

/// A server response.
///
/// `Result` dominates the enum's size (an embedded `RunReport`); wire
/// responses are built once and serialized, never stored in bulk, so
/// the indirection a box would buy is not worth the API noise.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Response {
    /// The job was admitted.
    Accepted {
        /// The assigned job id.
        job: u64,
    },
    /// A `job_status` answer.
    Status(JobSnapshot),
    /// The cancel was recorded; the job will not produce a verdict.
    Cancelled {
        /// The cancelled job id.
        job: u64,
    },
    /// A `fetch_result` answer for a terminal job.
    Result {
        /// Scheduling state at completion.
        snapshot: JobSnapshot,
        /// Verdict label: `"holds"`, `"violated"`, `"cancelled"`,
        /// `"budget_exceeded"`, or `"failed"`.
        verdict: String,
        /// The final slice's run report, when one exists.
        report: Option<RunReport>,
        /// Digest of the counterexample on `"violated"`.
        counterexample: Option<CexDigest>,
    },
    /// A `stream_telemetry` answer. Protocol version ≥ 2.
    Telemetry {
        /// The job id.
        job: u64,
        /// Progress snapshots since the last drain.
        snapshots: Vec<Progress>,
        /// Per-slice run reports since the last drain.
        reports: Vec<RunReport>,
    },
    /// Any failure, with a registry code.
    Error(WireError),
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Wraps a payload in a length-prefixed frame.
///
/// Panics if the payload exceeds [`MAX_FRAME_LEN`] — encoders control
/// their payloads; only *decoders* must be total.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_LEN, "frame payload too large");
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits one frame off the front of `buf`, returning the payload and the
/// total bytes consumed. Total: truncated and oversized input yield typed
/// errors.
pub fn deframe(buf: &[u8]) -> Result<(&[u8], usize), WireError> {
    if buf.len() < 4 {
        return Err(WireError::new(
            ErrorCode::TruncatedFrame,
            format!("{} bytes is shorter than the length header", buf.len()),
        ));
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::new(
            ErrorCode::FrameTooLarge,
            format!("announced payload of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    if buf.len() < 4 + len {
        return Err(WireError::new(
            ErrorCode::TruncatedFrame,
            format!(
                "announced payload of {len} bytes, {} available",
                buf.len() - 4
            ),
        ));
    }
    Ok((&buf[4..4 + len], 4 + len))
}

// ---------------------------------------------------------------------
// JSON helpers
// ---------------------------------------------------------------------

fn s(v: impl Into<String>) -> Json {
    Json::Str(v.into())
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn invalid(msg: impl Into<String>) -> WireError {
    WireError::new(ErrorCode::InvalidRequest, msg)
}

fn get_u64(v: &Json, key: &str) -> Result<u64, WireError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| invalid(format!("missing or non-integer `{key}`")))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, WireError> {
    let n = get_u64(v, key)?;
    usize::try_from(n).map_err(|_| invalid(format!("`{key}` out of range")))
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, WireError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| invalid(format!("missing or non-string `{key}`")))
}

fn get_bool(v: &Json, key: &str) -> Result<bool, WireError> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| invalid(format!("missing or non-boolean `{key}`")))
}

fn get_array<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], WireError> {
    match v.get(key) {
        Some(Json::Array(items)) => Ok(items),
        _ => Err(invalid(format!("missing or non-array `{key}`"))),
    }
}

/// `None` when the key is absent or `null`; otherwise the integer.
fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_u64()
            .map(Some)
            .ok_or_else(|| invalid(format!("non-integer `{key}`"))),
    }
}

/// `None` when the key is absent or `null`; otherwise the integer.
fn opt_usize(v: &Json, key: &str) -> Result<Option<usize>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => {
            let n = j
                .as_u64()
                .ok_or_else(|| invalid(format!("non-integer `{key}`")))?;
            Ok(Some(
                usize::try_from(n).map_err(|_| invalid(format!("`{key}` out of range")))?,
            ))
        }
    }
}

fn opt_u64_json(v: Option<usize>) -> Json {
    match v {
        Some(n) => Json::UInt(n as u64),
        None => Json::Null,
    }
}

// ---------------------------------------------------------------------
// CaseSpec (de)serialization
// ---------------------------------------------------------------------

fn case_spec_json(spec: &CaseSpec) -> Json {
    obj(vec![
        ("queue_bound", Json::UInt(spec.queue_bound as u64)),
        (
            "relays",
            Json::Array(spec.relays.iter().map(|&r| Json::UInt(r as u64)).collect()),
        ),
        (
            "chans",
            Json::Array(
                spec.chans
                    .iter()
                    .map(|c| {
                        obj(vec![
                            ("index", Json::UInt(c.index as u64)),
                            ("arity", Json::UInt(c.arity as u64)),
                            ("sender", Json::UInt(c.sender as u64)),
                            ("receiver", Json::UInt(c.receiver as u64)),
                            ("send_rule", Json::Bool(c.send_rule)),
                            ("receive_rule", Json::Bool(c.receive_rule)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "auditor",
            match &spec.auditor {
                None => Json::Null,
                Some(a) => obj(vec![
                    ("ring", Json::UInt(a.ring as u64)),
                    (
                        "arms",
                        Json::Array(a.arms.iter().map(|&x| Json::UInt(x as u64)).collect()),
                    ),
                    ("delete_rule", Json::Bool(a.delete_rule)),
                ]),
            },
        ),
        (
            "db_rows",
            Json::Array(
                spec.db_rows
                    .iter()
                    .map(|&(r, name)| Json::Array(vec![Json::UInt(r as u64), s(name)]))
                    .collect(),
            ),
        ),
        ("property", s(spec.property.clone())),
    ])
}

/// The database constants `CaseSpec` may carry. The generator only draws
/// these, and the wire decoder needs `&'static str` back — so the
/// vocabulary is closed by construction.
const DB_CONSTANTS: &[&str] = &["a", "b"];

fn case_spec_from_json(v: &Json) -> Result<CaseSpec, WireError> {
    let relays = get_array(v, "relays")?
        .iter()
        .map(|j| {
            j.as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| invalid("non-integer relay id"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let chans = get_array(v, "chans")?
        .iter()
        .map(|c| {
            Ok(ChanSpec {
                index: get_usize(c, "index")?,
                arity: get_usize(c, "arity")?,
                sender: get_usize(c, "sender")?,
                receiver: get_usize(c, "receiver")?,
                send_rule: get_bool(c, "send_rule")?,
                receive_rule: get_bool(c, "receive_rule")?,
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let auditor = match v.get("auditor") {
        None | Some(Json::Null) => None,
        Some(a) => Some(AuditorSpec {
            ring: get_usize(a, "ring")?,
            arms: get_array(a, "arms")?
                .iter()
                .map(|j| {
                    j.as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| invalid("non-integer auditor arm"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            delete_rule: get_bool(a, "delete_rule")?,
        }),
    };
    let db_rows = get_array(v, "db_rows")?
        .iter()
        .map(|row| match row {
            Json::Array(pair) if pair.len() == 2 => {
                let relay = pair[0]
                    .as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| invalid("non-integer db-row relay"))?;
                let name = pair[1]
                    .as_str()
                    .ok_or_else(|| invalid("non-string db-row constant"))?;
                let name = DB_CONSTANTS
                    .iter()
                    .copied()
                    .find(|&c| c == name)
                    .ok_or_else(|| {
                        WireError::new(
                            ErrorCode::SpecInvalid,
                            format!("unknown db constant {name:?} (registry: {DB_CONSTANTS:?})"),
                        )
                    })?;
                Ok((relay, name))
            }
            _ => Err(invalid("db_rows entries are [relay, constant] pairs")),
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(CaseSpec {
        queue_bound: get_usize(v, "queue_bound")?,
        relays,
        chans,
        auditor,
        db_rows,
        property: get_str(v, "property")?.to_string(),
    })
}

// ---------------------------------------------------------------------
// Progress / report (de)serialization
// ---------------------------------------------------------------------

fn progress_json(p: &Progress) -> Json {
    obj(vec![
        ("elapsed_ns", Json::UInt(p.elapsed_ns)),
        ("states_visited", Json::UInt(p.states_visited)),
        ("states_per_sec", Json::UInt(p.states_per_sec)),
        ("frontier", Json::UInt(p.frontier)),
        ("depth", Json::UInt(p.depth)),
        ("ample_hits", Json::UInt(p.ample_hits)),
        ("full_expansions", Json::UInt(p.full_expansions)),
        ("rule_cache_hits", Json::UInt(p.rule_cache_hits)),
        ("rule_cache_misses", Json::UInt(p.rule_cache_misses)),
    ])
}

fn progress_from_json(v: &Json) -> Result<Progress, WireError> {
    Ok(Progress {
        elapsed_ns: get_u64(v, "elapsed_ns")?,
        states_visited: get_u64(v, "states_visited")?,
        states_per_sec: get_u64(v, "states_per_sec")?,
        frontier: get_u64(v, "frontier")?,
        depth: get_u64(v, "depth")?,
        ample_hits: get_u64(v, "ample_hits")?,
        full_expansions: get_u64(v, "full_expansions")?,
        rule_cache_hits: get_u64(v, "rule_cache_hits")?,
        rule_cache_misses: get_u64(v, "rule_cache_misses")?,
    })
}

fn report_from_json(v: &Json) -> Result<RunReport, WireError> {
    RunReport::from_json(&v.to_string()).map_err(|e| invalid(format!("embedded run report: {e}")))
}

fn cex_json(d: &CexDigest) -> Json {
    obj(vec![
        (
            "values",
            Json::Array(d.values.iter().map(|v| s(v.clone())).collect()),
        ),
        ("prefix_len", Json::UInt(d.prefix_len)),
        ("cycle_len", Json::UInt(d.cycle_len)),
    ])
}

fn cex_from_json(v: &Json) -> Result<CexDigest, WireError> {
    Ok(CexDigest {
        values: get_array(v, "values")?
            .iter()
            .map(|j| {
                j.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| invalid("non-string counterexample value"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        prefix_len: get_u64(v, "prefix_len")?,
        cycle_len: get_u64(v, "cycle_len")?,
    })
}

fn snapshot_fields(sn: &JobSnapshot) -> Vec<(&'static str, Json)> {
    vec![
        ("job", Json::UInt(sn.job)),
        ("state", s(sn.state.as_str())),
        ("slices", Json::UInt(sn.slices)),
        ("states_visited", Json::UInt(sn.states_visited)),
    ]
}

fn snapshot_from_json(v: &Json) -> Result<JobSnapshot, WireError> {
    let state = get_str(v, "state")?;
    Ok(JobSnapshot {
        job: get_u64(v, "job")?,
        state: JobState::parse(state)
            .ok_or_else(|| invalid(format!("unknown job state {state:?}")))?,
        slices: get_u64(v, "slices")?,
        states_visited: get_u64(v, "states_visited")?,
    })
}

// ---------------------------------------------------------------------
// Envelopes
// ---------------------------------------------------------------------

fn envelope(version: u64, id: u64, typ: &str, mut body: Vec<(String, Json)>) -> Json {
    let mut fields = vec![
        ("schema".to_string(), s(WIRE_SCHEMA)),
        ("version".to_string(), Json::UInt(version)),
        ("id".to_string(), Json::UInt(id)),
        ("type".to_string(), s(typ)),
    ];
    fields.append(&mut body);
    Json::Object(fields)
}

fn body(fields: Vec<(&str, Json)>) -> Vec<(String, Json)> {
    fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Encodes a request at the current [`WIRE_VERSION`].
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    encode_request_versioned(WIRE_VERSION, id, req)
}

/// Encodes a request at an explicit protocol version (compatibility
/// tests). Version 1 omits the `options` object of `submit_job` — that
/// field did not exist — and cannot express `stream_telemetry`; versions
/// below 3 omit `submit_token`.
pub fn encode_request_versioned(version: u64, id: u64, req: &Request) -> Vec<u8> {
    let json = match req {
        Request::SubmitJob {
            spec,
            options,
            submit_token,
        } => {
            let mut fields = match spec {
                JobSpec::Spec(cs) => body(vec![("spec", case_spec_json(cs))]),
                JobSpec::Scenario(name) => body(vec![("scenario", s(name.clone()))]),
            };
            if version >= 2 {
                fields.push((
                    "options".to_string(),
                    obj(vec![
                        ("budget", Json::UInt(options.budget)),
                        ("fresh_values", opt_u64_json(options.fresh_values)),
                        ("valuation_threads", opt_u64_json(options.valuation_threads)),
                    ]),
                ));
            }
            if version >= 3 {
                fields.push((
                    "submit_token".to_string(),
                    match submit_token {
                        Some(t) => Json::UInt(*t),
                        None => Json::Null,
                    },
                ));
            }
            envelope(version, id, "submit_job", fields)
        }
        Request::JobStatus { job } => envelope(
            version,
            id,
            "job_status",
            body(vec![("job", Json::UInt(*job))]),
        ),
        Request::CancelJob { job } => envelope(
            version,
            id,
            "cancel_job",
            body(vec![("job", Json::UInt(*job))]),
        ),
        Request::FetchResult { job } => envelope(
            version,
            id,
            "fetch_result",
            body(vec![("job", Json::UInt(*job))]),
        ),
        Request::StreamTelemetry { job } => {
            assert!(version >= 2, "stream_telemetry requires protocol version 2");
            envelope(
                version,
                id,
                "stream_telemetry",
                body(vec![("job", Json::UInt(*job))]),
            )
        }
    };
    frame(json.to_string().as_bytes())
}

/// Encodes a response at the current [`WIRE_VERSION`].
pub fn encode_response(id: u64, resp: &Response) -> Vec<u8> {
    let json = match resp {
        Response::Accepted { job } => envelope(
            WIRE_VERSION,
            id,
            "accepted",
            body(vec![("job", Json::UInt(*job))]),
        ),
        Response::Status(sn) => envelope(WIRE_VERSION, id, "status", body(snapshot_fields(sn))),
        Response::Cancelled { job } => envelope(
            WIRE_VERSION,
            id,
            "cancelled",
            body(vec![("job", Json::UInt(*job))]),
        ),
        Response::Result {
            snapshot,
            verdict,
            report,
            counterexample,
        } => {
            let mut fields = snapshot_fields(snapshot);
            fields.push(("verdict", s(verdict.clone())));
            fields.push((
                "report",
                report.as_ref().map_or(Json::Null, RunReport::to_json_value),
            ));
            fields.push((
                "counterexample",
                counterexample.as_ref().map_or(Json::Null, cex_json),
            ));
            envelope(WIRE_VERSION, id, "result", body(fields))
        }
        Response::Telemetry {
            job,
            snapshots,
            reports,
        } => envelope(
            WIRE_VERSION,
            id,
            "telemetry",
            body(vec![
                ("job", Json::UInt(*job)),
                (
                    "snapshots",
                    Json::Array(snapshots.iter().map(progress_json).collect()),
                ),
                (
                    "reports",
                    Json::Array(reports.iter().map(RunReport::to_json_value).collect()),
                ),
            ]),
        ),
        Response::Error(err) => {
            let mut fields = vec![
                ("code", Json::UInt(err.code.code())),
                ("error", s(err.code.name())),
                ("message", s(err.message.clone())),
            ];
            if let Some(ns) = err.retry_after_ns {
                fields.push(("retry_after_ns", Json::UInt(ns)));
            }
            envelope(WIRE_VERSION, id, "error", body(fields))
        }
    };
    frame(json.to_string().as_bytes())
}

/// Splits one envelope off the front of `buf`: validates framing, JSON,
/// schema and version, and returns `(version, id, type, body, consumed)`.
fn decode_envelope(buf: &[u8]) -> Result<(u64, u64, String, Json, usize), WireError> {
    let (payload, consumed) = deframe(buf)?;
    let text = std::str::from_utf8(payload)
        .map_err(|_| WireError::new(ErrorCode::MalformedFrame, "payload is not UTF-8"))?;
    let json = Json::parse(text)
        .map_err(|e| WireError::new(ErrorCode::MalformedFrame, format!("bad JSON: {e}")))?;
    if json.get("schema").and_then(Json::as_str) != Some(WIRE_SCHEMA) {
        return Err(WireError::new(
            ErrorCode::MalformedFrame,
            format!("missing or unexpected `schema` (want {WIRE_SCHEMA:?})"),
        ));
    }
    let version = json
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| WireError::new(ErrorCode::MalformedFrame, "missing `version`"))?;
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::new(
            ErrorCode::UnsupportedVersion,
            format!("version {version} outside [{MIN_WIRE_VERSION}, {WIRE_VERSION}]"),
        ));
    }
    let id = json
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| WireError::new(ErrorCode::MalformedFrame, "missing `id`"))?;
    let typ = json
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new(ErrorCode::MalformedFrame, "missing `type`"))?
        .to_string();
    Ok((version, id, typ, json, consumed))
}

/// Decodes one request frame: `(id, request, bytes consumed)`.
pub fn decode_request(buf: &[u8]) -> Result<(u64, Request, usize), WireError> {
    let (version, id, typ, json, consumed) = decode_envelope(buf)?;
    let req = match typ.as_str() {
        "submit_job" => {
            let spec = match (json.get("spec"), json.get("scenario")) {
                (Some(sp), None) => JobSpec::Spec(case_spec_from_json(sp)?),
                (None, Some(Json::Str(name))) => JobSpec::Scenario(name.clone()),
                _ => {
                    return Err(invalid(
                        "submit_job carries exactly one of `spec` or `scenario`",
                    ))
                }
            };
            let options = match json.get("options") {
                // Version 1 had no per-job options; the defaults apply.
                None | Some(Json::Null) => JobOptions::default(),
                Some(o) => JobOptions {
                    budget: get_u64(o, "budget")?,
                    fresh_values: opt_usize(o, "fresh_values")?,
                    valuation_threads: opt_usize(o, "valuation_threads")?,
                },
            };
            Request::SubmitJob {
                spec,
                options,
                // Pre-v3 frames have no token; absent means "no dedup".
                submit_token: opt_u64(&json, "submit_token")?,
            }
        }
        "job_status" => Request::JobStatus {
            job: get_u64(&json, "job")?,
        },
        "cancel_job" => Request::CancelJob {
            job: get_u64(&json, "job")?,
        },
        "fetch_result" => Request::FetchResult {
            job: get_u64(&json, "job")?,
        },
        "stream_telemetry" if version >= 2 => Request::StreamTelemetry {
            job: get_u64(&json, "job")?,
        },
        other => {
            return Err(WireError::new(
                ErrorCode::UnknownRequest,
                format!("unknown request type {other:?} at version {version}"),
            ))
        }
    };
    Ok((id, req, consumed))
}

/// Decodes one response frame: `(id, response, bytes consumed)`.
pub fn decode_response(buf: &[u8]) -> Result<(u64, Response, usize), WireError> {
    let (version, id, typ, json, consumed) = decode_envelope(buf)?;
    let resp = match typ.as_str() {
        "accepted" => Response::Accepted {
            job: get_u64(&json, "job")?,
        },
        "status" => Response::Status(snapshot_from_json(&json)?),
        "cancelled" => Response::Cancelled {
            job: get_u64(&json, "job")?,
        },
        "result" => Response::Result {
            snapshot: snapshot_from_json(&json)?,
            verdict: get_str(&json, "verdict")?.to_string(),
            report: match json.get("report") {
                None | Some(Json::Null) => None,
                Some(r) => Some(report_from_json(r)?),
            },
            counterexample: match json.get("counterexample") {
                None | Some(Json::Null) => None,
                Some(c) => Some(cex_from_json(c)?),
            },
        },
        "telemetry" if version >= 2 => Response::Telemetry {
            job: get_u64(&json, "job")?,
            snapshots: get_array(&json, "snapshots")?
                .iter()
                .map(progress_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            reports: get_array(&json, "reports")?
                .iter()
                .map(report_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        },
        "error" => {
            let code = get_u64(&json, "code")?;
            // Unregistered codes decode to the typed `unknown_error_code`
            // rather than failing: a newer peer's vocabulary degrades
            // gracefully instead of killing the session.
            let (code, message) = match ErrorCode::from_code(code) {
                Some(c) => (c, get_str(&json, "message")?.to_string()),
                None => (
                    ErrorCode::UnknownErrorCode,
                    format!(
                        "unregistered error code {code}: {}",
                        get_str(&json, "message").unwrap_or("")
                    ),
                ),
            };
            Response::Error(WireError {
                code,
                message,
                retry_after_ns: opt_u64(&json, "retry_after_ns")?,
            })
        }
        other => {
            return Err(WireError::new(
                ErrorCode::UnknownRequest,
                format!("unknown response type {other:?} at version {version}"),
            ))
        }
    };
    Ok((id, resp, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_at_the_current_version() {
        let req = Request::SubmitJob {
            spec: JobSpec::Scenario("req_resp".into()),
            options: JobOptions::default(),
            submit_token: Some(41),
        };
        let bytes = encode_request(7, &req);
        let (id, back, consumed) = decode_request(&bytes).expect("decodes");
        assert_eq!((id, consumed), (7, bytes.len()));
        assert_eq!(back, req);
    }

    #[test]
    fn v1_submit_without_options_decodes_with_defaults() {
        let req = Request::SubmitJob {
            spec: JobSpec::Scenario("req_resp".into()),
            options: JobOptions {
                budget: 999,
                ..JobOptions::default()
            },
            submit_token: Some(5),
        };
        let bytes = encode_request_versioned(1, 3, &req);
        let (_, back, _) = decode_request(&bytes).expect("v1 frame decodes");
        match back {
            Request::SubmitJob {
                options,
                submit_token,
                ..
            } => {
                assert_eq!(options, JobOptions::default());
                // v1/v2 frames cannot carry a token.
                assert_eq!(submit_token, None);
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn unregistered_error_codes_decode_to_the_typed_fallback() {
        // Hand-build an error envelope with a code from the future.
        let payload = "{\"schema\":\"ddws.wire\",\"version\":3,\"id\":9,\"type\":\"error\",\
                       \"code\":999,\"error\":\"from_the_future\",\"message\":\"novel failure\"}";
        let bytes = frame(payload.as_bytes());
        let (id, resp, _) = decode_response(&bytes).expect("unknown code still decodes");
        assert_eq!(id, 9);
        match resp {
            Response::Error(err) => {
                assert_eq!(err.code, ErrorCode::UnknownErrorCode);
                assert!(err.message.contains("999"));
                assert!(err.message.contains("novel failure"));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn retry_after_hint_round_trips_and_stays_optional() {
        let err = WireError::new(ErrorCode::QueueFull, "full").with_retry_after(12_345);
        let bytes = encode_response(4, &Response::Error(err.clone()));
        let (_, back, _) = decode_response(&bytes).expect("decodes");
        match back {
            Response::Error(e) => {
                assert_eq!(e, err);
                assert_eq!(e.retry_after_ns, Some(12_345));
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Without the hint the field is absent and decodes to None.
        let plain = WireError::new(ErrorCode::UnknownJob, "no job 7");
        let bytes = encode_response(5, &Response::Error(plain.clone()));
        assert!(!String::from_utf8_lossy(&bytes).contains("retry_after_ns"));
        let (_, back, _) = decode_response(&bytes).expect("decodes");
        match back {
            Response::Error(e) => assert_eq!(e.retry_after_ns, None),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn framing_errors_carry_registry_codes() {
        assert_eq!(
            deframe(&[0, 0]).unwrap_err().code,
            ErrorCode::TruncatedFrame
        );
        let mut huge = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes().to_vec();
        huge.extend_from_slice(b"x");
        assert_eq!(deframe(&huge).unwrap_err().code, ErrorCode::FrameTooLarge);
        let garbage = frame(b"not json");
        assert_eq!(
            decode_request(&garbage).unwrap_err().code,
            ErrorCode::MalformedFrame
        );
    }

    #[test]
    fn the_error_code_registry_is_injective() {
        for &a in ERROR_CODES {
            assert_eq!(ErrorCode::from_code(a.code()), Some(a));
        }
        let mut codes: Vec<u64> = ERROR_CODES.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), ERROR_CODES.len());
    }
}
