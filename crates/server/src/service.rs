//! The verification service: request dispatch, the preemptive scheduler,
//! and the two execution modes.
//!
//! ## Scheduling contract
//!
//! A job runs as a sequence of *slices*, each a state-budget quantum
//! through the PR 5 `SearchLimits` machinery: slice `n + 1` resumes the
//! [`Checkpoint`] slice `n` parked (`Verifier::resume_slice`), with the
//! cap raised by [`ServerConfig::quantum_states`] *additional* visited
//! states, clamped to the job's own budget. A slice therefore ends in
//! exactly one of:
//!
//! * a verdict (`holds` / `violated`) — terminal;
//! * a state-budget stop at the synthetic slice cap — **parked**, the
//!   checkpoint goes back to the tail of the round-robin queue;
//! * a state-budget stop at the job's budget — terminal
//!   `budget_exceeded`;
//! * a cancellation — terminal `cancelled`, checkpoint discarded;
//! * a failure (unparseable property, worker panic) — terminal `failed`.
//!
//! Strict FIFO requeueing is the fairness law: between two consecutive
//! slices of any job, every other runnable job runs at most once.
//!
//! ## Execution modes
//!
//! *Wall mode* (`clock: None`): [`Server::run_workers`] spawns real
//! threads that loop [`Server::step`] under `WallClock`. *Deterministic
//! mode* (`clock: Some(manual)`): the caller drives `step` from one
//! thread; every slice advances the [`ManualClock`] one `tick_ns` per
//! state expansion through the fault hook, so the whole server — wire
//! traffic included — is a pure function of the request sequence, and
//! the canonical event log plus redacted reports replay byte-identically
//! (the PR 6 simulator drives exactly this mode).
//!
//! ## Robustness
//!
//! Every slice runs under the [`crate::supervisor`]: a crashed quantum
//! re-dispatches from the checkpoint cloned before the slice — a crash
//! loses at most one quantum, never the job — and a job whose slices
//! crash [`ServerConfig::crash_quarantine`] times in total goes
//! terminal as the typed `job_poisoned`. Overload degrades gracefully
//! instead of failing strangely: `queue_full` rejections carry a
//! `retry_after_ns` hint derived from observed slice throughput,
//! duplicate submits inside the dedup window collapse onto the original
//! job id, and terminal results live in a bounded TTL + LRU retention
//! store whose evictions answer `fetch_result` with the typed
//! `result_evicted`.

use crate::queue::{JobQueue, JobState, JobWork};
use crate::supervisor::{supervise_slice, CrashInjector, SliceOutcome, DEFAULT_CRASH_QUARANTINE};
use crate::wire::{
    decode_request, encode_response, CexDigest, ErrorCode, JobOptions, JobSnapshot, JobSpec,
    Request, Response, WireError,
};
use ddws_model::{CompositionBuilder, QueueKind};
use ddws_relational::Instance;
use ddws_telemetry::{Json, TelemetryEvent};
use ddws_testkit::compgen::{Case, CaseSpec, ChanSpec};
use ddws_testkit::faults::INJECTED_PANIC;
use ddws_verifier::{
    AbortReason, Checkpoint, Clock, ClockHandle, DatabaseMode, FaultHook, ManualClock, Outcome,
    Report, ReporterHandle, RunReport, Verifier, VerifyOptions,
};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Admission cap on active jobs.
    pub capacity: usize,
    /// The per-slice quantum: additional visited states per quantum.
    pub quantum_states: u64,
    /// `Some` switches the service into deterministic mode: slices run
    /// under this virtual clock, advanced `tick_ns` per state expansion.
    pub clock: Option<Arc<ManualClock>>,
    /// Virtual nanoseconds per state expansion (deterministic mode).
    pub tick_ns: u64,
    /// Progress-snapshot interval for wall mode (`None` disables).
    /// Deterministic mode never emits snapshots — the progress gate reads
    /// wall time, which would break replay.
    pub progress_interval: Option<Duration>,
    /// Total crashed slices before a job is quarantined as a poison job
    /// (terminal `job_poisoned`; `fetch_result` answers the typed
    /// error). Clamped to at least 1.
    pub crash_quarantine: u64,
    /// Retention-store capacity: how many terminal results (report +
    /// counterexample) are kept before LRU eviction.
    pub retain_results: usize,
    /// Retention TTL: a result untouched this long is evicted (virtual
    /// nanoseconds in deterministic mode, wall nanoseconds otherwise).
    pub result_ttl_ns: u64,
    /// Seeded worker-crash injection for chaos runs. `None` in
    /// production — the supervisor then only sees genuine crashes.
    pub crash_injector: Option<Arc<CrashInjector>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            capacity: 64,
            quantum_states: 1024,
            clock: None,
            tick_ns: 64,
            progress_interval: Some(Duration::from_millis(25)),
            crash_quarantine: DEFAULT_CRASH_QUARANTINE,
            retain_results: 1024,
            result_ttl_ns: 3_600_000_000_000,
            crash_injector: None,
        }
    }
}

impl ServerConfig {
    /// A deterministic-mode configuration over a fresh [`ManualClock`].
    pub fn deterministic(capacity: usize, quantum_states: u64) -> ServerConfig {
        ServerConfig {
            capacity,
            quantum_states,
            clock: Some(Arc::new(ManualClock::new(0))),
            tick_ns: 64,
            progress_interval: None,
            ..ServerConfig::default()
        }
    }
}

/// One entry of the canonical service event log. The log records every
/// state transition the scheduler and the dispatcher make; its rendering
/// ([`Server::canonical_log`]) is the replay unit of the deterministic
/// service tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceEvent {
    /// A `submit_job`, accepted or rejected.
    Submit {
        /// Assigned id on acceptance.
        job: Option<u64>,
        /// `"spec"` or the scenario name.
        kind: String,
        /// Rejection code, when rejected.
        code: Option<ErrorCode>,
        /// Whether the accept deduplicated onto an existing job via its
        /// `submit_token` (no new job was enqueued).
        dedup: bool,
    },
    /// One scheduler quantum.
    Slice {
        /// The job.
        job: u64,
        /// 1-based slice ordinal.
        n: u64,
        /// The effective state cap of the slice.
        cap: u64,
        /// `parked`, `holds`, `violated`, `cancelled`, `budget_exceeded`,
        /// or `failed`.
        outcome: String,
        /// Cumulative visited states after the slice.
        states: u64,
    },
    /// A `cancel_job`.
    Cancel {
        /// The job.
        job: u64,
        /// `"cancelled"`, `"cancelled (checkpoint discarded)"`,
        /// `"pending"` (job was mid-slice), or an error-code name.
        outcome: String,
    },
    /// A `job_status` poll.
    Status {
        /// The job.
        job: u64,
        /// The reported state, or an error-code name.
        state: String,
    },
    /// A `fetch_result`.
    Fetch {
        /// The job.
        job: u64,
        /// The verdict label, or an error-code name.
        outcome: String,
    },
    /// A `stream_telemetry` drain.
    Telemetry {
        /// The job.
        job: u64,
        /// Progress snapshots drained.
        snapshots: u64,
        /// Run reports drained.
        reports: u64,
    },
    /// A retention-store eviction (TTL expiry or LRU capacity); the
    /// job's report and counterexample were dropped.
    Evict {
        /// The job whose result was evicted.
        job: u64,
    },
}

impl fmt::Display for ServiceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceEvent::Submit {
                job,
                kind,
                code,
                dedup,
            } => match (job, code) {
                (Some(j), _) if *dedup => write!(f, "submit kind={kind} -> dedup job={j}"),
                (Some(j), _) => write!(f, "submit kind={kind} -> accepted job={j}"),
                (None, Some(c)) => write!(f, "submit kind={kind} -> rejected {}", c.name()),
                (None, None) => write!(f, "submit kind={kind} -> rejected"),
            },
            ServiceEvent::Slice {
                job,
                n,
                cap,
                outcome,
                states,
            } => write!(
                f,
                "slice job={job} n={n} cap={cap} -> {outcome} states={states}"
            ),
            ServiceEvent::Cancel { job, outcome } => write!(f, "cancel job={job} -> {outcome}"),
            ServiceEvent::Status { job, state } => write!(f, "status job={job} -> {state}"),
            ServiceEvent::Fetch { job, outcome } => write!(f, "fetch job={job} -> {outcome}"),
            ServiceEvent::Telemetry {
                job,
                snapshots,
                reports,
            } => write!(
                f,
                "telemetry job={job} snapshots={snapshots} reports={reports}"
            ),
            ServiceEvent::Evict { job } => write!(f, "evict job={job} -> result_evicted"),
        }
    }
}

struct ServerState {
    queue: JobQueue,
    steps: u64,
    log: Vec<ServiceEvent>,
    /// Nanoseconds of completed (non-crashed) slices — virtual in
    /// deterministic mode, wall otherwise — for the back-pressure hint.
    slice_ns_total: u64,
    /// Completed slices behind `slice_ns_total`.
    slices_timed: u64,
}

/// The verification service. Cheap to share: wrap in an [`Arc`] and hand
/// clones to worker threads ([`Server::run_workers`]) or drive it
/// single-threaded in deterministic mode.
pub struct Server {
    config: ServerConfig,
    state: Mutex<ServerState>,
    /// Wall anchor for the retention clock outside deterministic mode.
    started: Instant,
}

impl Server {
    /// A fresh service.
    pub fn new(config: ServerConfig) -> Server {
        let capacity = config.capacity;
        Server {
            config,
            state: Mutex::new(ServerState {
                queue: JobQueue::new(capacity),
                steps: 0,
                log: Vec::new(),
                slice_ns_total: 0,
                slices_timed: 0,
            }),
            started: Instant::now(),
        }
    }

    /// The retention clock: virtual nanoseconds in deterministic mode,
    /// wall nanoseconds since server start otherwise.
    fn now_ns(&self) -> u64 {
        match &self.config.clock {
            Some(clock) => clock.now_ns(),
            None => self.started.elapsed().as_nanos() as u64,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Handles one request frame and returns the response frame. Decode
    /// failures answer with an `error` envelope (correlation id 0 — a
    /// frame that does not parse has no trustworthy id).
    pub fn handle_frame(&self, buf: &[u8]) -> Vec<u8> {
        match decode_request(buf) {
            Ok((id, req, _)) => encode_response(id, &self.dispatch(&req)),
            Err(err) => encode_response(0, &Response::Error(err)),
        }
    }

    /// Handles one decoded request.
    pub fn dispatch(&self, req: &Request) -> Response {
        match req {
            Request::SubmitJob {
                spec,
                options,
                submit_token,
            } => self.submit(spec, options, *submit_token),
            Request::JobStatus { job } => self.status(*job),
            Request::CancelJob { job } => self.cancel(*job),
            Request::FetchResult { job } => self.fetch(*job),
            Request::StreamTelemetry { job } => self.telemetry(*job),
        }
    }

    fn submit(&self, spec: &JobSpec, options: &JobOptions, submit_token: Option<u64>) -> Response {
        let kind = match spec {
            JobSpec::Spec(_) => "spec".to_string(),
            JobSpec::Scenario(name) => name.clone(),
        };
        let built = match spec {
            JobSpec::Spec(cs) => cs
                .build()
                .map_err(|e| WireError::new(ErrorCode::SpecInvalid, e)),
            JobSpec::Scenario(name) => scenario(name).ok_or_else(|| {
                WireError::new(
                    ErrorCode::UnknownScenario,
                    format!("no scenario {name:?} (registry: {SCENARIOS:?})"),
                )
            }),
        };
        let mut st = self.state.lock().unwrap();
        // Idempotent resubmit: a token still in the dedup window answers
        // the original job id — a client retrying a lost ack cannot
        // double-submit, even when the queue is otherwise full.
        if let Some(token) = submit_token {
            if let Some(id) = st.queue.dedup_lookup(token) {
                st.log.push(ServiceEvent::Submit {
                    job: Some(id),
                    kind,
                    code: None,
                    dedup: true,
                });
                return Response::Accepted { job: id };
            }
        }
        let outcome = built.and_then(|case| {
            let work = JobWork {
                verifier: Verifier::new(case.composition),
                property: case.property,
                database: case.database,
                checkpoint: None,
            };
            let step = st.steps;
            st.queue.submit(work, options.clone(), step, submit_token)
        });
        match outcome {
            Ok(id) => {
                st.log.push(ServiceEvent::Submit {
                    job: Some(id),
                    kind,
                    code: None,
                    dedup: false,
                });
                Response::Accepted { job: id }
            }
            Err(err) => {
                let err = if err.code == ErrorCode::QueueFull {
                    err.with_retry_after(Self::retry_after_hint(&st, &self.config))
                } else {
                    err
                };
                st.log.push(ServiceEvent::Submit {
                    job: None,
                    kind,
                    code: Some(err.code),
                    dedup: false,
                });
                Response::Error(err)
            }
        }
    }

    /// The back-pressure hint attached to `queue_full`: the observed
    /// (or, before any slice completed, the configured) per-slice
    /// nanoseconds times one full round of quanta over the active jobs —
    /// roughly when the round-robin queue will next have drained one
    /// admission slot's worth of work.
    fn retry_after_hint(st: &ServerState, config: &ServerConfig) -> u64 {
        let per_slice = st
            .slice_ns_total
            .checked_div(st.slices_timed)
            .unwrap_or_else(|| config.quantum_states.saturating_mul(config.tick_ns));
        per_slice
            .saturating_mul(st.queue.active() as u64 + 1)
            .max(1)
    }

    fn snapshot_of(entry: &crate::queue::JobEntry) -> JobSnapshot {
        JobSnapshot {
            job: entry.id,
            state: entry.state,
            slices: entry.slices,
            states_visited: entry.states_visited,
        }
    }

    fn status(&self, job: u64) -> Response {
        let mut st = self.state.lock().unwrap();
        match st.queue.job(job) {
            Some(entry) => {
                let sn = Self::snapshot_of(entry);
                st.log.push(ServiceEvent::Status {
                    job,
                    state: sn.state.as_str().to_string(),
                });
                Response::Status(sn)
            }
            None => {
                st.log.push(ServiceEvent::Status {
                    job,
                    state: ErrorCode::UnknownJob.name().to_string(),
                });
                Response::Error(WireError::new(
                    ErrorCode::UnknownJob,
                    format!("no job {job}"),
                ))
            }
        }
    }

    fn cancel(&self, job: u64) -> Response {
        let mut st = self.state.lock().unwrap();
        let step = st.steps;
        let Some(entry) = st.queue.job_mut(job) else {
            st.log.push(ServiceEvent::Cancel {
                job,
                outcome: ErrorCode::UnknownJob.name().to_string(),
            });
            return Response::Error(WireError::new(
                ErrorCode::UnknownJob,
                format!("no job {job}"),
            ));
        };
        if entry.state.is_terminal() {
            let code = ErrorCode::JobTerminal;
            let msg = format!("job {job} is already {}", entry.state.as_str());
            st.log.push(ServiceEvent::Cancel {
                job,
                outcome: code.name().to_string(),
            });
            return Response::Error(WireError::new(code, msg));
        }
        entry.cancel.cancel("client cancel");
        entry.cancel_requested = true;
        let outcome = if entry.state == JobState::Running {
            // A worker owns the slice; it observes the token and
            // terminalizes the job when the slice stops.
            "pending".to_string()
        } else {
            let had_checkpoint = entry.work.as_ref().is_some_and(|w| w.checkpoint.is_some());
            entry.discarded_checkpoint = had_checkpoint;
            entry.work = None;
            entry.state = JobState::Cancelled;
            entry.verdict = Some("cancelled".to_string());
            entry.completed_step = Some(step);
            if had_checkpoint {
                "cancelled (checkpoint discarded)".to_string()
            } else {
                "cancelled".to_string()
            }
        };
        st.log.push(ServiceEvent::Cancel {
            job,
            outcome: outcome.clone(),
        });
        Response::Cancelled { job }
    }

    fn fetch(&self, job: u64) -> Response {
        let now = self.now_ns();
        let mut st = self.state.lock().unwrap();
        // The TTL sweep rides on every fetch, so expiry is observable
        // without waiting for the next job completion.
        self.sweep_retention(&mut st, now);
        let Some(entry) = st.queue.job(job) else {
            st.log.push(ServiceEvent::Fetch {
                job,
                outcome: ErrorCode::UnknownJob.name().to_string(),
            });
            return Response::Error(WireError::new(
                ErrorCode::UnknownJob,
                format!("no job {job}"),
            ));
        };
        if !entry.state.is_terminal() {
            let code = ErrorCode::JobNotTerminal;
            let msg = format!("job {job} is {}", entry.state.as_str());
            st.log.push(ServiceEvent::Fetch {
                job,
                outcome: code.name().to_string(),
            });
            return Response::Error(WireError::new(code, msg));
        }
        if entry.verdict.as_deref() == Some("job_poisoned") {
            let msg = format!(
                "job {job} crashed {} times and was quarantined",
                entry.crash_recoveries
            );
            st.log.push(ServiceEvent::Fetch {
                job,
                outcome: ErrorCode::JobPoisoned.name().to_string(),
            });
            return Response::Error(WireError::new(ErrorCode::JobPoisoned, msg));
        }
        if entry.evicted {
            let msg = format!("job {job}'s result left the retention store");
            st.log.push(ServiceEvent::Fetch {
                job,
                outcome: ErrorCode::ResultEvicted.name().to_string(),
            });
            return Response::Error(WireError::new(ErrorCode::ResultEvicted, msg));
        }
        let verdict = entry.verdict.clone().unwrap_or_else(|| "failed".into());
        let resp = Response::Result {
            snapshot: Self::snapshot_of(entry),
            verdict: verdict.clone(),
            report: entry.report.clone(),
            counterexample: entry.counterexample.clone(),
        };
        st.queue.touch_result(job, now);
        st.log.push(ServiceEvent::Fetch {
            job,
            outcome: verdict,
        });
        resp
    }

    /// Applies the retention policy and logs the evictions.
    fn sweep_retention(&self, st: &mut ServerState, now_ns: u64) {
        for evicted in st.queue.evict_results(
            now_ns,
            self.config.retain_results,
            self.config.result_ttl_ns,
        ) {
            st.log.push(ServiceEvent::Evict { job: evicted });
        }
    }

    fn telemetry(&self, job: u64) -> Response {
        let mut st = self.state.lock().unwrap();
        let Some(entry) = st.queue.job(job) else {
            return Response::Error(WireError::new(
                ErrorCode::UnknownJob,
                format!("no job {job}"),
            ));
        };
        let mut snapshots = Vec::new();
        let mut reports = Vec::new();
        for ev in entry.stream.drain() {
            match ev {
                TelemetryEvent::Progress(p) => snapshots.push(p),
                TelemetryEvent::Report(r) => reports.push(*r),
            }
        }
        st.log.push(ServiceEvent::Telemetry {
            job,
            snapshots: snapshots.len() as u64,
            reports: reports.len() as u64,
        });
        Response::Telemetry {
            job,
            snapshots,
            reports,
        }
    }

    /// Runs one scheduler quantum: pops the round-robin head, executes one
    /// slice, and parks or terminalizes the job. Returns `false` when no
    /// job is runnable.
    pub fn step(&self) -> bool {
        // Claim a job and take its work out of the table, so the (long)
        // slice runs without the service lock.
        let (id, mut work, options, cancel, stream) = {
            let mut st = self.state.lock().unwrap();
            let Some(id) = st.queue.next_runnable() else {
                return false;
            };
            st.steps += 1;
            let entry = st.queue.job_mut(id).expect("runnable job exists");
            entry.state = JobState::Running;
            let work = entry.work.take().expect("runnable job has work");
            (
                id,
                work,
                entry.options.clone(),
                entry.cancel.clone(),
                entry.stream.clone(),
            )
        };

        // The cap is measured against the in-flight valuation's own
        // count, not the run-wide sum: `max_states` budgets are per
        // universal-closure valuation, and the sliced run must converge
        // to the verdict of a one-shot check under `budget` (the oracle
        // the tests compare against).
        let visited = work
            .checkpoint
            .as_ref()
            .map_or(0, Checkpoint::frontier_states);
        let budget = options.budget.max(1);
        let cap = Verifier::slice_cap(visited, self.config.quantum_states).min(budget);
        let quantum = cap.saturating_sub(visited);

        // The recovery point: on a crash the job re-dispatches from the
        // checkpoint as it was *before* the slice, so a crash costs at
        // most one quantum of work (`None` before the first slice — the
        // job then simply restarts from scratch).
        let recovery = work.checkpoint.clone();
        let crash_tick = self
            .config
            .crash_injector
            .as_ref()
            .and_then(|injector| injector.draw());
        let vopts = self.slice_options(&options, &work.database, &cancel, &stream, crash_tick);
        let slice_started = Instant::now();
        let result = if quantum == 0 {
            // The previous slice consumed the whole budget exactly at its
            // synthetic cap; nothing is left to run.
            None
        } else {
            Some(supervise_slice(|| match work.checkpoint.take() {
                None => work.verifier.check_slice(&work.property, &vopts, cap),
                Some(cp) => work.verifier.resume_slice(cp, &vopts, quantum),
            }))
        };

        let mut st = self.state.lock().unwrap();
        let step = st.steps;
        let quarantine = self.config.crash_quarantine.max(1);
        let entry = st.queue.job_mut(id).expect("job exists");
        let n = entry.slices + 1;
        let outcome_label;
        let mut slice_ns = None;
        match result {
            None => {
                entry.state = JobState::Done;
                entry.verdict = Some("budget_exceeded".to_string());
                entry.completed_step = Some(step);
                outcome_label = "budget_exceeded".to_string();
            }
            Some(SliceOutcome::Failed(e)) => {
                entry.slices = n;
                entry.state = JobState::Failed;
                entry.verdict = Some("failed".to_string());
                entry.completed_step = Some(step);
                outcome_label = format!("failed ({e})");
            }
            Some(SliceOutcome::Crashed { .. }) => {
                // The engine streamed exactly one abort report for the
                // crashed slice, so counting it keeps the telemetry
                // conservation law (`reports == slices`) intact. The
                // job's cumulative states stay at their pre-slice value:
                // the crashed quantum's work is lost, nothing else.
                entry.slices = n;
                entry.crash_recoveries += 1;
                let k = entry.crash_recoveries;
                if entry.cancel_requested {
                    entry.discarded_checkpoint = recovery.is_some();
                    entry.state = JobState::Cancelled;
                    entry.verdict = Some("cancelled".to_string());
                    entry.completed_step = Some(step);
                    outcome_label = "cancelled (crashed slice)".to_string();
                } else if k >= quarantine {
                    entry.state = JobState::Failed;
                    entry.verdict = Some("job_poisoned".to_string());
                    entry.completed_step = Some(step);
                    outcome_label = format!("job_poisoned ({k} crashes)");
                } else {
                    work.checkpoint = recovery;
                    entry.state = JobState::Parked;
                    entry.work = Some(work);
                    st.queue.requeue(id);
                    outcome_label = format!("crashed (recovery {k}/{quarantine})");
                }
            }
            Some(SliceOutcome::Finished(report)) => {
                entry.slices = n;
                let gained = report
                    .stats
                    .states_visited
                    .saturating_sub(entry.states_visited);
                entry.states_visited = report.stats.states_visited;
                slice_ns = Some(match &self.config.clock {
                    Some(_) => gained.max(1).saturating_mul(self.config.tick_ns),
                    None => slice_started.elapsed().as_nanos() as u64,
                });
                outcome_label = Self::integrate_slice(entry, &mut work, *report, cap, budget, step);
                if entry.state == JobState::Parked {
                    entry.work = Some(work);
                    st.queue.requeue(id);
                }
            }
        }

        // Stamp the supervision counter onto the terminal report, log
        // the slice, and run the result through the retention policy.
        let entry = st.queue.job_mut(id).expect("job exists");
        let recoveries = entry.crash_recoveries;
        if let Some(report) = entry.report.as_mut() {
            report.counters.crash_recoveries = recoveries;
        }
        let states = entry.states_visited;
        let retain = entry.state.is_terminal() && entry.report.is_some();
        if let Some(ns) = slice_ns {
            st.slice_ns_total += ns;
            st.slices_timed += 1;
        }
        st.log.push(ServiceEvent::Slice {
            job: id,
            n,
            cap,
            outcome: outcome_label,
            states,
        });
        if retain {
            let now = self.now_ns();
            st.queue.retain_result(id, now);
            self.sweep_retention(&mut st, now);
        }
        true
    }

    /// Classifies one finished slice and moves the job record; returns
    /// the slice outcome label. Parking is signalled via
    /// `JobState::Parked` (the caller re-attaches `work` and requeues).
    fn integrate_slice(
        entry: &mut crate::queue::JobEntry,
        work: &mut JobWork,
        report: Report,
        cap: u64,
        budget: u64,
        step: u64,
    ) -> String {
        match report.outcome {
            Outcome::Holds => {
                entry.state = JobState::Done;
                entry.verdict = Some("holds".to_string());
                entry.report = Some(report.telemetry);
                entry.completed_step = Some(step);
                "holds".to_string()
            }
            Outcome::Violated(ref cex) => {
                let comp = work.verifier.composition();
                entry.counterexample = Some(CexDigest {
                    values: cex
                        .valuation
                        .iter()
                        .map(|&(_, v)| comp.symbols.name(v).to_string())
                        .collect(),
                    prefix_len: cex.prefix.len() as u64,
                    cycle_len: cex.cycle.len() as u64,
                });
                entry.state = JobState::Done;
                entry.verdict = Some("violated".to_string());
                entry.report = Some(report.telemetry);
                entry.completed_step = Some(step);
                "violated".to_string()
            }
            Outcome::Inconclusive(inc) => match inc.reason {
                AbortReason::StateBudget { max_states }
                    if max_states == cap && cap < budget && inc.checkpoint.is_some() =>
                {
                    if entry.cancel_requested {
                        // The cancel raced the end of the slice: the token
                        // was raised after the last cancellation check.
                        // Honor it now and drop the checkpoint.
                        entry.discarded_checkpoint = true;
                        entry.state = JobState::Cancelled;
                        entry.verdict = Some("cancelled".to_string());
                        entry.report = Some(report.telemetry);
                        entry.completed_step = Some(step);
                        "cancelled (checkpoint discarded)".to_string()
                    } else {
                        work.checkpoint = inc.checkpoint;
                        entry.state = JobState::Parked;
                        "parked".to_string()
                    }
                }
                AbortReason::StateBudget { .. } => {
                    // The cap was the job's own budget (or the engine
                    // could not checkpoint): the job is out of states.
                    entry.state = JobState::Done;
                    entry.verdict = Some("budget_exceeded".to_string());
                    entry.report = Some(report.telemetry);
                    entry.completed_step = Some(step);
                    "budget_exceeded".to_string()
                }
                AbortReason::Cancelled { .. } => {
                    entry.discarded_checkpoint = inc.checkpoint.is_some();
                    entry.state = JobState::Cancelled;
                    entry.verdict = Some("cancelled".to_string());
                    entry.report = Some(report.telemetry);
                    entry.completed_step = Some(step);
                    "cancelled".to_string()
                }
                AbortReason::DeadlineExceeded { .. } if inc.checkpoint.is_some() => {
                    // The service arms no deadlines, but a client-supplied
                    // clock skew could still trip one: park and retry.
                    work.checkpoint = inc.checkpoint;
                    entry.state = JobState::Parked;
                    "parked".to_string()
                }
                AbortReason::DeadlineExceeded { .. } | AbortReason::WorkerPanicked { .. } => {
                    entry.state = JobState::Failed;
                    entry.verdict = Some("failed".to_string());
                    entry.report = Some(report.telemetry);
                    entry.completed_step = Some(step);
                    "failed".to_string()
                }
            },
        }
    }

    fn slice_options(
        &self,
        options: &JobOptions,
        database: &Instance,
        cancel: &ddws_verifier::CancelToken,
        stream: &ddws_telemetry::StreamReporter,
        crash_tick: Option<u64>,
    ) -> VerifyOptions {
        // One hook serves both duties: deterministic mode advances the
        // virtual clock every expansion, and an injected crash panics at
        // its drawn ordinal *inside* the engine's expansion path — the
        // same path a genuine worker bug would take.
        let clock_hook = self.config.clock.clone();
        let tick_ns = self.config.tick_ns;
        let fault_hook: Option<FaultHook> = if clock_hook.is_some() || crash_tick.is_some() {
            Some(Arc::new(move |tick: u64| {
                if let Some(clock) = &clock_hook {
                    clock.advance(tick_ns);
                }
                if crash_tick == Some(tick) {
                    panic!("{INJECTED_PANIC} (injected worker crash at expansion {tick})");
                }
            }) as FaultHook)
        } else {
            None
        };
        VerifyOptions {
            database: DatabaseMode::Fixed(database.clone()),
            fresh_values: options.fresh_values,
            clock: self.config.clock.as_ref().map(|c| c.clone() as ClockHandle),
            cancel_token: Some(cancel.clone()),
            fault_hook,
            valuation_threads: options.valuation_threads,
            reporter: ReporterHandle::new(Arc::new(stream.clone())),
            progress_interval: if self.config.clock.is_some() {
                None
            } else {
                self.config.progress_interval
            },
            ..VerifyOptions::default()
        }
    }

    /// Drives [`Server::step`] until no job is runnable. Deterministic
    /// mode's "run to quiescence" helper; returns the number of quanta.
    pub fn drain(&self) -> u64 {
        let mut quanta = 0;
        while self.step() {
            quanta += 1;
        }
        quanta
    }

    /// Whether any job is waiting for a quantum.
    pub fn has_runnable(&self) -> bool {
        self.state.lock().unwrap().queue.has_runnable()
    }

    /// Scheduler quanta executed so far.
    pub fn steps(&self) -> u64 {
        self.state.lock().unwrap().steps
    }

    /// A summary row per job, in admission order.
    pub fn jobs(&self) -> Vec<JobSummary> {
        let st = self.state.lock().unwrap();
        st.queue
            .jobs()
            .iter()
            .map(|j| JobSummary {
                job: j.id,
                state: j.state,
                slices: j.slices,
                states_visited: j.states_visited,
                verdict: j.verdict.clone(),
                counterexample: j.counterexample.clone(),
                submitted_step: j.submitted_step,
                completed_step: j.completed_step,
                discarded_checkpoint: j.discarded_checkpoint,
                crash_recoveries: j.crash_recoveries,
                evicted: j.evicted,
            })
            .collect()
    }

    /// Number of results the retention store currently holds.
    pub fn retained_results(&self) -> usize {
        self.state.lock().unwrap().queue.retained_results()
    }

    /// The redacted final report of a terminal job, if one exists.
    pub fn redacted_report(&self, job: u64) -> Option<RunReport> {
        let st = self.state.lock().unwrap();
        st.queue
            .job(job)
            .and_then(|j| j.report.as_ref().map(RunReport::redacted))
    }

    /// Renders the canonical event log: one line per [`ServiceEvent`],
    /// newline-terminated. In deterministic mode this replays
    /// byte-identically from the same request/step sequence.
    pub fn canonical_log(&self) -> String {
        let st = self.state.lock().unwrap();
        let mut out = String::new();
        for ev in &st.log {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    /// Spawns `n` worker threads looping [`Server::step`] (wall mode).
    pub fn run_workers(self: &Arc<Server>, n: usize) -> WorkerPool {
        let shutdown = Arc::new(AtomicBool::new(false));
        let handles = (0..n.max(1))
            .map(|_| {
                let server = Arc::clone(self);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || loop {
                    if server.step() {
                        continue;
                    }
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                })
            })
            .collect();
        WorkerPool { shutdown, handles }
    }
}

/// A running wall-mode worker pool; see [`Server::run_workers`].
pub struct WorkerPool {
    shutdown: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Signals shutdown and joins every worker. Workers finish draining
    /// the run queue first: shutdown only lands when no job is runnable.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::Release);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// One row of [`Server::jobs`].
#[derive(Clone, Debug)]
pub struct JobSummary {
    /// The job id.
    pub job: u64,
    /// Scheduling state.
    pub state: JobState,
    /// Quanta executed.
    pub slices: u64,
    /// Cumulative visited states.
    pub states_visited: u64,
    /// Terminal verdict label.
    pub verdict: Option<String>,
    /// Counterexample digest on `violated`.
    pub counterexample: Option<CexDigest>,
    /// Scheduler step count at admission.
    pub submitted_step: u64,
    /// Scheduler step count at the terminal transition.
    pub completed_step: Option<u64>,
    /// Whether a cancel discarded a parked checkpoint.
    pub discarded_checkpoint: bool,
    /// Crashed slices the supervisor absorbed and re-dispatched.
    pub crash_recoveries: u64,
    /// Whether the retention store evicted this job's result.
    pub evicted: bool,
}

// ---------------------------------------------------------------------
// Scenario registry
// ---------------------------------------------------------------------

/// Names `submit_job` may reference instead of an inline spec.
pub const SCENARIOS: &[&str] = &["req_resp", "drop_audit", "starver"];

/// Resolves a named scenario to a verification case.
///
/// * `req_resp` — the two-peer request/response composition; its guard
///   property holds.
/// * `drop_audit` — the same composition with an unsatisfiable audit
///   property; violated within a few hundred states.
/// * `starver` — a three-relay ring with arity-2 channels and queue
///   bound 2: a budget-explosive product the fairness tests use as the
///   pathological tenant.
pub fn scenario(name: &str) -> Option<Case> {
    match name {
        "req_resp" => Some(req_resp("G (forall x: Bob.?ping(x) -> Alice.friend(x))")),
        "drop_audit" => Some(req_resp("G (forall x: Bob.?ping(x) -> false)")),
        "starver" => Some(starver()),
        _ => None,
    }
}

/// The doc-comment composition: Alice pings friends, Bob records them.
fn req_resp(property: &str) -> Case {
    let mut b = CompositionBuilder::new();
    b.channel("ping", 1, QueueKind::Flat, "Alice", "Bob");
    b.peer("Alice")
        .database("friend", 1)
        .input("greet", 1)
        .input_rule("greet", &["x"], "friend(x)")
        .send_rule("ping", &["x"], "greet(x)");
    b.peer("Bob")
        .state("seen", 1)
        .state_insert_rule("seen", &["x"], "?ping(x)");
    let mut composition = b.build().expect("req_resp composition");
    let mut database = Instance::empty(&composition.voc);
    let friend = composition.voc.lookup("Alice.friend").expect("friend");
    let a = composition.symbols.intern("a");
    database
        .relation_mut(friend)
        .insert(ddws_relational::Tuple::new(vec![a]));
    Case {
        composition,
        database,
        property: property.to_string(),
    }
}

/// The pathological tenant: a compgen-shaped three-relay ring whose
/// product comfortably exceeds any slice budget, with a property that
/// holds — so it never short-circuits on a violation and keeps consuming
/// quanta until its own budget runs out.
fn starver() -> Case {
    let spec = CaseSpec {
        queue_bound: 2,
        relays: vec![0, 1, 2],
        chans: vec![
            ChanSpec {
                index: 0,
                arity: 1,
                sender: 0,
                receiver: 1,
                send_rule: true,
                receive_rule: true,
            },
            ChanSpec {
                index: 1,
                arity: 2,
                sender: 1,
                receiver: 2,
                send_rule: true,
                receive_rule: true,
            },
            ChanSpec {
                index: 2,
                arity: 2,
                sender: 2,
                receiver: 0,
                send_rule: true,
                receive_rule: true,
            },
        ],
        auditor: None,
        db_rows: vec![(0, "a"), (0, "b"), (1, "a"), (1, "b"), (2, "a"), (2, "b")],
        property: "G (forall x: W1.?c0(x) -> W0.d(x))".to_string(),
    };
    spec.build().expect("starver composition")
}

/// A convenience used by benches and docs: submits over the wire and
/// returns the decoded response. (Production clients speak frames; tests
/// mostly go through [`Server::handle_frame`] directly.)
pub fn roundtrip(server: &Server, id: u64, req: &Request) -> Response {
    let frame = crate::wire::encode_request(id, req);
    let bytes = server.handle_frame(&frame);
    let (rid, resp, _) = crate::wire::decode_response(&bytes).expect("server frames decode");
    assert_eq!(rid, id, "correlation id echoes");
    resp
}

/// Serializes the redacted reports of every terminal job, in job order —
/// the report half of the deterministic replay unit.
pub fn redacted_reports(server: &Server) -> String {
    let mut out = String::new();
    for row in server.jobs() {
        if let Some(report) = server.redacted_report(row.job) {
            out.push_str(
                &Json::parse(&report.to_json())
                    .expect("report JSON")
                    .to_string(),
            );
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Request;

    fn submit_scenario(server: &Server, id: u64, name: &str, budget: u64) -> u64 {
        let resp = roundtrip(
            server,
            id,
            &Request::SubmitJob {
                spec: JobSpec::Scenario(name.to_string()),
                options: JobOptions {
                    budget,
                    ..JobOptions::default()
                },
                submit_token: None,
            },
        );
        match resp {
            Response::Accepted { job } => job,
            other => panic!("submit rejected: {other:?}"),
        }
    }

    #[test]
    fn req_resp_runs_to_holds_across_slices() {
        let server = Server::new(ServerConfig::deterministic(8, 64));
        let job = submit_scenario(&server, 1, "req_resp", 100_000);
        let quanta = server.drain();
        assert!(quanta >= 1);
        let row = &server.jobs()[job as usize];
        assert_eq!(row.state, JobState::Done);
        assert_eq!(row.verdict.as_deref(), Some("holds"));
        match roundtrip(&server, 2, &Request::FetchResult { job }) {
            Response::Result {
                verdict, report, ..
            } => {
                assert_eq!(verdict, "holds");
                assert!(report.is_some());
            }
            other => panic!("unexpected fetch response: {other:?}"),
        }
        // Every slice streamed exactly one run report.
        match roundtrip(&server, 3, &Request::StreamTelemetry { job }) {
            Response::Telemetry { reports, .. } => {
                assert_eq!(reports.len() as u64, row.slices);
            }
            other => panic!("unexpected telemetry response: {other:?}"),
        }
    }

    #[test]
    fn drop_audit_is_violated_with_a_digest() {
        let server = Server::new(ServerConfig::deterministic(8, 128));
        let job = submit_scenario(&server, 1, "drop_audit", 100_000);
        server.drain();
        let row = &server.jobs()[job as usize];
        assert_eq!(row.verdict.as_deref(), Some("violated"));
        assert!(row.counterexample.is_some());
    }

    #[test]
    fn cancel_discards_a_parked_checkpoint() {
        let server = Server::new(ServerConfig::deterministic(8, 32));
        let job = submit_scenario(&server, 1, "starver", 1_000_000);
        assert!(server.step());
        let row = &server.jobs()[job as usize];
        assert_eq!(row.state, JobState::Parked);
        match roundtrip(&server, 2, &Request::CancelJob { job }) {
            Response::Cancelled { job: j } => assert_eq!(j, job),
            other => panic!("unexpected cancel response: {other:?}"),
        }
        let row = &server.jobs()[job as usize];
        assert_eq!(row.state, JobState::Cancelled);
        assert!(row.discarded_checkpoint);
        assert!(!server.step(), "cancelled job must not run again");
        // Cancelling a terminal job is a registry error.
        match roundtrip(&server, 3, &Request::CancelJob { job }) {
            Response::Error(err) => assert_eq!(err.code, ErrorCode::JobTerminal),
            other => panic!("unexpected second cancel response: {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_terminal() {
        let server = Server::new(ServerConfig::deterministic(8, 64));
        let job = submit_scenario(&server, 1, "starver", 200);
        server.drain();
        let row = &server.jobs()[job as usize];
        assert_eq!(row.state, JobState::Done);
        assert_eq!(row.verdict.as_deref(), Some("budget_exceeded"));
        // The engines check the budget after admitting a state, so a
        // stopped run overshoots its cap by at most one.
        assert!(row.states_visited <= 201);
    }

    #[test]
    fn admission_control_rejects_when_full() {
        let server = Server::new(ServerConfig::deterministic(1, 64));
        submit_scenario(&server, 1, "starver", 1_000_000);
        let resp = roundtrip(
            &server,
            2,
            &Request::SubmitJob {
                spec: JobSpec::Scenario("req_resp".to_string()),
                options: JobOptions::default(),
                submit_token: None,
            },
        );
        match resp {
            Response::Error(err) => assert_eq!(err.code, ErrorCode::QueueFull),
            other => panic!("expected queue_full, got {other:?}"),
        }
    }

    #[test]
    fn round_robin_interleaves_every_runnable_job() {
        let server = Server::new(ServerConfig::deterministic(8, 64));
        let starver = submit_scenario(&server, 1, "starver", 50_000);
        let small = submit_scenario(&server, 2, "req_resp", 50_000);
        server.drain();
        let rows = server.jobs();
        assert!(rows[small as usize].state.is_terminal());
        assert!(rows[starver as usize].state.is_terminal());
        // The starver was submitted first, but the small job's completion
        // step is bounded by one round per own slice.
        let total = rows.len() as u64;
        let small_row = &rows[small as usize];
        assert!(
            small_row.completed_step.unwrap() <= small_row.slices * total + total,
            "fairness bound violated: {small_row:?}"
        );
    }

    #[test]
    fn crashed_slices_redispatch_and_converge() {
        // A clean run pins the oracle verdict…
        let clean = Server::new(ServerConfig::deterministic(8, 4));
        let job = submit_scenario(&clean, 1, "drop_audit", 100_000);
        clean.drain();
        let oracle = clean.jobs()[job as usize].clone();
        assert_eq!(oracle.verdict.as_deref(), Some("violated"));
        assert!(oracle.slices >= 2, "small quantum forces several slices");

        // …then a chaos run crashes roughly every other slice. The
        // supervisor re-dispatches each crash from the pre-slice
        // checkpoint, so the verdict and digest are untouched.
        let chaos_cfg = ServerConfig {
            crash_injector: Some(Arc::new(CrashInjector::new(3, 2, 4))),
            crash_quarantine: 10_000,
            ..ServerConfig::deterministic(8, 4)
        };
        let chaos = Server::new(chaos_cfg);
        let job = submit_scenario(&chaos, 1, "drop_audit", 100_000);
        chaos.drain();
        let row = chaos.jobs()[job as usize].clone();
        assert_eq!(row.verdict, oracle.verdict);
        assert_eq!(row.counterexample, oracle.counterexample);
        assert!(
            row.crash_recoveries >= 1,
            "seed 3 must crash at least once: {row:?}"
        );
        // The final report carries the supervision counter.
        let report = chaos.redacted_report(job).expect("terminal report");
        assert_eq!(report.counters.crash_recoveries, row.crash_recoveries);
        assert!(chaos.canonical_log().contains("crashed (recovery 1/"));
    }

    #[test]
    fn crash_looping_jobs_are_quarantined_as_poisoned() {
        // Crash every slice at the first expansion: the job can never
        // progress and hits the quarantine threshold.
        let config = ServerConfig {
            crash_injector: Some(Arc::new(CrashInjector::new(1, 1, 1))),
            crash_quarantine: 3,
            ..ServerConfig::deterministic(8, 64)
        };
        let server = Server::new(config);
        let job = submit_scenario(&server, 1, "req_resp", 100_000);
        server.drain();
        let row = &server.jobs()[job as usize];
        assert_eq!(row.state, JobState::Failed);
        assert_eq!(row.verdict.as_deref(), Some("job_poisoned"));
        assert_eq!(row.crash_recoveries, 3);
        assert_eq!(row.slices, 3);
        match roundtrip(&server, 2, &Request::FetchResult { job }) {
            Response::Error(err) => assert_eq!(err.code, ErrorCode::JobPoisoned),
            other => panic!("expected job_poisoned, got {other:?}"),
        }
        assert!(server.canonical_log().contains("job_poisoned (3 crashes)"));
    }

    #[test]
    fn duplicate_submit_tokens_collapse_onto_one_job() {
        let server = Server::new(ServerConfig::deterministic(8, 64));
        let req = Request::SubmitJob {
            spec: JobSpec::Scenario("req_resp".to_string()),
            options: JobOptions::default(),
            submit_token: Some(0xfeed),
        };
        let first = match roundtrip(&server, 1, &req) {
            Response::Accepted { job } => job,
            other => panic!("submit rejected: {other:?}"),
        };
        let second = match roundtrip(&server, 2, &req) {
            Response::Accepted { job } => job,
            other => panic!("duplicate submit rejected: {other:?}"),
        };
        assert_eq!(first, second);
        assert_eq!(server.jobs().len(), 1, "one job despite two submits");
        assert!(server.canonical_log().contains("-> dedup job=0"));
    }

    #[test]
    fn lru_eviction_answers_fetch_with_result_evicted() {
        let config = ServerConfig {
            retain_results: 1,
            ..ServerConfig::deterministic(8, 64)
        };
        let server = Server::new(config);
        let first = submit_scenario(&server, 1, "req_resp", 100_000);
        let second = submit_scenario(&server, 2, "drop_audit", 100_000);
        server.drain();
        // Capacity 1: the second completion evicted the first result.
        assert_eq!(server.retained_results(), 1);
        assert!(server.jobs()[first as usize].evicted);
        match roundtrip(&server, 3, &Request::FetchResult { job: first }) {
            Response::Error(err) => assert_eq!(err.code, ErrorCode::ResultEvicted),
            other => panic!("expected result_evicted, got {other:?}"),
        }
        match roundtrip(&server, 4, &Request::FetchResult { job: second }) {
            Response::Result { verdict, .. } => assert_eq!(verdict, "violated"),
            other => panic!("survivor must fetch: {other:?}"),
        }
        assert!(server
            .canonical_log()
            .contains(&format!("evict job={first} -> result_evicted")));
    }

    #[test]
    fn ttl_expiry_evicts_on_the_next_fetch() {
        let config = ServerConfig {
            result_ttl_ns: 1_000,
            ..ServerConfig::deterministic(8, 64)
        };
        let clock = config.clock.clone().unwrap();
        let server = Server::new(config);
        let job = submit_scenario(&server, 1, "req_resp", 100_000);
        server.drain();
        match roundtrip(&server, 2, &Request::FetchResult { job }) {
            Response::Result { .. } => {}
            other => panic!("fresh result must fetch: {other:?}"),
        }
        clock.advance(10_000);
        match roundtrip(&server, 3, &Request::FetchResult { job }) {
            Response::Error(err) => assert_eq!(err.code, ErrorCode::ResultEvicted),
            other => panic!("expected result_evicted after TTL, got {other:?}"),
        }
    }

    #[test]
    fn queue_full_carries_a_retry_after_hint() {
        let server = Server::new(ServerConfig::deterministic(1, 64));
        submit_scenario(&server, 1, "starver", 1_000_000);
        let resp = roundtrip(
            &server,
            2,
            &Request::SubmitJob {
                spec: JobSpec::Scenario("req_resp".to_string()),
                options: JobOptions::default(),
                submit_token: None,
            },
        );
        match resp {
            Response::Error(err) => {
                assert_eq!(err.code, ErrorCode::QueueFull);
                let hint = err.retry_after_ns.expect("queue_full carries a hint");
                assert!(hint >= 1);
            }
            other => panic!("expected queue_full, got {other:?}"),
        }
        // After a slice ran, the hint tracks observed throughput.
        server.step();
        let resp = roundtrip(
            &server,
            3,
            &Request::SubmitJob {
                spec: JobSpec::Scenario("req_resp".to_string()),
                options: JobOptions::default(),
                submit_token: None,
            },
        );
        match resp {
            Response::Error(err) => assert!(err.retry_after_ns.unwrap() >= 1),
            other => panic!("expected queue_full, got {other:?}"),
        }
    }

    #[test]
    fn wall_mode_workers_drain_the_queue() {
        let server = Arc::new(Server::new(ServerConfig::default()));
        let jobs: Vec<u64> = (0..4)
            .map(|i| {
                submit_scenario(
                    &server,
                    i,
                    if i % 2 == 0 { "req_resp" } else { "drop_audit" },
                    100_000,
                )
            })
            .collect();
        let pool = server.run_workers(2);
        pool.shutdown();
        for job in jobs {
            let row = &server.jobs()[job as usize];
            assert!(row.state.is_terminal(), "job {job} not terminal: {row:?}");
        }
    }
}
