//! # `ddws-server` — verification as a service
//!
//! A long-running, multi-tenant front end for the `ddws` verifier
//! (DESIGN.md §3.14):
//!
//! * [`wire`] — the versioned, length-prefixed canonical-JSON protocol:
//!   `submit_job` / `job_status` / `cancel_job` / `fetch_result` /
//!   `stream_telemetry` envelopes with a stable error-code registry.
//!   Decoding is total — malformed input yields typed errors, never
//!   panics.
//! * [`queue`] — the bounded, admission-controlled job table and the
//!   round-robin run queue (reject-with-`queue_full` when at capacity).
//! * [`service`] — the preemptive scheduler: each quantum runs one
//!   state-budget slice through `SearchLimits`, parks the resulting
//!   `Inconclusive` checkpoint, and requeues FIFO, so one pathological
//!   composition cannot starve the fleet. Runs on real threads under
//!   `WallClock` ([`Server::run_workers`]) or fully in-process under a
//!   [`ManualClock`](ddws_verifier::ManualClock) with externally driven
//!   quanta — the deterministic mode the PR 6 simulator replays
//!   byte-for-byte.
//! * [`supervisor`] — worker-slice supervision: a crashed quantum
//!   re-dispatches from the checkpoint cloned before the slice (a crash
//!   loses at most one quantum, never the job), repeat crashers are
//!   quarantined as `job_poisoned`, and a seeded [`CrashInjector`]
//!   makes chaos runs a pure function of their seed.
//! * [`client`] — the retry layer: per-request deadlines, seeded
//!   full-jitter exponential backoff, and idempotent resubmission keyed
//!   by `submit_token`, against any [`client::Transport`].

#![warn(missing_docs)]

pub mod client;
pub mod queue;
pub mod service;
pub mod supervisor;
pub mod wire;

pub use client::{ClientError, ClientSession, RetryPolicy, Transport};
pub use queue::{JobQueue, JobState, DEDUP_WINDOW};
pub use service::{
    redacted_reports, roundtrip, scenario, JobSummary, Server, ServerConfig, ServiceEvent,
    WorkerPool, SCENARIOS,
};
pub use supervisor::{CrashInjector, SliceOutcome, DEFAULT_CRASH_QUARANTINE};
pub use wire::{
    decode_request, decode_response, deframe, encode_request, encode_request_versioned,
    encode_response, frame, CexDigest, ErrorCode, JobOptions, JobSnapshot, JobSpec, Request,
    Response, WireError, ERROR_CODES, MAX_FRAME_LEN, MIN_WIRE_VERSION, WIRE_SCHEMA, WIRE_VERSION,
};
