//! Worker-slice supervision: crashed quanta re-dispatch from the parked
//! checkpoint instead of killing the job.
//!
//! The scheduler runs every slice through [`supervise_slice`], which
//! wraps the engine call in `catch_unwind` and classifies what comes
//! back. Two crash paths converge on [`SliceOutcome::Crashed`]:
//!
//! * the common one — the engines already isolate worker panics and
//!   return [`VerifyError::WorkerPanicked`] with the abort report
//!   attached (exactly one report was streamed, so the telemetry
//!   conservation law `reports == slices` keeps holding when the
//!   service counts the crashed slice);
//! * the defense-in-depth one — a panic that escapes the engine
//!   entirely (a bug outside the isolated expansion path) is caught by
//!   the supervisor's own `catch_unwind` so it can never take the
//!   worker thread, or in deterministic mode the whole test process,
//!   down with it.
//!
//! Recovery is the service's business, not this module's: the scheduler
//! clones the parked [`Checkpoint`](ddws_verifier::Checkpoint) *before*
//! dispatching the slice and, on a crash, restores the clone and
//! requeues the job — a crash loses at most one quantum, never the job.
//! A job whose slices crash [`ServerConfig::crash_quarantine`] times in
//! total is quarantined as a poison job: terminal `job_poisoned`, and
//! `fetch_result` answers the typed
//! [`ErrorCode::JobPoisoned`](crate::wire::ErrorCode::JobPoisoned).
//!
//! [`CrashInjector`] is the deterministic chaos half: a seeded 1-in-N
//! per-slice draw of a panic tick, threaded into the slice's fault hook
//! so injected crashes fire *inside* the engine's expansion path — the
//! same path a genuine bug would take. Everything downstream of the
//! seed is pure, so a chaos run replays byte-identically.
//!
//! [`ServerConfig::crash_quarantine`]: crate::service::ServerConfig::crash_quarantine

use ddws_telemetry::RunReport;
use ddws_testkit::rng::XorShift;
use ddws_verifier::{Report, VerifyError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Default total-crash quarantine threshold: the third crashed slice
/// poisons the job.
pub const DEFAULT_CRASH_QUARANTINE: u64 = 3;

/// What one supervised slice came back as.
pub enum SliceOutcome {
    /// The slice ran to a report (verdict, park, cancel, budget stop).
    Finished(Box<Report>),
    /// The slice crashed; the job is re-dispatchable from its pre-slice
    /// checkpoint.
    Crashed {
        /// The stringified panic payload.
        payload: String,
        /// The engine's `worker_panicked` abort report, when the panic
        /// was isolated inside the engine (`None` only for panics that
        /// escaped the engine entirely — those streamed no report).
        report: Option<Box<RunReport>>,
    },
    /// A non-crash failure (unparseable property, unsupported config):
    /// deterministic, so re-dispatching would fail identically.
    Failed(VerifyError),
}

/// Runs one slice under the supervisor and classifies the result.
pub fn supervise_slice<F>(slice: F) -> SliceOutcome
where
    F: FnOnce() -> Result<Report, VerifyError>,
{
    match catch_unwind(AssertUnwindSafe(slice)) {
        Ok(Ok(report)) => SliceOutcome::Finished(Box::new(report)),
        Ok(Err(VerifyError::WorkerPanicked {
            worker,
            payload,
            report,
        })) => SliceOutcome::Crashed {
            payload: format!("worker {worker}: {payload}"),
            report: Some(report),
        },
        Ok(Err(e)) => SliceOutcome::Failed(e),
        Err(panic) => SliceOutcome::Crashed {
            payload: panic_payload(panic.as_ref()),
            report: None,
        },
    }
}

fn panic_payload(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Seeded, deterministic worker-crash injection: each scheduler slice
/// draws whether to crash (1-in-`crash_in`) and, if so, at which
/// expansion ordinal *within the slice* the panic fires (uniform in
/// `[1, within]`). The draw sequence is a pure function of the seed and
/// the slice order, so deterministic-mode chaos runs replay exactly.
pub struct CrashInjector {
    rng: Mutex<XorShift>,
    crash_in: u64,
    within: u64,
}

impl CrashInjector {
    /// An injector crashing roughly one slice in `crash_in` (0 disables)
    /// at an expansion ordinal in `[1, within]`. Pick `within` at or
    /// below the slice quantum so drawn crashes actually land before the
    /// slice parks.
    pub fn new(seed: u64, crash_in: u64, within: u64) -> CrashInjector {
        CrashInjector {
            rng: Mutex::new(XorShift::new(seed ^ 0xc4a5_4c4a_5c4a_54c4)),
            crash_in,
            within: within.max(1),
        }
    }

    /// Draws the next slice's crash plan: `Some(ordinal)` to panic at
    /// that expansion, `None` to run clean.
    pub fn draw(&self) -> Option<u64> {
        let mut rng = self.rng.lock().unwrap();
        if self.crash_in > 0 && rng.chance(1, self.crash_in) {
            Some(1 + rng.below(self.within))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddws_verifier::Outcome;

    #[test]
    fn escaped_panics_are_caught_and_classified() {
        let outcome = supervise_slice(|| panic!("boom outside the engine"));
        match outcome {
            SliceOutcome::Crashed { payload, report } => {
                assert!(payload.contains("boom outside the engine"));
                assert!(report.is_none());
            }
            _ => panic!("expected Crashed"),
        }
    }

    #[test]
    fn plain_errors_pass_through_as_failed() {
        let outcome = supervise_slice(|| Err(VerifyError::Unsupported("nope".to_string())));
        match outcome {
            SliceOutcome::Failed(VerifyError::Unsupported(m)) => assert_eq!(m, "nope"),
            _ => panic!("expected Failed(Unsupported)"),
        }
    }

    #[test]
    fn finished_reports_pass_through() {
        // A trivial real slice: the cheapest way to mint a `Report` is to
        // run one, so borrow the service's doc scenario.
        let case = crate::service::scenario("req_resp").unwrap();
        let mut verifier = ddws_verifier::Verifier::new(case.composition);
        let opts = ddws_verifier::VerifyOptions {
            database: ddws_verifier::DatabaseMode::Fixed(case.database.clone()),
            ..ddws_verifier::VerifyOptions::default()
        };
        let outcome = supervise_slice(|| verifier.check_slice(&case.property, &opts, 1_000_000));
        match outcome {
            SliceOutcome::Finished(report) => {
                assert!(matches!(report.outcome, Outcome::Holds));
            }
            _ => panic!("expected Finished"),
        }
    }

    #[test]
    fn injector_draws_are_deterministic_and_bounded() {
        let a = CrashInjector::new(9, 4, 32);
        let b = CrashInjector::new(9, 4, 32);
        let da: Vec<Option<u64>> = (0..200).map(|_| a.draw()).collect();
        let db: Vec<Option<u64>> = (0..200).map(|_| b.draw()).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(Option::is_some));
        assert!(da.iter().any(Option::is_none));
        for tick in da.into_iter().flatten() {
            assert!((1..=32).contains(&tick));
        }
        let off = CrashInjector::new(9, 0, 32);
        assert!((0..100).all(|_| off.draw().is_none()));
    }
}
