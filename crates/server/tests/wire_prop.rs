//! Wire-protocol property suite (run with `--features proptest`).
//!
//! Three laws, each over randomized content:
//!
//! 1. **Round-trip** — every request and response type survives
//!    `encode → decode` exactly, and re-encoding is byte-identical
//!    (the canonical-JSON serialization admits one encoding per value).
//! 2. **Totality** — decoding never panics: truncated, oversized, and
//!    garbage frames all come back as typed [`WireError`]s with the
//!    registry code the failure class owns.
//! 3. **Version compatibility** — frames encoded at every supported
//!    protocol version still decode (a version-1 `submit_job` carries no
//!    options and gets the documented defaults); versions outside
//!    `[MIN_WIRE_VERSION, WIRE_VERSION]` are rejected as
//!    `unsupported_version`, never misparsed.

use ddws_server::{
    decode_request, decode_response, deframe, encode_request, encode_request_versioned,
    encode_response, frame, CexDigest, ErrorCode, JobOptions, JobSnapshot, JobSpec, Request,
    Response, WireError, ERROR_CODES, MAX_FRAME_LEN, MIN_WIRE_VERSION, WIRE_VERSION,
};
use ddws_server::{scenario, JobState, SCENARIOS};
use ddws_telemetry::Progress;
use ddws_testkit::compgen;
use ddws_testkit::proptest::{self, prelude::*};
use ddws_testkit::rng::XorShift;
use ddws_verifier::{DatabaseMode, RunReport, Verifier, VerifyOptions};
use std::sync::OnceLock;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A real `RunReport`, produced once by actually verifying the smallest
/// registry scenario — fabricated reports would drift from the schema.
fn sample_report() -> &'static RunReport {
    static REPORT: OnceLock<RunReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        let case = scenario("req_resp").expect("registry scenario");
        let mut verifier = Verifier::new(case.composition);
        let report = verifier
            .check_str(
                &case.property,
                &VerifyOptions {
                    database: DatabaseMode::Fixed(case.database),
                    fresh_values: Some(1),
                    ..VerifyOptions::default()
                },
            )
            .expect("scenario verifies");
        report.telemetry
    })
}

fn arb_options() -> impl Strategy<Value = JobOptions> {
    (1u64..1_000_000, 0u64..4, 0u64..6).prop_map(|(budget, fresh, shards)| JobOptions {
        budget,
        fresh_values: (fresh > 0).then_some(fresh as usize),
        valuation_threads: (shards > 1).then_some(shards as usize),
    })
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    prop_oneof![
        (0u64..u64::MAX).prop_map(|seed| JobSpec::Spec(compgen::spec(&mut XorShift::new(seed)))),
        (0u64..SCENARIOS.len() as u64)
            .prop_map(|i| JobSpec::Scenario(SCENARIOS[i as usize].to_string())),
    ]
}

fn arb_token() -> impl Strategy<Value = Option<u64>> {
    (0u64..2, 0u64..u64::MAX).prop_map(|(some, v)| (some == 1).then_some(v))
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (arb_spec(), arb_options(), arb_token()).prop_map(|(spec, options, submit_token)| {
            Request::SubmitJob {
                spec,
                options,
                submit_token,
            }
        }),
        (0u64..1_000).prop_map(|job| Request::JobStatus { job }),
        (0u64..1_000).prop_map(|job| Request::CancelJob { job }),
        (0u64..1_000).prop_map(|job| Request::FetchResult { job }),
        (0u64..1_000).prop_map(|job| Request::StreamTelemetry { job }),
    ]
}

fn arb_snapshot() -> impl Strategy<Value = JobSnapshot> {
    (0u64..100, 0u64..6, 0u64..50, 0u64..100_000).prop_map(|(job, state, slices, states)| {
        JobSnapshot {
            job,
            state: match state {
                0 => JobState::Queued,
                1 => JobState::Running,
                2 => JobState::Parked,
                3 => JobState::Done,
                4 => JobState::Cancelled,
                _ => JobState::Failed,
            },
            slices,
            states_visited: states,
        }
    })
}

fn arb_progress() -> impl Strategy<Value = Progress> {
    (0u64..u32::MAX as u64, 0u64..100_000, 0u64..512, 0u64..64).prop_map(
        |(elapsed_ns, states_visited, frontier, depth)| Progress {
            elapsed_ns,
            states_visited,
            states_per_sec: states_visited,
            frontier,
            depth,
            ample_hits: states_visited / 2,
            full_expansions: states_visited / 3,
            rule_cache_hits: frontier,
            rule_cache_misses: depth,
        },
    )
}

fn arb_cex() -> impl Strategy<Value = CexDigest> {
    (0u64..3, 0u64..200, 1u64..50).prop_map(|(vals, prefix_len, cycle_len)| CexDigest {
        values: (0..vals)
            .map(|i| ["a", "b", "c"][i as usize].to_string())
            .collect(),
        prefix_len,
        cycle_len,
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (0u64..1_000).prop_map(|job| Response::Accepted { job }),
        arb_snapshot().prop_map(Response::Status),
        (0u64..1_000).prop_map(|job| Response::Cancelled { job }),
        (arb_snapshot(), 0u64..5, arb_cex(), 0u64..4).prop_map(|(snapshot, v, cex, flags)| {
            let verdict = [
                "holds",
                "violated",
                "cancelled",
                "budget_exceeded",
                "failed",
            ][v as usize];
            Response::Result {
                snapshot,
                verdict: verdict.to_string(),
                report: (flags & 1 != 0).then(|| sample_report().clone()),
                counterexample: (flags & 2 != 0).then_some(cex),
            }
        }),
        (
            0u64..1_000,
            proptest::collection::vec(arb_progress(), 0..3),
            0u64..3
        )
            .prop_map(|(job, snapshots, nreports)| Response::Telemetry {
                job,
                snapshots,
                reports: (0..nreports).map(|_| sample_report().clone()).collect(),
            }),
        (0u64..ERROR_CODES.len() as u64, (0u64..1_000)).prop_map(|(c, n)| Response::Error(
            WireError::new(ERROR_CODES[c as usize], format!("detail {n}"))
        )),
    ]
}

/// Random bytes, sized to stress every deframe branch.
fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u64..256, 0..64)
        .prop_map(|v| v.into_iter().map(|b| b as u8).collect())
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Requests round-trip exactly, and the canonical encoding is unique.
    #[test]
    fn request_round_trips(id in 0u64..u64::MAX, req in arb_request()) {
        let bytes = encode_request(id, &req);
        let (rid, decoded, consumed) = decode_request(&bytes)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(rid, id);
        prop_assert_eq!(&decoded, &req);
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(encode_request(id, &decoded), bytes);
    }

    /// Responses round-trip; equality is byte-level re-encoding (reports
    /// and progress snapshots carry floats, so the canonical JSON *is*
    /// the equality).
    #[test]
    fn response_round_trips(id in 0u64..u64::MAX, resp in arb_response()) {
        let bytes = encode_response(id, &resp);
        let (rid, decoded, consumed) = decode_response(&bytes)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(rid, id);
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(encode_response(id, &decoded), bytes);
    }

    /// Truncating a valid frame anywhere yields `truncated_frame` — and
    /// never a panic, never a bogus parse.
    #[test]
    fn truncation_is_typed(req in arb_request(), cut in 0u64..1_000) {
        let bytes = encode_request(7, &req);
        let cut = (cut as usize) % bytes.len();
        match deframe(&bytes[..cut]) {
            Err(e) => prop_assert_eq!(e.code, ErrorCode::TruncatedFrame),
            Ok(_) => prop_assert!(false, "truncated frame deframed"),
        }
        prop_assert!(decode_request(&bytes[..cut]).is_err());
    }

    /// An announced length beyond the cap is `frame_too_large` without
    /// the decoder ever touching (or allocating) the payload.
    #[test]
    fn oversized_announcement_is_typed(extra in 1u64..u32::MAX as u64 - MAX_FRAME_LEN as u64) {
        let len = (MAX_FRAME_LEN as u64 + extra) as u32;
        let header = len.to_be_bytes().to_vec();
        match deframe(&header) {
            Err(e) => prop_assert_eq!(e.code, ErrorCode::FrameTooLarge),
            Ok(_) => prop_assert!(false, "oversized frame deframed"),
        }
    }

    /// Arbitrary bytes never panic the decoders; whatever comes back is
    /// a registered error code.
    #[test]
    fn garbage_never_panics(bytes in arb_bytes()) {
        if let Err(e) = decode_request(&bytes) {
            prop_assert!(ErrorCode::from_code(e.code.code()).is_some());
        }
        if let Err(e) = decode_response(&bytes) {
            prop_assert!(ErrorCode::from_code(e.code.code()).is_some());
        }
    }

    /// Well-framed garbage payloads are `malformed_frame`: not UTF-8, not
    /// JSON, or JSON without the envelope.
    #[test]
    fn framed_garbage_is_malformed(payload in arb_bytes()) {
        let bytes = frame(&payload);
        match decode_request(&bytes) {
            Err(e) => prop_assert!(
                matches!(e.code, ErrorCode::MalformedFrame | ErrorCode::UnsupportedVersion),
                "unexpected code {:?}", e.code
            ),
            // Vanishingly unlikely: the payload would have to be a full
            // canonical envelope.
            Ok(_) => prop_assert!(false, "garbage parsed as a request"),
        }
    }

    /// Every supported version decodes; a version-1 `submit_job` (which
    /// could carry neither options nor a `submit_token`) decodes to the
    /// documented defaults.
    #[test]
    fn versions_are_compatible(
        spec in arb_spec(),
        options in arb_options(),
        token in arb_token(),
        job in 0u64..1_000,
    ) {
        // Version 1: submit without options or token; polls unchanged.
        let v1 = encode_request_versioned(1, 3, &Request::SubmitJob {
            spec: spec.clone(),
            options: options.clone(),
            submit_token: token,
        });
        let (_, decoded, _) = decode_request(&v1)
            .map_err(|e| TestCaseError::fail(format!("v1 submit rejected: {e}")))?;
        prop_assert_eq!(
            decoded,
            Request::SubmitJob {
                spec: spec.clone(),
                options: JobOptions::default(),
                submit_token: None,
            }
        );
        for req in [
            Request::JobStatus { job },
            Request::CancelJob { job },
            Request::FetchResult { job },
        ] {
            for version in MIN_WIRE_VERSION..=WIRE_VERSION {
                let bytes = encode_request_versioned(version, 9, &req);
                let (_, decoded, _) = decode_request(&bytes)
                    .map_err(|e| TestCaseError::fail(format!("v{version} rejected: {e}")))?;
                prop_assert_eq!(&decoded, &req);
            }
        }
        // The current version round-trips options and token verbatim.
        let v2 = encode_request_versioned(WIRE_VERSION, 4, &Request::SubmitJob {
            spec: spec.clone(),
            options: options.clone(),
            submit_token: token,
        });
        let (_, decoded, _) = decode_request(&v2)
            .map_err(|e| TestCaseError::fail(format!("v{WIRE_VERSION} rejected: {e}")))?;
        prop_assert_eq!(decoded, Request::SubmitJob { spec, options, submit_token: token });
    }

    /// The `retry_after_ns` back-pressure hint survives the error
    /// envelope exactly — present round-trips the value, absent stays
    /// absent.
    #[test]
    fn retry_after_hints_round_trip(hint in arb_token(), n in 0u64..1_000) {
        let mut err = WireError::new(ErrorCode::QueueFull, format!("full {n}"));
        if let Some(ns) = hint {
            err = err.with_retry_after(ns);
        }
        let bytes = encode_response(n, &Response::Error(err.clone()));
        let (_, decoded, _) = decode_response(&bytes)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        match decoded {
            Response::Error(back) => {
                prop_assert_eq!(back.code, ErrorCode::QueueFull);
                prop_assert_eq!(back.retry_after_ns, hint);
            }
            other => prop_assert!(false, "unexpected response: {other:?}"),
        }
    }

    /// Splicing an *unregistered* numeric code into an error envelope
    /// decodes to the typed `unknown_error_code` fallback — a peer
    /// speaking a newer protocol revision cannot panic this side or get
    /// its error silently dropped.
    #[test]
    fn unregistered_error_codes_decode_typed(bogus in 1_000u64..1_000_000, n in 0u64..1_000) {
        let good = encode_response(n, &Response::Error(WireError::new(
            ErrorCode::Internal,
            "future error".to_string(),
        )));
        let (payload, _) = deframe(&good).expect("self-encoded frame");
        let text = std::str::from_utf8(payload).expect("canonical JSON is UTF-8");
        let spliced = text.replace(
            &format!("\"code\":{}", ErrorCode::Internal.code()),
            &format!("\"code\":{bogus}"),
        );
        prop_assert!(spliced != text, "splice must hit the code field");
        let (_, decoded, _) = decode_response(&frame(spliced.as_bytes()))
            .map_err(|e| TestCaseError::fail(format!("fallback failed: {e}")))?;
        match decoded {
            Response::Error(err) => {
                prop_assert_eq!(err.code, ErrorCode::UnknownErrorCode);
                prop_assert!(err.message.contains(&bogus.to_string()));
            }
            other => prop_assert!(false, "unexpected response: {other:?}"),
        }
    }

    /// Versions outside the supported window are `unsupported_version`,
    /// for requests and responses alike.
    #[test]
    fn unsupported_versions_are_rejected(version in 0u64..100, job in 0u64..1_000) {
        let version = if version <= WIRE_VERSION { 0 } else { version };
        // Splice the bad version into an otherwise-valid envelope.
        let good = encode_request(11, &Request::JobStatus { job });
        let (payload, _) = deframe(&good).expect("self-encoded frame");
        let text = std::str::from_utf8(payload).expect("canonical JSON is UTF-8");
        let spliced = text.replace(
            &format!("\"version\":{WIRE_VERSION}"),
            &format!("\"version\":{version}"),
        );
        prop_assert!(spliced != text, "splice must hit the version field");
        let bytes = frame(spliced.as_bytes());
        match decode_request(&bytes) {
            Err(e) => prop_assert_eq!(e.code, ErrorCode::UnsupportedVersion),
            Ok(_) => prop_assert!(false, "version {} accepted", version),
        }
        match decode_response(&bytes) {
            Err(e) => prop_assert_eq!(e.code, ErrorCode::UnsupportedVersion),
            Ok(_) => prop_assert!(false, "version {} accepted", version),
        }
    }

    /// Unknown message types are `unknown_request` — including types that
    /// exist but not at the envelope's version (`stream_telemetry` is a
    /// version-2 message and must not decode from a version-1 envelope).
    #[test]
    fn unknown_and_premature_types_are_rejected(job in 0u64..1_000, tag in 0u64..3) {
        let good = encode_request(13, &Request::StreamTelemetry { job });
        let (payload, _) = deframe(&good).expect("self-encoded frame");
        let text = std::str::from_utf8(payload).expect("canonical JSON is UTF-8");
        // Downgrade the envelope to version 1: the type predates it.
        let downgraded = text.replace(
            &format!("\"version\":{WIRE_VERSION}"),
            "\"version\":1",
        );
        match decode_request(&frame(downgraded.as_bytes())) {
            Err(e) => prop_assert_eq!(e.code, ErrorCode::UnknownRequest),
            Ok(_) => prop_assert!(false, "v1 stream_telemetry decoded"),
        }
        // A type nobody registered.
        let bogus = ["no_such_call", "submitjob", ""][tag as usize];
        let renamed =
            text.replace("\"type\":\"stream_telemetry\"", &format!("\"type\":{bogus:?}"));
        match decode_request(&frame(renamed.as_bytes())) {
            Err(e) => prop_assert_eq!(e.code, ErrorCode::UnknownRequest),
            Ok(_) => prop_assert!(false, "bogus type decoded"),
        }
    }
}

/// The error-code registry is closed under its own maps: codes are
/// unique, names are unique, and `from_code` inverts `code`.
#[test]
fn error_code_registry_is_consistent() {
    let mut codes = std::collections::HashSet::new();
    let mut names = std::collections::HashSet::new();
    for &ec in ERROR_CODES {
        assert!(codes.insert(ec.code()), "duplicate code {}", ec.code());
        assert!(names.insert(ec.name()), "duplicate name {}", ec.name());
        assert_eq!(ErrorCode::from_code(ec.code()), Some(ec));
    }
    assert_eq!(ErrorCode::from_code(0), None);
}

/// Every registered error code survives the wire exactly: code, name,
/// message, and (where attached) the retry hint all round-trip through
/// an error envelope. Exhaustive over the registry, not sampled — a new
/// code that forgets its decode arm fails here, not in production.
#[test]
fn every_error_code_round_trips_through_the_envelope() {
    for &ec in ERROR_CODES {
        let err = WireError::new(ec, format!("probe {}", ec.name())).with_retry_after(42);
        let bytes = encode_response(9, &Response::Error(err));
        let (rid, decoded, consumed) = decode_response(&bytes)
            .unwrap_or_else(|e| panic!("{} failed to decode: {e}", ec.name()));
        assert_eq!(rid, 9);
        assert_eq!(consumed, bytes.len());
        match decoded {
            Response::Error(back) => {
                assert_eq!(back.code, ec, "{} code drifted", ec.name());
                assert_eq!(back.message, format!("probe {}", ec.name()));
                assert_eq!(back.retry_after_ns, Some(42));
                // Re-encoding is byte-identical (canonical JSON).
                assert_eq!(encode_response(9, &Response::Error(back)), bytes);
            }
            other => panic!("{} decoded as {other:?}", ec.name()),
        }
    }
}
