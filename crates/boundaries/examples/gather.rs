use ddws_boundaries::{counting_relay, state_space_size};
fn main() {
    println!("E5: k | perfect | lossy");
    for k in 1..=5 {
        let (pc, pdb, pdom) = counting_relay(k, false, 2);
        let (lc, ldb, ldom) = counting_relay(k, true, 2);
        println!(
            "{k} | {} | {}",
            state_space_size(&pc, &pdb, &pdom, 10_000_000),
            state_space_size(&lc, &ldb, &ldom, 10_000_000)
        );
    }
}
