//! Two-counter (Minsky) machines — the Turing-complete device the paper's
//! undecidability reductions simulate with relaxed compositions.

/// One instruction of a two-counter machine; counters are indexed 0 and 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instruction {
    /// Increment the counter, continue at the next instruction.
    Inc(usize),
    /// If the counter is zero jump to the label; otherwise decrement and
    /// continue.
    DecOrJump(usize, usize),
    /// Unconditional jump.
    Jump(usize),
    /// Halt.
    Halt,
}

/// The result of a bounded simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The machine halted after the given number of steps, with the given
    /// maximum counter value reached along the way.
    Halted {
        /// Steps executed.
        steps: usize,
        /// Largest value either counter held.
        max_counter: usize,
    },
    /// The step budget ran out first.
    StillRunning,
}

/// A two-counter machine program.
#[derive(Clone, Debug)]
pub struct Machine {
    /// The program; execution starts at instruction 0.
    pub program: Vec<Instruction>,
}

impl Machine {
    /// Runs for at most `max_steps` steps from `(0, 0)`.
    pub fn run(&self, max_steps: usize) -> Outcome {
        let mut pc = 0usize;
        let mut counters = [0usize; 2];
        let mut max_counter = 0;
        for steps in 0..max_steps {
            match self.program.get(pc) {
                None | Some(Instruction::Halt) => {
                    return Outcome::Halted { steps, max_counter };
                }
                Some(Instruction::Inc(c)) => {
                    counters[*c] += 1;
                    max_counter = max_counter.max(counters[*c]);
                    pc += 1;
                }
                Some(Instruction::DecOrJump(c, target)) => {
                    if counters[*c] == 0 {
                        pc = *target;
                    } else {
                        counters[*c] -= 1;
                        pc += 1;
                    }
                }
                Some(Instruction::Jump(target)) => pc = *target,
            }
        }
        Outcome::StillRunning
    }

    /// A machine that counts to `n` and halts — its halting requires
    /// counter capacity `n`, making it the canonical witness that **no
    /// fixed queue bound suffices** when counters are encoded as queues
    /// (Corollary 3.6): each `n` needs a larger bound.
    pub fn count_to(n: usize) -> Machine {
        let mut program = Vec::new();
        for _ in 0..n {
            program.push(Instruction::Inc(0));
        }
        // Drain the counter, then halt.
        let drain = program.len();
        program.push(Instruction::DecOrJump(0, drain + 2));
        program.push(Instruction::Jump(drain));
        program.push(Instruction::Halt);
        Machine { program }
    }

    /// A trivially diverging machine.
    pub fn forever() -> Machine {
        Machine {
            program: vec![Instruction::Inc(0), Instruction::Jump(0)],
        }
    }

    /// `c1 := c0; c0 := 0` — the move loop every counter-machine
    /// construction is built from.
    pub fn move_counter() -> Machine {
        Machine {
            program: vec![
                // 0: if c0 == 0 jump to halt, else c0--
                Instruction::DecOrJump(0, 3),
                // 1: c1++
                Instruction::Inc(1),
                // 2: loop
                Instruction::Jump(0),
                // 3: halt
                Instruction::Halt,
            ],
        }
    }

    /// Computes `2^n` into counter 0 by repeated doubling — halting, but
    /// with counter heights exponential in the program's step budget, the
    /// standard witness that queue-length encodings need bounds that grow
    /// faster than any fixed `k`.
    pub fn power_of_two(n: usize) -> Machine {
        // c0 starts at 1 (one Inc), then n rounds of: move c0 to c1 while
        // incrementing c1 twice per unit (doubling into c1), then move back.
        let mut program = vec![Instruction::Inc(0)];
        for _ in 0..n {
            let base = program.len();
            // double c0 into c1
            program.push(Instruction::DecOrJump(0, base + 4)); // -> move-back
            program.push(Instruction::Inc(1));
            program.push(Instruction::Inc(1));
            program.push(Instruction::Jump(base));
            // move c1 back to c0
            let back = program.len();
            program.push(Instruction::DecOrJump(1, back + 3));
            program.push(Instruction::Inc(0));
            program.push(Instruction::Jump(back));
            // next round continues here
        }
        program.push(Instruction::Halt);
        Machine { program }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_to_halts_with_expected_height() {
        for n in [0, 1, 3, 7] {
            match Machine::count_to(n).run(10_000) {
                Outcome::Halted { max_counter, .. } => assert_eq!(max_counter, n),
                Outcome::StillRunning => panic!("count_to({n}) must halt"),
            }
        }
    }

    #[test]
    fn forever_never_halts_within_budget() {
        assert_eq!(Machine::forever().run(100_000), Outcome::StillRunning);
    }

    #[test]
    fn move_counter_transfers_everything() {
        // Seed c0 = 3 by prefixing three increments.
        let mut program = vec![
            Instruction::Inc(0),
            Instruction::Inc(0),
            Instruction::Inc(0),
        ];
        let body = Machine::move_counter().program;
        let offset = program.len();
        for ins in body {
            program.push(match ins {
                Instruction::DecOrJump(c, t) => Instruction::DecOrJump(c, t + offset),
                Instruction::Jump(t) => Instruction::Jump(t + offset),
                other => other,
            });
        }
        let m = Machine { program };
        assert!(matches!(m.run(1_000), Outcome::Halted { .. }));
    }

    #[test]
    fn power_of_two_reaches_exponential_heights() {
        for n in 0..6 {
            match Machine::power_of_two(n).run(2_000_000) {
                Outcome::Halted { max_counter, .. } => {
                    assert_eq!(max_counter, 1 << n, "2^{n}");
                }
                Outcome::StillRunning => panic!("power_of_two({n}) must halt"),
            }
        }
    }

    #[test]
    fn dec_or_jump_branches() {
        // dec on zero jumps; otherwise decrements.
        let m = Machine {
            program: vec![
                Instruction::Inc(1),
                Instruction::DecOrJump(1, 3),
                Instruction::DecOrJump(1, 3),
                Instruction::Halt,
            ],
        };
        assert!(matches!(m.run(100), Outcome::Halted { .. }));
    }
}
