//! State-space divergence gadgets.
//!
//! A sound-and-complete bounded checker meets an undecidable regime as
//! *unbounded growth*: whatever queue bound `k` you verify at, the gadget
//! has behaviours needing `k+1`. [`counting_relay`] is such a family — a
//! producer pushes distinguishable tokens through a **perfect** channel and
//! the consumer counts them; the reachable state space grows monotonically
//! with `k` (Corollary 3.6's trend, the engine of Theorem 3.7's proof),
//! whereas the *lossy* variant of the same composition saturates: dropped
//! messages mean larger bounds add no new reachable configurations beyond
//! the sender's horizon.

use ddws_model::{Composition, CompositionBuilder, Mover, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple, Value};
use std::collections::{HashSet, VecDeque};

/// A producer→consumer relay over one flat channel with queue bound `k`.
/// The producer emits tokens chosen from a database of `tokens` values; the
/// consumer records each received token.
pub fn counting_relay(k: usize, lossy: bool, tokens: usize) -> (Composition, Instance, Vec<Value>) {
    let mut b = CompositionBuilder::new();
    b.semantics(Semantics {
        queue_bound: k,
        ..Semantics::default()
    });
    b.default_lossy(lossy);
    b.channel("belt", 1, QueueKind::Flat, "Producer", "Consumer");
    // The producer sends *unconditionally* (no input gating): under perfect
    // channels every producer move extends the queue; under lossy channels
    // delivery is optional — exactly the distinction Theorem 3.7 exploits.
    b.peer("Producer")
        .database("stock", 1)
        .send_rule("belt", &["x"], "stock(x)");
    b.peer("Consumer")
        .state("got", 1)
        .state_insert_rule("got", &["x"], "?belt(x)");
    let mut comp = b.build().expect("relay is well-formed");
    // The experiment charts *configuration* growth; transition-scoped
    // bookkeeping flags would add lossy-only distinctions that are not the
    // point. Keep the consumer's memory live, mask the flags.
    let mut observed = std::collections::BTreeSet::new();
    observed.insert(comp.voc.lookup("Consumer.got").unwrap());
    comp.observe_flags(&observed);
    comp.freeze_unobserved(&observed);

    let mut db = Instance::empty(&comp.voc);
    let stock = comp.voc.lookup("Producer.stock").unwrap();
    let mut domain = Vec::new();
    for i in 0..tokens {
        let v = comp.symbols.intern(&format!("tok{i}"));
        db.relation_mut(stock).insert(Tuple::new(vec![v]));
        domain.push(v);
    }
    (comp, db, domain)
}

/// Exhaustively counts the reachable configurations of a composition over a
/// fixed database (the raw measure the divergence experiments chart).
pub fn state_space_size(comp: &Composition, db: &Instance, domain: &[Value], cap: usize) -> usize {
    let movers: Vec<Mover> = comp.movers();
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    for c in comp.initial_configs(db, domain) {
        if seen.insert(c.clone()) {
            queue.push_back(c);
        }
    }
    while let Some(c) = queue.pop_front() {
        if seen.len() >= cap {
            return seen.len();
        }
        for &m in &movers {
            for s in comp.successors(db, domain, &c, m) {
                if seen.insert(s.clone()) {
                    queue.push_back(s);
                }
            }
        }
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Perfect channels: every increase of the queue bound strictly grows
    /// the reachable space (queue contents are observable state) — the
    /// Corollary 3.6 trend.
    #[test]
    fn perfect_channel_state_space_diverges_with_bound() {
        let mut previous = 0;
        for k in 1..=4 {
            let (comp, db, domain) = counting_relay(k, false, 2);
            let size = state_space_size(&comp, &db, &domain, 1_000_000);
            assert!(
                size > previous,
                "bound {k}: {size} states, expected more than {previous}"
            );
            previous = size;
        }
    }

    /// Lossy channels subsume the perfect behaviours (delivery is one
    /// resolution of the nondeterminism) and add the short-queue ones —
    /// the extra runs are exactly what breaks the counting gadget's
    /// reliability and restores decidability.
    #[test]
    fn lossy_reaches_at_least_the_perfect_configurations() {
        for k in 2..=4 {
            let (pc, pdb, pdom) = counting_relay(k, false, 2);
            let (lc, ldb, ldom) = counting_relay(k, true, 2);
            let perfect = state_space_size(&pc, &pdb, &pdom, 1_000_000);
            let lossy = state_space_size(&lc, &ldb, &ldom, 1_000_000);
            assert!(
                lossy >= perfect,
                "bound {k}: lossy {lossy} vs perfect {perfect}"
            );
        }
    }

    /// The deterministic-send error flag (Theorem 3.8) is raised exactly
    /// when the send rule yields several candidates.
    #[test]
    fn deterministic_send_flag_is_observable() {
        let mut b = CompositionBuilder::new();
        b.semantics(Semantics {
            deterministic_send: true,
            ..Semantics::default()
        });
        b.default_lossy(true);
        b.channel("out", 1, QueueKind::Flat, "P", "R");
        b.peer("P")
            .database("d", 1)
            .send_rule("out", &["x"], "d(x)");
        b.peer("R");
        let mut comp = b.build().unwrap();
        let d = comp.voc.lookup("P.d").unwrap();
        let mut db = Instance::empty(&comp.voc);
        let a = comp.symbols.intern("a");
        let bb = comp.symbols.intern("b");
        db.relation_mut(d).insert(Tuple::new(vec![a]));
        db.relation_mut(d).insert(Tuple::new(vec![bb]));
        let domain = vec![a, bb];
        let p = comp.peer_by_name("P").unwrap().id;
        let init = comp.initial_configs(&db, &domain).remove(0);
        let succs = comp.successors(&db, &domain, &init, Mover::Peer(p));
        let (out, _) = comp.channel_by_name("out").unwrap();
        assert!(succs.iter().all(|c| c.error[out.index()]));
    }

    /// The nested-message emptiness test of Theorem 3.9 is modelled (and
    /// rejected by the input-boundedness checker elsewhere).
    #[test]
    fn msg_emptiness_proposition_exists_for_nested_channels() {
        let mut b = CompositionBuilder::new();
        b.channel("set", 1, QueueKind::Nested, "P", "R");
        b.peer("P")
            .database("d", 1)
            .send_rule("set", &["x"], "d(x)");
        b.peer("R");
        let comp = b.build().unwrap();
        assert!(comp.voc.lookup("R.msgempty_set").is_some());
    }
}
