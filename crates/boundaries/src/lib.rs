//! # `ddws-boundaries` — the undecidability boundary, executably
//!
//! The negative results of the paper (Corollary 3.6, Theorems 3.7–3.10,
//! 4.3, 4.6, 5.5) say that relaxing any single restriction of the decidable
//! regime lets compositions simulate Turing-complete devices. A bounded
//! model checker cannot *decide* an undecidable problem, so this crate
//! witnesses the boundary the only honest way a tool can:
//!
//! * [`minsky`] — a two-counter (Minsky) machine simulator, the
//!   Turing-complete device the reductions bottom out in;
//! * [`gadgets`] — composition families that make the verifier's state
//!   space **diverge** along exactly the axes the theorems name: growing
//!   the queue bound of perfect channels grows the reachable space without
//!   a fixpoint (Corollary 3.6 / Theorem 3.7), while the lossy regime
//!   collapses it; the deterministic-send error flag (Theorem 3.8) and the
//!   nested-emptiness test (Theorem 3.9) add observations that the
//!   decidable fragment forbids.
//!
//! EXPERIMENTS.md (E5) charts the divergence; the `reduction` module of
//! `ddws-verifier` shows the complementary positive side (perfect flat
//! channels are exactly the case its encoding cannot express).

#![warn(missing_docs)]
pub mod gadgets;
pub mod minsky;

pub use gadgets::{counting_relay, state_space_size};
pub use minsky::{Instruction, Machine, Outcome};
