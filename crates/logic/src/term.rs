//! Terms: variables and constants.

use crate::vars::{Valuation, VarId};
use ddws_relational::Value;
use std::fmt;

/// A term of the logic: a variable or an (interned) constant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A logical variable.
    Var(VarId),
    /// A constant from the shared symbol table.
    Const(Value),
}

impl Term {
    /// Evaluates the term under `val`.
    ///
    /// # Panics
    /// Panics if the term is an unbound variable.
    #[inline]
    pub fn eval(&self, val: &Valuation) -> Value {
        match *self {
            Term::Var(v) => val.expect(v),
            Term::Const(c) => c,
        }
    }

    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<VarId> {
        match *self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Whether the term is a constant (a *ground* term).
    pub fn is_ground(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v:?}"),
            Term::Const(c) => write!(f, "{c:?}"),
        }
    }
}

impl From<VarId> for Term {
    fn from(v: VarId) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_const_and_var() {
        let mut val = Valuation::with_capacity(1);
        val.set(VarId(0), Value(9));
        assert_eq!(Term::Const(Value(3)).eval(&val), Value(3));
        assert_eq!(Term::Var(VarId(0)).eval(&val), Value(9));
    }

    #[test]
    fn groundness() {
        assert!(Term::Const(Value(0)).is_ground());
        assert!(!Term::Var(VarId(0)).is_ground());
        assert_eq!(Term::Var(VarId(2)).as_var(), Some(VarId(2)));
    }
}
