//! The **input-boundedness** restriction of §3.1.
//!
//! Input-boundedness is the syntactic restriction that makes verification
//! decidable (Theorem 3.4): quantified variables may range only over the
//! active domain of current inputs, previous inputs, and the first messages
//! of *flat* queues. Concretely, every quantifier must appear in one of the
//! guarded forms
//!
//! ```text
//! ∃x̄ (α ∧ φ)        ∀x̄ (α → φ)
//! ```
//!
//! where `α` is an atom over `I ∪ PrevI ∪ Qf_in ∪ Qf_out` with
//! `x̄ ⊆ free(α)`, and no variable of `x̄` occurs in any state, action, or
//! nested-queue atom of `φ`.
//!
//! A *peer* is input-bounded iff its state, action, and nested-queue send
//! rules are input-bounded formulas, and its input rules and flat-queue send
//! rules are `∃*FO` formulas whose state and nested-queue atoms are ground.
//! An LTL-FO sentence is input-bounded iff all of its FO subformulas are.
//!
//! The checker is parameterized by a [`SchemaClassifier`], provided by the
//! model layer, mapping each relation symbol to its [`RelClass`].

use crate::fo::Fo;
use crate::ltl::{LtlFo, LtlFoSentence};
use crate::term::Term;
use crate::vars::VarId;
use ddws_relational::RelId;
use std::collections::BTreeSet;
use std::fmt;

/// The role a relation symbol plays in a composition schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelClass {
    /// Fixed database relation (`W.D`).
    Database,
    /// Mutable state relation (`W.S`), excluding queue states.
    State,
    /// Queue-state proposition `emptyQ` (formally part of `W.S`).
    QueueState,
    /// User-input relation (`W.I`).
    Input,
    /// Previous-input relation (`prevI`, possibly with k-lookback).
    PrevInput,
    /// Action relation (`W.A`).
    Action,
    /// Flat in-queue (`W.Qf_in`).
    InFlat,
    /// Nested in-queue (`W.Qn_in`).
    InNested,
    /// Flat out-queue (`W.Qf_out`).
    OutFlat,
    /// Nested out-queue (`W.Qn_out`).
    OutNested,
    /// Framework bookkeeping proposition (`moveW`, `moveE`, `receivedQ`,
    /// `enqueuedQ`, `errorQ`, …). Always propositional.
    Bookkeeping,
    /// The nested-message emptiness test of Theorem 3.9 — *outside* the
    /// input-bounded language; allowing it breaks decidability.
    MsgEmptinessTest,
}

impl RelClass {
    /// Whether an atom of this class may guard a quantifier block.
    fn guard_eligible(self, opts: IbOptions) -> bool {
        matches!(
            self,
            RelClass::Input | RelClass::PrevInput | RelClass::InFlat | RelClass::OutFlat
        ) || (opts.allow_database_guards && self == RelClass::Database)
    }

    /// Whether quantified variables are forbidden from occurring in atoms
    /// of this class.
    ///
    /// The paper lists state, action and nested *in*-queue atoms; we also
    /// forbid nested *out*-queue atoms (reachable only from properties),
    /// since a quantified variable there would range over unbounded message
    /// content for exactly the reason nested in-queues are excluded.
    fn forbidden_for_quantified(self) -> bool {
        matches!(
            self,
            RelClass::State | RelClass::Action | RelClass::InNested | RelClass::OutNested
        )
    }
}

/// Maps relation symbols to their schema class.
pub trait SchemaClassifier {
    /// The class of `rel`.
    fn class(&self, rel: RelId) -> RelClass;

    /// Display name for diagnostics.
    fn rel_name(&self, rel: RelId) -> String;
}

/// A single input-boundedness violation, for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IbViolation {
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for IbViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Options for the checker.
#[derive(Clone, Copy, Debug)]
pub struct IbOptions {
    /// Permit the `MsgEmptinessTest` propositions (Theorem 3.9 relaxation;
    /// verification becomes undecidable in general). Used by the
    /// `boundaries` crate to build counterexample specifications.
    pub allow_nested_emptiness_tests: bool,
    /// Permit **database** atoms as quantifier guards, in addition to the
    /// input/previous-input/flat-queue atoms §3.1 lists.
    ///
    /// The paper's own running example needs this reading: rules (4)–(6) of
    /// Example 2.2 quantify `∃ssn` guarded only by the database atom
    /// `customer(id, ssn, name)`, yet Example 3.3 declares peer `O`
    /// input-bounded. Defaults to `true`; set to `false` for the strict
    /// letter of §3.1.
    pub allow_database_guards: bool,
}

impl Default for IbOptions {
    fn default() -> Self {
        IbOptions {
            allow_nested_emptiness_tests: false,
            allow_database_guards: true,
        }
    }
}

/// Checks that `fo` is an input-bounded formula.
pub fn check_input_bounded_fo(
    fo: &Fo,
    classifier: &dyn SchemaClassifier,
    opts: IbOptions,
) -> Result<(), Vec<IbViolation>> {
    let mut violations = Vec::new();
    check_fo(fo, classifier, opts, &mut violations);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

fn check_fo(fo: &Fo, cl: &dyn SchemaClassifier, opts: IbOptions, out: &mut Vec<IbViolation>) {
    match fo {
        Fo::True | Fo::False | Fo::Eq(..) => {}
        Fo::Atom(rel, _) => {
            if cl.class(*rel) == RelClass::MsgEmptinessTest && !opts.allow_nested_emptiness_tests {
                out.push(IbViolation {
                    message: format!(
                        "emptiness test `{}` on a nested message is outside the \
                         input-bounded language (Theorem 3.9)",
                        cl.rel_name(*rel)
                    ),
                });
            }
        }
        Fo::Not(f) => check_fo(f, cl, opts, out),
        Fo::And(fs) | Fo::Or(fs) => {
            for f in fs {
                check_fo(f, cl, opts, out);
            }
        }
        Fo::Implies(a, b) => {
            check_fo(a, cl, opts, out);
            check_fo(b, cl, opts, out);
        }
        Fo::Exists(vars, body) => check_quant(vars, body, false, cl, opts, out),
        Fo::Forall(vars, body) => check_quant(vars, body, true, cl, opts, out),
    }
}

/// Checks one quantifier block: locate the guard atom, verify coverage and
/// the forbidden-atom condition, then recurse.
fn check_quant(
    vars: &[VarId],
    body: &Fo,
    universal: bool,
    cl: &dyn SchemaClassifier,
    opts: IbOptions,
    out: &mut Vec<IbViolation>,
) {
    let xs: BTreeSet<VarId> = vars.iter().copied().collect();

    // Candidate guards and the residue to which the forbidden-atom check
    // applies. For ∃x̄ (α ∧ φ) the guard is a conjunct; for ∀x̄ (α → φ) it is
    // the antecedent. We accept any qualifying conjunct as the guard (the
    // strict `α ∧ φ` form is recovered by reassociating the conjunction).
    let guard_found = match (universal, body) {
        (false, Fo::And(conjuncts)) => conjuncts
            .iter()
            .any(|c| qualifies_as_guard(c, &xs, cl, opts)),
        (false, single) => qualifies_as_guard(single, &xs, cl, opts),
        (true, Fo::Implies(ante, _)) => qualifies_as_guard(ante, &xs, cl, opts),
        // ∀x̄ (¬α ∨ φ) is the desugared implication.
        (true, Fo::Or(disjuncts)) => disjuncts.iter().any(|d| match d {
            Fo::Not(inner) => qualifies_as_guard(inner, &xs, cl, opts),
            _ => false,
        }),
        (true, _) => false,
    };

    if !guard_found {
        out.push(IbViolation {
            message: format!(
                "{} block over {:?} lacks a guard atom over inputs, previous inputs \
                 or flat queues covering all quantified variables (§3.1)",
                if universal { "forall" } else { "exists" },
                xs
            ),
        });
    }

    // Forbidden classes: no quantified variable may appear in a state,
    // action or nested-queue atom anywhere in the body (the guard itself
    // can never be of such a class).
    body.visit_atoms(&mut |rel, args| {
        if cl.class(rel).forbidden_for_quantified() {
            for t in args {
                if let Term::Var(v) = t {
                    if xs.contains(v) {
                        out.push(IbViolation {
                            message: format!(
                                "quantified variable appears in {:?}-class atom `{}` (§3.1)",
                                cl.class(rel),
                                cl.rel_name(rel)
                            ),
                        });
                    }
                }
            }
        }
    });

    check_fo(body, cl, opts, out);
}

/// Whether `candidate` is an atom over a guard-eligible class whose free
/// variables cover the quantified block.
fn qualifies_as_guard(
    candidate: &Fo,
    xs: &BTreeSet<VarId>,
    cl: &dyn SchemaClassifier,
    opts: IbOptions,
) -> bool {
    match candidate {
        Fo::Atom(rel, args) if cl.class(*rel).guard_eligible(opts) => {
            let guard_vars: BTreeSet<VarId> = args.iter().filter_map(Term::as_var).collect();
            xs.is_subset(&guard_vars)
        }
        _ => false,
    }
}

/// Checks the `∃*FO`-with-ground-atoms condition required of input rules and
/// flat-queue send rules.
pub fn check_exists_star_ground(
    fo: &Fo,
    classifier: &dyn SchemaClassifier,
) -> Result<(), Vec<IbViolation>> {
    let mut violations = Vec::new();
    if !fo.is_exists_star() {
        violations.push(IbViolation {
            message: "input and flat-queue send rules must be ∃*FO (existential prefix \
                      over a quantifier-free matrix, §3.1)"
                .into(),
        });
    }
    fo.visit_atoms(&mut |rel, args| {
        let class = classifier.class(rel);
        let must_be_ground = matches!(
            class,
            RelClass::State | RelClass::InNested | RelClass::OutNested
        );
        if must_be_ground && args.iter().any(|t| !t.is_ground()) {
            violations.push(IbViolation {
                message: format!(
                    "{:?}-class atom `{}` in an input/flat-send rule must be ground \
                     (§3.1; relaxing this is Theorem 3.10)",
                    class,
                    classifier.rel_name(rel)
                ),
            });
        }
    });
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Checks that every FO subformula of an LTL-FO formula is input-bounded.
pub fn check_input_bounded_ltlfo(
    f: &LtlFo,
    classifier: &dyn SchemaClassifier,
    opts: IbOptions,
) -> Result<(), Vec<IbViolation>> {
    let mut violations = Vec::new();
    f.visit_fo(&mut |fo| {
        check_fo(fo, classifier, opts, &mut violations);
    });
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Checks that a sentence is input-bounded.
pub fn check_input_bounded_sentence(
    s: &LtlFoSentence,
    classifier: &dyn SchemaClassifier,
    opts: IbOptions,
) -> Result<(), Vec<IbViolation>> {
    check_input_bounded_ltlfo(&s.body, classifier, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_fo, Resolver};
    use crate::vars::Vars;
    use ddws_relational::{Symbols, Vocabulary};

    struct TestClassifier {
        voc: Vocabulary,
    }

    impl SchemaClassifier for TestClassifier {
        fn class(&self, rel: RelId) -> RelClass {
            match self.voc.name(rel) {
                n if n.starts_with("db_") => RelClass::Database,
                n if n.starts_with("st_") => RelClass::State,
                n if n.starts_with("in_") => RelClass::Input,
                n if n.starts_with("prev_") => RelClass::PrevInput,
                n if n.starts_with("qf_") => RelClass::InFlat,
                n if n.starts_with("qn_") => RelClass::InNested,
                n if n.starts_with("of_") => RelClass::OutFlat,
                n if n.starts_with("on_") => RelClass::OutNested,
                n if n.starts_with("ax_") => RelClass::Action,
                _ => RelClass::Bookkeeping,
            }
        }
        fn rel_name(&self, rel: RelId) -> String {
            self.voc.name(rel).to_owned()
        }
    }

    fn fixture() -> (TestClassifier, Vars, Symbols) {
        let mut voc = Vocabulary::new();
        for (name, arity) in [
            ("db_customer", 2),
            ("st_pending", 1),
            ("in_choice", 2),
            ("prev_choice", 2),
            ("qf_msg", 1),
            ("qn_hist", 2),
            ("of_req", 1),
            ("ax_letter", 1),
        ] {
            voc.declare(name, arity).unwrap();
        }
        (TestClassifier { voc }, Vars::new(), Symbols::new())
    }

    fn check(src: &str) -> Result<(), Vec<IbViolation>> {
        let (cl, mut vars, mut symbols) = fixture();
        let fo = {
            let mut r = Resolver {
                voc: &cl.voc,
                vars: &mut vars,
                symbols: &mut symbols,
            };
            parse_fo(src, &mut r).unwrap()
        };
        check_input_bounded_fo(&fo, &cl, IbOptions::default())
    }

    #[test]
    fn guarded_quantifiers_accepted() {
        // ∃x (input guard ∧ database atom): the guard covers x.
        assert!(check("exists x, y: in_choice(x, y) and db_customer(x, y)").is_ok());
        // ∀ with flat-queue guard.
        assert!(check("forall x: qf_msg(x) -> db_customer(x, x)").is_ok());
        // Guard may be any conjunct, not just the first.
        assert!(check("exists x: db_customer(x, x) and prev_choice(x, x)").is_ok());
    }

    fn check_strict(src: &str) -> Result<(), Vec<IbViolation>> {
        let (cl, mut vars, mut symbols) = fixture();
        let fo = {
            let mut r = Resolver {
                voc: &cl.voc,
                vars: &mut vars,
                symbols: &mut symbols,
            };
            parse_fo(src, &mut r).unwrap()
        };
        check_input_bounded_fo(
            &fo,
            &cl,
            IbOptions {
                allow_database_guards: false,
                ..IbOptions::default()
            },
        )
    }

    #[test]
    fn unguarded_quantifier_rejected() {
        // Database atoms cannot guard under the strict §3.1 reading...
        let err = check_strict("exists x: db_customer(x, x)").unwrap_err();
        assert!(err[0].message.contains("guard"));
        // ...but do guard under the default reading (Example 3.3 needs it).
        assert!(check("exists x: db_customer(x, x)").is_ok());
        // Guard does not cover all variables (either reading).
        let err = check("exists x, y: qf_msg(x) and st_pending(y)").unwrap_err();
        assert!(err.iter().any(|v| v.message.contains("guard")));
        let err = check_strict("exists x, y: qf_msg(x) and db_customer(x, y)").unwrap_err();
        assert!(err[0].message.contains("guard"));
    }

    #[test]
    fn nested_queue_guard_rejected() {
        let err = check("exists x, y: qn_hist(x, y)").unwrap_err();
        assert!(err[0].message.contains("guard"));
    }

    #[test]
    fn quantified_vars_forbidden_in_state_atoms() {
        // Guard covers x, but x flows into a state atom.
        let err = check("exists x, y: in_choice(x, y) and st_pending(x)").unwrap_err();
        assert!(err.iter().any(|v| v.message.contains("State")));
        // ... and into nested-queue atoms.
        let err = check("exists x, y: in_choice(x, y) and qn_hist(x, y)").unwrap_err();
        assert!(err.iter().any(|v| v.message.contains("InNested")));
        // Free variables (not quantified) in state atoms are fine.
        assert!(check("st_pending(z) and (exists x, y: in_choice(x, y))").is_ok());
    }

    #[test]
    fn ground_state_atoms_under_quantifier_are_fine() {
        assert!(check("exists x: qf_msg(x) and st_pending(\"c\")").is_ok());
    }

    #[test]
    fn exists_star_ground_check() {
        let (cl, mut vars, mut symbols) = fixture();
        let parse = |src: &str, vars: &mut Vars, symbols: &mut Symbols| {
            let mut r = Resolver {
                voc: &cl.voc,
                vars,
                symbols,
            };
            parse_fo(src, &mut r).unwrap()
        };
        // ∃*FO with ground state atom: OK.
        let ok = parse(
            "exists x: db_customer(x, x) and st_pending(\"c\")",
            &mut vars,
            &mut symbols,
        );
        assert!(check_exists_star_ground(&ok, &cl).is_ok());
        // Universal quantifier: rejected.
        let bad = parse(
            "forall x: qf_msg(x) -> db_customer(x, x)",
            &mut vars,
            &mut symbols,
        );
        assert!(check_exists_star_ground(&bad, &cl).is_err());
        // Non-ground state atom: rejected (Theorem 3.10 relaxation).
        let bad2 = parse("st_pending(x)", &mut vars, &mut symbols);
        let err = check_exists_star_ground(&bad2, &cl).unwrap_err();
        assert!(err[0].message.contains("ground"));
        // Non-ground nested queue atom: rejected.
        let bad3 = parse("qn_hist(x, \"c\")", &mut vars, &mut symbols);
        assert!(check_exists_star_ground(&bad3, &cl).is_err());
    }

    #[test]
    fn ltlfo_checks_all_fo_leaves() {
        let (cl, mut vars, mut symbols) = fixture();
        let f = {
            let mut r = Resolver {
                voc: &cl.voc,
                vars: &mut vars,
                symbols: &mut symbols,
            };
            crate::parser::parse_ltlfo(
                "G ((exists x: st_pending(x)) -> F st_pending(\"c\"))",
                &mut r,
            )
            .unwrap()
        };
        let err = check_input_bounded_ltlfo(&f, &cl, IbOptions::default()).unwrap_err();
        assert!(!err.is_empty());
    }
}
