//! # `ddws-logic` — FO and LTL-FO over relational snapshots
//!
//! The property language of the paper (Section 3) is **LTL-FO**: first-order
//! logic closed under negation, disjunction and the temporal operators `X`
//! and `U`, with quantifiers confined to first-order subformulas except for
//! the outermost universal closure. This crate provides:
//!
//! * [`Vars`] / [`VarId`] / [`Valuation`] — variable interning and bindings,
//! * [`Fo`] — first-order formulas over a [`Vocabulary`](ddws_relational::Vocabulary),
//! * [`LtlFo`] / [`LtlFoSentence`] — temporal formulas and universally closed
//!   sentences,
//! * a text [`parser`] and [`pretty`]-printer for both,
//! * [`eval`] — FO evaluation over the [`Structure`](eval::Structure) trait
//!   (snapshots of runs implement it), plus a three-valued evaluator used by
//!   the verifier's lazy database oracle,
//! * [`input_bounded`] — the syntactic **input-boundedness** checker of
//!   §3.1, the restriction that buys decidability (Theorem 3.4),
//! * relativized temporal operators `Xα`/`Uα` (§5) as syntactic rewrites.

#![warn(missing_docs)]
pub mod compile;
pub mod enumerate;
pub mod eval;
pub mod fo;
pub mod input_bounded;
pub mod ltl;
pub mod parser;
pub mod pretty;
pub mod term;
pub mod vars;

pub use compile::{compile_rule, eval_plan, Plan};
pub use enumerate::satisfying_valuations;
pub use eval::{eval_fo, Structure};
pub use fo::Fo;
pub use input_bounded::{RelClass, SchemaClassifier};
pub use ltl::{LtlFo, LtlFoSentence};
pub use parser::{parse_fo, parse_ltlfo, parse_sentence, ParseError, Resolver};
pub use term::Term;
pub use vars::{Valuation, VarId, Vars};
