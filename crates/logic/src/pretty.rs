//! Pretty-printing of formulas in the concrete syntax of [`crate::parser`].
//!
//! `parse(print(f)) == f` up to derived-operator expansion: printing emits
//! the core connectives (`not`, `and`, `or`, `->`, `X`, `U`), so formulas
//! built from `F`/`G`/`B` print in expanded form, which re-parses to the
//! same AST.

use crate::fo::Fo;
use crate::ltl::{LtlFo, LtlFoSentence};
use crate::term::Term;
use crate::vars::Vars;
use ddws_relational::{Symbols, Vocabulary};
use std::fmt;

/// Display context: the three name tables.
#[derive(Clone, Copy)]
pub struct Names<'a> {
    /// Relation names.
    pub voc: &'a Vocabulary,
    /// Variable names.
    pub vars: &'a Vars,
    /// Constant names.
    pub symbols: &'a Symbols,
}

impl<'a> Names<'a> {
    /// Bundles the three name tables.
    pub fn new(voc: &'a Vocabulary, vars: &'a Vars, symbols: &'a Symbols) -> Self {
        Names { voc, vars, symbols }
    }

    /// Renders a term.
    pub fn term(&self, t: &Term) -> String {
        match t {
            Term::Var(v) => self.vars.name(*v).to_owned(),
            Term::Const(c) => format!("\"{}\"", self.symbols.name(*c)),
        }
    }

    /// Renders an FO formula.
    pub fn fo(&self, f: &Fo) -> String {
        let mut s = String::new();
        self.write_fo(&mut s, f).expect("string write");
        s
    }

    /// Renders an LTL-FO formula.
    pub fn ltlfo(&self, f: &LtlFo) -> String {
        let mut s = String::new();
        self.write_ltl(&mut s, f).expect("string write");
        s
    }

    /// Renders a sentence with its universal closure.
    pub fn sentence(&self, s: &LtlFoSentence) -> String {
        if s.universal_vars.is_empty() {
            self.ltlfo(&s.body)
        } else {
            let vars: Vec<&str> = s
                .universal_vars
                .iter()
                .map(|&v| self.vars.name(v))
                .collect();
            format!("forall {}: {}", vars.join(", "), self.ltlfo(&s.body))
        }
    }

    fn write_fo(&self, out: &mut String, f: &Fo) -> fmt::Result {
        use fmt::Write;
        match f {
            Fo::True => write!(out, "true"),
            Fo::False => write!(out, "false"),
            Fo::Atom(rel, args) => {
                write!(out, "{}", self.voc.name(*rel))?;
                if !args.is_empty() {
                    write!(out, "(")?;
                    for (i, t) in args.iter().enumerate() {
                        if i > 0 {
                            write!(out, ", ")?;
                        }
                        write!(out, "{}", self.term(t))?;
                    }
                    write!(out, ")")?;
                }
                Ok(())
            }
            Fo::Eq(a, b) => write!(out, "{} = {}", self.term(a), self.term(b)),
            Fo::Not(g) => {
                // `x != y` sugar for readability.
                if let Fo::Eq(a, b) = g.as_ref() {
                    write!(out, "{} != {}", self.term(a), self.term(b))
                } else {
                    write!(out, "not ")?;
                    self.write_fo_paren(out, g)
                }
            }
            Fo::And(fs) => self.write_fo_nary(out, fs, "and", "true"),
            Fo::Or(fs) => self.write_fo_nary(out, fs, "or", "false"),
            Fo::Implies(a, b) => {
                self.write_fo_paren(out, a)?;
                write!(out, " -> ")?;
                self.write_fo_paren(out, b)
            }
            Fo::Exists(vs, g) => self.write_quant(out, "exists", vs, g),
            Fo::Forall(vs, g) => self.write_quant(out, "forall", vs, g),
        }
    }

    fn write_quant(&self, out: &mut String, kw: &str, vs: &[crate::VarId], g: &Fo) -> fmt::Result {
        use fmt::Write;
        write!(out, "({kw} ")?;
        for (i, &v) in vs.iter().enumerate() {
            if i > 0 {
                write!(out, ", ")?;
            }
            write!(out, "{}", self.vars.name(v))?;
        }
        write!(out, ": ")?;
        self.write_fo(out, g)?;
        write!(out, ")")
    }

    fn write_fo_nary(&self, out: &mut String, fs: &[Fo], op: &str, empty: &str) -> fmt::Result {
        use fmt::Write;
        if fs.is_empty() {
            return write!(out, "{empty}");
        }
        for (i, f) in fs.iter().enumerate() {
            if i > 0 {
                write!(out, " {op} ")?;
            }
            self.write_fo_paren(out, f)?;
        }
        Ok(())
    }

    fn write_fo_paren(&self, out: &mut String, f: &Fo) -> fmt::Result {
        use fmt::Write;
        let atomic = matches!(
            f,
            Fo::True | Fo::False | Fo::Atom(..) | Fo::Eq(..) | Fo::Exists(..) | Fo::Forall(..)
        ) || matches!(f, Fo::Not(inner) if matches!(inner.as_ref(), Fo::Eq(..)));
        if atomic {
            self.write_fo(out, f)
        } else {
            write!(out, "(")?;
            self.write_fo(out, f)?;
            write!(out, ")")
        }
    }

    fn write_ltl(&self, out: &mut String, f: &LtlFo) -> fmt::Result {
        use fmt::Write;
        match f {
            LtlFo::Fo(g) => self.write_fo(out, g),
            LtlFo::Not(g) => {
                write!(out, "not ")?;
                self.write_ltl_paren(out, g)
            }
            LtlFo::And(fs) => self.write_ltl_nary(out, fs, "and", "true"),
            LtlFo::Or(fs) => self.write_ltl_nary(out, fs, "or", "false"),
            LtlFo::Implies(a, b) => {
                self.write_ltl_paren(out, a)?;
                write!(out, " -> ")?;
                self.write_ltl_paren(out, b)
            }
            LtlFo::X(g) => {
                write!(out, "X ")?;
                self.write_ltl_paren(out, g)
            }
            LtlFo::U(a, b) => {
                self.write_ltl_paren(out, a)?;
                write!(out, " U ")?;
                self.write_ltl_paren(out, b)
            }
        }
    }

    fn write_ltl_nary(&self, out: &mut String, fs: &[LtlFo], op: &str, empty: &str) -> fmt::Result {
        use fmt::Write;
        if fs.is_empty() {
            return write!(out, "{empty}");
        }
        for (i, f) in fs.iter().enumerate() {
            if i > 0 {
                write!(out, " {op} ")?;
            }
            self.write_ltl_paren(out, f)?;
        }
        Ok(())
    }

    fn write_ltl_paren(&self, out: &mut String, f: &LtlFo) -> fmt::Result {
        use fmt::Write;
        match f {
            LtlFo::Fo(g) => self.write_fo_paren(out, g),
            _ => {
                write!(out, "(")?;
                self.write_ltl(out, f)?;
                write!(out, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_ltlfo, Resolver};
    use crate::vars::Vars;

    #[test]
    fn roundtrip_through_printer() {
        let mut voc = Vocabulary::new();
        voc.declare("p", 1).unwrap();
        voc.declare("q", 2).unwrap();
        voc.declare("flag", 0).unwrap();
        let mut vars = Vars::new();
        let mut symbols = Symbols::new();
        let sources = [
            "p(x)",
            "q(x, \"c\") and flag",
            "not (p(x) or flag)",
            "x != y",
            "(exists x: p(x) and q(x, y)) -> flag",
            "X (flag U p(x))",
            "G (p(x) -> F q(x, x))",
            "forall z: p(z) -> flag",
        ];
        for src in sources {
            let f1 = {
                let mut r = Resolver {
                    voc: &voc,
                    vars: &mut vars,
                    symbols: &mut symbols,
                };
                parse_ltlfo(src, &mut r).unwrap_or_else(|e| panic!("{src}: {e}"))
            };
            let printed = Names::new(&voc, &vars, &symbols).ltlfo(&f1);
            let f2 = {
                let mut r = Resolver {
                    voc: &voc,
                    vars: &mut vars,
                    symbols: &mut symbols,
                };
                parse_ltlfo(&printed, &mut r)
                    .unwrap_or_else(|e| panic!("reparse of `{printed}`: {e}"))
            };
            assert_eq!(f1, f2, "roundtrip failed for `{src}` via `{printed}`");
        }
    }
}
