//! FO evaluation over finite structures.
//!
//! Quantifiers range over the structure's [`domain`](Structure::domain) —
//! in verification this is the finite small-model domain, which subsumes the
//! run's active domain (the paper's semantics). A three-valued evaluator
//! supports the verifier's lazy database oracle: facts of the fixed database
//! may be *undecided*, and evaluation either resolves the formula anyway or
//! reports one undecided ground fact to branch the search on.

use crate::fo::Fo;
use crate::vars::{Valuation, VarId};
use ddws_relational::{RelId, Value};

/// A finite relational structure as seen by the evaluator.
pub trait Structure {
    /// Membership of a ground tuple in a relation.
    fn contains(&self, rel: RelId, tuple: &[Value]) -> bool;

    /// The quantification domain.
    fn domain(&self) -> &[Value];

    /// Enumerates the relation's tuples, if the structure can. `None` means
    /// "not enumerable" (e.g. a database relation whose facts are decided
    /// lazily); callers then fall back to domain-cube enumeration plus
    /// [`contains`](Structure::contains) checks. Implementations returning
    /// `Some` make rule evaluation linear in the relation size instead of
    /// exponential in the atom's unbound positions.
    fn scan(&self, rel: RelId) -> Option<Vec<Vec<Value>>> {
        let _ = rel;
        None
    }
}

/// Evaluates a formula under `val`; every free variable of `fo` must be
/// bound in `val`.
pub fn eval_fo<S: Structure + ?Sized>(fo: &Fo, structure: &S, val: &mut Valuation) -> bool {
    let mut scratch = Vec::with_capacity(8);
    eval_rec(fo, structure, val, &mut scratch)
}

fn eval_rec<S: Structure + ?Sized>(
    fo: &Fo,
    s: &S,
    val: &mut Valuation,
    scratch: &mut Vec<Value>,
) -> bool {
    match fo {
        Fo::True => true,
        Fo::False => false,
        Fo::Atom(rel, args) => {
            scratch.clear();
            scratch.extend(args.iter().map(|t| t.eval(val)));
            s.contains(*rel, scratch)
        }
        Fo::Eq(a, b) => a.eval(val) == b.eval(val),
        Fo::Not(f) => !eval_rec(f, s, val, scratch),
        Fo::And(fs) => fs.iter().all(|f| eval_rec(f, s, val, scratch)),
        Fo::Or(fs) => fs.iter().any(|f| eval_rec(f, s, val, scratch)),
        Fo::Implies(a, b) => !eval_rec(a, s, val, scratch) || eval_rec(b, s, val, scratch),
        Fo::Exists(vars, f) => eval_quant(vars, f, s, val, scratch, true),
        Fo::Forall(vars, f) => eval_quant(vars, f, s, val, scratch, false),
    }
}

/// Enumerates assignments of `vars` over the domain; `existential` selects
/// between ∃ (any) and ∀ (all).
fn eval_quant<S: Structure + ?Sized>(
    vars: &[VarId],
    body: &Fo,
    s: &S,
    val: &mut Valuation,
    scratch: &mut Vec<Value>,
    existential: bool,
) -> bool {
    fn go<S: Structure + ?Sized>(
        vars: &[VarId],
        body: &Fo,
        s: &S,
        val: &mut Valuation,
        scratch: &mut Vec<Value>,
        existential: bool,
    ) -> bool {
        match vars.split_first() {
            None => eval_rec(body, s, val, scratch),
            Some((&v, rest)) => {
                // Save any outer binding: quantifiers may shadow.
                let saved = val.get(v);
                for &d in s.domain() {
                    val.set(v, d);
                    let r = go(rest, body, s, val, scratch, existential);
                    if r == existential {
                        restore(val, v, saved);
                        return existential;
                    }
                }
                restore(val, v, saved);
                !existential
            }
        }
    }
    go(vars, body, s, val, scratch, existential)
}

/// Restores a possibly-shadowed binding after quantifier enumeration.
fn restore(val: &mut Valuation, v: VarId, saved: Option<Value>) {
    match saved {
        Some(d) => val.set(v, d),
        None => val.unset(v),
    }
}

/// Three-valued truth: decided, or blocked on one undecided ground fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tv3 {
    /// The formula's value is determined.
    Known(bool),
    /// Evaluation needs the truth of `rel(tuple)`, currently undecided.
    Undecided(RelId, Vec<Value>),
}

/// A structure in which some facts may be undecided (the lazy database
/// oracle of the verifier).
pub trait Structure3 {
    /// Membership of a ground tuple: `None` when undecided.
    fn contains3(&self, rel: RelId, tuple: &[Value]) -> Option<bool>;

    /// The quantification domain.
    fn domain(&self) -> &[Value];
}

/// Evaluates `fo` over a partially decided structure.
///
/// Returns [`Tv3::Known`] when the formula's value is independent of the
/// undecided facts *under short-circuit order*, otherwise an arbitrary
/// undecided fact whose resolution makes progress. The search layer branches
/// on that fact and re-evaluates; since each branch decides one fact and the
/// fact space over the finite domain is finite, the process terminates.
pub fn eval_fo3<S: Structure3 + ?Sized>(fo: &Fo, structure: &S, val: &mut Valuation) -> Tv3 {
    eval3_rec(fo, structure, val)
}

fn and3(a: Tv3, b: impl FnOnce() -> Tv3) -> Tv3 {
    match a {
        Tv3::Known(false) => Tv3::Known(false),
        Tv3::Known(true) => b(),
        undecided => match b() {
            // A decided `false` wins over an undecided sibling.
            Tv3::Known(false) => Tv3::Known(false),
            _ => undecided,
        },
    }
}

fn not3(a: Tv3) -> Tv3 {
    match a {
        Tv3::Known(v) => Tv3::Known(!v),
        u => u,
    }
}

fn or3(a: Tv3, b: impl FnOnce() -> Tv3) -> Tv3 {
    not3(and3(not3(a), || not3(b())))
}

fn eval3_rec<S: Structure3 + ?Sized>(fo: &Fo, s: &S, val: &mut Valuation) -> Tv3 {
    match fo {
        Fo::True => Tv3::Known(true),
        Fo::False => Tv3::Known(false),
        Fo::Atom(rel, args) => {
            let tuple: Vec<Value> = args.iter().map(|t| t.eval(val)).collect();
            match s.contains3(*rel, &tuple) {
                Some(b) => Tv3::Known(b),
                None => Tv3::Undecided(*rel, tuple),
            }
        }
        Fo::Eq(a, b) => Tv3::Known(a.eval(val) == b.eval(val)),
        Fo::Not(f) => not3(eval3_rec(f, s, val)),
        Fo::And(fs) => {
            let mut acc = Tv3::Known(true);
            for f in fs {
                acc = and3(acc, || eval3_rec(f, s, val));
                if acc == Tv3::Known(false) {
                    break;
                }
            }
            acc
        }
        Fo::Or(fs) => {
            let mut acc = Tv3::Known(false);
            for f in fs {
                acc = or3(acc, || eval3_rec(f, s, val));
                if acc == Tv3::Known(true) {
                    break;
                }
            }
            acc
        }
        Fo::Implies(a, b) => or3(not3(eval3_rec(a, s, val)), || eval3_rec(b, s, val)),
        Fo::Exists(vars, f) => quant3(vars, f, s, val, true),
        Fo::Forall(vars, f) => quant3(vars, f, s, val, false),
    }
}

fn quant3<S: Structure3 + ?Sized>(
    vars: &[VarId],
    body: &Fo,
    s: &S,
    val: &mut Valuation,
    existential: bool,
) -> Tv3 {
    match vars.split_first() {
        None => eval3_rec(body, s, val),
        Some((&v, rest)) => {
            let dom: Vec<Value> = s.domain().to_vec();
            let saved = val.get(v);
            let mut pending: Option<Tv3> = None;
            for d in dom {
                val.set(v, d);
                let r = quant3(rest, body, s, val, existential);
                match r {
                    Tv3::Known(b) if b == existential => {
                        restore(val, v, saved);
                        return Tv3::Known(existential);
                    }
                    Tv3::Known(_) => {}
                    undecided => {
                        if pending.is_none() {
                            pending = Some(undecided);
                        }
                    }
                }
            }
            restore(val, v, saved);
            pending.unwrap_or(Tv3::Known(!existential))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use crate::vars::Vars;
    use ddws_relational::{Instance, Tuple, Vocabulary};

    /// An [`Instance`] together with a quantification domain.
    struct Snap {
        inst: Instance,
        dom: Vec<Value>,
    }

    impl Structure for Snap {
        fn contains(&self, rel: RelId, tuple: &[Value]) -> bool {
            self.inst.contains(rel, &Tuple::from(tuple))
        }
        fn domain(&self) -> &[Value] {
            &self.dom
        }
    }

    fn setup() -> (Vocabulary, Vars, Snap) {
        let mut voc = Vocabulary::new();
        let edge = voc.declare("edge", 2).unwrap();
        voc.declare("mark", 1).unwrap();
        let mut inst = Instance::empty(&voc);
        // edge = {(0,1), (1,2)}
        inst.relation_mut(edge)
            .insert(Tuple::new(vec![Value(0), Value(1)]));
        inst.relation_mut(edge)
            .insert(Tuple::new(vec![Value(1), Value(2)]));
        let mut vars = Vars::new();
        vars.intern("x");
        vars.intern("y");
        vars.intern("z");
        (
            voc,
            vars,
            Snap {
                inst,
                dom: vec![Value(0), Value(1), Value(2)],
            },
        )
    }

    #[test]
    fn atoms_and_equality() {
        let (voc, vars, snap) = setup();
        let edge = voc.lookup("edge").unwrap();
        let x = vars.lookup("x").unwrap();
        let mut val = Valuation::with_capacity(3);
        val.set(x, Value(0));
        let f = Fo::Atom(edge, vec![Term::Var(x), Term::Const(Value(1))]);
        assert!(eval_fo(&f, &snap, &mut val));
        let g = Fo::Eq(Term::Var(x), Term::Const(Value(0)));
        assert!(eval_fo(&g, &snap, &mut val));
        let h = Fo::Eq(Term::Var(x), Term::Const(Value(2)));
        assert!(!eval_fo(&h, &snap, &mut val));
    }

    #[test]
    fn quantifiers_range_over_domain() {
        let (voc, vars, snap) = setup();
        let edge = voc.lookup("edge").unwrap();
        let x = vars.lookup("x").unwrap();
        let y = vars.lookup("y").unwrap();
        let mut val = Valuation::with_capacity(3);
        // ∃x∃y edge(x,y)
        let f = Fo::exists(vec![x, y], Fo::Atom(edge, vec![Term::Var(x), Term::Var(y)]));
        assert!(eval_fo(&f, &snap, &mut val));
        // ∀x∃y edge(x,y) — fails at x=2
        let g = Fo::forall(
            vec![x],
            Fo::exists(vec![y], Fo::Atom(edge, vec![Term::Var(x), Term::Var(y)])),
        );
        assert!(!eval_fo(&g, &snap, &mut val));
        // ∀x∀y (edge(x,y) → ∃z edge(y,z) ∨ y = 2)
        let z = vars.lookup("z").unwrap();
        let h = Fo::forall(
            vec![x, y],
            Fo::Implies(
                Box::new(Fo::Atom(edge, vec![Term::Var(x), Term::Var(y)])),
                Box::new(Fo::Or(vec![
                    Fo::exists(vec![z], Fo::Atom(edge, vec![Term::Var(y), Term::Var(z)])),
                    Fo::Eq(Term::Var(y), Term::Const(Value(2))),
                ])),
            ),
        );
        assert!(eval_fo(&h, &snap, &mut val));
    }

    #[test]
    fn quantifier_bindings_are_restored() {
        let (voc, vars, snap) = setup();
        let edge = voc.lookup("edge").unwrap();
        let x = vars.lookup("x").unwrap();
        let mut val = Valuation::with_capacity(3);
        val.set(x, Value(0));
        // ∃x edge(x, x) is false, and must not clobber the outer binding
        // permanently; after evaluation x's binding slot is reusable.
        let f = Fo::exists(vec![x], Fo::Atom(edge, vec![Term::Var(x), Term::Var(x)]));
        assert!(!eval_fo(&f, &snap, &mut val));
        // NOTE: shadowing a bound outer variable inside a quantifier is the
        // caller's responsibility to avoid (the parser never produces it:
        // quantified variables are fresh per formula).
    }

    struct PartialSnap {
        decided_true: Vec<(RelId, Vec<Value>)>,
        decided_false: Vec<(RelId, Vec<Value>)>,
        dom: Vec<Value>,
    }

    impl Structure3 for PartialSnap {
        fn contains3(&self, rel: RelId, tuple: &[Value]) -> Option<bool> {
            if self
                .decided_true
                .iter()
                .any(|(r, t)| *r == rel && t == tuple)
            {
                Some(true)
            } else if self
                .decided_false
                .iter()
                .any(|(r, t)| *r == rel && t == tuple)
            {
                Some(false)
            } else {
                None
            }
        }
        fn domain(&self) -> &[Value] {
            &self.dom
        }
    }

    #[test]
    fn three_valued_short_circuits() {
        let mut voc = Vocabulary::new();
        let p = voc.declare("p", 1).unwrap();
        let q = voc.declare("q", 1).unwrap();
        let snap = PartialSnap {
            decided_true: vec![(p, vec![Value(0)])],
            decided_false: vec![],
            dom: vec![Value(0)],
        };
        let mut val = Valuation::with_capacity(0);
        // p(0) ∨ q(0): true regardless of undecided q(0).
        let f = Fo::Or(vec![
            Fo::Atom(p, vec![Term::Const(Value(0))]),
            Fo::Atom(q, vec![Term::Const(Value(0))]),
        ]);
        assert_eq!(eval_fo3(&f, &snap, &mut val), Tv3::Known(true));
        // q(0) alone: undecided, reports the fact.
        let g = Fo::Atom(q, vec![Term::Const(Value(0))]);
        assert_eq!(
            eval_fo3(&g, &snap, &mut val),
            Tv3::Undecided(q, vec![Value(0)])
        );
        // q(0) ∧ ¬p(0): false regardless (¬p(0) is false).
        let h = Fo::And(vec![
            Fo::Atom(q, vec![Term::Const(Value(0))]),
            Fo::not(Fo::Atom(p, vec![Term::Const(Value(0))])),
        ]);
        assert_eq!(eval_fo3(&h, &snap, &mut val), Tv3::Known(false));
    }

    #[test]
    fn three_valued_quantifiers() {
        let mut voc = Vocabulary::new();
        let p = voc.declare("p", 1).unwrap();
        let snap = PartialSnap {
            decided_true: vec![(p, vec![Value(1)])],
            decided_false: vec![(p, vec![Value(0)])],
            dom: vec![Value(0), Value(1), Value(2)],
        };
        let mut vars = Vars::new();
        let x = vars.intern("x");
        let mut val = Valuation::with_capacity(1);
        // ∃x p(x): witnessed by 1 → Known(true) even though p(2) undecided.
        let f = Fo::exists(vec![x], Fo::Atom(p, vec![Term::Var(x)]));
        assert_eq!(eval_fo3(&f, &snap, &mut val), Tv3::Known(true));
        // ∀x p(x): refuted by 0 → Known(false).
        let g = Fo::forall(vec![x], Fo::Atom(p, vec![Term::Var(x)]));
        assert_eq!(eval_fo3(&g, &snap, &mut val), Tv3::Known(false));
        // ∀x (p(x) ∨ x = 0): undecided on p(2).
        let h = Fo::forall(
            vec![x],
            Fo::Or(vec![
                Fo::Atom(p, vec![Term::Var(x)]),
                Fo::Eq(Term::Var(x), Term::Const(Value(0))),
            ]),
        );
        assert_eq!(
            eval_fo3(&h, &snap, &mut val),
            Tv3::Undecided(p, vec![Value(2)])
        );
    }
}
