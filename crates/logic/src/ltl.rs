//! LTL-FO: linear temporal first-order logic (Definition 3.1).
//!
//! LTL-FO closes FO under negation, disjunction, `X` and `U`. Quantifiers
//! cannot scope over temporal operators; the only exception is the universal
//! closure of the whole formula, represented by [`LtlFoSentence`]. This
//! module also provides the derived operators `G`, `F`, `B` and the
//! *relativized* operators `Xα`/`Uα` of Section 5 (modular verification) as
//! syntactic rewrites into the core.

use crate::fo::Fo;
use crate::vars::VarId;
use ddws_relational::RelId;
use std::collections::BTreeSet;

/// An LTL-FO formula: boolean/temporal combinations of FO formulas.
///
/// The AST enforces the paper's syntactic restriction structurally: FO
/// subformulas are leaves ([`LtlFo::Fo`]), so no quantifier can capture a
/// temporal operator.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum LtlFo {
    /// A maximal first-order subformula, evaluated on a single snapshot.
    Fo(Fo),
    /// Negation.
    Not(Box<LtlFo>),
    /// N-ary conjunction.
    And(Vec<LtlFo>),
    /// N-ary disjunction.
    Or(Vec<LtlFo>),
    /// Implication.
    Implies(Box<LtlFo>, Box<LtlFo>),
    /// Next.
    X(Box<LtlFo>),
    /// Until.
    U(Box<LtlFo>, Box<LtlFo>),
}

impl LtlFo {
    /// Truth.
    pub fn tt() -> LtlFo {
        LtlFo::Fo(Fo::True)
    }

    /// Falsity.
    pub fn ff() -> LtlFo {
        LtlFo::Fo(Fo::False)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: LtlFo) -> LtlFo {
        LtlFo::Not(Box::new(f))
    }

    /// Smart conjunction.
    pub fn and(fs: Vec<LtlFo>) -> LtlFo {
        match fs.len() {
            0 => LtlFo::tt(),
            1 => fs.into_iter().next().expect("len checked"),
            _ => LtlFo::And(fs),
        }
    }

    /// Smart disjunction.
    pub fn or(fs: Vec<LtlFo>) -> LtlFo {
        match fs.len() {
            0 => LtlFo::ff(),
            1 => fs.into_iter().next().expect("len checked"),
            _ => LtlFo::Or(fs),
        }
    }

    /// Next.
    pub fn next(f: LtlFo) -> LtlFo {
        LtlFo::X(Box::new(f))
    }

    /// Until.
    pub fn until(a: LtlFo, b: LtlFo) -> LtlFo {
        LtlFo::U(Box::new(a), Box::new(b))
    }

    /// `F φ` ("finally"): `true U φ`.
    pub fn finally(f: LtlFo) -> LtlFo {
        LtlFo::until(LtlFo::tt(), f)
    }

    /// `G φ` ("generally"): `φ B false`, i.e. `¬(true U ¬φ)`.
    pub fn globally(f: LtlFo) -> LtlFo {
        LtlFo::not(LtlFo::finally(LtlFo::not(f)))
    }

    /// `φ B ψ` ("φ must hold before ψ fails"): `¬(¬φ U ¬ψ)`.
    pub fn before(a: LtlFo, b: LtlFo) -> LtlFo {
        LtlFo::not(LtlFo::until(LtlFo::not(a), LtlFo::not(b)))
    }

    /// The relativized next `Xα φ` of §5: holds at `j` iff `φ` holds at the
    /// first position `> j` where the proposition `α` holds. Rewritten as
    /// `X (¬α U (α ∧ φ))`.
    pub fn next_relativized(alpha: RelId, f: LtlFo) -> LtlFo {
        let alpha_atom = LtlFo::Fo(Fo::Atom(alpha, vec![]));
        LtlFo::next(LtlFo::until(
            LtlFo::not(alpha_atom.clone()),
            LtlFo::and(vec![alpha_atom, f]),
        ))
    }

    /// The relativized until `φ Uα ψ` of §5: there is `k ≥ j` with `α` at `k`
    /// and `ψ` at `k`, and `φ` holds at every `α`-position in `[j, k)`.
    /// Rewritten as `(α → φ) U (α ∧ ψ)`.
    pub fn until_relativized(alpha: RelId, a: LtlFo, b: LtlFo) -> LtlFo {
        let alpha_atom = LtlFo::Fo(Fo::Atom(alpha, vec![]));
        LtlFo::until(
            LtlFo::Implies(Box::new(alpha_atom.clone()), Box::new(a)),
            LtlFo::and(vec![alpha_atom, b]),
        )
    }

    /// Relativizes every `X` and `U` in the formula to the proposition
    /// `alpha` (the `ψ̄` translation of Definition 5.3, with `α = moveE`).
    pub fn relativize(&self, alpha: RelId) -> LtlFo {
        match self {
            LtlFo::Fo(f) => LtlFo::Fo(f.clone()),
            LtlFo::Not(f) => LtlFo::not(f.relativize(alpha)),
            LtlFo::And(fs) => LtlFo::And(fs.iter().map(|f| f.relativize(alpha)).collect()),
            LtlFo::Or(fs) => LtlFo::Or(fs.iter().map(|f| f.relativize(alpha)).collect()),
            LtlFo::Implies(a, b) => {
                LtlFo::Implies(Box::new(a.relativize(alpha)), Box::new(b.relativize(alpha)))
            }
            LtlFo::X(f) => LtlFo::next_relativized(alpha, f.relativize(alpha)),
            LtlFo::U(a, b) => {
                LtlFo::until_relativized(alpha, a.relativize(alpha), b.relativize(alpha))
            }
        }
    }

    /// Free variables (of the FO leaves).
    pub fn free_vars(&self) -> BTreeSet<VarId> {
        let mut acc = BTreeSet::new();
        self.visit_fo(&mut |fo| acc.extend(fo.free_vars()));
        acc
    }

    /// Visits every maximal FO subformula.
    pub fn visit_fo(&self, f: &mut dyn FnMut(&Fo)) {
        match self {
            LtlFo::Fo(fo) => f(fo),
            LtlFo::Not(g) | LtlFo::X(g) => g.visit_fo(f),
            LtlFo::And(gs) | LtlFo::Or(gs) => {
                for g in gs {
                    g.visit_fo(f);
                }
            }
            LtlFo::Implies(a, b) | LtlFo::U(a, b) => {
                a.visit_fo(f);
                b.visit_fo(f);
            }
        }
    }

    /// Rewrites every maximal FO subformula.
    pub fn map_fo(&self, f: &dyn Fn(&Fo) -> Fo) -> LtlFo {
        match self {
            LtlFo::Fo(fo) => LtlFo::Fo(f(fo)),
            LtlFo::Not(g) => LtlFo::not(g.map_fo(f)),
            LtlFo::And(gs) => LtlFo::And(gs.iter().map(|g| g.map_fo(f)).collect()),
            LtlFo::Or(gs) => LtlFo::Or(gs.iter().map(|g| g.map_fo(f)).collect()),
            LtlFo::Implies(a, b) => LtlFo::Implies(Box::new(a.map_fo(f)), Box::new(b.map_fo(f))),
            LtlFo::X(g) => LtlFo::next(g.map_fo(f)),
            LtlFo::U(a, b) => LtlFo::until(a.map_fo(f), b.map_fo(f)),
        }
    }

    /// Rewrites every maximal FO subformula, possibly changing temporal
    /// structure (the observer-at-recipient translation of §5 maps an
    /// FO leaf to a formula with an `X`).
    pub fn map_fo_ltl(&self, f: &dyn Fn(&Fo) -> LtlFo) -> LtlFo {
        match self {
            LtlFo::Fo(fo) => f(fo),
            LtlFo::Not(g) => LtlFo::not(g.map_fo_ltl(f)),
            LtlFo::And(gs) => LtlFo::And(gs.iter().map(|g| g.map_fo_ltl(f)).collect()),
            LtlFo::Or(gs) => LtlFo::Or(gs.iter().map(|g| g.map_fo_ltl(f)).collect()),
            LtlFo::Implies(a, b) => {
                LtlFo::Implies(Box::new(a.map_fo_ltl(f)), Box::new(b.map_fo_ltl(f)))
            }
            LtlFo::X(g) => LtlFo::next(g.map_fo_ltl(f)),
            LtlFo::U(a, b) => LtlFo::until(a.map_fo_ltl(f), b.map_fo_ltl(f)),
        }
    }

    /// Whether the formula contains any temporal operator.
    pub fn is_pure_fo(&self) -> bool {
        match self {
            LtlFo::Fo(_) => true,
            LtlFo::Not(f) => f.is_pure_fo(),
            LtlFo::And(fs) | LtlFo::Or(fs) => fs.iter().all(LtlFo::is_pure_fo),
            LtlFo::Implies(a, b) => a.is_pure_fo() && b.is_pure_fo(),
            LtlFo::X(_) | LtlFo::U(..) => false,
        }
    }

    /// Extracts the FO formula if the formula is temporal-free, folding
    /// boolean structure into [`Fo`].
    pub fn to_fo(&self) -> Option<Fo> {
        match self {
            LtlFo::Fo(f) => Some(f.clone()),
            LtlFo::Not(f) => Some(Fo::not(f.to_fo()?)),
            LtlFo::And(fs) => Some(Fo::and(
                fs.iter().map(LtlFo::to_fo).collect::<Option<Vec<_>>>()?,
            )),
            LtlFo::Or(fs) => Some(Fo::or(
                fs.iter().map(LtlFo::to_fo).collect::<Option<Vec<_>>>()?,
            )),
            LtlFo::Implies(a, b) => Some(Fo::Implies(Box::new(a.to_fo()?), Box::new(b.to_fo()?))),
            LtlFo::X(_) | LtlFo::U(..) => None,
        }
    }
}

/// An LTL-FO **sentence**: the universal closure `∀x̄ φ(x̄)` of an LTL-FO
/// formula (Definition 3.1).
///
/// The composition satisfies the sentence iff every run satisfies `φ(ν(x̄))`
/// for every valuation `ν` of `x̄` in the run's active domain; the verifier
/// instantiates `x̄` over the verification domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LtlFoSentence {
    /// The universally closed variables, in binding order.
    pub universal_vars: Vec<VarId>,
    /// The body (its free variables must all be in `universal_vars`).
    pub body: LtlFo,
}

impl LtlFoSentence {
    /// Universally closes `body` over all of its free variables.
    pub fn close(body: LtlFo) -> Self {
        let vars: Vec<VarId> = body.free_vars().into_iter().collect();
        LtlFoSentence {
            universal_vars: vars,
            body,
        }
    }

    /// Whether the sentence is **strict** in the sense of §5: no temporal
    /// operator occurs in the scope of a quantifier. Since the AST keeps FO
    /// leaves quantifier-contained, strictness is exactly "the universal
    /// closure binds nothing".
    pub fn is_strict(&self) -> bool {
        self.universal_vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use crate::vars::Vars;
    use ddws_relational::Vocabulary;

    fn atom(voc: &Vocabulary, name: &str, vars: &[VarId]) -> LtlFo {
        LtlFo::Fo(Fo::Atom(
            voc.lookup(name).unwrap(),
            vars.iter().map(|&v| Term::Var(v)).collect(),
        ))
    }

    fn setup() -> (Vocabulary, Vars) {
        let mut voc = Vocabulary::new();
        voc.declare("p", 1).unwrap();
        voc.declare("q", 1).unwrap();
        voc.declare("alpha", 0).unwrap();
        let mut vars = Vars::new();
        vars.intern("x");
        (voc, vars)
    }

    #[test]
    fn derived_operators_expand() {
        let (voc, vars) = setup();
        let x = vars.lookup("x").unwrap();
        let p = atom(&voc, "p", &[x]);
        // F p = true U p
        assert_eq!(
            LtlFo::finally(p.clone()),
            LtlFo::until(LtlFo::tt(), p.clone())
        );
        // G p = ¬(true U ¬p)
        assert_eq!(
            LtlFo::globally(p.clone()),
            LtlFo::not(LtlFo::until(LtlFo::tt(), LtlFo::not(p.clone())))
        );
        // p B q = ¬(¬p U ¬q)
        let q = atom(&voc, "q", &[x]);
        assert_eq!(
            LtlFo::before(p.clone(), q.clone()),
            LtlFo::not(LtlFo::until(LtlFo::not(p), LtlFo::not(q)))
        );
    }

    #[test]
    fn closure_collects_free_vars() {
        let (voc, vars) = setup();
        let x = vars.lookup("x").unwrap();
        let s = LtlFoSentence::close(LtlFo::finally(atom(&voc, "p", &[x])));
        assert_eq!(s.universal_vars, vec![x]);
        assert!(!s.is_strict());
        let closed = LtlFoSentence::close(LtlFo::finally(LtlFo::Fo(Fo::exists(
            vec![x],
            Fo::Atom(voc.lookup("p").unwrap(), vec![Term::Var(x)]),
        ))));
        assert!(closed.is_strict());
    }

    #[test]
    fn relativize_rewrites_x_and_u() {
        let (voc, vars) = setup();
        let x = vars.lookup("x").unwrap();
        let alpha = voc.lookup("alpha").unwrap();
        let p = atom(&voc, "p", &[x]);
        let q = atom(&voc, "q", &[x]);
        let alpha_atom = LtlFo::Fo(Fo::Atom(alpha, vec![]));

        let rel_x = LtlFo::next(p.clone()).relativize(alpha);
        assert_eq!(
            rel_x,
            LtlFo::next(LtlFo::until(
                LtlFo::not(alpha_atom.clone()),
                LtlFo::And(vec![alpha_atom.clone(), p.clone()])
            ))
        );

        let rel_u = LtlFo::until(p.clone(), q.clone()).relativize(alpha);
        assert_eq!(
            rel_u,
            LtlFo::until(
                LtlFo::Implies(Box::new(alpha_atom.clone()), Box::new(p)),
                LtlFo::And(vec![alpha_atom, q])
            )
        );
    }

    #[test]
    fn to_fo_and_purity() {
        let (voc, vars) = setup();
        let x = vars.lookup("x").unwrap();
        let p = atom(&voc, "p", &[x]);
        let boolean = LtlFo::and(vec![p.clone(), LtlFo::not(p.clone())]);
        assert!(boolean.is_pure_fo());
        assert!(boolean.to_fo().is_some());
        let temporal = LtlFo::finally(p);
        assert!(!temporal.is_pure_fo());
        assert!(temporal.to_fo().is_none());
    }

    #[test]
    fn map_fo_rewrites_leaves() {
        let (voc, vars) = setup();
        let x = vars.lookup("x").unwrap();
        let p = atom(&voc, "p", &[x]);
        let negated = LtlFo::finally(p).map_fo(&|fo| Fo::not(fo.clone()));
        match negated {
            LtlFo::U(_, b) => match *b {
                LtlFo::Fo(Fo::Not(_)) => {}
                other => panic!("expected negated leaf, got {other:?}"),
            },
            other => panic!("expected U, got {other:?}"),
        }
    }
}
