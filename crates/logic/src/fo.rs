//! First-order formulas.

use crate::term::Term;
use crate::vars::VarId;
use ddws_relational::{RelId, Value};
use std::collections::BTreeSet;

/// A first-order formula over a relational vocabulary.
///
/// The shape of quantifiers is preserved (no normalization to
/// negation-normal form) because the input-boundedness checker of §3.1
/// pattern-matches the syntactic forms `∃x̄ (α ∧ φ)` and `∀x̄ (α → φ)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Fo {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// Relational atom `R(t̄)`.
    Atom(RelId, Vec<Term>),
    /// Equality `t₁ = t₂`.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Fo>),
    /// N-ary conjunction (empty = `true`).
    And(Vec<Fo>),
    /// N-ary disjunction (empty = `false`).
    Or(Vec<Fo>),
    /// Implication, kept explicit for the `∀x̄ (α → φ)` shape.
    Implies(Box<Fo>, Box<Fo>),
    /// Existential quantification over a non-empty variable block.
    Exists(Vec<VarId>, Box<Fo>),
    /// Universal quantification over a non-empty variable block.
    Forall(Vec<VarId>, Box<Fo>),
}

impl Fo {
    /// Smart conjunction: flattens trivial cases.
    pub fn and(conjuncts: Vec<Fo>) -> Fo {
        match conjuncts.len() {
            0 => Fo::True,
            1 => conjuncts.into_iter().next().expect("len checked"),
            _ => Fo::And(conjuncts),
        }
    }

    /// Smart disjunction: flattens trivial cases.
    pub fn or(disjuncts: Vec<Fo>) -> Fo {
        match disjuncts.len() {
            0 => Fo::False,
            1 => disjuncts.into_iter().next().expect("len checked"),
            _ => Fo::Or(disjuncts),
        }
    }

    /// Negation (without simplification).
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Fo) -> Fo {
        Fo::Not(Box::new(f))
    }

    /// `∃x̄ φ`; returns `φ` unchanged when the block is empty.
    pub fn exists(vars: Vec<VarId>, f: Fo) -> Fo {
        if vars.is_empty() {
            f
        } else {
            Fo::Exists(vars, Box::new(f))
        }
    }

    /// `∀x̄ φ`; returns `φ` unchanged when the block is empty.
    pub fn forall(vars: Vec<VarId>, f: Fo) -> Fo {
        if vars.is_empty() {
            f
        } else {
            Fo::Forall(vars, Box::new(f))
        }
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<VarId> {
        let mut acc = BTreeSet::new();
        self.collect_free_vars(&mut Vec::new(), &mut acc);
        acc
    }

    fn collect_free_vars(&self, bound: &mut Vec<VarId>, acc: &mut BTreeSet<VarId>) {
        match self {
            Fo::True | Fo::False => {}
            Fo::Atom(_, args) => {
                for t in args {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            acc.insert(*v);
                        }
                    }
                }
            }
            Fo::Eq(a, b) => {
                for t in [a, b] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            acc.insert(*v);
                        }
                    }
                }
            }
            Fo::Not(f) => f.collect_free_vars(bound, acc),
            Fo::And(fs) | Fo::Or(fs) => {
                for f in fs {
                    f.collect_free_vars(bound, acc);
                }
            }
            Fo::Implies(a, b) => {
                a.collect_free_vars(bound, acc);
                b.collect_free_vars(bound, acc);
            }
            Fo::Exists(vs, f) | Fo::Forall(vs, f) => {
                let depth = bound.len();
                bound.extend(vs.iter().copied());
                f.collect_free_vars(bound, acc);
                bound.truncate(depth);
            }
        }
    }

    /// Substitutes constants for free variables according to `map`
    /// (capture is impossible: only constants are substituted).
    ///
    /// Used to ground the universal closure of a sentence over the
    /// verification domain.
    pub fn substitute(&self, map: &dyn Fn(VarId) -> Option<Value>) -> Fo {
        self.substitute_inner(map, &mut Vec::new())
    }

    fn substitute_inner(&self, map: &dyn Fn(VarId) -> Option<Value>, bound: &mut Vec<VarId>) -> Fo {
        let subst_term = |t: &Term, bound: &Vec<VarId>| -> Term {
            match t {
                Term::Var(v) if !bound.contains(v) => match map(*v) {
                    Some(c) => Term::Const(c),
                    None => *t,
                },
                _ => *t,
            }
        };
        match self {
            Fo::True => Fo::True,
            Fo::False => Fo::False,
            Fo::Atom(r, args) => Fo::Atom(*r, args.iter().map(|t| subst_term(t, bound)).collect()),
            Fo::Eq(a, b) => Fo::Eq(subst_term(a, bound), subst_term(b, bound)),
            Fo::Not(f) => Fo::not(f.substitute_inner(map, bound)),
            Fo::And(fs) => Fo::And(fs.iter().map(|f| f.substitute_inner(map, bound)).collect()),
            Fo::Or(fs) => Fo::Or(fs.iter().map(|f| f.substitute_inner(map, bound)).collect()),
            Fo::Implies(a, b) => Fo::Implies(
                Box::new(a.substitute_inner(map, bound)),
                Box::new(b.substitute_inner(map, bound)),
            ),
            Fo::Exists(vs, f) => {
                let depth = bound.len();
                bound.extend(vs.iter().copied());
                let inner = f.substitute_inner(map, bound);
                bound.truncate(depth);
                Fo::Exists(vs.clone(), Box::new(inner))
            }
            Fo::Forall(vs, f) => {
                let depth = bound.len();
                bound.extend(vs.iter().copied());
                let inner = f.substitute_inner(map, bound);
                bound.truncate(depth);
                Fo::Forall(vs.clone(), Box::new(inner))
            }
        }
    }

    /// All relation symbols occurring in the formula.
    pub fn relations(&self) -> BTreeSet<RelId> {
        let mut acc = BTreeSet::new();
        self.visit_atoms(&mut |rel, _| {
            acc.insert(rel);
        });
        acc
    }

    /// Visits every atom `R(t̄)` in the formula.
    pub fn visit_atoms(&self, f: &mut dyn FnMut(RelId, &[Term])) {
        match self {
            Fo::True | Fo::False | Fo::Eq(..) => {}
            Fo::Atom(r, args) => f(*r, args),
            Fo::Not(g) => g.visit_atoms(f),
            Fo::And(gs) | Fo::Or(gs) => {
                for g in gs {
                    g.visit_atoms(f);
                }
            }
            Fo::Implies(a, b) => {
                a.visit_atoms(f);
                b.visit_atoms(f);
            }
            Fo::Exists(_, g) | Fo::Forall(_, g) => g.visit_atoms(f),
        }
    }

    /// Whether the formula contains any quantifier.
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Fo::True | Fo::False | Fo::Atom(..) | Fo::Eq(..) => true,
            Fo::Not(f) => f.is_quantifier_free(),
            Fo::And(fs) | Fo::Or(fs) => fs.iter().all(Fo::is_quantifier_free),
            Fo::Implies(a, b) => a.is_quantifier_free() && b.is_quantifier_free(),
            Fo::Exists(..) | Fo::Forall(..) => false,
        }
    }

    /// Whether the formula is in the `∃*FO` class: a (possibly empty) prefix
    /// of existential quantifiers over a quantifier-free matrix. Required of
    /// input rules and flat-queue send rules by §3.1.
    pub fn is_exists_star(&self) -> bool {
        match self {
            Fo::Exists(_, f) => f.is_exists_star(),
            other => other.is_quantifier_free(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::Vars;
    use ddws_relational::Vocabulary;

    fn setup() -> (Vocabulary, Vars) {
        let mut voc = Vocabulary::new();
        voc.declare("R", 2).unwrap();
        voc.declare("S", 1).unwrap();
        let mut vars = Vars::new();
        vars.intern("x");
        vars.intern("y");
        (voc, vars)
    }

    #[test]
    fn free_vars_respect_binders() {
        let (voc, vars) = setup();
        let r = voc.lookup("R").unwrap();
        let x = vars.lookup("x").unwrap();
        let y = vars.lookup("y").unwrap();
        // ∃x R(x, y): free = {y}
        let f = Fo::exists(vec![x], Fo::Atom(r, vec![Term::Var(x), Term::Var(y)]));
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec![y]);
    }

    #[test]
    fn substitute_only_free_occurrences() {
        let (voc, vars) = setup();
        let r = voc.lookup("R").unwrap();
        let x = vars.lookup("x").unwrap();
        // R(x, x) ∧ ∃x R(x, x): only the outer occurrences are grounded.
        let atom = Fo::Atom(r, vec![Term::Var(x), Term::Var(x)]);
        let f = Fo::And(vec![atom.clone(), Fo::exists(vec![x], atom.clone())]);
        let g = f.substitute(&|v| if v == x { Some(Value(42)) } else { None });
        match &g {
            Fo::And(parts) => {
                assert_eq!(
                    parts[0],
                    Fo::Atom(r, vec![Term::Const(Value(42)), Term::Const(Value(42))])
                );
                assert_eq!(parts[1], Fo::exists(vec![x], atom));
            }
            _ => panic!("shape preserved"),
        }
    }

    #[test]
    fn smart_constructors_flatten() {
        assert_eq!(Fo::and(vec![]), Fo::True);
        assert_eq!(Fo::or(vec![]), Fo::False);
        assert_eq!(Fo::and(vec![Fo::True]), Fo::True);
        assert_eq!(Fo::exists(vec![], Fo::False), Fo::False);
    }

    #[test]
    fn exists_star_classification() {
        let (voc, vars) = setup();
        let r = voc.lookup("R").unwrap();
        let x = vars.lookup("x").unwrap();
        let y = vars.lookup("y").unwrap();
        let atom = Fo::Atom(r, vec![Term::Var(x), Term::Var(y)]);
        assert!(Fo::exists(vec![x], Fo::exists(vec![y], atom.clone())).is_exists_star());
        assert!(atom.clone().is_exists_star());
        assert!(!Fo::forall(vec![x], atom.clone()).is_exists_star());
        // ∃x ∀y R(x,y) is not ∃*FO
        assert!(!Fo::exists(vec![x], Fo::forall(vec![y], atom)).is_exists_star());
    }

    #[test]
    fn relations_collects_all_symbols() {
        let (voc, vars) = setup();
        let r = voc.lookup("R").unwrap();
        let s = voc.lookup("S").unwrap();
        let x = vars.lookup("x").unwrap();
        let f = Fo::Implies(
            Box::new(Fo::Atom(r, vec![Term::Var(x), Term::Var(x)])),
            Box::new(Fo::Atom(s, vec![Term::Var(x)])),
        );
        assert_eq!(f.relations().into_iter().collect::<Vec<_>>(), vec![r, s]);
    }
}
