//! Text syntax for FO and LTL-FO formulas.
//!
//! The grammar (loosest to tightest precedence):
//!
//! ```text
//! sentence := [ 'forall' vars ':' ] formula          (universal closure)
//! formula  := iff
//! iff      := impl ( '<->' impl )*
//! impl     := until ( '->' impl )?                   (right associative)
//! until    := or ( ('U' | 'B') until )?              (right associative)
//! or       := and ( 'or' and )*
//! and      := unary ( 'and' unary )*
//! unary    := ('not' | 'X' | 'F' | 'G') unary | quant | primary
//! quant    := ('forall' | 'exists') vars ':' formula (body must be pure FO)
//! primary  := '(' formula ')' | 'true' | 'false'
//!           | ident '(' terms ')'                    (relational atom)
//!           | term '=' term | term '!=' term
//!           | ident                                  (0-ary atom)
//! term     := ident                                  (variable)
//!           | '"' chars '"'                          (constant)
//! vars     := ident ( ',' ident )*
//! ```
//!
//! Identifiers may contain dots, so peer-qualified names (`O.customer`)
//! are single tokens. The single uppercase letters `X F G U B` are reserved
//! temporal keywords. Constants are always quoted; unquoted identifiers in
//! term position are variables. Inner quantifier bodies must be first-order
//! (Definition 3.1 forbids quantification over temporal subformulas); only
//! the top-level `forall` of a *sentence* may scope over temporal operators.

use crate::fo::Fo;
use crate::ltl::{LtlFo, LtlFoSentence};
use crate::term::Term;
use crate::vars::{VarId, Vars};
use ddws_relational::{RelId, Symbols, Vocabulary};
use std::fmt;

/// Relation-name resolution during parsing.
///
/// The global composition schema qualifies every relation by its peer
/// (`O.customer`), but a *rule* of peer `O` refers to `customer`, `?apply`,
/// `!getRating` by local name. The model layer implements this trait to give
/// the parser a peer-local view; a plain [`Vocabulary`] resolves global
/// names directly.
pub trait RelLookup {
    /// Resolves a relation name to its id.
    fn lookup_rel(&self, name: &str) -> Option<RelId>;

    /// Arity of a resolved relation.
    fn rel_arity(&self, rel: RelId) -> usize;
}

impl RelLookup for Vocabulary {
    fn lookup_rel(&self, name: &str) -> Option<RelId> {
        self.lookup(name)
    }

    fn rel_arity(&self, rel: RelId) -> usize {
        self.arity(rel)
    }
}

/// A parse or resolution error, with byte position in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the source where the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Name-resolution context for parsing: the vocabulary of relation symbols,
/// the variable table, and the constant symbol table (both extended by the
/// parser on first use).
pub struct Resolver<'a> {
    /// Relation symbols (read-only: unknown relations are errors).
    pub voc: &'a dyn RelLookup,
    /// Variable interner (extended on demand).
    pub vars: &'a mut Vars,
    /// Constant interner (extended on demand).
    pub symbols: &'a mut Symbols,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Str(String),
    LParen,
    RParen,
    Comma,
    Colon,
    Eq,
    Neq,
    Arrow,
    DArrow,
    Eof,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'#' {
                // comment to end of line
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    /// Lexes an identifier whose first byte (possibly `?` or `!`) is already
    /// accepted at `start`; dots, primes, `?` and `!` may appear inside, so
    /// peer-qualified queue names like `O.?apply` are single tokens.
    fn lex_ident(&mut self, start: usize) -> Result<Tok, ParseError> {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            if c.is_ascii_alphanumeric()
                || c == b'_'
                || c == b'.'
                || c == b'\''
                || c == b'?'
                || c == b'!'
            {
                // `!=` must terminate an identifier: `x!=y` lexes as x, !=, y.
                if (c == b'!' || c == b'?') && self.bytes.get(self.pos + 1) == Some(&b'=') {
                    break;
                }
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(Tok::Ident(self.src[start..self.pos].to_owned()))
    }

    fn next_tok(&mut self) -> Result<(Tok, usize), ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.pos >= self.bytes.len() {
            return Ok((Tok::Eof, start));
        }
        let b = self.bytes[self.pos];
        let tok = match b {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b':' => {
                self.pos += 1;
                Tok::Colon
            }
            b'=' => {
                self.pos += 1;
                Tok::Eq
            }
            b'!' => {
                if self.bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Neq
                } else {
                    // `!q` is an out-queue atom name (paper notation).
                    self.lex_ident(start)?
                }
            }
            b'-' => {
                if self.bytes.get(self.pos + 1) == Some(&b'>') {
                    self.pos += 2;
                    Tok::Arrow
                } else {
                    return Err(ParseError {
                        message: "expected `->`".into(),
                        position: start,
                    });
                }
            }
            b'<' => {
                if self.src[self.pos..].starts_with("<->") {
                    self.pos += 3;
                    Tok::DArrow
                } else {
                    return Err(ParseError {
                        message: "expected `<->`".into(),
                        position: start,
                    });
                }
            }
            b'"' => {
                self.pos += 1;
                let lit_start = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'"' {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(ParseError {
                        message: "unterminated string constant".into(),
                        position: start,
                    });
                }
                let s = self.src[lit_start..self.pos].to_owned();
                self.pos += 1;
                Tok::Str(s)
            }
            // `?q` is an in-queue atom name (paper notation).
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'?' => self.lex_ident(start)?,
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{}`", other as char),
                    position: start,
                })
            }
        };
        Ok((tok, start))
    }
}

struct Parser<'a, 'r> {
    toks: Vec<(Tok, usize)>,
    idx: usize,
    resolver: &'a mut Resolver<'r>,
}

impl<'a, 'r> Parser<'a, 'r> {
    fn new(src: &str, resolver: &'a mut Resolver<'r>) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let mut toks = Vec::new();
        loop {
            let (t, p) = lexer.next_tok()?;
            let eof = t == Tok::Eof;
            toks.push((t, p));
            if eof {
                break;
            }
        }
        Ok(Parser {
            toks,
            idx: 0,
            resolver,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.idx].0
    }

    fn pos(&self) -> usize {
        self.toks[self.idx].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.idx].0.clone();
        if self.idx < self.toks.len() - 1 {
            self.idx += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            position: self.pos(),
        }
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn parse_var_list(&mut self) -> Result<Vec<VarId>, ParseError> {
        let mut vars = Vec::new();
        loop {
            match self.bump() {
                Tok::Ident(name) => {
                    if is_keyword(&name) {
                        return Err(self.err(format!("`{name}` cannot be a variable name")));
                    }
                    vars.push(self.resolver.vars.intern(&name));
                }
                _ => return Err(self.err("expected variable name".into())),
            }
            if self.peek() == &Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(vars)
    }

    // Precedence climbing, loosest first.

    fn parse_iff(&mut self) -> Result<LtlFo, ParseError> {
        let mut lhs = self.parse_impl()?;
        while self.peek() == &Tok::DArrow {
            self.bump();
            let rhs = self.parse_impl()?;
            lhs = LtlFo::and(vec![
                LtlFo::Implies(Box::new(lhs.clone()), Box::new(rhs.clone())),
                LtlFo::Implies(Box::new(rhs), Box::new(lhs)),
            ]);
        }
        Ok(lhs)
    }

    fn parse_impl(&mut self) -> Result<LtlFo, ParseError> {
        let lhs = self.parse_until()?;
        if self.peek() == &Tok::Arrow {
            self.bump();
            let rhs = self.parse_impl()?;
            Ok(LtlFo::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_until(&mut self) -> Result<LtlFo, ParseError> {
        let lhs = self.parse_or()?;
        match self.peek_ident() {
            Some("U") => {
                self.bump();
                let rhs = self.parse_until()?;
                Ok(LtlFo::until(lhs, rhs))
            }
            Some("B") => {
                self.bump();
                let rhs = self.parse_until()?;
                Ok(LtlFo::before(lhs, rhs))
            }
            _ => Ok(lhs),
        }
    }

    fn parse_or(&mut self) -> Result<LtlFo, ParseError> {
        let mut parts = vec![self.parse_and()?];
        while self.peek_ident() == Some("or") {
            self.bump();
            parts.push(self.parse_and()?);
        }
        Ok(LtlFo::or(parts))
    }

    fn parse_and(&mut self) -> Result<LtlFo, ParseError> {
        let mut parts = vec![self.parse_unary()?];
        while self.peek_ident() == Some("and") {
            self.bump();
            parts.push(self.parse_unary()?);
        }
        Ok(LtlFo::and(parts))
    }

    fn parse_unary(&mut self) -> Result<LtlFo, ParseError> {
        match self.peek_ident() {
            Some("not") => {
                self.bump();
                Ok(LtlFo::not(self.parse_unary()?))
            }
            Some("X") => {
                self.bump();
                Ok(LtlFo::next(self.parse_unary()?))
            }
            Some("F") => {
                self.bump();
                Ok(LtlFo::finally(self.parse_unary()?))
            }
            Some("G") => {
                self.bump();
                Ok(LtlFo::globally(self.parse_unary()?))
            }
            Some(kw @ ("forall" | "exists")) => {
                let existential = kw == "exists";
                let qpos = self.pos();
                self.bump();
                let vars = self.parse_var_list()?;
                self.expect(&Tok::Colon, "`:` after quantified variables")?;
                let body = self.parse_iff()?;
                let Some(body_fo) = body.to_fo() else {
                    return Err(ParseError {
                        message: "quantifier scopes over a temporal operator; only the \
                                  top-level universal closure of a sentence may do that \
                                  (Definition 3.1)"
                            .into(),
                        position: qpos,
                    });
                };
                Ok(LtlFo::Fo(if existential {
                    Fo::exists(vars, body_fo)
                } else {
                    Fo::forall(vars, body_fo)
                }))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<LtlFo, ParseError> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let f = self.parse_iff()?;
                self.expect(&Tok::RParen, "`)`")?;
                // Allow `(t) = u`? No: equality operands are bare terms only.
                Ok(f)
            }
            Tok::Ident(name) if name == "true" => {
                self.bump();
                Ok(LtlFo::tt())
            }
            Tok::Ident(name) if name == "false" => {
                self.bump();
                Ok(LtlFo::ff())
            }
            Tok::Ident(name) => {
                let ident_pos = self.pos();
                self.bump();
                if is_keyword(&name) {
                    return Err(ParseError {
                        message: format!("unexpected keyword `{name}`"),
                        position: ident_pos,
                    });
                }
                match self.peek() {
                    Tok::LParen => {
                        // Relational atom.
                        self.bump();
                        let mut args = Vec::new();
                        if self.peek() != &Tok::RParen {
                            loop {
                                args.push(self.parse_term()?);
                                if self.peek() == &Tok::Comma {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(&Tok::RParen, "`)` after atom arguments")?;
                        let rel = self.resolver.voc.lookup_rel(&name).ok_or(ParseError {
                            message: format!("unknown relation `{name}`"),
                            position: ident_pos,
                        })?;
                        let arity = self.resolver.voc.rel_arity(rel);
                        if args.len() != arity {
                            return Err(ParseError {
                                message: format!(
                                    "relation `{name}` has arity {arity}, got {} arguments",
                                    args.len()
                                ),
                                position: ident_pos,
                            });
                        }
                        Ok(LtlFo::Fo(Fo::Atom(rel, args)))
                    }
                    Tok::Eq | Tok::Neq => {
                        let negated = self.peek() == &Tok::Neq;
                        self.bump();
                        let lhs = Term::Var(self.resolver.vars.intern(&name));
                        let rhs = self.parse_term()?;
                        let eq = Fo::Eq(lhs, rhs);
                        Ok(LtlFo::Fo(if negated { Fo::not(eq) } else { eq }))
                    }
                    _ => {
                        // 0-ary relational atom (proposition).
                        let rel = self.resolver.voc.lookup_rel(&name).ok_or(ParseError {
                            message: format!(
                                "`{name}` is neither a known proposition nor followed by \
                                 `(`, `=` or `!=`"
                            ),
                            position: ident_pos,
                        })?;
                        if self.resolver.voc.rel_arity(rel) != 0 {
                            return Err(ParseError {
                                message: format!(
                                    "relation `{name}` has arity {} but is used as a \
                                     proposition",
                                    self.resolver.voc.rel_arity(rel)
                                ),
                                position: ident_pos,
                            });
                        }
                        Ok(LtlFo::Fo(Fo::Atom(rel, vec![])))
                    }
                }
            }
            Tok::Str(s) => {
                // A constant can only start an equality.
                self.bump();
                let lhs = Term::Const(self.resolver.symbols.intern(&s));
                let negated = match self.peek() {
                    Tok::Eq => false,
                    Tok::Neq => true,
                    _ => return Err(self.err("constant must be compared with `=` or `!=`".into())),
                };
                self.bump();
                let rhs = self.parse_term()?;
                let eq = Fo::Eq(lhs, rhs);
                Ok(LtlFo::Fo(if negated { Fo::not(eq) } else { eq }))
            }
            _ => Err(self.err("expected a formula".into())),
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Tok::Ident(name) => {
                if is_keyword(&name) {
                    Err(self.err(format!("`{name}` cannot be a term")))
                } else if name.contains('?') || name.contains('!') {
                    // `?q`/`!q` are queue-atom names; as a *term* this is
                    // almost certainly a typo, not a variable.
                    Err(self.err(format!(
                        "`{name}` names a queue atom and cannot be used as a variable"
                    )))
                } else {
                    Ok(Term::Var(self.resolver.vars.intern(&name)))
                }
            }
            Tok::Str(s) => Ok(Term::Const(self.resolver.symbols.intern(&s))),
            _ => Err(self.err("expected a term (variable or \"constant\")".into())),
        }
    }

    fn finish(&self) -> Result<(), ParseError> {
        if self.peek() == &Tok::Eof {
            Ok(())
        } else {
            Err(self.err("trailing input after formula".into()))
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "forall" | "exists" | "not" | "and" | "or" | "true" | "false" | "X" | "F" | "G" | "U" | "B"
    )
}

/// Parses an LTL-FO formula (no top-level closure).
pub fn parse_ltlfo(src: &str, resolver: &mut Resolver<'_>) -> Result<LtlFo, ParseError> {
    let mut p = Parser::new(src, resolver)?;
    let f = p.parse_iff()?;
    p.finish()?;
    Ok(f)
}

/// Parses a pure FO formula; temporal operators are rejected.
pub fn parse_fo(src: &str, resolver: &mut Resolver<'_>) -> Result<Fo, ParseError> {
    let f = parse_ltlfo(src, resolver)?;
    f.to_fo().ok_or(ParseError {
        message: "temporal operator in a first-order context".into(),
        position: 0,
    })
}

/// Parses an LTL-FO **sentence**: an optional top-level `forall x̄:` may
/// scope over temporal operators (the universal closure of Definition 3.1);
/// any remaining free variables are closed automatically.
pub fn parse_sentence(src: &str, resolver: &mut Resolver<'_>) -> Result<LtlFoSentence, ParseError> {
    let mut p = Parser::new(src, resolver)?;
    let mut closure_vars = Vec::new();
    // Lookahead: `forall v1, ..., vn :` at the very start is the closure.
    if p.peek_ident() == Some("forall") {
        // Tentatively parse; if the body is pure FO this would also be a
        // valid inner quantifier, but treating it as the closure is
        // semantically identical (∀x̄ φ ≡ closure over x̄ of φ for pure FO).
        p.bump();
        closure_vars = p.parse_var_list()?;
        p.expect(&Tok::Colon, "`:` after the universal closure")?;
    }
    let body = p.parse_iff()?;
    p.finish()?;
    let mut vars = closure_vars;
    for v in body.free_vars() {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    Ok(LtlFoSentence {
        universal_vars: vars,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddws_relational::Vocabulary;

    fn fixtures() -> (Vocabulary, Vars, Symbols) {
        let mut voc = Vocabulary::new();
        voc.declare("O.customer", 3).unwrap();
        voc.declare("O.apply", 2).unwrap();
        voc.declare("O.letter", 4).unwrap();
        voc.declare("flag", 0).unwrap();
        (voc, Vars::new(), Symbols::new())
    }

    fn parse_ok(src: &str) -> LtlFo {
        let (voc, mut vars, mut symbols) = fixtures();
        let mut r = Resolver {
            voc: &voc,
            vars: &mut vars,
            symbols: &mut symbols,
        };
        parse_ltlfo(src, &mut r).unwrap()
    }

    fn parse_err(src: &str) -> ParseError {
        let (voc, mut vars, mut symbols) = fixtures();
        let mut r = Resolver {
            voc: &voc,
            vars: &mut vars,
            symbols: &mut symbols,
        };
        parse_ltlfo(src, &mut r).unwrap_err()
    }

    #[test]
    fn atoms_and_equality() {
        match parse_ok("O.apply(id, l)") {
            LtlFo::Fo(Fo::Atom(_, args)) => assert_eq!(args.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        match parse_ok("x = \"excellent\"") {
            LtlFo::Fo(Fo::Eq(Term::Var(_), Term::Const(_))) => {}
            other => panic!("unexpected {other:?}"),
        }
        match parse_ok("x != y") {
            LtlFo::Fo(Fo::Not(inner)) => assert!(matches!(*inner, Fo::Eq(..))),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(parse_ok("flag"), LtlFo::Fo(Fo::Atom(_, args)) if args.is_empty()));
    }

    #[test]
    fn precedence_and_over_or_over_impl() {
        // a or b and c -> d   ≡   (a or (b and c)) -> d
        let f = parse_ok("flag or flag and flag -> flag");
        match f {
            LtlFo::Implies(lhs, _) => match *lhs {
                LtlFo::Or(parts) => {
                    assert_eq!(parts.len(), 2);
                    assert!(matches!(parts[1], LtlFo::And(_)));
                }
                other => panic!("unexpected lhs {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn temporal_operators() {
        assert!(matches!(parse_ok("X flag"), LtlFo::X(_)));
        assert!(matches!(parse_ok("flag U flag"), LtlFo::U(..)));
        // F/G/B expand to U
        assert!(matches!(parse_ok("F flag"), LtlFo::U(..)));
        assert!(matches!(parse_ok("G flag"), LtlFo::Not(_)));
        assert!(matches!(parse_ok("flag B flag"), LtlFo::Not(_)));
        // U binds looser than `and`
        match parse_ok("flag and flag U flag") {
            LtlFo::U(lhs, _) => assert!(matches!(*lhs, LtlFo::And(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantifiers_must_be_first_order() {
        let f = parse_ok("exists id, l: O.apply(id, l)");
        assert!(matches!(f, LtlFo::Fo(Fo::Exists(_, _))));
        let e = parse_err("exists id: F O.apply(id, id)");
        assert!(e.message.contains("temporal"), "{e}");
    }

    #[test]
    fn sentence_closure() {
        let (voc, mut vars, mut symbols) = fixtures();
        let mut r = Resolver {
            voc: &voc,
            vars: &mut vars,
            symbols: &mut symbols,
        };
        let s = parse_sentence(
            "forall id, l: G (O.apply(id, l) -> F O.apply(id, l))",
            &mut r,
        )
        .unwrap();
        assert_eq!(s.universal_vars.len(), 2);
        assert!(!s.is_strict());
        // Free variables not in the explicit closure are auto-closed.
        let s2 = parse_sentence("G (O.apply(id, l) -> F O.apply(id, l))", &mut r).unwrap();
        assert_eq!(s2.universal_vars.len(), 2);
    }

    #[test]
    fn arity_and_resolution_errors() {
        assert!(parse_err("O.apply(x)").message.contains("arity"));
        assert!(parse_err("unknownRel(x)")
            .message
            .contains("unknown relation"));
        assert!(parse_err("O.apply").message.contains("arity"));
        assert!(parse_err("mystery").message.contains("neither"));
    }

    #[test]
    fn comments_and_whitespace() {
        let f = parse_ok("# leading comment\n  flag # trailing\n and flag");
        assert!(matches!(f, LtlFo::And(_)));
    }

    #[test]
    fn paper_property_11_parses() {
        // Property (11) of Example 3.2, transcribed.
        let mut voc = Vocabulary::new();
        voc.declare("O.apply", 2).unwrap();
        voc.declare("O.customer", 3).unwrap();
        voc.declare("O.letter", 4).unwrap();
        let mut vars = Vars::new();
        let mut symbols = Symbols::new();
        let mut r = Resolver {
            voc: &voc,
            vars: &mut vars,
            symbols: &mut symbols,
        };
        let s = parse_sentence(
            "forall id, l, name, ssn: \
             G ((O.apply(id, l) and O.customer(id, ssn, name)) -> \
                F (O.letter(id, name, l, \"denied\") or O.letter(id, name, l, \"approved\")))",
            &mut r,
        )
        .unwrap();
        assert_eq!(s.universal_vars.len(), 4);
    }
}
