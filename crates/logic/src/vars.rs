//! Variable interning and valuations.

use ddws_relational::Value;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a logical variable within a [`Vars`] table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Raw index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Interner for variable names.
///
/// One `Vars` table is shared by all formulas of a specification so that a
/// [`Valuation`] indexed by [`VarId`] works across rules and properties.
#[derive(Clone, Debug, Default)]
pub struct Vars {
    names: Vec<String>,
    by_name: HashMap<String, VarId>,
}

impl Vars {
    /// Creates an empty variable table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a variable name.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = VarId(u32::try_from(self.names.len()).expect("variable table overflow"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), v);
        v
    }

    /// Looks up an already-interned variable.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// The name of `v`.
    ///
    /// # Panics
    /// Panics if `v` is not from this table.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variable is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A partial assignment of values to variables, indexed by [`VarId`].
///
/// Evaluation binds quantified variables by `set`/`unset` in a stack
/// discipline; reading an unbound variable is a bug in the caller (formulas
/// are checked closed under the ambient valuation before evaluation).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Valuation {
    slots: Vec<Option<Value>>,
}

impl Valuation {
    /// An empty valuation able to hold bindings for `n` variables.
    pub fn with_capacity(n: usize) -> Self {
        Valuation {
            slots: vec![None; n],
        }
    }

    /// Binds `var` to `value` (growing the table if needed).
    pub fn set(&mut self, var: VarId, value: Value) {
        if var.index() >= self.slots.len() {
            self.slots.resize(var.index() + 1, None);
        }
        self.slots[var.index()] = Some(value);
    }

    /// Removes the binding of `var`.
    pub fn unset(&mut self, var: VarId) {
        if var.index() < self.slots.len() {
            self.slots[var.index()] = None;
        }
    }

    /// The value bound to `var`, if any.
    pub fn get(&self, var: VarId) -> Option<Value> {
        self.slots.get(var.index()).copied().flatten()
    }

    /// The value bound to `var`.
    ///
    /// # Panics
    /// Panics if `var` is unbound — evaluation of a formula with a free
    /// variable outside the ambient valuation.
    pub fn expect(&self, var: VarId) -> Value {
        self.get(var)
            .unwrap_or_else(|| panic!("unbound variable {var:?} during evaluation"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_lookup() {
        let mut vars = Vars::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        assert_ne!(x, y);
        assert_eq!(vars.intern("x"), x);
        assert_eq!(vars.lookup("y"), Some(y));
        assert_eq!(vars.name(x), "x");
    }

    #[test]
    fn valuation_set_get_unset() {
        let mut val = Valuation::with_capacity(2);
        let x = VarId(0);
        assert_eq!(val.get(x), None);
        val.set(x, Value(7));
        assert_eq!(val.get(x), Some(Value(7)));
        val.unset(x);
        assert_eq!(val.get(x), None);
    }

    #[test]
    fn valuation_grows_on_demand() {
        let mut val = Valuation::with_capacity(0);
        val.set(VarId(5), Value(1));
        assert_eq!(val.get(VarId(5)), Some(Value(1)));
        assert_eq!(val.get(VarId(4)), None);
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn expect_unbound_panics() {
        let val = Valuation::with_capacity(1);
        val.expect(VarId(0));
    }
}
