//! Compilation of rule bodies into flat join/filter/project plans.
//!
//! [`satisfying_valuations`](crate::enumerate::satisfying_valuations)
//! re-interprets the rule body for every candidate tuple on every step. For
//! input-bounded rules the body is (essentially) a disjunction of guarded
//! conjunctions, so the same work can be done once at composition build
//! time: [`compile_rule`] lowers a body into a [`Plan`] — per disjunct, a
//! sequence of positive-atom *joins* that bind variables by unification,
//! equality/anti-join *filters*, and *residual* subformulas that still go
//! through [`eval_fo`](crate::eval::eval_fo) per candidate because the
//! planner cannot flatten them (nested disjunctions, universals, shadowed
//! binders).
//!
//! The decomposition is **exact**: a candidate assignment that survives
//! every step of a branch satisfies that branch's body, so plan evaluation
//! skips the full-body verification pass the interpreter needs after
//! seeding. Exactness rests on two invariants checked during compilation:
//!
//! 1. every conjunct of the (∃-peeled, recursively flattened) matrix is
//!    classified as a join atom, a filter, or a residual — never dropped;
//! 2. flattening a nested `∃ȳ (…)` conjunct into the branch's variable set
//!    only happens when `ȳ` does not shadow a variable already in scope
//!    (shadowing would conflate distinct variables; such conjuncts stay
//!    residual).
//!
//! [`eval_plan`] returns exactly the tuples `satisfying_valuations` returns,
//! in the same (sorted) order — the differential suites pin this.

use crate::eval::{eval_fo, Structure};
use crate::fo::Fo;
use crate::term::Term;
use crate::vars::{Valuation, VarId};
use ddws_relational::{RelId, Value};
use std::collections::BTreeSet;

/// A compiled rule body: `head ← branch₁ ∨ … ∨ branchₙ`.
#[derive(Clone, Debug)]
pub struct Plan {
    head: Vec<VarId>,
    branches: Vec<Branch>,
    /// Every relation the plan may read (sorted) — the body's relation set.
    /// Memoization layers key cached extensions on exactly these.
    reads: Vec<RelId>,
}

/// One disjunct of the body, lowered to join/filter/project form.
#[derive(Clone, Debug)]
struct Branch {
    /// Ground residual conjuncts (no free variables): checked once per
    /// evaluation, before any enumeration. A false guard kills the branch —
    /// this is what makes a ground-false `α` in `head ← (α → φ)` cheap.
    guards: Vec<Fo>,
    /// Positive atoms, joined by unification in order of appearance.
    joins: Vec<(RelId, Vec<Term>)>,
    /// Scope variables no join atom binds: enumerated over the domain.
    cube_vars: Vec<VarId>,
    /// Filters/residuals whose variables are all bound after the joins —
    /// checked before cube enumeration to prune early.
    post_join: Vec<Step>,
    /// Filters/residuals that need cube-enumerated variables.
    post_cube: Vec<Step>,
}

/// A filter or residual check over bound variables.
#[derive(Clone, Debug)]
enum Step {
    /// `t₁ = t₂`.
    Eq(Term, Term),
    /// `t₁ ≠ t₂`.
    NotEq(Term, Term),
    /// Anti-join `¬R(t̄)`.
    AntiJoin(RelId, Vec<Term>),
    /// Any other subformula: evaluated with `eval_fo` per candidate.
    Residual(Fo),
}

impl Step {
    fn free_vars(&self) -> BTreeSet<VarId> {
        match self {
            Step::Eq(a, b) | Step::NotEq(a, b) => {
                [a, b].iter().filter_map(|t| t.as_var()).collect()
            }
            Step::AntiJoin(_, args) => args.iter().filter_map(|t| t.as_var()).collect(),
            Step::Residual(f) => f.free_vars(),
        }
    }

    fn eval<S: Structure + ?Sized>(
        &self,
        s: &S,
        val: &mut Valuation,
        scratch: &mut Vec<Value>,
    ) -> bool {
        match self {
            Step::Eq(a, b) => a.eval(val) == b.eval(val),
            Step::NotEq(a, b) => a.eval(val) != b.eval(val),
            Step::AntiJoin(rel, args) => {
                scratch.clear();
                scratch.extend(args.iter().map(|t| t.eval(val)));
                !s.contains(*rel, scratch)
            }
            Step::Residual(f) => eval_fo(f, s, val),
        }
    }
}

impl Plan {
    /// The head variables the plan projects onto.
    pub fn head(&self) -> &[VarId] {
        &self.head
    }

    /// Every relation the plan may read during evaluation (sorted,
    /// duplicate-free). Any cache keyed on the extensions of these relations
    /// is sound: two structures agreeing on all of them give identical
    /// [`eval_plan`] results.
    pub fn reads(&self) -> &[RelId] {
        &self.reads
    }
}

/// Compiles `head ← body` into a [`Plan`]. Never fails: subformulas the
/// planner cannot flatten become residual `eval_fo` checks, so compilation
/// is total and evaluation is always exact.
pub fn compile_rule(head: &[VarId], body: &Fo) -> Plan {
    let mut disjuncts = Vec::new();
    split_disjuncts(body, &mut disjuncts);
    let branches = disjuncts
        .into_iter()
        .filter_map(|d| compile_branch(head, d))
        .collect();
    Plan {
        head: head.to_vec(),
        branches,
        reads: body.relations().into_iter().collect(),
    }
}

/// Splits top-level disjunctive structure: `Or` flattens, `α → φ` becomes
/// `¬α ∨ φ`. Everything else is a single branch.
fn split_disjuncts(body: &Fo, out: &mut Vec<Fo>) {
    match body {
        Fo::Or(parts) => {
            for p in parts {
                split_disjuncts(p, out);
            }
        }
        Fo::Implies(a, b) => {
            out.push(Fo::not((**a).clone()));
            split_disjuncts(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Lowers one disjunct. Returns `None` when the branch is statically empty
/// (a `false` conjunct).
fn compile_branch(head: &[VarId], body: Fo) -> Option<Branch> {
    // Peel the ∃-prefix. A binder shadowing a head variable would conflate
    // the two; in that (parser-impossible) case the whole branch degrades to
    // cube + residual, which is always sound.
    let (peeled, matrix) = peel_exists_owned(&body);
    let mut scope: BTreeSet<VarId> = head.iter().copied().collect();
    let shadowed = peeled.iter().any(|v| !scope.insert(*v));

    let mut joins: Vec<(RelId, Vec<Term>)> = Vec::new();
    let mut steps: Vec<Step> = Vec::new();
    let alive = if shadowed {
        // Only the head variables need enumeration: the body binds its own.
        scope = head.iter().copied().collect();
        steps.push(Step::Residual(body.clone()));
        true
    } else {
        flatten(matrix, &mut scope, &mut joins, &mut steps)
    };
    if !alive {
        return None;
    }

    // Variables bound by unification against join atoms.
    let join_vars: BTreeSet<VarId> = joins
        .iter()
        .flat_map(|(_, args)| args.iter().filter_map(|t| t.as_var()))
        .collect();
    let cube_vars: Vec<VarId> = scope
        .iter()
        .copied()
        .filter(|v| !join_vars.contains(v))
        .collect();

    let mut guards = Vec::new();
    let mut post_join = Vec::new();
    let mut post_cube = Vec::new();
    for step in steps {
        let fv = step.free_vars();
        if fv.is_empty() {
            if let Step::Residual(f) = step {
                guards.push(f);
            } else {
                post_join.push(step);
            }
        } else if fv.iter().all(|v| join_vars.contains(v)) {
            post_join.push(step);
        } else {
            post_cube.push(step);
        }
    }

    Some(Branch {
        guards,
        joins,
        cube_vars,
        post_join,
        post_cube,
    })
}

/// Splits `∃ȳ φ` into (ȳ, φ) without consuming the formula.
fn peel_exists_owned(f: &Fo) -> (Vec<VarId>, &Fo) {
    let mut vars = Vec::new();
    let mut cur = f;
    while let Fo::Exists(vs, inner) = cur {
        vars.extend(vs.iter().copied());
        cur = inner;
    }
    (vars, cur)
}

/// Classifies the conjuncts of `f` into joins and steps, flattening nested
/// conjunctions and non-shadowing existentials into the branch scope.
/// Returns `false` when a conjunct is statically `false` (dead branch).
fn flatten(
    f: &Fo,
    scope: &mut BTreeSet<VarId>,
    joins: &mut Vec<(RelId, Vec<Term>)>,
    steps: &mut Vec<Step>,
) -> bool {
    match f {
        Fo::True => true,
        Fo::False => false,
        Fo::Atom(rel, args) => {
            joins.push((*rel, args.clone()));
            true
        }
        Fo::Eq(a, b) => {
            steps.push(Step::Eq(*a, *b));
            true
        }
        Fo::Not(inner) => {
            match &**inner {
                Fo::Atom(rel, args) => steps.push(Step::AntiJoin(*rel, args.clone())),
                Fo::Eq(a, b) => steps.push(Step::NotEq(*a, *b)),
                Fo::True => return false,
                Fo::False => {}
                _ => steps.push(Step::Residual(f.clone())),
            }
            true
        }
        Fo::And(parts) => parts.iter().all(|p| flatten(p, scope, joins, steps)),
        Fo::Exists(vs, inner) => {
            // ∃ of a conjunction inside a conjunction is a join plus
            // projection: pull the binders into the branch scope — unless
            // one shadows a variable already there.
            if vs.iter().any(|v| scope.contains(v)) {
                steps.push(Step::Residual(f.clone()));
                true
            } else {
                scope.extend(vs.iter().copied());
                flatten(inner, scope, joins, steps)
            }
        }
        // Or / Implies / Forall inside a conjunct: the planner keeps the
        // exact semantics by deferring to the interpreter per candidate.
        other => {
            steps.push(Step::Residual(other.clone()));
            true
        }
    }
}

/// Evaluates a compiled plan over `s`, returning the head tuples in sorted
/// order — exactly the result of
/// [`satisfying_valuations`](crate::enumerate::satisfying_valuations) on the
/// original body.
pub fn eval_plan<S: Structure + ?Sized>(plan: &Plan, s: &S) -> Vec<Vec<Value>> {
    let mut out: BTreeSet<Vec<Value>> = BTreeSet::new();
    let mut val = Valuation::with_capacity(plan.head.len());
    let mut scratch = Vec::with_capacity(8);
    for branch in &plan.branches {
        if branch.guards.iter().any(|g| !eval_fo(g, s, &mut val)) {
            continue;
        }
        join(plan, branch, 0, s, &mut val, &mut scratch, &mut out);
    }
    out.into_iter().collect()
}

/// Recursive unification over the branch's join atoms (the interpreter's
/// seeding loop, minus the re-verification).
fn join<S: Structure + ?Sized>(
    plan: &Plan,
    branch: &Branch,
    idx: usize,
    s: &S,
    val: &mut Valuation,
    scratch: &mut Vec<Value>,
    out: &mut BTreeSet<Vec<Value>>,
) {
    if idx == branch.joins.len() {
        if branch.post_join.iter().all(|st| st.eval(s, val, scratch)) {
            cube(plan, branch, 0, s, val, scratch, out);
        }
        return;
    }
    let (rel, args) = &branch.joins[idx];

    // Preferred path: iterate the relation's tuples and unify — linear in
    // the relation size.
    if let Some(tuples) = s.scan(*rel) {
        'tuples: for tuple in tuples {
            if tuple.len() != args.len() {
                continue;
            }
            let mut bound_here: Vec<VarId> = Vec::new();
            for (arg, &value) in args.iter().zip(&tuple) {
                let ok = match arg {
                    Term::Const(c) => *c == value,
                    Term::Var(v) => match val.get(*v) {
                        Some(existing) => existing == value,
                        None => {
                            val.set(*v, value);
                            bound_here.push(*v);
                            true
                        }
                    },
                };
                if !ok {
                    for v in bound_here.drain(..) {
                        val.unset(v);
                    }
                    continue 'tuples;
                }
            }
            join(plan, branch, idx + 1, s, val, scratch, out);
            for v in bound_here {
                val.unset(v);
            }
        }
        return;
    }

    // Fallback for non-enumerable relations (lazily decided database
    // facts): enumerate the unbound argument positions and probe membership.
    let mut positions: Vec<usize> = Vec::new();
    for (i, t) in args.iter().enumerate() {
        if let Term::Var(v) = t {
            if val.get(*v).is_none() && !positions.iter().any(|&p| args[p] == *t) {
                positions.push(i);
            }
        }
    }
    let dom: Vec<Value> = s.domain().to_vec();
    if positions.is_empty() {
        scratch.clear();
        scratch.extend(args.iter().map(|t| t.eval(val)));
        if s.contains(*rel, scratch) {
            join(plan, branch, idx + 1, s, val, scratch, out);
        }
        return;
    }
    let mut assignment = vec![0usize; positions.len()];
    'outer: loop {
        let mut bound_here: Vec<VarId> = Vec::new();
        for (slot, &pos) in positions.iter().enumerate() {
            if let Term::Var(v) = &args[pos] {
                val.set(*v, dom[assignment[slot]]);
                bound_here.push(*v);
            }
        }
        scratch.clear();
        scratch.extend(args.iter().map(|t| t.eval(val)));
        if s.contains(*rel, scratch) {
            join(plan, branch, idx + 1, s, val, scratch, out);
        }
        for v in bound_here {
            val.unset(v);
        }
        let mut i = 0;
        loop {
            if i == assignment.len() {
                break 'outer;
            }
            assignment[i] += 1;
            if assignment[i] < dom.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// Enumerates domain values for the branch's cube variables, checks the
/// remaining steps, and projects onto the head.
fn cube<S: Structure + ?Sized>(
    plan: &Plan,
    branch: &Branch,
    idx: usize,
    s: &S,
    val: &mut Valuation,
    scratch: &mut Vec<Value>,
    out: &mut BTreeSet<Vec<Value>>,
) {
    if idx == branch.cube_vars.len() {
        if branch.post_cube.iter().all(|st| st.eval(s, val, scratch)) {
            out.insert(plan.head.iter().map(|&v| val.expect(v)).collect());
        }
        return;
    }
    let v = branch.cube_vars[idx];
    if val.get(v).is_some() {
        // Bound by an earlier join of a shared variable; nothing to do.
        cube(plan, branch, idx + 1, s, val, scratch, out);
        return;
    }
    for d in s.domain().to_vec() {
        val.set(v, d);
        cube(plan, branch, idx + 1, s, val, scratch, out);
    }
    val.unset(v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::satisfying_valuations;
    use crate::parser::{parse_fo, Resolver};
    use crate::vars::Vars;
    use ddws_relational::{Instance, Symbols, Tuple, Vocabulary};

    struct Snap {
        inst: Instance,
        dom: Vec<Value>,
    }

    impl Structure for Snap {
        fn contains(&self, rel: RelId, tuple: &[Value]) -> bool {
            self.inst.contains(rel, &Tuple::from(tuple))
        }
        fn domain(&self) -> &[Value] {
            &self.dom
        }
        fn scan(&self, rel: RelId) -> Option<Vec<Vec<Value>>> {
            Some(
                self.inst
                    .relation(rel)
                    .iter()
                    .map(|t| t.values().to_vec())
                    .collect(),
            )
        }
    }

    /// The same structure with `scan` disabled: exercises the membership
    /// fallback (the lazy-database shape).
    struct NoScan(Snap);

    impl Structure for NoScan {
        fn contains(&self, rel: RelId, tuple: &[Value]) -> bool {
            self.0.contains(rel, tuple)
        }
        fn domain(&self) -> &[Value] {
            self.0.domain()
        }
    }

    fn fixture() -> (Vocabulary, Snap, Vars, Symbols) {
        let mut voc = Vocabulary::new();
        let edge = voc.declare("edge", 2).unwrap();
        let mark = voc.declare("mark", 1).unwrap();
        let mut inst = Instance::empty(&voc);
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            inst.relation_mut(edge)
                .insert(Tuple::new(vec![Value(a), Value(b)]));
        }
        inst.relation_mut(mark).insert(Tuple::new(vec![Value(1)]));
        (
            voc,
            Snap {
                inst,
                dom: vec![Value(0), Value(1), Value(2), Value(3)],
            },
            Vars::new(),
            Symbols::new(),
        )
    }

    /// Compiled and interpreted evaluation must agree tuple-for-tuple, with
    /// and without `scan`.
    fn check(head_names: &[&str], src: &str) {
        let (voc, snap, mut vars, mut symbols) = fixture();
        let body = {
            let mut r = Resolver {
                voc: &voc,
                vars: &mut vars,
                symbols: &mut symbols,
            };
            parse_fo(src, &mut r).unwrap()
        };
        let head: Vec<VarId> = head_names.iter().map(|n| vars.intern(n)).collect();
        let plan = compile_rule(&head, &body);
        let interpreted = satisfying_valuations(&head, &body, &snap);
        let compiled = eval_plan(&plan, &snap);
        assert_eq!(compiled, interpreted, "rule `{src}` heads {head_names:?}");
        let noscan = NoScan(snap);
        let compiled_noscan = eval_plan(&plan, &noscan);
        assert_eq!(
            compiled_noscan, interpreted,
            "rule `{src}` heads {head_names:?} (no scan)"
        );
    }

    #[test]
    fn joins_match_interpreter() {
        check(&["x", "y"], "edge(x, y)");
        check(&["x"], "exists y: edge(x, y) and mark(y)");
        check(&["x", "y"], "edge(x, y) and mark(x)");
        check(&["y"], "edge(\"?\", y)");
        check(&["x"], "edge(x, x)");
    }

    #[test]
    fn disjunction_branches() {
        check(&["x"], "mark(x) or (exists y: edge(x, y))");
        check(&["x", "y"], "edge(x, y) or edge(y, x)");
    }

    #[test]
    fn filters_and_negation() {
        check(&["x"], "not mark(x)");
        check(&["x"], "(exists y: edge(x, y)) and not mark(x)");
        check(&["x", "y"], "edge(x, y) and x != y");
        check(&["x"], "x = x");
        check(&["x"], "mark(x) and x = \"?\"");
    }

    #[test]
    fn residual_subformulas() {
        check(&["x"], "forall y: edge(x, y) -> mark(y)");
        check(&["x"], "mark(x) and (edge(x, x) or mark(x))");
        check(&["x"], "exists y: edge(x, y) and (mark(y) or mark(x))");
    }

    #[test]
    fn implications_and_ground_guards() {
        // Ground-true antecedent: reduces to the consequent.
        check(&["x"], "(exists y: mark(y)) -> mark(x)");
        // Ground-false antecedent: vacuously all tuples.
        check(&["x"], "(exists y: edge(y, y)) -> mark(x)");
        // Non-ground antecedent: per-tuple vacuity.
        check(&["x", "y"], "edge(x, y) -> mark(x)");
        check(&["x"], "mark(x) -> edge(x, x)");
    }

    #[test]
    fn nested_exists_flattening() {
        // Two nested binders with the same name: the second stays residual
        // (shadowing guard) and the result is still exact.
        check(&["x"], "(exists y: edge(x, y)) and (exists y: edge(y, x))");
        check(&["x"], "exists y: (exists z: edge(x, z) and edge(z, y))");
    }

    #[test]
    fn degenerate_bodies() {
        check(&["x"], "true");
        check(&["x"], "false");
        check(&["x"], "mark(x) and false");
        check(&["x"], "mark(x) or true");
    }

    #[test]
    fn reads_cover_every_relation() {
        let (voc, _snap, mut vars, mut symbols) = fixture();
        let body = {
            let mut r = Resolver {
                voc: &voc,
                vars: &mut vars,
                symbols: &mut symbols,
            };
            parse_fo("mark(x) and not (exists y: edge(x, y))", &mut r).unwrap()
        };
        let head = vec![vars.intern("x")];
        let plan = compile_rule(&head, &body);
        let mut expected: Vec<RelId> = body.relations().into_iter().collect();
        expected.sort();
        assert_eq!(plan.reads(), &expected[..]);
    }
}
