//! Enumeration of satisfying assignments for rule evaluation.
//!
//! Every rule of a peer has the shape `Head(x̄) ← φ(x̄)`: the new extension
//! of `Head` is the set of domain tuples satisfying the body. Evaluating
//! `φ` independently for all `|domain|^arity` candidate tuples is correct
//! but wasteful — for input-bounded rules, the body is (essentially) a
//! conjunction guarded by atoms over tiny relations (inputs, queue heads).
//!
//! [`satisfying_valuations`] therefore *seeds* candidates from the positive
//! relational atoms at the top level of the body (a light-weight join), and
//! only falls back to domain enumeration for head variables no atom binds.
//! Every candidate is then verified against the full body with
//! [`eval_fo`](crate::eval::eval_fo), so seeding is purely an optimization
//! and cannot change results.

use crate::eval::{eval_fo, Structure};
use crate::fo::Fo;
use crate::term::Term;
use crate::vars::{Valuation, VarId};
use ddws_relational::Value;
use std::collections::BTreeSet;

/// Computes all assignments of `head_vars` (tuples over the structure's
/// domain) satisfying `body`. Variables of `body` outside `head_vars` must
/// be bound by quantifiers inside `body`.
pub fn satisfying_valuations<S: Structure + ?Sized>(
    head_vars: &[VarId],
    body: &Fo,
    s: &S,
) -> Vec<Vec<Value>> {
    let mut candidates: BTreeSet<Vec<Value>> = BTreeSet::new();
    collect_candidates(head_vars, body, s, &mut candidates);

    let mut val = Valuation::with_capacity(head_vars.len());
    let mut out = Vec::new();
    for cand in candidates {
        for (&v, &d) in head_vars.iter().zip(&cand) {
            val.set(v, d);
        }
        if eval_fo(body, s, &mut val) {
            out.push(cand);
        }
        for &v in head_vars {
            val.unset(v);
        }
    }
    out
}

/// Gathers candidate head tuples. Disjunction branches are independent
/// candidate sources; a conjunction (possibly under an ∃-prefix) seeds from
/// its positive atoms.
fn collect_candidates<S: Structure + ?Sized>(
    head_vars: &[VarId],
    body: &Fo,
    s: &S,
    out: &mut BTreeSet<Vec<Value>>,
) {
    match body {
        Fo::Or(branches) => {
            for b in branches {
                collect_candidates(head_vars, b, s, out);
            }
        }
        Fo::Implies(a, b) => {
            // head ← (a → b): candidates where the implication is non-vacuous
            // come from b. Vacuous satisfaction can hold for any tuple, but a
            // ground antecedent is decided once — only when it is false does
            // the |domain|^arity cube become genuinely necessary.
            collect_candidates(head_vars, b, s, out);
            if a.free_vars().is_empty() {
                let mut val = Valuation::with_capacity(0);
                if !eval_fo(a, s, &mut val) {
                    enumerate_all(head_vars, s, out);
                }
            } else {
                enumerate_all(head_vars, s, out);
            }
        }
        _ => {
            let (peeled, matrix) = peel_exists(body);
            let mut scope: BTreeSet<VarId> = head_vars.iter().copied().collect();
            scope.extend(peeled);
            let mut atoms = Vec::new();
            positive_atoms(matrix, &mut scope, &mut atoms);
            if atoms.is_empty() {
                // Nothing to seed from: enumerate the cube. Correctness is
                // unaffected — every candidate is verified below.
                enumerate_all(head_vars, s, out);
            } else {
                // Seeding from conjuncts is *complete*: any satisfying
                // assignment satisfies every positive atom conjunct, so its
                // head projection appears among the seeds; head variables no
                // atom binds are cube-enumerated by `complete_unbound`.
                let mut val = Valuation::with_capacity(head_vars.len());
                seed_from_atoms(head_vars, &atoms, 0, s, &mut val, out);
            }
        }
    }
}

/// Splits `∃ȳ φ` into (ȳ, φ), recursively.
fn peel_exists(f: &Fo) -> (Vec<VarId>, &Fo) {
    let mut vars = Vec::new();
    let mut cur = f;
    while let Fo::Exists(vs, body) = cur {
        vars.extend(vs.iter().copied());
        cur = body;
    }
    (vars, cur)
}

/// Top-level positive relational atoms of a conjunction (or a single atom).
///
/// Atoms under a *nested* ∃-conjunct also seed, but only when the nested
/// binder does not shadow a variable already in `scope` — shadowing would
/// make the seeded constraint spuriously conflate the two variables and
/// lose candidates. The scope is threaded *across sibling conjuncts* for
/// the same reason: two siblings `∃y φ₁` and `∃y φ₂` bind distinct
/// witnesses, so only the first may flatten its atoms; joining both on one
/// `y` would under-seed (e.g. `(∃y edge(x,y)) ∧ (∃y edge(y,x))` over a
/// 3-cycle has no common witness yet every node satisfies it).
fn positive_atoms<'f>(f: &'f Fo, scope: &mut BTreeSet<VarId>, out: &mut Vec<&'f Fo>) {
    match f {
        Fo::Atom(..) => out.push(f),
        Fo::And(parts) => {
            for p in parts {
                positive_atoms(p, scope, out);
            }
        }
        Fo::Exists(vs, inner) if !vs.iter().any(|v| scope.contains(v)) => {
            scope.extend(vs.iter().copied());
            positive_atoms(inner, scope, out);
        }
        _ => {}
    }
}

/// Extends partial valuations by matching atom `idx` against its relation.
fn seed_from_atoms<S: Structure + ?Sized>(
    head_vars: &[VarId],
    atoms: &[&Fo],
    idx: usize,
    s: &S,
    val: &mut Valuation,
    out: &mut BTreeSet<Vec<Value>>,
) {
    if idx == atoms.len() {
        // Any head variable not bound by atoms ranges over the domain.
        complete_unbound(head_vars, 0, s, val, out);
        return;
    }
    let Fo::Atom(rel, args) = atoms[idx] else {
        unreachable!("positive_atoms returns atoms only");
    };

    // Preferred path: iterate the relation's actual tuples and unify — this
    // makes seeding linear in the relation size, which is what makes
    // input-bounded rule evaluation cheap (inputs and queue heads hold a
    // handful of tuples).
    if let Some(tuples) = s.scan(*rel) {
        'tuples: for tuple in tuples {
            if tuple.len() != args.len() {
                continue;
            }
            let mut bound_here: Vec<VarId> = Vec::new();
            for (arg, &value) in args.iter().zip(&tuple) {
                match arg {
                    Term::Const(c) => {
                        if *c != value {
                            for v in bound_here.drain(..) {
                                val.unset(v);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match val.get(*v) {
                        Some(existing) => {
                            if existing != value {
                                for v in bound_here.drain(..) {
                                    val.unset(v);
                                }
                                continue 'tuples;
                            }
                        }
                        None => {
                            val.set(*v, value);
                            bound_here.push(*v);
                        }
                    },
                }
            }
            seed_from_atoms(head_vars, atoms, idx + 1, s, val, out);
            for v in bound_here {
                val.unset(v);
            }
        }
        return;
    }

    // Fallback: enumerate domain tuples for the *unbound* argument
    // positions and check membership (necessary for lazily decided
    // database relations).
    let mut positions: Vec<usize> = Vec::new();
    for (i, t) in args.iter().enumerate() {
        if let Term::Var(v) = t {
            if val.get(*v).is_none() {
                positions.push(i);
            }
        }
    }
    let dom: Vec<Value> = s.domain().to_vec();
    let mut assignment = vec![0usize; positions.len()];
    'outer: loop {
        // Bind the unbound positions.
        let mut bound_here: Vec<VarId> = Vec::new();
        let mut consistent = true;
        for (slot, &pos) in positions.iter().enumerate() {
            if let Term::Var(v) = &args[pos] {
                if val.get(*v).is_none() {
                    val.set(*v, dom[assignment[slot]]);
                    bound_here.push(*v);
                } else if val.expect(*v) != dom[assignment[slot]] {
                    // Repeated variable bound earlier in this loop pass.
                    consistent = false;
                }
            }
        }
        if consistent {
            let tuple: Vec<Value> = args.iter().map(|t| t.eval(val)).collect();
            if s.contains(*rel, &tuple) {
                seed_from_atoms(head_vars, atoms, idx + 1, s, val, out);
            }
        }
        for v in bound_here {
            val.unset(v);
        }
        // Odometer.
        if positions.is_empty() {
            // Fully bound atom: single check.
            let tuple: Vec<Value> = args.iter().map(|t| t.eval(val)).collect();
            if s.contains(*rel, &tuple) {
                // Already recursed above when consistent; avoid double work.
            }
            break 'outer;
        }
        let mut i = 0;
        loop {
            if i == assignment.len() {
                break 'outer;
            }
            assignment[i] += 1;
            if assignment[i] < dom.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// Enumerates domain values for head variables the seeds left unbound.
fn complete_unbound<S: Structure + ?Sized>(
    head_vars: &[VarId],
    idx: usize,
    s: &S,
    val: &mut Valuation,
    out: &mut BTreeSet<Vec<Value>>,
) {
    if idx == head_vars.len() {
        let tuple: Vec<Value> = head_vars.iter().map(|&v| val.expect(v)).collect();
        out.insert(tuple);
        return;
    }
    let v = head_vars[idx];
    if val.get(v).is_some() {
        complete_unbound(head_vars, idx + 1, s, val, out);
    } else {
        for d in s.domain().to_vec() {
            val.set(v, d);
            complete_unbound(head_vars, idx + 1, s, val, out);
        }
        val.unset(v);
    }
}

/// Full cube enumeration fallback.
fn enumerate_all<S: Structure + ?Sized>(
    head_vars: &[VarId],
    s: &S,
    out: &mut BTreeSet<Vec<Value>>,
) {
    let mut val = Valuation::with_capacity(head_vars.len());
    complete_unbound(head_vars, 0, s, &mut val, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_fo, Resolver};
    use crate::vars::Vars;
    use ddws_relational::{Instance, RelId, Symbols, Tuple, Vocabulary};

    struct Snap {
        inst: Instance,
        dom: Vec<Value>,
    }

    impl Structure for Snap {
        fn contains(&self, rel: RelId, tuple: &[Value]) -> bool {
            self.inst.contains(rel, &Tuple::from(tuple))
        }
        fn domain(&self) -> &[Value] {
            &self.dom
        }
    }

    fn fixture() -> (Vocabulary, Snap, Vars, Symbols) {
        let mut voc = Vocabulary::new();
        let edge = voc.declare("edge", 2).unwrap();
        let mark = voc.declare("mark", 1).unwrap();
        let mut inst = Instance::empty(&voc);
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            inst.relation_mut(edge)
                .insert(Tuple::new(vec![Value(a), Value(b)]));
        }
        inst.relation_mut(mark).insert(Tuple::new(vec![Value(1)]));
        (
            voc,
            Snap {
                inst,
                dom: vec![Value(0), Value(1), Value(2), Value(3)],
            },
            Vars::new(),
            Symbols::new(),
        )
    }

    /// Reference implementation: full enumeration + eval.
    fn brute<S: Structure>(head: &[VarId], body: &Fo, s: &S) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        let dom = s.domain().to_vec();
        let mut val = Valuation::with_capacity(head.len());
        fn go<S: Structure>(
            head: &[VarId],
            idx: usize,
            body: &Fo,
            s: &S,
            dom: &[Value],
            val: &mut Valuation,
            out: &mut Vec<Vec<Value>>,
        ) {
            if idx == head.len() {
                if eval_fo(body, s, val) {
                    out.push(head.iter().map(|&v| val.expect(v)).collect());
                }
                return;
            }
            for &d in dom {
                val.set(head[idx], d);
                go(head, idx + 1, body, s, dom, val, out);
            }
            val.unset(head[idx]);
        }
        go(head, 0, body, s, &dom, &mut val, &mut out);
        out
    }

    fn check(head_names: &[&str], src: &str) {
        let (voc, snap, mut vars, mut symbols) = fixture();
        let body = {
            let mut r = Resolver {
                voc: &voc,
                vars: &mut vars,
                symbols: &mut symbols,
            };
            parse_fo(src, &mut r).unwrap()
        };
        let head: Vec<VarId> = head_names.iter().map(|n| vars.intern(n)).collect();
        let mut fast = satisfying_valuations(&head, &body, &snap);
        let mut slow = brute(&head, &body, &snap);
        fast.sort();
        slow.sort();
        assert_eq!(fast, slow, "rule `{src}` heads {head_names:?}");
    }

    #[test]
    fn atom_seeding_matches_brute_force() {
        check(&["x", "y"], "edge(x, y)");
        check(&["x"], "exists y: edge(x, y) and mark(y)");
        check(&["x", "y"], "edge(x, y) and mark(x)");
        check(&["y"], "edge(\"?\", y)");
    }

    #[test]
    fn disjunction_branches() {
        check(&["x"], "mark(x) or (exists y: edge(x, y))");
        check(&["x", "y"], "edge(x, y) or edge(y, x)");
    }

    #[test]
    fn negation_forces_fallback_but_stays_correct() {
        check(&["x"], "not mark(x)");
        check(&["x"], "(exists y: edge(x, y)) and not mark(x)");
        check(&["x", "y"], "edge(x, y) and x != y");
    }

    #[test]
    fn equalities_and_constants() {
        check(&["x"], "x = x");
        check(&["x", "y"], "edge(x, y) and mark(y)");
    }

    #[test]
    fn universal_quantifier_in_body() {
        check(&["x"], "forall y: edge(x, y) -> mark(y)");
    }

    #[test]
    fn implication_vacuity_is_decided_before_enumerating() {
        // Ground-true antecedent: the cube is skipped, yet seeding stays
        // complete (the implication reduces to its consequent).
        check(&["x"], "(exists y: mark(y)) -> mark(x)");
        check(&["x", "y"], "(exists z: mark(z)) -> edge(x, y)");
        // Ground-false antecedent: every tuple satisfies vacuously, so the
        // full enumeration is genuinely required — and still happens.
        check(&["x"], "(exists y: edge(y, y)) -> mark(x)");
        // Non-ground antecedent: vacuity is per-tuple, enumeration required.
        check(&["x", "y"], "edge(x, y) -> mark(x)");
        check(&["x"], "mark(x) -> edge(x, x)");
    }

    #[test]
    fn repeated_variables_in_atom() {
        check(&["x"], "edge(x, x)");
    }

    #[test]
    fn sibling_exists_binders_do_not_conflate() {
        // Both conjuncts bind `y` independently; seeding must not join them
        // on a shared witness (the 3-cycle has none, yet every node has both
        // an out- and an in-edge).
        check(&["x"], "(exists y: edge(x, y)) and (exists y: edge(y, x))");
    }
}
