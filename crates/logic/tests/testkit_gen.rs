//! Randomized printer ↔ parser round-trips on the native `ddws-testkit`
//! generator API — the always-on, shrink-free counterpart of the
//! `prop.rs` roundtrip test (which needs `--features proptest`). The
//! formula generator is a direct recursive port of `arb_fo`.

use ddws_logic::parser::{parse_ltlfo, Resolver};
use ddws_logic::pretty::Names;
use ddws_logic::{Fo, LtlFo, Term, VarId, Vars};
use ddws_relational::{RelId, Symbols, Value, Vocabulary};
use ddws_testkit::{gen, rng::XorShift, seed_from};

/// A fixed environment: two relations, a flag, three variables, two symbols.
fn env() -> (Vocabulary, Vars, Symbols) {
    let mut voc = Vocabulary::new();
    voc.declare("p", 1).unwrap();
    voc.declare("q", 2).unwrap();
    voc.declare("flag", 0).unwrap();
    let mut vars = Vars::new();
    for n in ["x", "y", "z"] {
        vars.intern(n);
    }
    let mut symbols = Symbols::new();
    symbols.intern("a");
    symbols.intern("b");
    (voc, vars, symbols)
}

fn gen_term(rng: &mut XorShift) -> Term {
    if rng.bool() {
        Term::Var(VarId(rng.below(3) as u32))
    } else {
        Term::Const(Value(rng.below(2) as u32))
    }
}

/// Random FO formulas over the fixed environment, depth-bounded.
fn gen_fo(rng: &mut XorShift, depth: u32) -> Fo {
    if depth == 0 || rng.chance(1, 3) {
        return match rng.below(6) {
            0 => Fo::Atom(RelId(0), vec![gen_term(rng)]),
            1 => Fo::Atom(RelId(1), vec![gen_term(rng), gen_term(rng)]),
            2 => Fo::Atom(RelId(2), vec![]),
            3 => Fo::Eq(gen_term(rng), gen_term(rng)),
            4 => Fo::True,
            _ => Fo::False,
        };
    }
    match rng.below(6) {
        0 => Fo::not(gen_fo(rng, depth - 1)),
        1 => Fo::And(gen::vec_of(rng, 2, 3, |r| gen_fo(r, depth - 1))),
        2 => Fo::Or(gen::vec_of(rng, 2, 3, |r| gen_fo(r, depth - 1))),
        3 => Fo::Implies(
            Box::new(gen_fo(rng, depth - 1)),
            Box::new(gen_fo(rng, depth - 1)),
        ),
        4 => Fo::exists(vec![VarId(rng.below(3) as u32)], gen_fo(rng, depth - 1)),
        _ => Fo::forall(vec![VarId(rng.below(3) as u32)], gen_fo(rng, depth - 1)),
    }
}

#[test]
fn printer_parser_roundtrip() {
    gen::cases(64, seed_from("printer_parser_roundtrip"), |rng| {
        let fo = gen_fo(rng, 3);
        let (voc, mut vars, mut symbols) = env();
        let printed = Names::new(&voc, &vars, &symbols).ltlfo(&LtlFo::Fo(fo.clone()));
        let reparsed = {
            let mut r = Resolver {
                voc: &voc,
                vars: &mut vars,
                symbols: &mut symbols,
            };
            parse_ltlfo(&printed, &mut r)
        };
        // The parser hoists boolean connectives to the LTL level; fold back
        // into pure FO before comparing.
        let normalized = reparsed
            .unwrap_or_else(|e| panic!("reparse of `{printed}`: {e}"))
            .to_fo()
            .unwrap_or_else(|| panic!("reparse of `{printed}` introduced temporal ops"));
        assert_eq!(fo, normalized, "printed: {printed}");
    });
}
