//! Property-based tests for the logic layer: pretty-printer ↔ parser
//! round-trips over randomly generated formulas, and evaluator/enumerator
//! agreement on random structures.

use ddws_logic::enumerate::satisfying_valuations;
use ddws_logic::eval::{eval_fo, Structure};
use ddws_logic::parser::{parse_ltlfo, Resolver};
use ddws_logic::pretty::Names;
use ddws_logic::{Fo, LtlFo, Term, Valuation, VarId, Vars};
use ddws_relational::{Instance, RelId, Symbols, Tuple, Value, Vocabulary};
use ddws_testkit::proptest::{self, prelude::*};

/// A fixed environment: two relations, three variables, two constants.
fn env() -> (Vocabulary, Vars, Symbols) {
    let mut voc = Vocabulary::new();
    voc.declare("p", 1).unwrap();
    voc.declare("q", 2).unwrap();
    voc.declare("flag", 0).unwrap();
    let mut vars = Vars::new();
    for n in ["x", "y", "z"] {
        vars.intern(n);
    }
    let mut symbols = Symbols::new();
    symbols.intern("a");
    symbols.intern("b");
    (voc, vars, symbols)
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u32..3).prop_map(|i| Term::Var(VarId(i))),
        (0u32..2).prop_map(|i| Term::Const(Value(i))),
    ]
}

/// Random FO formulas over the fixed environment, depth-bounded.
fn arb_fo(depth: u32) -> BoxedStrategy<Fo> {
    let leaf = prop_oneof![
        arb_term().prop_map(|t| Fo::Atom(RelId(0), vec![t])),
        (arb_term(), arb_term()).prop_map(|(a, b)| Fo::Atom(RelId(1), vec![a, b])),
        Just(Fo::Atom(RelId(2), vec![])),
        (arb_term(), arb_term()).prop_map(|(a, b)| Fo::Eq(a, b)),
        Just(Fo::True),
        Just(Fo::False),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Fo::not),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Fo::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Fo::Or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Fo::Implies(Box::new(a), Box::new(b))),
            (0u32..3, inner.clone()).prop_map(|(v, f)| Fo::exists(vec![VarId(v)], f)),
            (0u32..3, inner).prop_map(|(v, f)| Fo::forall(vec![VarId(v)], f)),
        ]
    })
    .boxed()
}

#[derive(Debug)]
struct Snap {
    inst: Instance,
    dom: Vec<Value>,
}

impl Structure for Snap {
    fn contains(&self, rel: RelId, tuple: &[Value]) -> bool {
        self.inst.contains_slice(rel, tuple)
    }
    fn domain(&self) -> &[Value] {
        &self.dom
    }
    fn scan(&self, rel: RelId) -> Option<Vec<Vec<Value>>> {
        Some(
            self.inst
                .relation(rel)
                .iter()
                .map(|t| t.values().to_vec())
                .collect(),
        )
    }
}

fn arb_snap() -> impl Strategy<Value = Snap> {
    (
        proptest::collection::vec(0u32..2, 0..3),
        proptest::collection::vec((0u32..2, 0u32..2), 0..4),
        any::<bool>(),
    )
        .prop_map(|(ps, qs, flag)| {
            let (voc, _, _) = env();
            let mut inst = Instance::empty(&voc);
            for v in ps {
                inst.relation_mut(RelId(0))
                    .insert(Tuple::new(vec![Value(v)]));
            }
            for (a, b) in qs {
                inst.relation_mut(RelId(1))
                    .insert(Tuple::new(vec![Value(a), Value(b)]));
            }
            inst.set_holds(RelId(2), flag);
            Snap {
                inst,
                dom: vec![Value(0), Value(1)],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print → parse is the identity on random formulas (the printed core
    /// syntax re-parses to the same AST).
    #[test]
    fn printer_parser_roundtrip(fo in arb_fo(3)) {
        let (voc, mut vars, mut symbols) = env();
        let printed = Names::new(&voc, &vars, &symbols).ltlfo(&LtlFo::Fo(fo.clone()));
        let reparsed = {
            let mut r = Resolver { voc: &voc, vars: &mut vars, symbols: &mut symbols };
            parse_ltlfo(&printed, &mut r)
        };
        match reparsed {
            Ok(f2) => {
                // The parser hoists boolean connectives to the LTL level
                // (`not p(x)` parses as LtlFo::Not of an FO leaf); fold both
                // sides back into pure FO before comparing.
                let normalized = f2
                    .to_fo()
                    .ok_or_else(|| TestCaseError::fail("reparse introduced temporal ops"))?;
                prop_assert_eq!(fo, normalized, "printed: {}", printed);
            }
            Err(e) => return Err(TestCaseError::fail(format!("reparse of `{printed}`: {e}"))),
        }
    }

    /// The seeded enumerator agrees with brute-force evaluation for every
    /// random body over every random structure.
    #[test]
    fn enumerator_matches_bruteforce(fo in arb_fo(2), snap in arb_snap()) {
        // Head variables: the formula's free variables.
        let head: Vec<VarId> = fo.free_vars().into_iter().collect();
        let mut fast = satisfying_valuations(&head, &fo, &snap);
        fast.sort();
        // Brute force.
        let mut slow = Vec::new();
        let mut val = Valuation::with_capacity(3);
        let dom = snap.dom.clone();
        fn go(
            head: &[VarId],
            idx: usize,
            fo: &Fo,
            snap: &Snap,
            dom: &[Value],
            val: &mut Valuation,
            out: &mut Vec<Vec<Value>>,
        ) {
            if idx == head.len() {
                if eval_fo(fo, snap, val) {
                    out.push(head.iter().map(|&v| val.expect(v)).collect());
                }
                return;
            }
            for &d in dom {
                val.set(head[idx], d);
                go(head, idx + 1, fo, snap, dom, val, out);
            }
            val.unset(head[idx]);
        }
        go(&head, 0, &fo, &snap, &dom, &mut val, &mut slow);
        slow.sort();
        prop_assert_eq!(fast, slow);
    }
}
