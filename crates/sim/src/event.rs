//! The canonical event trace (DESIGN.md §3.11).
//!
//! Every observable step of a simulation run is recorded as one
//! [`SimEvent`]; the run's *canonical trace* is the newline-joined
//! [`Display`](std::fmt::Display) rendering of the event list. The trace
//! is the replay contract: it contains virtual-clock values, schedule
//! decisions, and outcome labels, and **never** wall-clock readings,
//! addresses, or anything else the host machine could perturb — so two
//! runs from the same seed must produce byte-identical traces.

use std::fmt;

/// One observable simulation step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimEvent {
    /// A verification job entered the scheduler.
    JobSubmitted {
        /// Job index.
        job: usize,
        /// Job kind (`compgen` or the fixed job's name).
        kind: String,
        /// The property under verification.
        property: String,
    },
    /// The scheduler granted the job one time slice.
    SliceStarted {
        /// Job index.
        job: usize,
        /// 0-based slice ordinal within the job.
        slice: u32,
        /// Virtual clock at slice start, nanoseconds.
        now_ns: u64,
    },
    /// The slice continued a checkpoint from an earlier preemption.
    Resumed {
        /// Job index.
        job: usize,
        /// Slice ordinal.
        slice: u32,
    },
    /// The slice's fault hook injected a crash (worker panic).
    CrashInjected {
        /// Job index.
        job: usize,
        /// Slice ordinal.
        slice: u32,
    },
    /// The slice ended; `outcome` is the run-report label
    /// (`holds`, `violated`, `deadline_exceeded`, `cancelled`,
    /// `budget_exceeded`, `worker_panicked`).
    SliceEnded {
        /// Job index.
        job: usize,
        /// Slice ordinal.
        slice: u32,
        /// Run-report outcome label.
        outcome: String,
        /// States visited by this slice's (partial) search.
        states: u64,
    },
    /// The job reached a terminal verdict.
    JobFinished {
        /// Job index.
        job: usize,
        /// Terminal verdict label.
        verdict: String,
        /// Total slices consumed.
        slices: u32,
        /// Crash-induced fresh restarts.
        restarts: u32,
    },
    /// The unfaulted oracle run for the job finished.
    OracleFinished {
        /// Job index.
        job: usize,
        /// Oracle verdict label.
        verdict: String,
    },
    /// One step of the perturbed channel walk.
    WalkStep {
        /// Job index.
        job: usize,
        /// 0-based walk step.
        step: u32,
        /// Perturbation applied before stepping (`none`, `loss`,
        /// `duplicate`, `reorder`).
        perturbation: &'static str,
        /// Total queued messages after the step.
        queued: usize,
    },
    /// The loss-closure check completed on the job's composition.
    ClosureChecked {
        /// Job index.
        job: usize,
        /// Reachable configurations enumerated.
        configs: usize,
        /// Single-loss perturbations checked for reachability.
        candidates: usize,
    },
    /// An invariant violation was detected (the run is a failure).
    Violation {
        /// Job index the violation is attributed to.
        job: usize,
        /// Stable-prefixed description (`divergence:`, `report:`, …).
        detail: String,
    },
}

impl fmt::Display for SimEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimEvent::JobSubmitted {
                job,
                kind,
                property,
            } => {
                write!(f, "submit job={job} kind={kind} prop={property}")
            }
            SimEvent::SliceStarted { job, slice, now_ns } => {
                write!(f, "slice job={job} n={slice} t={now_ns}")
            }
            SimEvent::Resumed { job, slice } => write!(f, "resume job={job} n={slice}"),
            SimEvent::CrashInjected { job, slice } => write!(f, "crash job={job} n={slice}"),
            SimEvent::SliceEnded {
                job,
                slice,
                outcome,
                states,
            } => {
                write!(
                    f,
                    "end job={job} n={slice} outcome={outcome} states={states}"
                )
            }
            SimEvent::JobFinished {
                job,
                verdict,
                slices,
                restarts,
            } => {
                write!(
                    f,
                    "done job={job} verdict={verdict} slices={slices} restarts={restarts}"
                )
            }
            SimEvent::OracleFinished { job, verdict } => {
                write!(f, "oracle job={job} verdict={verdict}")
            }
            SimEvent::WalkStep {
                job,
                step,
                perturbation,
                queued,
            } => {
                write!(
                    f,
                    "walk job={job} step={step} perturb={perturbation} queued={queued}"
                )
            }
            SimEvent::ClosureChecked {
                job,
                configs,
                candidates,
            } => {
                write!(
                    f,
                    "closure job={job} configs={configs} candidates={candidates}"
                )
            }
            SimEvent::Violation { job, detail } => {
                write!(f, "violation job={job} {detail}")
            }
        }
    }
}

/// Joins events into the canonical newline-separated trace.
pub fn canonical_trace(events: &[SimEvent]) -> String {
    let mut out = String::new();
    for e in events {
        use fmt::Write;
        let _ = writeln!(out, "{e}");
    }
    out
}
