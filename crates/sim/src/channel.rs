//! Channel perturbation under the paper's lossy-queue semantics.
//!
//! Two tools, both pure functions of their inputs:
//!
//! * [`perturb`] — picks one applicable queue perturbation (message loss
//!   on a lossy channel, duplication, adjacent reorder) for the seeded
//!   robustness walk. Loss is *semantic* — T3.4's lossy channels may
//!   drop any in-flight message, so a loss-perturbed configuration stays
//!   inside the system's reachable behaviour. Duplication and reorder
//!   are *robustness* perturbations: not part of the semantics, but the
//!   stack (successor computation, bounds, display) must stay
//!   structurally sound on any bounded queue content.
//! * [`loss_closure`] — checks the downward-closure property the lossy
//!   semantics implies: every single-message loss applied to a reachable
//!   configuration yields a configuration that is itself reachable
//!   (modulo the `received` flag of the very last transition, since this
//!   implementation resolves loss at enqueue time). Channels whose
//!   sender-view relation (`!q`) appears in a rule body are skipped —
//!   there a later sender step can observe the dropped tail, and the
//!   closure argument does not apply.

use ddws_model::{Composition, Config};
use ddws_relational::{Instance, Value};
use ddws_testkit::rng::XorShift;
use std::collections::{HashSet, VecDeque};

/// One applicable perturbation site: (kind, channel index, queue index).
fn candidates(comp: &Composition, cfg: &Config) -> Vec<(&'static str, usize, usize)> {
    let bound = comp.semantics.queue_bound;
    let mut out = Vec::new();
    for (qi, ch) in comp.channels.iter().enumerate() {
        let len = cfg.queues[qi].len();
        if ch.lossy {
            for idx in 0..len {
                out.push(("loss", qi, idx));
            }
        }
        if len > 0 && len < bound {
            for idx in 0..len {
                out.push(("duplicate", qi, idx));
            }
        }
        for idx in 0..len.saturating_sub(1) {
            out.push(("reorder", qi, idx));
        }
    }
    out
}

/// Applies one seeded queue perturbation to `cfg`, if any is applicable.
/// Returns the perturbation's kind and the perturbed configuration.
pub fn perturb(
    comp: &Composition,
    cfg: &Config,
    rng: &mut XorShift,
) -> Option<(&'static str, Config)> {
    let sites = candidates(comp, cfg);
    if sites.is_empty() {
        return None;
    }
    let (kind, qi, idx) = sites[rng.below(sites.len() as u64) as usize];
    let mut p = cfg.clone();
    match kind {
        "loss" => {
            p.queues[qi].remove(idx);
        }
        "duplicate" => {
            let m = p.queues[qi][idx].clone();
            p.queues[qi].push_back(m);
        }
        "reorder" => {
            p.queues[qi].swap(idx, idx + 1);
        }
        _ => unreachable!(),
    }
    Some((kind, p))
}

/// Enumerates the reachable configurations of `comp` over `db` (breadth
/// first, capped at `cap` configurations) and checks the loss-closure
/// invariant: dropping any single message from a lossy channel of a
/// reachable configuration yields a reachable configuration — either
/// verbatim, or after clearing that channel's `received` flag (the
/// enqueue-time loss branch differs in exactly that flag when the drop
/// undoes the most recent delivery).
///
/// Returns `(configs, candidates)`: the size of the enumerated set and
/// the number of loss perturbations checked. When the cap is hit the
/// check is skipped (`candidates == 0`) rather than reported as a
/// failure — the invariant needs the *complete* reachable set. A
/// violation returns a `closure:`-prefixed description.
pub fn loss_closure(
    comp: &Composition,
    db: &Instance,
    domain: &[Value],
    cap: usize,
) -> Result<(usize, usize), String> {
    let movers = comp.movers();
    let mut seen: HashSet<Config> = HashSet::new();
    let mut frontier: VecDeque<Config> = VecDeque::new();
    for c in comp.initial_configs(db, domain) {
        if seen.insert(c.clone()) {
            frontier.push_back(c);
        }
    }
    while let Some(c) = frontier.pop_front() {
        for &mover in &movers {
            for s in comp.successors(db, domain, &c, mover) {
                if seen.insert(s.clone()) {
                    if seen.len() > cap {
                        return Ok((seen.len(), 0));
                    }
                    frontier.push_back(s);
                }
            }
        }
    }

    let mut candidates = 0usize;
    for cfg in &seen {
        for (qi, ch) in comp.channels.iter().enumerate() {
            if !ch.lossy || comp.rule_mentioned.contains(&ch.out_rel) {
                continue;
            }
            for idx in 0..cfg.queues[qi].len() {
                candidates += 1;
                let mut p = cfg.clone();
                p.queues[qi].remove(idx);
                if seen.contains(&p) {
                    continue;
                }
                p.received[qi] = false;
                if seen.contains(&p) {
                    continue;
                }
                return Err(format!(
                    "closure: loss-perturbed configuration unreachable \
                     (channel {}, queue index {idx}, {} reachable configs)",
                    ch.name,
                    seen.len()
                ));
            }
        }
    }
    Ok((seen.len(), candidates))
}
