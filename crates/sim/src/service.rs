//! Deterministic service-level simulation: seeded in-process clients
//! driving a [`ddws_server::Server`] event loop under `ManualClock`.
//!
//! This folds the PR 9 verification service into the whole-system DES
//! (DESIGN.md §3.11 pillars): the run is a **pure function of one `u64`
//! seed** — N simulated clients draw compgen jobs, submit them over real
//! wire frames, and the harness interleaves frame delivery, scheduler
//! quanta, status polls, telemetry drains, and planned cancellations
//! from the seed's RNG stream. Nothing reads wall time: slices advance
//! the server's `ManualClock` one tick per state expansion, so the
//! canonical service event log and every redacted run report replay
//! byte-identically from the seed.
//!
//! Invariants are *recorded*, not asserted (the violation list):
//!
//! * **termination** — every submitted job reaches a terminal state
//!   within the quantum bound;
//! * **oracle agreement** — every served verdict (and, on `violated`,
//!   the counterexample digest) equals a direct one-shot unsharded
//!   `Verifier` run with the same budget;
//! * **telemetry conservation** — each executed slice streams exactly
//!   one schema-valid run report, none lost, none duplicated;
//! * **fairness** — strict round-robin: between two consecutive slices
//!   of any job, every other job runs at most once, so a pathological
//!   tenant (the `starver` scenario) delays nobody by more than one
//!   full round of quanta.

use ddws_server::{
    decode_response, encode_request, CexDigest, JobOptions, JobSpec, Request, Response, Server,
    ServerConfig,
};
use ddws_testkit::compgen::{self, CaseSpec};
use ddws_testkit::contract;
use ddws_testkit::rng::XorShift;
use ddws_verifier::{AbortReason, DatabaseMode, Outcome, RunReport, Verifier, VerifyOptions};

/// Parameters of one service simulation.
#[derive(Clone, Debug)]
pub struct ServiceSimOptions {
    /// Simulated clients.
    pub clients: usize,
    /// Compgen jobs drawn per client.
    pub jobs_per_client: usize,
    /// The scheduler quantum (additional states per slice).
    pub quantum_states: u64,
    /// Per-job total state budget.
    pub budget: u64,
    /// Queue admission capacity.
    pub capacity: usize,
    /// Queue the budget-explosive `starver` scenario first (client 0).
    pub starver: bool,
    /// Plan one seeded cancellation of a compgen job after ≥1 slice.
    pub cancel_one: bool,
    /// Safety bound on scheduler quanta before declaring deadlock.
    pub max_quanta: u64,
}

impl Default for ServiceSimOptions {
    fn default() -> ServiceSimOptions {
        ServiceSimOptions {
            clients: 3,
            jobs_per_client: 2,
            quantum_states: 256,
            budget: 20_000,
            capacity: 16,
            starver: false,
            cancel_one: true,
            max_quanta: 50_000,
        }
    }
}

/// One submitted job's record, service-side state joined with the
/// client-side bookkeeping and the oracle's answer.
#[derive(Clone, Debug)]
pub struct ServiceJob {
    /// Submitting client.
    pub client: usize,
    /// Wire job id.
    pub job: u64,
    /// The compgen spec (absent for scenario jobs).
    pub spec: Option<CaseSpec>,
    /// The scenario name (absent for spec jobs).
    pub scenario: Option<String>,
    /// The served verdict label.
    pub verdict: Option<String>,
    /// The oracle's verdict label (not run for cancelled jobs).
    pub oracle: Option<String>,
    /// Served counterexample digest, on `violated`.
    pub counterexample: Option<CexDigest>,
    /// Oracle counterexample digest, on `violated`.
    pub oracle_counterexample: Option<CexDigest>,
    /// Slices executed.
    pub slices: u64,
    /// Cumulative visited states.
    pub states_visited: u64,
    /// Scheduler step at admission.
    pub submitted_step: u64,
    /// Scheduler step at the terminal transition.
    pub completed_step: Option<u64>,
    /// Whether the job was cancelled.
    pub cancelled: bool,
    /// Whether the cancel discarded a parked checkpoint.
    pub discarded_checkpoint: bool,
    /// Run reports drained from the job's telemetry stream.
    pub reports: u64,
}

/// The result of one seeded service simulation.
#[derive(Clone, Debug)]
pub struct ServiceRun {
    /// The driving seed.
    pub seed: u64,
    /// The server's canonical event log (the replay unit).
    pub trace: String,
    /// Redacted final reports of every terminal job, in job order (the
    /// other half of the replay unit).
    pub redacted_reports: String,
    /// Per-job records, in admission order.
    pub jobs: Vec<ServiceJob>,
    /// Recorded invariant violations (empty on a healthy run).
    pub violations: Vec<String>,
    /// Scheduler quanta executed.
    pub quanta: u64,
}

/// The oracle: a direct, one-shot, unsharded run of the same case under
/// the same total budget. Returns the verdict label and, on `violated`,
/// the counterexample digest.
fn oracle_verdict(
    case: &compgen::Case,
    options: &JobOptions,
) -> Result<(String, Option<CexDigest>), String> {
    let mut verifier = Verifier::new(case.composition.clone());
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(case.database.clone()),
        fresh_values: options.fresh_values,
        max_states: options.budget,
        valuation_threads: Some(1),
        ..VerifyOptions::default()
    };
    let report = verifier
        .check_str(&case.property, &opts)
        .map_err(|e| format!("oracle failed: {e}"))?;
    Ok(match report.outcome {
        Outcome::Holds => ("holds".to_string(), None),
        Outcome::Violated(cex) => {
            let digest = CexDigest {
                values: cex
                    .valuation
                    .iter()
                    .map(|&(_, v)| case.composition.symbols.name(v).to_string())
                    .collect(),
                prefix_len: cex.prefix.len() as u64,
                cycle_len: cex.cycle.len() as u64,
            };
            ("violated".to_string(), Some(digest))
        }
        Outcome::Inconclusive(inc) => match inc.reason {
            AbortReason::StateBudget { .. } => ("budget_exceeded".to_string(), None),
            other => (format!("aborted ({})", other.label()), None),
        },
    })
}

/// Runs one seeded service simulation. Everything — job draws, request
/// interleaving, cancellation timing — derives from `seed`.
pub fn run_service_seed(seed: u64, opts: &ServiceSimOptions) -> ServiceRun {
    let mut rng = XorShift::new(seed ^ 0x5e17_1ce0_5e17_1ce0);
    let server = Server::new(ServerConfig::deterministic(
        opts.capacity,
        opts.quantum_states,
    ));

    // -------------------------------------------------------------
    // Draw phase: the job corpus, in client-submission order.
    // -------------------------------------------------------------
    let mut pending: Vec<(usize, JobSpec, JobOptions)> = Vec::new();
    if opts.starver {
        pending.push((
            0,
            JobSpec::Scenario("starver".to_string()),
            JobOptions {
                budget: opts.budget,
                ..JobOptions::default()
            },
        ));
    }
    for client in 0..opts.clients {
        for _ in 0..opts.jobs_per_client {
            let spec = compgen::spec(&mut rng);
            pending.push((
                client,
                JobSpec::Spec(spec),
                JobOptions {
                    budget: opts.budget,
                    ..JobOptions::default()
                },
            ));
        }
    }
    // One planned cancellation: a compgen job (never the starver, whose
    // point is to stay pathological) after 1–3 slices.
    let cancel_plan: Option<(usize, u64)> = if opts.cancel_one && !pending.is_empty() {
        let first_compgen = usize::from(opts.starver);
        let idx = first_compgen + rng.below((pending.len() - first_compgen) as u64) as usize;
        Some((idx, 1 + rng.below(3)))
    } else {
        None
    };

    let mut violations: Vec<String> = Vec::new();
    let mut jobs: Vec<ServiceJob> = Vec::new();
    let mut next_request_id: u64 = 1;
    let send = |server: &Server, req: &Request, id: &mut u64| -> Response {
        let frame = encode_request(*id, req);
        let bytes = server.handle_frame(&frame);
        let (rid, resp, _) = decode_response(&bytes).expect("server frames decode");
        assert_eq!(rid, *id, "correlation id echoes");
        *id += 1;
        resp
    };

    // -------------------------------------------------------------
    // Interleaving phase: submissions, quanta, polls, cancellations —
    // all drawn from the seed.
    // -------------------------------------------------------------
    let mut submitted = 0usize;
    let mut quanta = 0u64;
    let mut cancel_sent = false;
    loop {
        let runnable = server.has_runnable();
        let can_submit = submitted < pending.len();
        if !runnable && !can_submit {
            break;
        }
        if quanta >= opts.max_quanta {
            violations.push(format!(
                "deadlock: {} quanta without quiescence",
                opts.max_quanta
            ));
            break;
        }

        // A planned cancel fires as soon as its target has run enough
        // slices (and before the next quantum, so it lands on a *parked*
        // checkpoint).
        if let Some((idx, after_slices)) = cancel_plan {
            if !cancel_sent && idx < jobs.len() {
                let job = &jobs[idx];
                let rows = server.jobs();
                let row = &rows[job.job as usize];
                if !row.state.is_terminal() && row.slices >= after_slices {
                    send(
                        &server,
                        &Request::CancelJob { job: job.job },
                        &mut next_request_id,
                    );
                    cancel_sent = true;
                    continue;
                }
            }
        }

        // Bias toward submitting early (front-loads contention), then
        // interleave quanta with occasional wire polls.
        if can_submit && (!runnable || rng.chance(2, 5)) {
            let (client, spec, options) = pending[submitted].clone();
            let resp = send(
                &server,
                &Request::SubmitJob {
                    spec: spec.clone(),
                    options: options.clone(),
                },
                &mut next_request_id,
            );
            match resp {
                Response::Accepted { job } => {
                    jobs.push(ServiceJob {
                        client,
                        job,
                        spec: match &spec {
                            JobSpec::Spec(cs) => Some(cs.clone()),
                            JobSpec::Scenario(_) => None,
                        },
                        scenario: match &spec {
                            JobSpec::Scenario(name) => Some(name.clone()),
                            JobSpec::Spec(_) => None,
                        },
                        verdict: None,
                        oracle: None,
                        counterexample: None,
                        oracle_counterexample: None,
                        slices: 0,
                        states_visited: 0,
                        submitted_step: 0,
                        completed_step: None,
                        cancelled: false,
                        discarded_checkpoint: false,
                        reports: 0,
                    });
                }
                Response::Error(err) => violations.push(format!(
                    "submission {submitted} rejected below capacity: {err}"
                )),
                other => violations.push(format!("unexpected submit response: {other:?}")),
            }
            submitted += 1;
            continue;
        }

        if runnable {
            // Occasionally poke the wire mid-flight; the responses land
            // in the canonical log, widening the replay surface.
            if !jobs.is_empty() && rng.chance(1, 8) {
                let j = jobs[rng.below(jobs.len() as u64) as usize].job;
                send(
                    &server,
                    &Request::JobStatus { job: j },
                    &mut next_request_id,
                );
            }
            if !jobs.is_empty() && rng.chance(1, 8) {
                let pick = rng.below(jobs.len() as u64) as usize;
                let target = &mut jobs[pick];
                if let Response::Telemetry { reports, .. } = send(
                    &server,
                    &Request::StreamTelemetry { job: target.job },
                    &mut next_request_id,
                ) {
                    target.reports += reports.len() as u64;
                    check_reports(&reports, target.job, &mut violations);
                }
            }
            server.step();
            quanta += 1;
        }
    }

    // -------------------------------------------------------------
    // Collection phase: fetch every result over the wire, drain the
    // remaining telemetry, and interrogate the oracle.
    // -------------------------------------------------------------
    let rows = server.jobs();
    for job in &mut jobs {
        let row = &rows[job.job as usize];
        job.slices = row.slices;
        job.states_visited = row.states_visited;
        job.submitted_step = row.submitted_step;
        job.completed_step = row.completed_step;
        job.discarded_checkpoint = row.discarded_checkpoint;
        if !row.state.is_terminal() {
            violations.push(format!("job {} not terminal: {:?}", job.job, row.state));
            continue;
        }
        if let Response::Telemetry { reports, .. } = send(
            &server,
            &Request::StreamTelemetry { job: job.job },
            &mut next_request_id,
        ) {
            job.reports += reports.len() as u64;
            check_reports(&reports, job.job, &mut violations);
        }
        match send(
            &server,
            &Request::FetchResult { job: job.job },
            &mut next_request_id,
        ) {
            Response::Result {
                verdict,
                counterexample,
                ..
            } => {
                job.cancelled = verdict == "cancelled";
                job.verdict = Some(verdict);
                job.counterexample = counterexample;
            }
            other => violations.push(format!("fetch({}) answered {other:?}", job.job)),
        }
        // Telemetry conservation: one report per executed slice. A
        // cancel that lands between slices terminalizes without a final
        // slice, so the bound is exact for uncancelled jobs.
        if !job.cancelled && job.reports != job.slices {
            violations.push(format!(
                "job {}: {} slices but {} streamed reports",
                job.job, job.slices, job.reports
            ));
        }

        if job.cancelled {
            continue;
        }
        let case = match (&job.spec, &job.scenario) {
            (Some(spec), _) => spec.build().expect("submitted spec builds"),
            (None, Some(name)) => ddws_server::scenario(name).expect("known scenario"),
            (None, None) => unreachable!("job has a source"),
        };
        let options = JobOptions {
            budget: opts.budget,
            ..JobOptions::default()
        };
        match oracle_verdict(&case, &options) {
            Ok((verdict, digest)) => {
                if job.verdict.as_deref() != Some(verdict.as_str()) {
                    violations.push(format!(
                        "job {}: served {:?}, oracle {verdict:?}",
                        job.job, job.verdict
                    ));
                }
                if digest != job.counterexample {
                    violations.push(format!(
                        "job {}: served counterexample {:?}, oracle {:?}",
                        job.job, job.counterexample, digest
                    ));
                }
                job.oracle = Some(verdict);
                job.oracle_counterexample = digest;
            }
            Err(e) => violations.push(format!("job {}: {e}", job.job)),
        }
    }

    // Fairness: the strict round-robin law, checked on the slice events
    // of the canonical log.
    let trace = server.canonical_log();
    violations.extend(fairness_violations(&trace));

    ServiceRun {
        seed,
        redacted_reports: ddws_server::redacted_reports(&server),
        trace,
        jobs,
        violations,
        quanta,
    }
}

/// Schema-validates a batch of streamed slice reports.
fn check_reports(reports: &[RunReport], job: u64, violations: &mut Vec<String>) {
    for r in reports {
        let slice = std::slice::from_ref(r);
        if let Err(e) = contract::report_contract(slice, &format!("job {job} slice report")) {
            violations.push(e);
        }
    }
}

/// The strict round-robin fairness law, on the canonical log: between
/// two consecutive `slice` events of any job, every other job appears at
/// most once — i.e. nobody waits more than one full round of quanta.
pub fn fairness_violations(trace: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let slices: Vec<u64> = trace
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("slice job=")?;
            rest.split_whitespace().next()?.parse().ok()
        })
        .collect();
    let mut last_seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, &job) in slices.iter().enumerate() {
        if let Some(&prev) = last_seen.get(&job) {
            let between = &slices[prev + 1..i];
            let mut seen = std::collections::HashSet::new();
            for &other in between {
                if !seen.insert(other) {
                    violations.push(format!(
                        "fairness: job {other} ran twice between consecutive slices of job {job} \
                         (positions {prev}..{i})"
                    ));
                }
            }
        }
        last_seen.insert(job, i);
    }
    violations
}
