//! Deterministic service-level simulation: seeded in-process clients
//! driving a [`ddws_server::Server`] event loop under `ManualClock`.
//!
//! This folds the PR 9 verification service into the whole-system DES
//! (DESIGN.md §3.11 pillars): the run is a **pure function of one `u64`
//! seed** — N simulated clients draw compgen jobs, submit them over real
//! wire frames, and the harness interleaves frame delivery, scheduler
//! quanta, status polls, telemetry drains, and planned cancellations
//! from the seed's RNG stream. Nothing reads wall time: slices advance
//! the server's `ManualClock` one tick per state expansion, so the
//! canonical service event log and every redacted run report replay
//! byte-identically from the seed.
//!
//! Invariants are *recorded*, not asserted (the violation list):
//!
//! * **termination** — every submitted job reaches a terminal state
//!   within the quantum bound;
//! * **oracle agreement** — every served verdict (and, on `violated`,
//!   the counterexample digest) equals a direct one-shot unsharded
//!   `Verifier` run with the same budget;
//! * **telemetry conservation** — each executed slice streams exactly
//!   one schema-valid run report, none lost, none duplicated;
//! * **fairness** — strict round-robin: between two consecutive slices
//!   of any job, every other job runs at most once, so a pathological
//!   tenant (the `starver` scenario) delays nobody by more than one
//!   full round of quanta.
//!
//! ## Wire-level chaos
//!
//! With a non-trivial [`FrameChaos`] profile (or `crash_in`/`skew_ns`)
//! the same run becomes hostile, still as a pure function of the seed:
//! client traffic goes through real [`ClientSession`] retry sessions
//! over a [`ChaosTransport`] that drops, duplicates, reorders, and
//! bit-flips frames; a seeded
//! [`CrashInjector`](ddws_server::CrashInjector) panics workers
//! mid-slice; retention bounds evict old results; and per-client clock
//! skew perturbs virtual time during backoff waits. The invariant set
//! tightens to the robustness contract: every submitted job still
//! drains to an oracle-exact verdict **or** a typed terminal answer
//! (`job_poisoned` for quarantined crash loops, `result_evicted` for
//! reclaimed results) — never a hang, never a panic. Telemetry drains
//! stay on the reliable direct path (drains are destructive reads, so a
//! dropped drain response would silently lose counted reports and
//! falsify the conservation law rather than test it).
//!
//! Violations are *attributed* to the draw-order index of the offending
//! job, so [`shrink_service_violation`] can fold a failing chaos run
//! into the PR 6 shrink pipeline: the spec is delta-debugged against
//! the identical RNG stream, yielding a 1-minimal spec plus the
//! minimized run's canonical trace.

use ddws_server::{
    decode_response, encode_request, CexDigest, ClientError, ClientSession, CrashInjector,
    ErrorCode, JobOptions, JobSpec, Request, Response, RetryPolicy, Server, ServerConfig,
    Transport, DEFAULT_CRASH_QUARANTINE,
};
use ddws_testkit::compgen::{self, CaseSpec};
use ddws_testkit::contract;
use ddws_testkit::faults::{corrupt_frame, FrameChaos, FrameFault};
use ddws_testkit::rng::XorShift;
use ddws_verifier::{
    AbortReason, DatabaseMode, ManualClock, Outcome, RunReport, Verifier, VerifyOptions,
};
use std::sync::Arc;

/// Parameters of one service simulation.
#[derive(Clone, Debug)]
pub struct ServiceSimOptions {
    /// Simulated clients.
    pub clients: usize,
    /// Compgen jobs drawn per client.
    pub jobs_per_client: usize,
    /// The scheduler quantum (additional states per slice).
    pub quantum_states: u64,
    /// Per-job total state budget.
    pub budget: u64,
    /// Queue admission capacity.
    pub capacity: usize,
    /// Queue the budget-explosive `starver` scenario first (client 0).
    pub starver: bool,
    /// Plan one seeded cancellation of a compgen job after ≥1 slice.
    pub cancel_one: bool,
    /// Safety bound on scheduler quanta before declaring deadlock.
    pub max_quanta: u64,
    /// Wire-frame chaos profile for client traffic ([`FrameChaos::OFF`]
    /// keeps the reliable direct wire and the pinned-seed byte
    /// identity).
    pub chaos: FrameChaos,
    /// Seeded worker-crash injection: roughly one slice in `crash_in`
    /// panics mid-expansion (0 disables).
    pub crash_in: u64,
    /// Total crashed slices before a job is quarantined as
    /// `job_poisoned`.
    pub crash_quarantine: u64,
    /// Retention-store capacity for terminal results (LRU beyond it).
    pub retain_results: usize,
    /// Retention TTL in virtual nanoseconds.
    pub result_ttl_ns: u64,
    /// Per-client clock skew: client `c`'s backoff waits advance the
    /// server's virtual clock by an extra `skew_ns * c` nanoseconds,
    /// desynchronizing retention timing across tenants (0 disables).
    pub skew_ns: u64,
    /// Deliberate harness bug, for testing that the invariants (and the
    /// shrinker behind them) actually catch divergence.
    pub bug: Option<ServiceBug>,
}

/// Deliberately-injected service-harness bugs (the shrink pipeline's
/// test fixtures — `None` in every real run).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceBug {
    /// Swap `holds` and `violated` on every served verdict before the
    /// oracle comparison, so conclusive jobs diverge.
    FlipVerdict,
}

impl Default for ServiceSimOptions {
    fn default() -> ServiceSimOptions {
        ServiceSimOptions {
            clients: 3,
            jobs_per_client: 2,
            quantum_states: 256,
            budget: 20_000,
            capacity: 16,
            starver: false,
            cancel_one: true,
            max_quanta: 50_000,
            chaos: FrameChaos::OFF,
            crash_in: 0,
            crash_quarantine: DEFAULT_CRASH_QUARANTINE,
            retain_results: 1024,
            result_ttl_ns: 3_600_000_000_000,
            skew_ns: 0,
            bug: None,
        }
    }
}

/// One submitted job's record, service-side state joined with the
/// client-side bookkeeping and the oracle's answer.
#[derive(Clone, Debug)]
pub struct ServiceJob {
    /// Submitting client.
    pub client: usize,
    /// Draw-order index (stable across lost submissions; the shrink
    /// override targets this).
    pub source: usize,
    /// Wire job id.
    pub job: u64,
    /// The compgen spec (absent for scenario jobs).
    pub spec: Option<CaseSpec>,
    /// The scenario name (absent for spec jobs).
    pub scenario: Option<String>,
    /// The served verdict label.
    pub verdict: Option<String>,
    /// The oracle's verdict label (not run for cancelled jobs).
    pub oracle: Option<String>,
    /// Served counterexample digest, on `violated`.
    pub counterexample: Option<CexDigest>,
    /// Oracle counterexample digest, on `violated`.
    pub oracle_counterexample: Option<CexDigest>,
    /// Slices executed.
    pub slices: u64,
    /// Cumulative visited states.
    pub states_visited: u64,
    /// Scheduler step at admission.
    pub submitted_step: u64,
    /// Scheduler step at the terminal transition.
    pub completed_step: Option<u64>,
    /// Whether the job was cancelled.
    pub cancelled: bool,
    /// Whether the cancel discarded a parked checkpoint.
    pub discarded_checkpoint: bool,
    /// Run reports drained from the job's telemetry stream.
    pub reports: u64,
    /// Crashed slices the supervisor absorbed and re-dispatched.
    pub crash_recoveries: u64,
    /// Whether the retention store evicted this job's result before the
    /// fetch (the verdict then comes from the job row; the digest is
    /// gone).
    pub evicted: bool,
}

/// The result of one seeded service simulation.
#[derive(Clone, Debug)]
pub struct ServiceRun {
    /// The driving seed.
    pub seed: u64,
    /// The server's canonical event log (the replay unit).
    pub trace: String,
    /// Redacted final reports of every terminal job, in job order (the
    /// other half of the replay unit).
    pub redacted_reports: String,
    /// Per-job records, in admission order.
    pub jobs: Vec<ServiceJob>,
    /// Recorded invariant violations (empty on a healthy run).
    pub violations: Vec<String>,
    /// The job-attributable subset of `violations`, keyed by draw-order
    /// index — the shrinker's input.
    pub attributed: Vec<(usize, String)>,
    /// Scheduler quanta executed.
    pub quanta: u64,
    /// Total crashed slices re-dispatched across all jobs.
    pub crash_recoveries: u64,
    /// Frame faults the chaos transport injected (0 on a reliable wire).
    pub wire_faults: u64,
}

/// The oracle: a direct, one-shot, unsharded run of the same case under
/// the same total budget. Returns the verdict label and, on `violated`,
/// the counterexample digest.
fn oracle_verdict(
    case: &compgen::Case,
    options: &JobOptions,
) -> Result<(String, Option<CexDigest>), String> {
    let mut verifier = Verifier::new(case.composition.clone());
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(case.database.clone()),
        fresh_values: options.fresh_values,
        max_states: options.budget,
        valuation_threads: Some(1),
        ..VerifyOptions::default()
    };
    let report = verifier
        .check_str(&case.property, &opts)
        .map_err(|e| format!("oracle failed: {e}"))?;
    Ok(match report.outcome {
        Outcome::Holds => ("holds".to_string(), None),
        Outcome::Violated(cex) => {
            let digest = CexDigest {
                values: cex
                    .valuation
                    .iter()
                    .map(|&(_, v)| case.composition.symbols.name(v).to_string())
                    .collect(),
                prefix_len: cex.prefix.len() as u64,
                cycle_len: cex.cycle.len() as u64,
            };
            ("violated".to_string(), Some(digest))
        }
        Outcome::Inconclusive(inc) => match inc.reason {
            AbortReason::StateBudget { .. } => ("budget_exceeded".to_string(), None),
            other => (format!("aborted ({})", other.label()), None),
        },
    })
}

/// A client [`Transport`] over an in-process [`Server`] whose frames
/// run a seeded [`FrameChaos`] gauntlet: requests vanish, arrive twice,
/// arrive late behind their successor, or arrive bit-flipped; acks
/// vanish after the server already acted. Backoff waits let the server
/// run a quantum and, under per-client skew, advance the virtual clock
/// — so the wire's hostility is itself a pure function of the seed.
pub struct ChaosTransport<'a> {
    server: &'a Server,
    clock: Option<Arc<ManualClock>>,
    chaos: FrameChaos,
    rng: XorShift,
    delayed: Option<Vec<u8>>,
    /// Extra virtual nanoseconds each backoff wait adds (the caller
    /// sets this to the active client's skew before its requests).
    pub skew_ns: u64,
    /// Frame faults injected so far.
    pub faults: u64,
}

impl<'a> ChaosTransport<'a> {
    /// A chaos transport over `server` with its own fault RNG stream
    /// (decorrelated from the schedule and the client sessions).
    pub fn new(
        server: &'a Server,
        clock: Option<Arc<ManualClock>>,
        chaos: FrameChaos,
        seed: u64,
    ) -> ChaosTransport<'a> {
        ChaosTransport {
            server,
            clock,
            chaos,
            rng: XorShift::new(seed ^ 0xf4a7_5f4a_75f4_a75f),
            delayed: None,
            skew_ns: 0,
            faults: 0,
        }
    }

    /// Delivers a frame, letting any delayed predecessor land first
    /// (its displaced response is discarded — that client retried long
    /// ago).
    fn deliver(&mut self, frame: &[u8]) -> Vec<u8> {
        if let Some(stale) = self.delayed.take() {
            self.server.handle_frame(&stale);
        }
        self.server.handle_frame(frame)
    }
}

impl Transport for ChaosTransport<'_> {
    fn call(&mut self, frame: &[u8]) -> Option<Vec<u8>> {
        match self.chaos.draw(&mut self.rng) {
            FrameFault::Deliver => Some(self.deliver(frame)),
            FrameFault::DropRequest => {
                self.faults += 1;
                None
            }
            FrameFault::DropResponse => {
                self.faults += 1;
                self.deliver(frame);
                None
            }
            FrameFault::Duplicate => {
                self.faults += 1;
                self.deliver(frame);
                Some(self.deliver(frame))
            }
            FrameFault::Delay => {
                self.faults += 1;
                if let Some(stale) = self.delayed.replace(frame.to_vec()) {
                    self.server.handle_frame(&stale);
                }
                None
            }
            FrameFault::Corrupt { offset, bit } => {
                self.faults += 1;
                let mut mangled = frame.to_vec();
                corrupt_frame(&mut mangled, offset, bit);
                Some(self.deliver(&mangled))
            }
        }
    }

    fn wait(&mut self, _ns: u64) {
        if self.skew_ns > 0 {
            if let Some(clock) = &self.clock {
                clock.advance(self.skew_ns);
            }
        }
        self.server.step();
    }
}

/// Runs one seeded service simulation. Everything — job draws, request
/// interleaving, cancellation timing, injected chaos — derives from
/// `seed`.
pub fn run_service_seed(seed: u64, opts: &ServiceSimOptions) -> ServiceRun {
    run_service_impl(seed, opts, None)
}

/// Re-runs `seed` with the job at draw-order index `job` carrying
/// `spec` instead of its drawn spec. The override is applied *after*
/// the draw phase, so the RNG stream — the schedule, every other job,
/// the chaos — is unchanged. The shrinker's re-execution primitive.
pub fn run_service_seed_with_override(
    seed: u64,
    opts: &ServiceSimOptions,
    job: usize,
    spec: &CaseSpec,
) -> ServiceRun {
    run_service_impl(seed, opts, Some((job, spec)))
}

fn run_service_impl(
    seed: u64,
    opts: &ServiceSimOptions,
    case_override: Option<(usize, &CaseSpec)>,
) -> ServiceRun {
    let mut rng = XorShift::new(seed ^ 0x5e17_1ce0_5e17_1ce0);
    let clock = Arc::new(ManualClock::new(0));
    let server = Server::new(ServerConfig {
        capacity: opts.capacity,
        quantum_states: opts.quantum_states,
        clock: Some(clock.clone()),
        progress_interval: None,
        crash_quarantine: opts.crash_quarantine,
        retain_results: opts.retain_results,
        result_ttl_ns: opts.result_ttl_ns,
        crash_injector: (opts.crash_in > 0).then(|| {
            Arc::new(CrashInjector::new(
                seed,
                opts.crash_in,
                opts.quantum_states.max(1),
            ))
        }),
        ..ServerConfig::default()
    });

    // -------------------------------------------------------------
    // Draw phase: the job corpus, in client-submission order.
    // -------------------------------------------------------------
    let mut pending: Vec<(usize, JobSpec, JobOptions)> = Vec::new();
    if opts.starver {
        pending.push((
            0,
            JobSpec::Scenario("starver".to_string()),
            JobOptions {
                budget: opts.budget,
                ..JobOptions::default()
            },
        ));
    }
    for client in 0..opts.clients {
        for _ in 0..opts.jobs_per_client {
            let spec = compgen::spec(&mut rng);
            pending.push((
                client,
                JobSpec::Spec(spec),
                JobOptions {
                    budget: opts.budget,
                    ..JobOptions::default()
                },
            ));
        }
    }
    // One planned cancellation: a compgen job (never the starver, whose
    // point is to stay pathological) after 1–3 slices.
    let cancel_plan: Option<(usize, u64)> = if opts.cancel_one && !pending.is_empty() {
        let first_compgen = usize::from(opts.starver);
        let idx = first_compgen + rng.below((pending.len() - first_compgen) as u64) as usize;
        Some((idx, 1 + rng.below(3)))
    } else {
        None
    };
    // The shrink override swaps one drawn spec *after* every draw above,
    // leaving the RNG stream — and so the whole schedule — untouched.
    if let Some((idx, spec)) = case_override {
        assert!(
            matches!(pending[idx].1, JobSpec::Spec(_)),
            "override targets a drawn spec job"
        );
        pending[idx].1 = JobSpec::Spec(spec.clone());
    }

    // Chaos plumbing: retry sessions plus a faulty transport. On the
    // reliable profile these stay unused and the direct wire below
    // keeps the pinned seeds byte-identical.
    let wire_chaos = opts.chaos != FrameChaos::OFF || opts.skew_ns > 0;
    let mut sessions: Vec<ClientSession> = (0..opts.clients.max(1))
        .map(|c| {
            ClientSession::new(
                seed ^ (c as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                RetryPolicy {
                    max_attempts: 32,
                    ..RetryPolicy::default()
                },
            )
        })
        .collect();
    let mut transport = ChaosTransport::new(&server, Some(clock), opts.chaos, seed);

    let mut violations: Vec<String> = Vec::new();
    let mut attributed: Vec<(usize, String)> = Vec::new();
    let mut jobs: Vec<ServiceJob> = Vec::new();
    let mut next_request_id: u64 = 1;
    let send = |server: &Server, req: &Request, id: &mut u64| -> Response {
        let frame = encode_request(*id, req);
        let bytes = server.handle_frame(&frame);
        let (rid, resp, _) = decode_response(&bytes).expect("server frames decode");
        assert_eq!(rid, *id, "correlation id echoes");
        *id += 1;
        resp
    };

    // -------------------------------------------------------------
    // Interleaving phase: submissions, quanta, polls, cancellations —
    // all drawn from the seed.
    // -------------------------------------------------------------
    let mut submitted = 0usize;
    let mut quanta = 0u64;
    let mut cancel_sent = false;
    loop {
        let runnable = server.has_runnable();
        let can_submit = submitted < pending.len();
        if !runnable && !can_submit {
            break;
        }
        let executed = if wire_chaos { server.steps() } else { quanta };
        if executed >= opts.max_quanta {
            violations.push(format!(
                "deadlock: {} quanta without quiescence",
                opts.max_quanta
            ));
            break;
        }

        // A planned cancel fires as soon as its target has run enough
        // slices (and before the next quantum, so it lands on a *parked*
        // checkpoint).
        if let Some((idx, after_slices)) = cancel_plan {
            if !cancel_sent {
                if let Some(job) = jobs.iter().find(|j| j.source == idx) {
                    let rows = server.jobs();
                    let row = &rows[job.job as usize];
                    if !row.state.is_terminal() && row.slices >= after_slices {
                        let req = Request::CancelJob { job: job.job };
                        if wire_chaos {
                            // A duplicated or retried cancel can land on
                            // an already-terminal job; that typed answer
                            // is fine.
                            transport.skew_ns = opts.skew_ns * job.client as u64;
                            let _ = sessions[job.client].request(&mut transport, &req);
                        } else {
                            send(&server, &req, &mut next_request_id);
                        }
                        cancel_sent = true;
                        continue;
                    }
                }
            }
        }

        // Bias toward submitting early (front-loads contention), then
        // interleave quanta with occasional wire polls.
        if can_submit && (!runnable || rng.chance(2, 5)) {
            let (client, spec, options) = pending[submitted].clone();
            let source = submitted;
            let accepted: Option<u64> = if wire_chaos {
                transport.skew_ns = opts.skew_ns * client as u64;
                match sessions[client].submit(&mut transport, spec.clone(), options.clone()) {
                    Ok(job) => Some(job),
                    Err(e) => {
                        violations.push(format!("submission {source} lost to the wire: {e}"));
                        None
                    }
                }
            } else {
                match send(
                    &server,
                    &Request::SubmitJob {
                        spec: spec.clone(),
                        options: options.clone(),
                        submit_token: None,
                    },
                    &mut next_request_id,
                ) {
                    Response::Accepted { job } => Some(job),
                    Response::Error(err) => {
                        violations.push(format!(
                            "submission {submitted} rejected below capacity: {err}"
                        ));
                        None
                    }
                    other => {
                        violations.push(format!("unexpected submit response: {other:?}"));
                        None
                    }
                }
            };
            if let Some(job) = accepted {
                jobs.push(ServiceJob {
                    client,
                    source,
                    job,
                    spec: match &spec {
                        JobSpec::Spec(cs) => Some(cs.clone()),
                        JobSpec::Scenario(_) => None,
                    },
                    scenario: match &spec {
                        JobSpec::Scenario(name) => Some(name.clone()),
                        JobSpec::Spec(_) => None,
                    },
                    verdict: None,
                    oracle: None,
                    counterexample: None,
                    oracle_counterexample: None,
                    slices: 0,
                    states_visited: 0,
                    submitted_step: 0,
                    completed_step: None,
                    cancelled: false,
                    discarded_checkpoint: false,
                    reports: 0,
                    crash_recoveries: 0,
                    evicted: false,
                });
            }
            submitted += 1;
            continue;
        }

        if runnable {
            // Occasionally poke the wire mid-flight; the responses land
            // in the canonical log, widening the replay surface.
            if !jobs.is_empty() && rng.chance(1, 8) {
                let pick = rng.below(jobs.len() as u64) as usize;
                let req = Request::JobStatus {
                    job: jobs[pick].job,
                };
                if wire_chaos {
                    transport.skew_ns = opts.skew_ns * jobs[pick].client as u64;
                    let _ = sessions[jobs[pick].client].request(&mut transport, &req);
                } else {
                    send(&server, &req, &mut next_request_id);
                }
            }
            if !jobs.is_empty() && rng.chance(1, 8) {
                let pick = rng.below(jobs.len() as u64) as usize;
                let target = &mut jobs[pick];
                if let Response::Telemetry { reports, .. } = send(
                    &server,
                    &Request::StreamTelemetry { job: target.job },
                    &mut next_request_id,
                ) {
                    target.reports += reports.len() as u64;
                    check_reports(&reports, target.job, &mut violations);
                }
            }
            server.step();
            quanta += 1;
        }
    }

    // -------------------------------------------------------------
    // Collection phase: fetch every result over the wire, drain the
    // remaining telemetry, and interrogate the oracle.
    // -------------------------------------------------------------
    let rows = server.jobs();
    for job in &mut jobs {
        let row = &rows[job.job as usize];
        job.slices = row.slices;
        job.states_visited = row.states_visited;
        job.submitted_step = row.submitted_step;
        job.completed_step = row.completed_step;
        job.discarded_checkpoint = row.discarded_checkpoint;
        job.crash_recoveries = row.crash_recoveries;
        if !row.state.is_terminal() {
            let msg = format!("job {} not terminal: {:?}", job.job, row.state);
            attributed.push((job.source, msg.clone()));
            violations.push(msg);
            continue;
        }
        if let Response::Telemetry { reports, .. } = send(
            &server,
            &Request::StreamTelemetry { job: job.job },
            &mut next_request_id,
        ) {
            job.reports += reports.len() as u64;
            check_reports(&reports, job.job, &mut violations);
        }
        let fetched: Option<Response> = if wire_chaos {
            transport.skew_ns = opts.skew_ns * job.client as u64;
            match sessions[job.client]
                .request(&mut transport, &Request::FetchResult { job: job.job })
            {
                Ok(resp) => Some(resp),
                Err(ClientError::Service(err)) => Some(Response::Error(err)),
                Err(e) => {
                    let msg = format!("fetch({}) lost to the wire: {e}", job.job);
                    attributed.push((job.source, msg.clone()));
                    violations.push(msg);
                    None
                }
            }
        } else {
            Some(send(
                &server,
                &Request::FetchResult { job: job.job },
                &mut next_request_id,
            ))
        };
        let Some(fetched) = fetched else {
            continue;
        };
        match fetched {
            Response::Result {
                verdict,
                counterexample,
                ..
            } => {
                job.cancelled = verdict == "cancelled";
                job.verdict = Some(verdict);
                job.counterexample = counterexample;
            }
            // The two typed terminal answers of the robustness contract:
            // quarantined crash loops and reclaimed results. Both are
            // healthy outcomes, not violations.
            Response::Error(err) if err.code == ErrorCode::JobPoisoned => {
                job.verdict = Some("job_poisoned".to_string());
            }
            Response::Error(err) if err.code == ErrorCode::ResultEvicted => {
                job.evicted = true;
                job.verdict = row.verdict.clone();
                job.cancelled = row.verdict.as_deref() == Some("cancelled");
            }
            other => {
                let msg = format!("fetch({}) answered {other:?}", job.job);
                attributed.push((job.source, msg.clone()));
                violations.push(msg);
            }
        }
        // Telemetry conservation: one report per executed slice —
        // crashed slices included, each streamed exactly one abort
        // report. A cancel that lands between slices terminalizes
        // without a final slice, so the bound is exact for uncancelled
        // jobs.
        if !job.cancelled && job.reports != job.slices {
            let msg = format!(
                "job {}: {} slices but {} streamed reports",
                job.job, job.slices, job.reports
            );
            attributed.push((job.source, msg.clone()));
            violations.push(msg);
        }

        if job.cancelled {
            continue;
        }
        if opts.bug == Some(ServiceBug::FlipVerdict) {
            job.verdict = match job.verdict.as_deref() {
                Some("holds") => Some("violated".to_string()),
                Some("violated") => Some("holds".to_string()),
                other => other.map(str::to_string),
            };
        }
        if job.verdict.as_deref() == Some("job_poisoned") {
            // Quarantine is the injector's doing, not the case's; there
            // is no oracle for a job the chaos never let finish.
            continue;
        }
        let case = match (&job.spec, &job.scenario) {
            (Some(spec), _) => spec.build().expect("submitted spec builds"),
            (None, Some(name)) => ddws_server::scenario(name).expect("known scenario"),
            (None, None) => unreachable!("job has a source"),
        };
        let options = JobOptions {
            budget: opts.budget,
            ..JobOptions::default()
        };
        match oracle_verdict(&case, &options) {
            Ok((verdict, digest)) => {
                if job.verdict.as_deref() != Some(verdict.as_str()) {
                    let msg = format!(
                        "job {}: served {:?}, oracle {verdict:?}",
                        job.job, job.verdict
                    );
                    attributed.push((job.source, msg.clone()));
                    violations.push(msg);
                }
                // Eviction reclaims the counterexample with the report,
                // so only the verdict remains comparable.
                if !job.evicted && digest != job.counterexample {
                    let msg = format!(
                        "job {}: served counterexample {:?}, oracle {:?}",
                        job.job, job.counterexample, digest
                    );
                    attributed.push((job.source, msg.clone()));
                    violations.push(msg);
                }
                job.oracle = Some(verdict);
                job.oracle_counterexample = digest;
            }
            Err(e) => {
                let msg = format!("job {}: {e}", job.job);
                attributed.push((job.source, msg.clone()));
                violations.push(msg);
            }
        }
    }

    // Fairness: the strict round-robin law, checked on the slice events
    // of the canonical log.
    let trace = server.canonical_log();
    violations.extend(fairness_violations(&trace));

    ServiceRun {
        seed,
        redacted_reports: ddws_server::redacted_reports(&server),
        trace,
        crash_recoveries: jobs.iter().map(|j| j.crash_recoveries).sum(),
        wire_faults: transport.faults,
        jobs,
        violations,
        attributed,
        quanta: if wire_chaos { server.steps() } else { quanta },
    }
}

/// A service-level violation shrunk to a 1-minimal failing spec under
/// the identical seeded schedule.
#[derive(Clone, Debug)]
pub struct ShrunkServiceFailure {
    /// The driving seed.
    pub seed: u64,
    /// Draw-order index of the violating job.
    pub job: usize,
    /// The originally drawn spec.
    pub spec: CaseSpec,
    /// The 1-minimal spec that still violates under the same schedule.
    pub min: CaseSpec,
    /// The original run's attributed violations.
    pub attributed: Vec<(usize, String)>,
    /// Canonical service log of the re-run under the minimal spec — the
    /// minimized schedule.
    pub trace: String,
}

impl ServiceRun {
    /// The first attributed violation whose job is a drawn compgen spec
    /// (scenario jobs — e.g. the starver — have nothing to shrink).
    pub fn shrinkable_violation(&self) -> Option<usize> {
        self.attributed.iter().map(|(idx, _)| *idx).find(|idx| {
            self.jobs
                .iter()
                .any(|j| j.source == *idx && j.spec.is_some())
        })
    }
}

/// Folds a failing service run into the shrink pipeline: the violating
/// job's spec is delta-debugged with [`compgen::minimize_spec`] against
/// the *identical* RNG stream (same seed, same schedule and chaos, spec
/// swapped in after the draw phase), keeping a cut iff the re-run still
/// attributes a violation to the same job. Returns the 1-minimal spec
/// plus the minimized run's canonical trace, or `None` when no
/// violation is attributable to a spec job.
pub fn shrink_service_violation(
    run: &ServiceRun,
    opts: &ServiceSimOptions,
) -> Option<ShrunkServiceFailure> {
    let job = run.shrinkable_violation()?;
    let spec = run
        .jobs
        .iter()
        .find(|j| j.source == job)
        .and_then(|j| j.spec.clone())?;
    let min = compgen::minimize_spec(&spec, |cand| {
        run_service_seed_with_override(run.seed, opts, job, cand)
            .attributed
            .iter()
            .any(|(j, _)| *j == job)
    });
    let rerun = run_service_seed_with_override(run.seed, opts, job, &min);
    Some(ShrunkServiceFailure {
        seed: run.seed,
        job,
        spec,
        min,
        attributed: run.attributed.clone(),
        trace: rerun.trace,
    })
}

/// Schema-validates a batch of streamed slice reports.
fn check_reports(reports: &[RunReport], job: u64, violations: &mut Vec<String>) {
    for r in reports {
        let slice = std::slice::from_ref(r);
        if let Err(e) = contract::report_contract(slice, &format!("job {job} slice report")) {
            violations.push(e);
        }
    }
}

/// The strict round-robin fairness law, on the canonical log: between
/// two consecutive `slice` events of any job, every other job appears at
/// most once — i.e. nobody waits more than one full round of quanta.
pub fn fairness_violations(trace: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let slices: Vec<u64> = trace
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("slice job=")?;
            rest.split_whitespace().next()?.parse().ok()
        })
        .collect();
    let mut last_seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, &job) in slices.iter().enumerate() {
        if let Some(&prev) = last_seen.get(&job) {
            let between = &slices[prev + 1..i];
            let mut seen = std::collections::HashSet::new();
            for &other in between {
                if !seen.insert(other) {
                    violations.push(format!(
                        "fairness: job {other} ran twice between consecutive slices of job {job} \
                         (positions {prev}..{i})"
                    ));
                }
            }
        }
        last_seen.insert(job, i);
    }
    violations
}
