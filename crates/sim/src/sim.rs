//! The seeded discrete-event simulator (DESIGN.md §3.11).
//!
//! One [`run_seed`] call is a pure function of its `u64` seed: it draws a
//! set of concurrent verification jobs from the compgen corpus (callers
//! can append fixed scenario jobs), schedules them cooperatively in
//! random order, preempts each time slice through a [`SearchLimits`]
//! deadline on a shared **virtual clock** (advanced by the fault hook,
//! one tick per state expansion — so "time" is a deterministic function
//! of the schedule), injects planned crashes (worker panics) and
//! cancellations, resumes checkpoints across slices via
//! [`Verifier::resume`], and perturbs channel queues (loss, duplication,
//! reorder) through the model's successor interface.
//!
//! Invariants checked while the run unfolds, each recorded as a
//! stable-prefixed violation instead of a panic so the swarm can shrink:
//!
//! * `report:` — every slice emits exactly one schema-valid, coherent
//!   [`RunReport`] ([`contract::report_contract`]);
//! * `divergence:` — a job's terminal verdict must agree with an
//!   unfaulted oracle run of the same case and budget under the legacy
//!   state representation (jobs themselves draw compact or legacy states
//!   per seed, so half the corpus is a cross-representation differential
//!   with crash/resume in the loop);
//! * `panic:` — only planned crashes may panic, with the injected
//!   payload, and the attached report must match the emitted one;
//! * `deadlock:` — every job terminates within the slice bound;
//! * `walk:` / `closure:` — the channel-perturbation invariants of
//!   [`crate::channel`].
//!
//! [`SearchLimits`]: ddws_automata::SearchLimits

use crate::channel;
use crate::event::{canonical_trace, SimEvent};
use ddws_automata::{Clock, ClockHandle, ManualClock};
use ddws_model::Composition;
use ddws_relational::Instance;
use ddws_testkit::rng::XorShift;
use ddws_testkit::{compgen, contract, faults};
use ddws_verifier::{
    BufferReporter, CancelToken, Checkpoint, DatabaseMode, FaultHook, Outcome, Reduction,
    ReporterHandle, RuleEval, RunReport, StateRepr, Verifier, VerifyError, VerifyOptions,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Test-only bug injection: deliberately break one sim-level invariant so
/// the swarm's catch-and-shrink path stays exercised (the acceptance
/// criterion of DESIGN.md §3.11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimBug {
    /// Silently discard the run report of job 0's first slice — the
    /// lost-report invariant must fire.
    DropReport,
    /// Flip every conclusive job verdict before recording it — the
    /// oracle-divergence invariant must fire.
    FlipVerdict,
}

/// Simulation parameters. Everything that shapes the run is here (and in
/// the seed); nothing reads ambient state.
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Concurrent verification jobs drawn from the compgen corpus.
    pub drawn_jobs: usize,
    /// Virtual-time length of one preempted slice, nanoseconds.
    pub slice_ns: u64,
    /// Virtual nanoseconds the clock advances per state expansion.
    pub tick_ns: u64,
    /// Number of leading slices that carry a deadline; later slices run
    /// to completion (guarantees termination).
    pub preempt_slices: u32,
    /// Hard per-job slice bound; exceeding it is a `deadlock:` violation.
    pub max_slices: u32,
    /// Per-job state budget (escalated ×4 once if it trips).
    pub state_budget: u64,
    /// Steps of the perturbed channel walk per job.
    pub walk_steps: u32,
    /// Reachable-set cap for the loss-closure check (job 0 only); the
    /// check is skipped when the cap is hit.
    pub closure_cap: usize,
    /// Test-only bug injection (see [`SimBug`]).
    pub bug: Option<SimBug>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            drawn_jobs: 3,
            slice_ns: 30_000,
            tick_ns: 64,
            preempt_slices: 5,
            max_slices: 24,
            state_budget: 30_000,
            walk_steps: 10,
            closure_cap: 4_000,
            bug: None,
        }
    }
}

/// A verification job fed to the simulator.
#[derive(Clone)]
pub enum JobSource {
    /// A job drawn from (or shrunk within) the compgen corpus.
    Compgen(compgen::CaseSpec),
    /// A fixed job — typically a scenario-library composition.
    Fixed {
        /// Display name for the trace.
        name: String,
        /// The composition under verification (boxed: a composition is
        /// hundreds of bytes and the enum is cloned per run).
        composition: Box<Composition>,
        /// Its database instance.
        database: Instance,
        /// The property to check.
        property: String,
    },
}

/// The per-job outcome of a finished simulation.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// `compgen` or the fixed job's name.
    pub kind: String,
    /// The property verified.
    pub property: String,
    /// The compgen spec the job was built from (None for fixed jobs) —
    /// the shrinker's substrate.
    pub spec: Option<compgen::CaseSpec>,
    /// The state representation the job's searches ran under (held
    /// across every slice, resume, and restart of the job).
    pub state_repr: StateRepr,
    /// The outer valuation-shard count the job's searches ran under
    /// (drawn from the walk seed; `None` is the unsharded loop).
    pub valuation_threads: Option<usize>,
    /// Terminal verdict label.
    pub verdict: String,
    /// The unfaulted oracle's verdict label.
    pub oracle: Option<String>,
    /// Slices consumed.
    pub slices: u32,
    /// Crash-induced fresh restarts.
    pub restarts: u32,
    /// Final run report of every slice, in slice order.
    pub reports: Vec<RunReport>,
}

/// A finished simulation run: the canonical event trace, per-job
/// records, and any invariant violations (empty on a healthy run).
#[derive(Clone, Debug)]
pub struct SimRun {
    /// The seed the run is a pure function of.
    pub seed: u64,
    /// The canonical event list.
    pub events: Vec<SimEvent>,
    /// Per-job outcomes, in job order.
    pub jobs: Vec<JobRecord>,
    /// Invariant violations, `(job, stable-prefixed detail)`.
    pub violations: Vec<(usize, String)>,
}

impl SimRun {
    /// The canonical newline-separated trace (the replay contract:
    /// byte-identical across runs of the same seed).
    pub fn canonical_trace(&self) -> String {
        canonical_trace(&self.events)
    }

    /// The first violation attributable to a *shrinkable* (compgen) job,
    /// excluding `error:` entries (those reject shrink cuts rather than
    /// witness sim bugs).
    pub fn shrinkable_violation(&self) -> Option<usize> {
        self.violations
            .iter()
            .find(|(j, d)| !d.starts_with("error:") && self.jobs[*j].spec.is_some())
            .map(|(j, _)| *j)
    }
}

/// Runs the simulation for `seed` with compgen-drawn jobs only.
pub fn run_seed(seed: u64, opts: &SimOptions) -> SimRun {
    run_impl(seed, opts, &[], None)
}

/// Runs the simulation for `seed` with extra fixed jobs appended after
/// the drawn ones (scenario-library corpus).
pub fn run_with_jobs(seed: u64, opts: &SimOptions, extra: &[JobSource]) -> SimRun {
    run_impl(seed, opts, extra, None)
}

/// Re-runs the simulation for `seed` with job `job`'s case replaced by
/// `case` *after* all random draws — the RNG stream, the schedule, and
/// every other job are unchanged, so the shrinker minimizes the case
/// against the exact failing schedule.
pub fn run_with_case_override(
    seed: u64,
    opts: &SimOptions,
    job: usize,
    case: &compgen::Case,
) -> SimRun {
    run_impl(seed, opts, &[], Some((job, case)))
}

/// The outcome of shrinking a failing run: the seed, the violating job,
/// its original and 1-minimal specs, and the failing run's violations
/// and canonical trace (the minimized schedule).
#[derive(Clone, Debug)]
pub struct ShrunkFailure {
    /// The failing seed.
    pub seed: u64,
    /// The job the first shrinkable violation is attributed to.
    pub job: usize,
    /// The job's original spec.
    pub spec: compgen::CaseSpec,
    /// The 1-minimal spec that still violates under the same schedule.
    pub min: compgen::CaseSpec,
    /// The failing run's violations.
    pub violations: Vec<(usize, String)>,
    /// The failing run's canonical trace.
    pub trace: String,
}

/// Runs `seed`; if an invariant violation is attributable to a compgen
/// job, delta-debugs that job's spec down to a 1-minimal spec that still
/// produces a violation under the identical schedule. Returns `None`
/// when the run is healthy (or only fixed jobs violated).
pub fn shrink_first_violation(seed: u64, opts: &SimOptions) -> Option<ShrunkFailure> {
    let run = run_seed(seed, opts);
    let job = run.shrinkable_violation()?;
    let spec = run.jobs[job]
        .spec
        .clone()
        .expect("shrinkable job has a spec");
    let min = compgen::minimize(&spec, |case| {
        run_with_case_override(seed, opts, job, case)
            .violations
            .iter()
            .any(|(j, d)| *j == job && !d.starts_with("error:"))
    });
    let trace = run.canonical_trace();
    Some(ShrunkFailure {
        seed,
        job,
        spec,
        min,
        violations: run.violations,
        trace,
    })
}

// ---------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------

struct Job {
    id: usize,
    kind: String,
    spec: Option<compgen::CaseSpec>,
    composition: Composition,
    database: Instance,
    property: String,
    verifier: Verifier,
    reduction: Reduction,
    rule_eval: RuleEval,
    state_repr: StateRepr,
    /// Outer valuation shards the job's checks run under (held across
    /// every slice, resume, and restart — a checkpoint pins it).
    valuation_threads: Option<usize>,
    /// Planned crash / cancellation: (slice, expansion ordinal).
    crash: Option<(u32, u64)>,
    cancel: Option<(u32, u64)>,
    walk_seed: u64,
    budget: u64,
    budget_raised: bool,
    checkpoint: Option<Checkpoint>,
    slices: u32,
    restarts: u32,
    verdict: Option<String>,
    oracle: Option<String>,
    reports: Vec<RunReport>,
}

impl Job {
    fn base_opts(&self) -> VerifyOptions {
        VerifyOptions {
            database: DatabaseMode::Fixed(self.database.clone()),
            fresh_values: Some(1),
            max_states: self.budget,
            threads: None, // sequential: byte-identical traces and stats
            // Outer sharding stays deterministic under the sim's manual
            // clock (the scheduler's cooperative mode), so multi-shard
            // checkpoint/resume is swarm-covered without losing replay.
            valuation_threads: self.valuation_threads,
            reduction: self.reduction,
            rule_eval: self.rule_eval,
            state_repr: self.state_repr,
            progress_interval: None,
            ..VerifyOptions::default()
        }
    }
}

fn verdict_label(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Holds => "holds",
        Outcome::Violated(_) => "violated",
        Outcome::Inconclusive(_) => "inconclusive",
    }
}

fn run_impl(
    seed: u64,
    opts: &SimOptions,
    extra: &[JobSource],
    override_case: Option<(usize, &compgen::Case)>,
) -> SimRun {
    let mut rng = XorShift::new(seed);
    let clock = Arc::new(ManualClock::new(0));
    let mut events: Vec<SimEvent> = Vec::new();
    let mut violations: Vec<(usize, String)> = Vec::new();

    // --- Draw phase. All randomness is consumed here and in the
    // scheduler picks below; the case override happens after the draws,
    // so it never shifts the stream.
    let mut sources: Vec<JobSource> = (0..opts.drawn_jobs)
        .map(|_| JobSource::Compgen(compgen::spec(&mut rng)))
        .collect();
    sources.extend(extra.iter().cloned());

    struct Plan {
        reduction: Reduction,
        rule_eval: RuleEval,
        crash: Option<(u32, u64)>,
        cancel: Option<(u32, u64)>,
        walk_seed: u64,
    }
    let plans: Vec<Plan> = (0..sources.len())
        .map(|_| Plan {
            reduction: if rng.bool() {
                Reduction::Ample
            } else {
                Reduction::Full
            },
            rule_eval: if rng.bool() {
                RuleEval::Compiled
            } else {
                RuleEval::Interpreted
            },
            crash: rng
                .chance(1, 3)
                .then(|| (rng.below(4) as u32, rng.below(40) + 1)),
            cancel: rng
                .chance(1, 3)
                .then(|| (rng.below(4) as u32, rng.below(40) + 1)),
            walk_seed: rng.next_u64(),
        })
        .collect();

    let mut jobs: Vec<Job> = Vec::new();
    for (id, (source, plan)) in sources.into_iter().zip(plans).enumerate() {
        let (kind, spec, composition, database, property) = match source {
            JobSource::Compgen(s) => {
                let case = match override_case {
                    Some((j, c)) if j == id => (*c).clone(),
                    _ => s.build().expect("drawn sim spec builds"),
                };
                (
                    "compgen".to_string(),
                    Some(s),
                    case.composition,
                    case.database,
                    case.property,
                )
            }
            JobSource::Fixed {
                name,
                composition,
                database,
                property,
            } => (name, None, *composition, database, property),
        };
        events.push(SimEvent::JobSubmitted {
            job: id,
            kind: kind.clone(),
            property: property.clone(),
        });
        jobs.push(Job {
            id,
            kind,
            spec,
            verifier: Verifier::new(composition.clone()),
            composition,
            database,
            property,
            reduction: plan.reduction,
            rule_eval: plan.rule_eval,
            // Drawn from the walk seed's parity bit rather than a fresh
            // `rng.bool()`: the RNG stream is untouched, so every pinned
            // schedule from before representations existed replays
            // unchanged. The bit is *reused*, not consumed — the walk
            // itself keeps its full seed.
            state_repr: if plan.walk_seed & 1 == 0 {
                StateRepr::Compact
            } else {
                StateRepr::Legacy
            },
            // Same reuse trick, bits 1-2: outer valuation shards. The
            // verdict is shard-independent (deterministic winner rule), so
            // the oracle cross-check below doubles as a determinism check
            // for the shard scheduler's cooperative mode.
            valuation_threads: match (plan.walk_seed >> 1) & 3 {
                0 => None,
                1 => Some(1),
                2 => Some(2),
                _ => Some(3),
            },
            crash: plan.crash,
            cancel: plan.cancel,
            walk_seed: plan.walk_seed,
            budget: opts.state_budget,
            budget_raised: false,
            checkpoint: None,
            slices: 0,
            restarts: 0,
            verdict: None,
            oracle: None,
            reports: Vec::new(),
        });
    }

    // --- Cooperative scheduler: random order, one slice per grant.
    let mut live: Vec<usize> = (0..jobs.len()).collect();
    while !live.is_empty() {
        let pick = live[rng.below(live.len() as u64) as usize];
        run_slice(&mut jobs[pick], opts, &clock, &mut events, &mut violations);
        if jobs[pick].verdict.is_some() {
            live.retain(|&j| j != pick);
            finish_job(&mut jobs[pick], opts, &mut events, &mut violations);
        }
    }

    SimRun {
        seed,
        events,
        jobs: jobs
            .into_iter()
            .map(|j| JobRecord {
                kind: j.kind,
                property: j.property,
                spec: j.spec,
                state_repr: j.state_repr,
                valuation_threads: j.valuation_threads,
                verdict: j.verdict.unwrap_or_else(|| "unknown".to_string()),
                oracle: j.oracle,
                slices: j.slices,
                restarts: j.restarts,
                reports: j.reports,
            })
            .collect(),
        violations,
    }
}

/// Grants one time slice to `job`: arms a fresh deadline on the shared
/// virtual clock (for the leading `preempt_slices` slices), wires the
/// planned crash/cancel fault for this slice into the hook, and runs
/// either a fresh `check` or a checkpoint `resume`.
fn run_slice(
    job: &mut Job,
    opts: &SimOptions,
    clock: &Arc<ManualClock>,
    events: &mut Vec<SimEvent>,
    violations: &mut Vec<(usize, String)>,
) {
    let slice = job.slices;
    job.slices += 1;
    if slice >= opts.max_slices {
        violations.push((
            job.id,
            format!("deadlock: job exceeded {} slices", opts.max_slices),
        ));
        events.push(SimEvent::Violation {
            job: job.id,
            detail: "deadlock: slice bound exceeded".to_string(),
        });
        job.verdict = Some("deadlock".to_string());
        return;
    }
    events.push(SimEvent::SliceStarted {
        job: job.id,
        slice,
        now_ns: clock.now_ns(),
    });

    let crash_at = job.crash.and_then(|(s, o)| (s == slice).then_some(o));
    let cancel_at = job.cancel.and_then(|(s, o)| (s == slice).then_some(o));
    let token = CancelToken::new();
    let hook: FaultHook = {
        let clock = clock.clone();
        let token = token.clone();
        let tick_ns = opts.tick_ns;
        Arc::new(move |tick: u64| {
            // Virtual time is a function of work done: one tick per
            // state expansion.
            clock.advance(tick_ns);
            if Some(tick) == cancel_at {
                token.cancel("sim: scheduled cancellation");
            }
            if Some(tick) == crash_at {
                panic!("{}: sim crash at expansion {tick}", faults::INJECTED_PANIC);
            }
        })
    };

    let buf = Arc::new(BufferReporter::new());
    let mut vopts = job.base_opts();
    vopts.max_states = job.budget;
    vopts.reporter = ReporterHandle::new(buf.clone());
    vopts.cancel_token = Some(token);
    vopts.fault_hook = Some(hook);
    vopts.clock = Some(clock.clone() as ClockHandle);
    if slice < opts.preempt_slices {
        vopts.deadline = Some(Duration::from_nanos(opts.slice_ns));
    }

    let result = match job.checkpoint.take() {
        Some(cp) => {
            events.push(SimEvent::Resumed { job: job.id, slice });
            job.verifier.resume(cp, &vopts)
        }
        None => job.verifier.check_str(&job.property, &vopts),
    };

    // The report-emission contract holds on every slice, whatever
    // happened inside — unless the injected sim bug eats the report.
    let mut reports = buf.take_reports();
    if opts.bug == Some(SimBug::DropReport) && job.id == 0 && slice == 0 {
        reports.clear();
    }
    let label = format!("sim seed job {} slice {slice}", job.id);
    let emitted = match contract::report_contract(&reports, &label) {
        Ok(r) => {
            let r = r.clone();
            job.reports.push(r.clone());
            Some(r)
        }
        Err(e) => {
            violations.push((job.id, format!("report: {e}")));
            events.push(SimEvent::Violation {
                job: job.id,
                detail: format!("report: {e}"),
            });
            None
        }
    };

    match result {
        Ok(report) => {
            let states = report.stats.states_visited;
            match report.outcome {
                Outcome::Holds | Outcome::Violated(_) => {
                    let verdict = verdict_label(&report.outcome).to_string();
                    events.push(SimEvent::SliceEnded {
                        job: job.id,
                        slice,
                        outcome: verdict.clone(),
                        states,
                    });
                    job.verdict = Some(verdict);
                }
                Outcome::Inconclusive(inc) => {
                    let lbl = inc.reason.label().to_string();
                    events.push(SimEvent::SliceEnded {
                        job: job.id,
                        slice,
                        outcome: lbl.clone(),
                        states,
                    });
                    match inc.checkpoint {
                        Some(cp) if lbl != "budget_exceeded" => job.checkpoint = Some(cp),
                        Some(cp) if !job.budget_raised => {
                            // One budget escalation: "an Inconclusive
                            // that resumes to agreement".
                            job.budget_raised = true;
                            job.budget *= 4;
                            job.checkpoint = Some(cp);
                        }
                        Some(_) => job.verdict = Some(lbl),
                        None => {
                            // Non-resumable graceful stop: restart fresh.
                            job.restarts += 1;
                            if job.restarts > 2 {
                                violations.push((
                                    job.id,
                                    "deadlock: repeated non-resumable stops".to_string(),
                                ));
                                job.verdict = Some(lbl);
                            }
                        }
                    }
                }
            }
        }
        Err(VerifyError::WorkerPanicked {
            payload, report, ..
        }) => {
            events.push(SimEvent::CrashInjected { job: job.id, slice });
            events.push(SimEvent::SliceEnded {
                job: job.id,
                slice,
                outcome: "worker_panicked".to_string(),
                states: report.counters.states_visited,
            });
            if crash_at.is_none() {
                violations.push((job.id, format!("panic: unplanned worker panic: {payload}")));
            } else if !payload.contains(faults::INJECTED_PANIC) {
                violations.push((job.id, format!("panic: foreign panic payload: {payload}")));
            }
            if let Some(e) = emitted {
                if e != *report {
                    violations.push((
                        job.id,
                        "panic: attached report differs from the emitted one".to_string(),
                    ));
                }
            }
            // Panics are not resumable: the job restarts from scratch on
            // its next slice (crash-during-resume exercises exactly the
            // checkpoint-loss path).
            job.checkpoint = None;
            job.restarts += 1;
        }
        Err(e) => {
            violations.push((job.id, format!("error: unexpected verify error: {e}")));
            job.verdict = Some("error".to_string());
        }
    }
}

/// Terminal bookkeeping for a finished job: record the verdict (flipped
/// under the injected bug), run the unfaulted oracle, compare, then run
/// the channel-perturbation phases.
fn finish_job(
    job: &mut Job,
    opts: &SimOptions,
    events: &mut Vec<SimEvent>,
    violations: &mut Vec<(usize, String)>,
) {
    if opts.bug == Some(SimBug::FlipVerdict) {
        job.verdict = job.verdict.take().map(|v| match v.as_str() {
            "holds" => "violated".to_string(),
            "violated" => "holds".to_string(),
            other => other.to_string(),
        });
    }
    let verdict = job.verdict.clone().unwrap_or_default();
    events.push(SimEvent::JobFinished {
        job: job.id,
        verdict: verdict.clone(),
        slices: job.slices,
        restarts: job.restarts,
    });

    // Unfaulted oracle: same case, same engine shape, same final budget,
    // no clock, no deadline, no faults — and always the *legacy* state
    // representation, the representation of record. A job that drew
    // `StateRepr::Compact` therefore has its sliced, faulted, interned
    // run cross-checked against the uninterned baseline.
    let mut v = Verifier::new(job.composition.clone());
    let mut oracle_opts = job.base_opts();
    oracle_opts.max_states = job.budget;
    oracle_opts.state_repr = StateRepr::Legacy;
    // The oracle is the unsharded baseline: a job that drew outer shards
    // has its faulted, sharded run cross-checked against the sequential
    // valuation loop.
    oracle_opts.valuation_threads = None;
    let oracle = match v.check_str(&job.property, &oracle_opts) {
        Ok(r) => match &r.outcome {
            Outcome::Inconclusive(inc) => inc.reason.label().to_string(),
            other => verdict_label(other).to_string(),
        },
        Err(e) => {
            violations.push((job.id, format!("error: oracle failed: {e}")));
            "error".to_string()
        }
    };
    events.push(SimEvent::OracleFinished {
        job: job.id,
        verdict: oracle.clone(),
    });
    job.oracle = Some(oracle.clone());

    let conclusive = |s: &str| s == "holds" || s == "violated";
    if conclusive(&verdict) && conclusive(&oracle) && verdict != oracle {
        let d = format!("divergence: sim verdict {verdict}, oracle {oracle}");
        violations.push((job.id, d.clone()));
        events.push(SimEvent::Violation {
            job: job.id,
            detail: d,
        });
    } else if verdict == "budget_exceeded" && conclusive(&oracle) {
        // The sequential resume is an exact continuation, so a sliced
        // run can never exhaust a budget the oracle fits.
        let d = "divergence: sim exhausted a budget the oracle completed within".to_string();
        violations.push((job.id, d.clone()));
        events.push(SimEvent::Violation {
            job: job.id,
            detail: d,
        });
    }

    walk_job(job, opts, events, violations);
    if job.id == 0 {
        closure_job(job, opts, events, violations);
    }
}

/// The seeded perturbed walk: steps the composition while randomly
/// losing, duplicating, and reordering queued messages, checking
/// structural invariants (queue bounds, panic-freedom).
fn walk_job(
    job: &mut Job,
    opts: &SimOptions,
    events: &mut Vec<SimEvent>,
    violations: &mut Vec<(usize, String)>,
) {
    let domain = match job_domain(job) {
        Ok(d) => d,
        Err(e) => {
            violations.push((job.id, format!("error: walk domain: {e}")));
            return;
        }
    };
    let comp = &job.composition;
    let db = &job.database;
    let bound = comp.semantics.queue_bound;
    let mut rng = XorShift::new(job.walk_seed);
    let movers = comp.movers();
    let Some(mut cfg) = comp.initial_configs(db, &domain).into_iter().next() else {
        return;
    };
    for step in 0..opts.walk_steps {
        let mut perturbation = "none";
        if rng.chance(2, 3) {
            if let Some((kind, p)) = channel::perturb(comp, &cfg, &mut rng) {
                perturbation = kind;
                cfg = p;
            }
        }
        // Stepping a (possibly perturbed) configuration must never
        // panic, and must respect the queue bound.
        let stepped = catch_unwind(AssertUnwindSafe(|| {
            let mut all = Vec::new();
            for &mover in &movers {
                all.extend(comp.successors(db, &domain, &cfg, mover));
            }
            all
        }));
        let succs = match stepped {
            Ok(s) => s,
            Err(_) => {
                violations.push((
                    job.id,
                    format!("walk: successor computation panicked at step {step}"),
                ));
                return;
            }
        };
        if succs.is_empty() {
            return;
        }
        cfg = succs[rng.below(succs.len() as u64) as usize].clone();
        let queued: usize = cfg.queues.iter().map(|q| q.len()).sum();
        if cfg.queues.iter().any(|q| q.len() > bound) {
            violations.push((
                job.id,
                format!("walk: queue bound {bound} exceeded at step {step}"),
            ));
        }
        events.push(SimEvent::WalkStep {
            job: job.id,
            step,
            perturbation,
            queued,
        });
    }
}

/// The loss-closure check (T3.4 downward closure) on the job's
/// composition, bounded by `closure_cap`.
fn closure_job(
    job: &mut Job,
    opts: &SimOptions,
    events: &mut Vec<SimEvent>,
    violations: &mut Vec<(usize, String)>,
) {
    let domain = match job_domain(job) {
        Ok(d) => d,
        Err(e) => {
            violations.push((job.id, format!("error: closure domain: {e}")));
            return;
        }
    };
    match channel::loss_closure(&job.composition, &job.database, &domain, opts.closure_cap) {
        Ok((configs, candidates)) => events.push(SimEvent::ClosureChecked {
            job: job.id,
            configs,
            candidates,
        }),
        Err(detail) => {
            violations.push((job.id, detail.clone()));
            events.push(SimEvent::Violation {
                job: job.id,
                detail,
            });
        }
    }
}

fn job_domain(job: &mut Job) -> Result<Vec<ddws_relational::Value>, String> {
    let opts = job.base_opts();
    let prop = job
        .verifier
        .parse_property(&job.property)
        .map_err(|e| e.to_string())?;
    Ok(job.verifier.domain_for(&prop, &opts))
}
