//! # `ddws-sim` — deterministic whole-system simulation
//!
//! A VOPR-style seeded discrete-event harness that drives the whole
//! verification stack — concurrent jobs over the compgen/scenario
//! corpus, randomized cooperative schedules, virtual-clock time slicing
//! through `SearchLimits` deadlines, checkpoint/crash/resume, and
//! channel perturbation within the paper's lossy-queue semantics
//! (Theorem 3.4) — as a **pure function of one `u64` seed**.
//!
//! The three pillars (DESIGN.md §3.11):
//!
//! 1. **Determinism.** Single-threaded simulation, sequential search
//!    engine, and a [`ManualClock`](ddws_automata::ManualClock) advanced
//!    one tick per state expansion from the fault hook. Nothing reads
//!    wall time, thread scheduling, or iteration order of unordered
//!    containers — so the canonical event trace and every `RunReport`
//!    (modulo redacted timing) replay byte-identically from the seed.
//! 2. **Invariants, not assertions.** Violations (verdict divergence
//!    from an unfaulted oracle, report-schema breakage, lost/duplicated
//!    reports, deadlock, loss-closure failures) are *recorded* on the
//!    run, so the harness can hand the failing schedule to the shrinker
//!    instead of dying mid-run.
//! 3. **Shrinking.** A failing seed is delta-debugged with the existing
//!    `compgen::minimize`: the violating job's spec is minimized against
//!    the *identical* schedule (same seed, same RNG stream, case swapped
//!    in after the draw phase), yielding a 1-minimal spec plus the
//!    canonical trace as the minimized schedule.

#![warn(missing_docs)]

pub mod channel;
pub mod event;
pub mod service;
pub mod sim;

pub use event::{canonical_trace, SimEvent};
pub use service::{
    fairness_violations, run_service_seed, run_service_seed_with_override,
    shrink_service_violation, ChaosTransport, ServiceBug, ServiceJob, ServiceRun,
    ServiceSimOptions, ShrunkServiceFailure,
};
pub use sim::{
    run_seed, run_with_case_override, run_with_jobs, shrink_first_violation, JobRecord, JobSource,
    ShrunkFailure, SimBug, SimOptions, SimRun,
};
