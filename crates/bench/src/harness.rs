//! An offline, dependency-free stand-in for the slice of the `criterion`
//! API the `e*` bench targets use.
//!
//! The workspace builds with no network access, so `criterion` cannot be a
//! dependency. This harness keeps the bench sources criterion-shaped —
//! groups, `sample_size`, `bench_with_input`, `BenchmarkId`, `b.iter` —
//! while measuring with plain [`std::time::Instant`] and printing a
//! min/median/max line per benchmark. There is no warm-up phase beyond one
//! untimed iteration and no statistical outlier analysis: the numbers are
//! for relative comparison, not publication.
//!
//! Set `DDWS_BENCH_SAMPLES` to override every group's sample count (useful
//! to smoke-test a bench target with `DDWS_BENCH_SAMPLES=1`).

use std::time::{Duration, Instant};

/// The top-level driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// A driver whose benchmark filter comes from the command line: the
    /// first non-flag argument, as `cargo bench -- <substring>` passes it.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark with no parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// Ends the group (kept for criterion source compatibility).
    pub fn finish(&mut self) {}

    fn run(&self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, label);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let samples = std::env::var("DDWS_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.sample_size);
        let mut bencher = Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        };
        f(&mut bencher);
        report(&full, &bencher.durations);
    }
}

/// The per-benchmark measurement handle.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample (plus one untimed warm-up call).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            std::hint::black_box(out);
            self.durations.push(elapsed);
        }
    }
}

/// A benchmark label, optionally `function/parameter`-shaped.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

fn report(label: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{label:<44} no samples recorded");
        return;
    }
    let mut sorted = durations.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    println!(
        "{label:<44} time: [{} {} {}]  ({} samples)",
        fmt_duration(sorted[0]),
        fmt_duration(median),
        fmt_duration(*sorted.last().expect("non-empty")),
        sorted.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Groups bench functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running every group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_one_duration_per_sample() {
        let mut b = Bencher {
            samples: 4,
            durations: Vec::new(),
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(b.durations.len(), 4);
        assert_eq!(calls, 5, "one warm-up plus four timed");
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("lossy", 3).label, "lossy/3");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
