//! Shared benchmark workloads for the experiment suite of EXPERIMENTS.md.
//!
//! Each `e*_...` bench target regenerates one experiment; this library
//! holds the builders they share. The scenarios themselves live in the
//! `ddws` facade crate (`ddws::scenarios`).

pub mod harness;

pub use ddws_boundaries::{counting_relay, state_space_size};

use ddws_model::{Composition, CompositionBuilder, QueueKind};
use ddws_relational::{Instance, Tuple, Value};

/// The request/response pair used by the protocol benches (E3).
pub fn req_resp(lossy: bool) -> Composition {
    let mut b = CompositionBuilder::new();
    b.default_lossy(lossy);
    b.channel("req", 1, QueueKind::Flat, "P", "R");
    b.channel("resp", 1, QueueKind::Flat, "R", "P");
    b.peer("P")
        .database("d", 1)
        .input("pick", 1)
        .input_rule("pick", &["x"], "d(x)")
        .send_rule("req", &["x"], "pick(x)");
    b.peer("R")
        .state("served", 1)
        .state_insert_rule("served", &["x"], "?req(x)")
        .send_rule("resp", &["x"], "?req(x)");
    b.build().expect("req/resp composition")
}

/// A unary database with `n` values for a given relation.
pub fn unary_db(comp: &mut Composition, rel: &str, n: usize) -> (Instance, Vec<Value>) {
    let mut db = Instance::empty(&comp.voc);
    let id = comp.voc.lookup(rel).expect("relation exists");
    let mut values = Vec::new();
    for i in 0..n {
        let v = comp.symbols.intern(&format!("v{i}"));
        db.relation_mut(id).insert(Tuple::new(vec![v]));
        values.push(v);
    }
    (db, values)
}
