//! E2 (Lemma 3.5 / Theorem 3.4): cost of verifying a composition directly
//! vs. verifying its single-peer reduction — the PTIME reduction trades
//! queue bookkeeping for state relations and scheduler input branching.

use ddws_bench::harness::{criterion_group, criterion_main, Criterion};
use ddws_bench::{req_resp, unary_db};
use ddws_verifier::reduction::{
    reduce_to_single_peer, translate_database, translate_property_source,
};
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

const PROP: &str = "G (forall x: R.?req(x) -> P.d(x))";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_reduction");
    group.sample_size(10);

    group.bench_function("composition_direct", |b| {
        b.iter(|| {
            let mut v = Verifier::new(req_resp(true));
            let (db, _) = unary_db(v.composition_mut(), "P.d", 2);
            let opts = VerifyOptions {
                database: DatabaseMode::Fixed(db),
                fresh_values: Some(1),
                ..VerifyOptions::default()
            };
            v.check_str(PROP, &opts).unwrap().stats
        })
    });

    group.bench_function("single_peer_reduced", |b| {
        b.iter(|| {
            let comp = req_resp(true);
            let mut helper = Verifier::new(comp);
            let (db, _) = unary_db(helper.composition_mut(), "P.d", 2);
            let mut reduced = reduce_to_single_peer(helper.composition()).unwrap();
            let rdb = translate_database(&mut reduced, helper.composition(), &db);
            let rprop = translate_property_source(&reduced, helper.composition(), PROP);
            let mut v = Verifier::new(reduced.composition);
            let opts = VerifyOptions {
                database: DatabaseMode::Fixed(rdb),
                fresh_values: Some(1),
                require_input_bounded: false,
                ..VerifyOptions::default()
            };
            v.check_str(&rprop, &opts).unwrap().stats
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
