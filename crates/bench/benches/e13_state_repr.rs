//! E13: the succinct interned state representation — the same
//! verification workloads under `StateRepr::Compact` (hash-consed,
//! bit-packed configurations with interned footprints) and
//! `StateRepr::Legacy` (the owned-`Config` oracle of record).
//!
//! The workload suite revisits the E8–E10 scenario families at the
//! state-heavy scale E13 targets — the regime where the E10/E11 phase
//! profiles showed successor generation and queue bookkeeping dominating
//! `total_ns`:
//!
//! * `e8_nested_chain_{seq,par2}`: a 3-peer relay chain whose middle peer
//!   accumulates an arity-2 `seen2` join of its private database with the
//!   relayed tokens, shipping the whole extension downstream over a
//!   `QueueKind::Nested` channel — configurations are dominated by wide
//!   state extensions and relation-valued queue payloads, the exact
//!   shapes hash-consing collapses to `u32` handles.
//! * `e9_nested_chain_ample`: the same chain under `Reduction::Ample`,
//!   pairing the representation change with partial-order reduction.
//! * `e10_dense_chain_seq`: the chain with a phase rotor and an audit
//!   rule on the accumulator peer, so rule-dense evaluation (footprint
//!   construction per evaluation) rides on the heavy extensions.
//!
//! After the timing groups (run at reduced scale so the harness stays
//! fast), the acceptance pass measures every workload at full scale under
//! both representations, asserts the legacy-oracle differential on every
//! cell (equal verdict and `states_visited` — the bench *fails* rather
//! than skipping the oracle), asserts the aggregate `total_ns` speedup
//! bar (≥5× at full scale, ≥2× in the `DDWS_BENCH_SMOKE=1` CI
//! configuration), measures how much a truncated run's checkpoint
//! shrinks, and writes the phase-by-phase before/after to
//! `BENCH_E13.json` at the workspace root.

use ddws_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddws_model::{Composition, CompositionBuilder, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple};
use ddws_verifier::{
    validate_run_report, DatabaseMode, Outcome, Reduction, Report, RuleEval, RunReport, StateRepr,
    Verifier, VerifyOptions,
};
use std::time::Instant;

const REPRS: [(&str, StateRepr); 2] = [
    ("compact", StateRepr::Compact),
    ("legacy", StateRepr::Legacy),
];

/// One suite cell: an E8/E9/E10-family scenario at E13 scale.
#[derive(Clone, Copy)]
struct Workload {
    name: &'static str,
    /// Private-database rows per peer; state extensions grow to `m²`.
    m: usize,
    /// Phase-rotor size on the accumulator peer (0 = no rotor).
    ring: usize,
    threads: Option<usize>,
    reduction: Reduction,
}

const fn cell(
    name: &'static str,
    m: usize,
    ring: usize,
    threads: Option<usize>,
    reduction: Reduction,
) -> Workload {
    Workload {
        name,
        m,
        ring,
        threads,
        reduction,
    }
}

/// The suite. Full scale is what `BENCH_E13.json` reports against the
/// ≥5× bar; smoke scale keeps the CI job under a second per cell and is
/// held to ≥2×.
fn workloads(smoke: bool) -> Vec<Workload> {
    if smoke {
        vec![
            cell("e8_nested_chain_seq", 3, 0, None, Reduction::Full),
            cell("e8_nested_chain_par2", 3, 0, Some(2), Reduction::Full),
            cell("e9_nested_chain_ample", 3, 0, None, Reduction::Ample),
            cell("e10_dense_chain_seq", 3, 4, None, Reduction::Full),
        ]
    } else {
        vec![
            cell("e8_nested_chain_seq", 6, 0, None, Reduction::Full),
            cell("e8_nested_chain_par2", 6, 0, Some(2), Reduction::Full),
            cell("e9_nested_chain_ample", 5, 0, None, Reduction::Ample),
            cell("e10_dense_chain_seq", 4, 6, None, Reduction::Full),
        ]
    }
}

/// The state-heavy relay chain: P0 emits tokens from its database over a
/// nested channel, P1 joins them against its private `mine` rows into the
/// arity-2 accumulator `seen2` and ships the whole extension downstream
/// (again nested), P2 records what arrived. With `ring ≥ 2`, P1 also
/// carries a phase rotor and a `mark` audit rule reading `seen2`, giving
/// the rule-dense E10 shape on top of the heavy extensions.
fn state_heavy(m: usize, ring: usize) -> (Composition, Instance, String) {
    let mut b = CompositionBuilder::new();
    b.semantics(Semantics::default());
    b.default_lossy(true);
    b.channel("hop", 1, QueueKind::Nested, "P0", "P1");
    b.channel("rep", 2, QueueKind::Nested, "P1", "P2");
    b.peer("P0")
        .database("token", 1)
        .input("emit", 1)
        .input_rule("emit", &["x"], "token(x)")
        .send_rule("hop", &["x"], "emit(x)");
    b.peer("P1")
        .database("mine", 1)
        .state("seen2", 2)
        .state_insert_rule("seen2", &["x", "y"], "mine(x) and ?hop(y)")
        .send_rule("rep", &["x", "y"], "seen2(x, y)");
    b.peer("P2")
        .state("got", 2)
        .state_insert_rule("got", &["x", "y"], "?rep(x, y)");
    if ring >= 2 {
        let all = (0..ring)
            .map(|i| format!("phase(\"r{i}\")"))
            .collect::<Vec<_>>()
            .join(" or ");
        let mut arms = vec![format!("(x = \"r0\" and not ({all}))")];
        for i in 0..ring {
            let others = (0..ring)
                .filter(|&j| j != i)
                .map(|j| format!("phase(\"r{j}\")"))
                .collect::<Vec<_>>()
                .join(" or ");
            arms.push(format!(
                "(x = \"r{}\" and phase(\"r{i}\") and not ({others}))",
                (i + 1) % ring
            ));
        }
        b.peer("P1")
            .state("phase", 1)
            .state_insert_rule("phase", &["x"], &arms.join(" or "))
            .state_delete_rule("phase", &["x"], "phase(x)")
            .state("mark", 1)
            .state_insert_rule(
                "mark",
                &["x"],
                "mine(x) and seen2(x, \"t0\") and phase(\"r0\")",
            );
    }
    let mut comp = b.build().expect("state-heavy chain composition");
    let mut db = Instance::empty(&comp.voc);
    let token = comp.voc.lookup("P0.token").unwrap();
    let mine = comp.voc.lookup("P1.mine").unwrap();
    for i in 0..m {
        let t = comp.symbols.intern(&format!("t{i}"));
        db.relation_mut(token).insert(Tuple::new(vec![t]));
        let a = comp.symbols.intern(&format!("a{i}"));
        db.relation_mut(mine).insert(Tuple::new(vec![a]));
    }
    let prop = "G (forall x: P0.emit(x) -> P0.token(x))".to_string();
    (comp, db, prop)
}

fn opts(db: Instance, w: &Workload, state_repr: StateRepr) -> VerifyOptions {
    VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        threads: w.threads,
        reduction: w.reduction,
        rule_eval: RuleEval::Compiled,
        state_repr,
        ..VerifyOptions::default()
    }
}

fn check(w: &Workload, state_repr: StateRepr) -> Report {
    let (comp, db, prop) = state_heavy(w.m, w.ring);
    let mut v = Verifier::new(comp);
    let report = v.check_str(&prop, &opts(db, w, state_repr)).unwrap();
    assert!(report.outcome.holds(), "{} must hold", w.name);
    report
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_state_repr");
    group.sample_size(10);

    // Timing groups run the suite at smoke scale: the harness lines are
    // for relative comparison; the full-scale numbers the acceptance bar
    // is held to land in BENCH_E13.json.
    for w in workloads(true) {
        for (repr_name, state_repr) in REPRS {
            group.bench_with_input(
                BenchmarkId::new(w.name, repr_name),
                &state_repr,
                |b, &state_repr| b.iter(|| check(&w, state_repr).stats.states_visited),
            );
        }
    }

    group.finish();

    acceptance();
}

/// Per-representation measurements of one workload cell.
struct Cell {
    median_ns: u128,
    report: Report,
}

fn measure(w: &Workload, state_repr: StateRepr, samples: usize) -> Cell {
    let mut ns: Vec<u128> = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let start = Instant::now();
        let report = check(w, state_repr);
        ns.push(start.elapsed().as_nanos());
        last = Some(report);
    }
    ns.sort_unstable();
    Cell {
        median_ns: ns[ns.len() / 2],
        report: last.expect("at least one sample"),
    }
}

fn phase_json(cell: &Cell) -> String {
    let s = &cell.report.stats;
    format!(
        "{{\n        \"median_ns\": {},\n        \"boot_ns\": {},\n        \
         \"successor_ns\": {},\n        \"rule_eval_ns\": {},\n        \
         \"lasso_ns\": {},\n        \"intern_calls\": {}\n      }}",
        cell.median_ns, s.boot_ns, s.successor_ns, s.rule_eval_ns, s.lasso_ns, s.intern_calls
    )
}

/// The E13 acceptance bar. Every cell runs under both representations —
/// the legacy oracle is the differential, not an option — and the
/// aggregate `total_ns` speedup must clear the bar: ≥5× at full scale,
/// ≥2× at the reduced smoke scale CI runs (`DDWS_BENCH_SMOKE=1`).
fn acceptance() {
    let smoke = std::env::var("DDWS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let bar = if smoke { 2.0 } else { 5.0 };
    let samples = std::env::var("DDWS_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);

    let mut rows = Vec::new();
    let mut total_compact: u128 = 0;
    let mut total_legacy: u128 = 0;
    let mut bench_report: Option<RunReport> = None;
    for w in workloads(smoke) {
        let compact = measure(&w, StateRepr::Compact, samples);
        let legacy = measure(&w, StateRepr::Legacy, samples);
        // The legacy-oracle differential cell: both representations must
        // agree exactly on the verdict and the explored graph. Every
        // suite cell holds and runs either sequentially or under the
        // parallel engine with full expansion, so `states_visited` is
        // deterministic and must coincide.
        assert_eq!(
            (
                compact.report.outcome.holds(),
                compact.report.stats.states_visited
            ),
            (
                legacy.report.outcome.holds(),
                legacy.report.stats.states_visited
            ),
            "{}: compact and legacy runs diverged — representation bug",
            w.name
        );
        let speedup = legacy.median_ns as f64 / compact.median_ns.max(1) as f64;
        println!(
            "e13_state_repr/acceptance/{}: compact={}ns legacy={}ns speedup={speedup:.2}x \
             visited={}",
            w.name, compact.median_ns, legacy.median_ns, compact.report.stats.states_visited
        );
        total_compact += compact.median_ns;
        total_legacy += legacy.median_ns;
        rows.push(format!(
            "    \"{}\": {{\n      \"scenario\": {{\"m\": {}, \"ring\": {}, \
             \"threads\": \"{}\", \"reduction\": \"{}\"}},\n      \
             \"states_visited\": {},\n      \
             \"differential\": \"verdict+states_visited equal\",\n      \
             \"compact\": {},\n      \"legacy\": {},\n      \"speedup\": {speedup:.2}\n    }}",
            w.name,
            w.m,
            w.ring,
            match w.threads {
                None => "seq".to_string(),
                Some(n) => format!("par{n}"),
            },
            match w.reduction {
                Reduction::Ample => "ample",
                _ => "full",
            },
            compact.report.stats.states_visited,
            phase_json(&compact),
            phase_json(&legacy),
        ));
        bench_report.get_or_insert(compact.report.telemetry);
    }

    let total_speedup = total_legacy as f64 / total_compact.max(1) as f64;
    println!(
        "e13_state_repr/acceptance/total: compact={total_compact}ns legacy={total_legacy}ns \
         speedup={total_speedup:.2}x (bar {bar:.1}x, {})",
        if smoke { "smoke scale" } else { "full scale" }
    );
    assert!(
        total_speedup >= bar,
        "expected >={bar:.1}x compact speedup on suite total_ns, got {total_speedup:.2}x \
         ({total_compact}ns vs {total_legacy}ns)"
    );

    // Checkpoint shrink: truncate the same search under both
    // representations at the same state budget and compare what the
    // frozen state store retains — the payload a scale-out frontier
    // serializer would ship.
    let (ck_m, ck_budget) = if smoke { (3, 500) } else { (5, 10_000) };
    let ck_w = cell("checkpoint", ck_m, 0, None, Reduction::Full);
    let mut ck_bytes = [0usize; 2];
    for (i, (_, state_repr)) in REPRS.iter().enumerate() {
        let (comp, db, prop) = state_heavy(ck_w.m, ck_w.ring);
        let mut v = Verifier::new(comp);
        let o = VerifyOptions {
            max_states: ck_budget,
            ..opts(db, &ck_w, *state_repr)
        };
        let report = v.check_str(&prop, &o).unwrap();
        let Outcome::Inconclusive(inc) = &report.outcome else {
            panic!("checkpoint run must truncate on its state budget");
        };
        let ck = inc.checkpoint.as_ref().expect("budget stop is resumable");
        ck_bytes[i] = ck.approx_state_bytes();
    }
    let [ck_compact, ck_legacy] = ck_bytes;
    let shrink = ck_legacy as f64 / ck_compact.max(1) as f64;
    println!(
        "e13_state_repr/acceptance/checkpoint: compact={ck_compact}B legacy={ck_legacy}B \
         shrink={shrink:.2}x"
    );
    assert!(
        ck_compact * 2 <= ck_legacy,
        "expected the compact checkpoint to retain at most half the bytes, got {shrink:.2}x \
         ({ck_compact}B vs {ck_legacy}B)"
    );

    // The bench harness is itself a reporting entry point (DESIGN.md
    // §3.9): relabel one measured run's report, validate it against the
    // schema, and keep it in the artifact.
    let bench_report = RunReport {
        entry_point: "bench".into(),
        ..bench_report.expect("at least one compact sample")
    };
    let report_json = bench_report.to_json();
    let parsed = ddws_telemetry::Json::parse(&report_json).expect("bench report JSON parses");
    validate_run_report(&parsed).expect("bench report validates against the schema");

    let json = format!(
        "{{\n  \"experiment\": \"e13_state_repr\",\n  \"mode\": \"{}\",\n  \
         \"samples\": {samples},\n  \"speedup_bar\": {bar:.1},\n  \"workloads\": {{\n{}\n  }},\n  \
         \"total\": {{\n    \"compact_median_ns\": {total_compact},\n    \
         \"legacy_median_ns\": {total_legacy},\n    \"speedup\": {total_speedup:.2}\n  }},\n  \
         \"checkpoint\": {{\n    \"truncated_at_states\": {ck_budget},\n    \
         \"compact_bytes\": {ck_compact},\n    \"legacy_bytes\": {ck_legacy},\n    \
         \"shrink\": {shrink:.2}\n  }},\n  \"run_report\": {report_json}\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E13.json");
    std::fs::write(path, json).expect("write BENCH_E13.json");
    println!("e13_state_repr/acceptance: wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
