//! E5 (Corollary 3.6 / Theorem 3.7): reachable-state growth of the
//! counting relay as the queue bound increases — perfect channels diverge,
//! lossy channels grow strictly slower. The absolute counts per bound are
//! also printed once, regenerating EXPERIMENTS.md's table.

use ddws_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddws_bench::{counting_relay, state_space_size};

fn bench(c: &mut Criterion) {
    // One-shot table (the measured series EXPERIMENTS.md reports).
    println!("\nE5 table: reachable configurations of the counting relay");
    println!("k | perfect | lossy");
    for k in 1..=5 {
        let (pc, pdb, pdom) = counting_relay(k, false, 2);
        let (lc, ldb, ldom) = counting_relay(k, true, 2);
        println!(
            "{k} | {} | {}",
            state_space_size(&pc, &pdb, &pdom, 10_000_000),
            state_space_size(&lc, &ldb, &ldom, 10_000_000)
        );
    }

    let mut group = c.benchmark_group("e5_boundary");
    group.sample_size(10);
    for k in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("perfect", k), &k, |b, &k| {
            b.iter(|| {
                let (comp, db, dom) = counting_relay(k, false, 2);
                state_space_size(&comp, &db, &dom, 10_000_000)
            })
        });
        group.bench_with_input(BenchmarkId::new("lossy", k), &k, |b, &k| {
            b.iter(|| {
                let (comp, db, dom) = counting_relay(k, true, 2);
                state_space_size(&comp, &db, &dom, 10_000_000)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
