//! E3 (Theorems 4.2 / 4.5): data-agnostic vs. data-aware conversation
//! protocol checking on the same composition.

use ddws_bench::harness::{criterion_group, criterion_main, Criterion};
use ddws_bench::{req_resp, unary_db};
use ddws_protocol::{automata_shapes, DataAgnosticProtocol, DataAwareProtocol, Observer};
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_protocols");
    group.sample_size(20);

    group.bench_function("data_agnostic_response", |b| {
        b.iter(|| {
            let mut v = Verifier::new(req_resp(true));
            let (db, _) = unary_db(v.composition_mut(), "P.d", 2);
            let protocol = DataAgnosticProtocol::new(
                v.composition(),
                &["req", "resp"],
                automata_shapes::response(2, 0, 1),
                Observer::AtRecipient,
            )
            .unwrap();
            let opts = VerifyOptions {
                database: DatabaseMode::Fixed(db),
                fresh_values: Some(1),
                ..VerifyOptions::default()
            };
            v.check_data_agnostic(&protocol, &opts).unwrap().stats
        })
    });

    group.bench_function("data_aware_content_guard", |b| {
        b.iter(|| {
            let mut v = Verifier::new(req_resp(true));
            let (db, _) = unary_db(v.composition_mut(), "P.d", 2);
            let nba = {
                use ddws_automata::{Guard, Nba};
                let mut nba = Nba::new(1, 1);
                nba.add_initial(0);
                nba.add_transition(0, Guard::require(0), 0);
                nba.accepting[0] = true;
                nba
            };
            let protocol = DataAwareProtocol::new(
                v.composition_mut(),
                &[("req_is_db", "forall x: P.!req(x) -> P.d(x)")],
                nba,
            )
            .unwrap();
            let opts = VerifyOptions {
                database: DatabaseMode::Fixed(db),
                fresh_values: Some(1),
                ..VerifyOptions::default()
            };
            v.check_data_aware(&protocol, &opts).unwrap().stats
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
