//! E8: parallel product-search scaling — the same verification workload
//! run by the sequential nested-DFS engine (`threads: None`) and by the
//! work-stealing parallel engine at 1, 2 and 4 workers.
//!
//! Two workloads bracket the engines' trade-off:
//!
//! * `chains_holds`: the property holds, so both engines must exhaust the
//!   reachable product — the parallel engine's best case;
//! * `bank_violated`: a counterexample exists, so the sequential engine can
//!   stop early while the parallel one still explores everything first —
//!   its worst case (see DESIGN.md, "Parallel search").

use ddws::scenarios::{bank_loan, chains};
use ddws_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddws_model::Semantics;
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

const ENGINES: [(&str, Option<usize>); 4] = [
    ("seq", None),
    ("par1", Some(1)),
    ("par2", Some(2)),
    ("par4", Some(4)),
];

fn opts(db: ddws_relational::Instance, threads: Option<usize>) -> VerifyOptions {
    VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        threads,
        ..VerifyOptions::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_parallel_scaling");
    group.sample_size(10);

    for (name, threads) in ENGINES {
        group.bench_with_input(
            BenchmarkId::new("chains_holds", name),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut v = Verifier::new(chains::composition(3, true, Semantics::default()));
                    let db = chains::database(v.composition_mut(), 2);
                    let report = v
                        .check_str(&chains::prop_integrity(3), &opts(db, threads))
                        .unwrap();
                    assert!(report.outcome.holds());
                    report.stats.states_visited
                })
            },
        );
    }

    for (name, threads) in ENGINES {
        group.bench_with_input(
            BenchmarkId::new("bank_violated", name),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let sem = Semantics {
                        nested_send_skips_empty: true,
                        ..Semantics::default()
                    };
                    let mut v = Verifier::new(bank_loan::composition(true, sem));
                    let db = bank_loan::demo_database(v.composition_mut());
                    let report = v
                        .check_str(bank_loan::PROP_NO_RATING_EVER, &opts(db, threads))
                        .unwrap();
                    assert!(!report.outcome.holds());
                    report.stats.states_visited
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
